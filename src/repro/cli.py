"""Command-line interface: ``python -m repro <command>``.

Seven commands cover the paper's workflow end to end:

* ``screen``   — §4.1: PB screen over the 41 parameters, print ranks;
* ``classify`` — §4.2: distance matrix and groups (measured or from
  the paper's own published data);
* ``enhance``  — §4.3: before/after analysis for instruction
  precomputation or data prefetching;
* ``simulate`` — run one benchmark on one machine and print its stats;
* ``characterize`` — classical workload characterization (mix, branch
  statistics, footprints, miss-rate curves);
* ``tables``   — print the paper's exact exhibits (Tables 1-4, 6-8,
  10, 11 from bundled data);
* ``diffcore`` — differential-equivalence sweep of one simulator core
  against the interpreted reference oracle (exit 1 on divergence);
* ``bench``    — compare fresh ``BENCH_<label>.json`` manifests
  against committed baselines (``check``: perf regression beyond a
  tolerance, or any drift in the deterministic simulator totals,
  fails);
* ``lint``     — the determinism & fork-safety static analysis
  (``repro.analysis``) that gates changes to this tree in CI;
* ``verify``   — offline integrity cross-check of a finished run
  directory (manifest / journal / cache / results / event log;
  exit 0/1/2);
* ``journal``  — inspect (``scan``) or repair (``repair``) a
  checkpoint journal's damage;
* ``top``      — live fleet view of a running (or crashed, or
  finished) grid, aggregated from the spool and the event-log lanes;
* ``obs``      — telemetry tooling: ``obs export`` renders Prometheus
  text or a Perfetto trace reconstructed from the event stream.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.workloads import BENCHMARK_NAMES


def _add_workload_args(parser, default_length=4000):
    parser.add_argument(
        "--benchmarks", "-b", default="gzip,mcf",
        help="comma-separated benchmark names, or 'all' "
             f"(choices: {', '.join(BENCHMARK_NAMES)})",
    )
    parser.add_argument(
        "--length", "-n", type=int, default=default_length,
        help="trace length in instructions (default %(default)s)",
    )


def _traces(args):
    from repro.workloads import benchmark_suite

    if args.benchmarks.strip().lower() == "all":
        names = list(BENCHMARK_NAMES)
    else:
        names = [b.strip() for b in args.benchmarks.split(",") if b.strip()]
    unknown = [n for n in names if n not in BENCHMARK_NAMES]
    if unknown:
        raise SystemExit(f"unknown benchmarks: {', '.join(unknown)}")
    return benchmark_suite(length=args.length, names=names)


def _add_core_arg(parser):
    from repro.cpu import SIMULATOR_CORES

    parser.add_argument(
        "--core", default="batched", choices=SIMULATOR_CORES,
        help="simulator core (default %(default)s: the compiled "
             "kernel, falling back to the batched Python core); all "
             "cores are field-exact equivalent, so this is a speed "
             "knob, never a results knob",
    )


def _add_exec_args(parser):
    parser.add_argument(
        "--jobs", "-j", type=int, default=1,
        help="worker processes for the simulation grid "
             "(default %(default)s; results are identical at any value)",
    )
    parser.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="on-disk simulation result cache; reruns and related "
             "analyses reuse measurements instead of re-simulating",
    )
    parser.add_argument(
        "--retry", type=int, default=1, metavar="N",
        help="attempts per simulation cell before it counts as failed "
             "(default %(default)s = no retries)",
    )
    parser.add_argument(
        "--task-timeout", type=float, default=None, metavar="SECONDS",
        help="per-cell wall-clock budget; a cell over budget has its "
             "worker killed and is retried (needs --jobs >= 2)",
    )
    parser.add_argument(
        "--on-error", choices=["raise", "retry", "skip"],
        default="raise",
        help="what to do when a cell exhausts its attempts: fail the "
             "run (raise/retry) or annotate the cell and continue "
             "(skip) (default %(default)s)",
    )
    parser.add_argument(
        "--journal", default=None, metavar="FILE",
        help="append every completed cell to this checkpoint journal; "
             "an interrupted run resumes from it with --resume",
    )
    parser.add_argument(
        "--resume", action="store_true",
        help="continue from an existing --journal file instead of "
             "refusing to touch it",
    )
    parser.add_argument(
        "--audit", type=float, default=None, metavar="FRACTION",
        help="re-execute this fraction of cache/journal hits and "
             "compare bit-exact; a mismatch aborts the run with an "
             "AuditMismatch naming both payloads",
    )
    parser.add_argument(
        "--audit-seed", type=int, default=0, metavar="N",
        help="seed of the deterministic audit sample "
             "(default %(default)s)",
    )
    parser.add_argument(
        "--dist", default=None, metavar="SPOOL_DIR",
        help="run the grid through the distributed broker/worker "
             "runtime, coordinating through this shared spool "
             "directory; attach workers with 'repro worker SPOOL_DIR'",
    )
    parser.add_argument(
        "--dist-attach-grace", type=float, default=10.0,
        metavar="SECONDS",
        help="how long the broker waits for the first worker "
             "heartbeat before degrading to local execution "
             "(default %(default)s)",
    )
    parser.add_argument(
        "--dist-heartbeat-grace", type=float, default=2.5,
        metavar="SECONDS",
        help="seconds without a heartbeat before a worker is presumed "
             "dead and its leases reclaimed (default %(default)s)",
    )
    parser.add_argument(
        "--dist-chaos-exit-after", type=int, default=None, metavar="N",
        help="chaos-test hook: hard-crash the broker after N "
             "harvested results (the spool survives; a restarted "
             "broker resumes from it)",
    )
    parser.add_argument(
        "--dist-spool-budget", type=int, default=None, metavar="N",
        help="after the run, garbage-collect consumed sealed results "
             "from the spool down to at most N files (default: keep "
             "everything; a restarted broker adopts them for free)",
    )
    parser.add_argument(
        "--fsfault", default=None, metavar="SPEC",
        help="inject deterministic I/O faults at the write seam: "
             "comma-separated action:index[:count] items with actions "
             "enospc, eio, torn, fsync, rename and count optionally "
             "'always' (e.g. 'enospc:5:10,rename:2'); equivalent to "
             "REPRO_FSFAULT_SPEC",
    )


class _ExecOptions:
    """The engine-facing keyword set parsed from CLI flags."""

    def __init__(self, jobs, cache, retry, timeout, on_error, journal,
                 audit=None, dist=None):
        self.jobs = jobs
        self.cache = cache
        self.retry = retry
        self.timeout = timeout
        self.on_error = on_error
        self.journal = journal
        self.audit = audit
        self.dist = dist

    def run_kwargs(self, telemetry=None):
        return dict(
            jobs=self.jobs, cache=self.cache, retry=self.retry,
            timeout=self.timeout, on_error=self.on_error,
            journal=self.journal, telemetry=telemetry,
            audit=self.audit, dist=self.dist,
        )


def _exec_options(args):
    """Engine options for run()/run_grid() from parsed CLI args."""
    import os

    from repro.exec import Journal, ResultCache, RetryPolicy

    if args.jobs < 1:
        raise SystemExit(f"--jobs must be >= 1, got {args.jobs}")
    if args.retry < 1:
        raise SystemExit(f"--retry must be >= 1, got {args.retry}")
    if getattr(args, "fsfault", None):
        from repro.guard import fsfault

        try:
            fsfault.install(
                fsfault.FsFaultInjector.from_spec(args.fsfault)
            )
        except ValueError as exc:
            raise SystemExit(f"bad --fsfault spec: {exc}")
    try:
        cache = ResultCache(args.cache_dir) if args.cache_dir else None
    except OSError as exc:
        raise SystemExit(f"bad --cache-dir {args.cache_dir!r}: {exc}")
    journal = None
    if args.journal:
        if os.path.exists(args.journal) and not args.resume:
            raise SystemExit(
                f"journal {args.journal!r} already exists; pass "
                "--resume to continue from it or remove the file"
            )
        try:
            journal = Journal(args.journal)
        except OSError as exc:
            raise SystemExit(f"bad --journal {args.journal!r}: {exc}")
        if args.resume and len(journal):
            print(f"resuming: {len(journal)} cells already in "
                  f"{args.journal}", file=sys.stderr)
    elif args.resume:
        raise SystemExit("--resume needs --journal FILE")
    retry = RetryPolicy(max_attempts=args.retry) if args.retry > 1 \
        else None
    audit = None
    if args.audit is not None:
        if not 0.0 <= args.audit <= 1.0:
            raise SystemExit(
                f"--audit must be in [0, 1], got {args.audit}"
            )
        from repro.guard import AuditPolicy

        audit = AuditPolicy(fraction=args.audit, seed=args.audit_seed)
    dist = None
    if getattr(args, "dist", None):
        from repro.dist import DistOptions

        try:
            dist = DistOptions(
                spool=args.dist,
                attach_grace=args.dist_attach_grace,
                heartbeat_grace=args.dist_heartbeat_grace,
                chaos_exit_after=args.dist_chaos_exit_after,
                spool_budget_results=getattr(
                    args, "dist_spool_budget", None),
            )
        except ValueError as exc:
            raise SystemExit(f"bad --dist options: {exc}")
    return _ExecOptions(
        args.jobs, cache, retry, args.task_timeout, args.on_error,
        journal, audit, dist,
    )


def _add_obs_args(parser):
    parser.add_argument(
        "--trace", default=None, metavar="FILE",
        help="write a Chrome trace-event JSON of the run (open it in "
             "https://ui.perfetto.dev or chrome://tracing)",
    )
    parser.add_argument(
        "--metrics", default=None, metavar="FILE",
        help="write the final metrics snapshot as JSONL "
             "(one instrument per line)",
    )
    parser.add_argument(
        "--manifest", default=None, metavar="FILE",
        help="write a JSON run manifest (input fingerprint, versions, "
             "engine settings, fault spec, final metrics)",
    )
    parser.add_argument(
        "--stream", default=None, metavar="DIR",
        help="append a live event log (sealed-line JSONL) under DIR "
             "while the run executes; watch it with 'repro top DIR' "
             "and export it with 'repro obs export'",
    )
    parser.add_argument(
        "--profile", default=None, metavar="DIR",
        help="capture a cProfile per engine phase into DIR "
             "(<phase>.pstats + flamegraph-ready "
             "<phase>.collapsed.txt)",
    )


def _apply_run_dir(args):
    """Expand ``--run-dir DIR`` into the individual artifact flags.

    Fills every artifact path the offline ``repro verify`` contract
    expects — ``journal.jsonl``, ``manifest.json``, ``metrics.jsonl``,
    ``cache/`` and ``results.json`` under one directory — leaving any
    flag the user set explicitly alone.  The run-dir's journal exists
    to be resumed, so ``--resume`` is implied for it.  Returns the
    results path (or ``None`` when no run dir was requested).
    """
    run_dir = getattr(args, "run_dir", None)
    if not run_dir:
        return None
    from pathlib import Path

    base = Path(run_dir)
    base.mkdir(parents=True, exist_ok=True)
    if args.journal is None:
        args.journal = str(base / "journal.jsonl")
        args.resume = True
    if args.manifest is None:
        args.manifest = str(base / "manifest.json")
    if args.metrics is None:
        args.metrics = str(base / "metrics.jsonl")
    if args.cache_dir is None:
        args.cache_dir = str(base / "cache")
    if getattr(args, "stream", None) is None:
        # The event log is cheap, crash-durable and what 'repro top'
        # reads, so a verifiable run dir always streams; --profile
        # stays opt-in (profiling has real overhead).
        args.stream = str(base / "stream")
    return base / "results.json"


class _Obs:
    """Telemetry wiring parsed from the ``--trace/--metrics/
    --manifest/--stream/--profile`` flag family.

    Arms a :class:`repro.obs.Telemetry` when any of the flags is
    present, and owns writing the artifacts when the command finishes
    (including an interrupted finish, so a killed run still leaves its
    partial trace, a sealed event stream with every open span closed,
    and a manifest saying so).  With no flags every method degrades to
    a no-op and the command pays nothing.
    """

    def __init__(self, args, command):
        import os

        self.trace_path = getattr(args, "trace", None)
        self.metrics_path = getattr(args, "metrics", None)
        self.manifest_path = getattr(args, "manifest", None)
        self.stream_dir = getattr(args, "stream", None)
        self.profile_dir = getattr(args, "profile", None)
        self.telemetry = None
        self.manifest = None
        self._finished = False
        if not (self.trace_path or self.metrics_path
                or self.manifest_path or self.stream_dir
                or self.profile_dir):
            return
        from pathlib import Path

        from repro.obs import (
            EventWriter,
            PhaseProfiler,
            RunManifest,
            Telemetry,
            config_fingerprint,
        )

        stream = None
        if self.stream_dir:
            stream = EventWriter(
                Path(self.stream_dir) / "main.events.jsonl",
                lane="main",
            )
        profiler = (PhaseProfiler(self.profile_dir)
                    if self.profile_dir else None)
        # Spans only matter if a trace or stream is written, but the
        # manifest wants the final metrics snapshot, so the registry
        # is armed with it too (simulator counters included — that is
        # the whole point of asking for metrics).
        self.telemetry = Telemetry.armed(
            trace=self.trace_path is not None or stream is not None,
            metrics=self.metrics_path is not None
            or self.manifest_path is not None
            or stream is not None,
            simulator_counters=True,
            stream=stream, profiler=profiler,
        )
        if self.manifest_path:
            settings = {
                "jobs": args.jobs,
                "cache_dir": args.cache_dir,
                "retry": args.retry,
                "task_timeout": args.task_timeout,
                "on_error": args.on_error,
                "journal": args.journal,
                "core": getattr(args, "core", "batched"),
                "dist": getattr(args, "dist", None),
                "stream": self.stream_dir,
                "profile": self.profile_dir,
                "fsfault": getattr(args, "fsfault", None)
                or os.environ.get("REPRO_FSFAULT_SPEC"),  # repro: noqa[REP006] -- recorded verbatim for provenance, never branched on
            }
            workload = {
                "benchmarks": args.benchmarks,
                "length": args.length,
            }
            artifacts = {}
            if self.trace_path:
                artifacts["trace"] = self.trace_path
            if self.metrics_path:
                artifacts["metrics"] = self.metrics_path
            if args.journal:
                artifacts["journal"] = args.journal
            if self.stream_dir:
                artifacts["stream"] = self.stream_dir
            if self.profile_dir:
                artifacts["profile"] = self.profile_dir
            if getattr(args, "run_dir", None):
                artifacts["results"] = os.path.join(
                    args.run_dir, "results.json"
                )
            self.manifest = RunManifest(
                command=command,
                fingerprint=config_fingerprint({
                    "command": command,
                    "settings": settings,
                    "workload": workload,
                }),
                settings=settings,
                workload=workload,
                fault_spec=os.environ.get("REPRO_FAULT_SPEC"),  # repro: noqa[REP006] -- recorded verbatim in the manifest for provenance, never branched on
                artifacts=artifacts,
            )

    def phase(self, name, **attributes):
        from repro.obs.telemetry import phase_of

        return phase_of(self.telemetry, name, **attributes)

    def finish(self, status="completed"):
        """Write every requested artifact; called exactly once.

        The first action is ``telemetry.close(status)``: every span
        still open (an interrupt mid-grid) is finished — which, with
        a stream armed, appends its ``span-close`` record — and the
        event-log generation is sealed with a ``stream-close``
        carrying the status.  Only then are the post-hoc artifacts
        (trace, metrics, manifest) written.
        """
        if self.telemetry is None or self._finished:
            return
        self._finished = True
        from repro.obs import write_chrome_trace, write_metrics_jsonl

        self.telemetry.close(status)
        if self.trace_path:
            write_chrome_trace(self.telemetry.tracer, self.trace_path)
        if self.metrics_path:
            write_metrics_jsonl(
                self.telemetry.metrics, self.metrics_path
            )
        if self.manifest is not None:
            profiler = self.telemetry.profiler
            if profiler is not None:
                for phase, paths in sorted(profiler.captures.items()):
                    self.manifest.artifacts[f"profile.{phase}"] = \
                        paths[0]
            self.manifest.finalize(
                status=status, metrics=self.telemetry.snapshot(),
            )
            self.manifest.write(self.manifest_path)


class _CellProgress:
    """Tracks grid progress so an interrupt can say where it stopped."""

    def __init__(self):
        self.done = 0
        self.total = 0
        self.finished_grids = 0

    def __call__(self, done, total):
        if done < self.done:        # a new grid of the same session
            self.finished_grids += self.total
        self.done, self.total = done, total

    @property
    def cells_done(self):
        return self.finished_grids + self.done


def _interrupt_summary(args, progress):
    """One line telling the user what survived and how to resume."""
    done = progress.cells_done
    hint = ""
    if getattr(args, "journal", None):
        hint = (f"; resume with --journal {args.journal} --resume "
                "(completed cells are checkpointed)")
    elif getattr(args, "cache_dir", None):
        hint = (f"; rerun with --cache-dir {args.cache_dir} to reuse "
                "completed cells")
    else:
        hint = ("; rerun with --journal FILE to make runs resumable")
    print(f"interrupted after {done} completed cells{hint}",
          file=sys.stderr)


#: Conventional exit status for death-by-SIGINT.
EXIT_INTERRUPTED = 130


def cmd_screen(args) -> int:
    from repro.core import PBExperiment, rank_parameters_from_result
    from repro.doe import lenth_test
    from repro.reporting import render_ranking

    results_path = _apply_run_dir(args)
    traces = _traces(args)
    options = _exec_options(args)
    obs = _Obs(args, "screen")
    progress = _CellProgress()
    print(f"running 88 configurations x {len(traces)} benchmarks ...",
          file=sys.stderr)
    try:
        result = PBExperiment(traces, core=args.core,
                              progress=progress) \
            .run(**options.run_kwargs(telemetry=obs.telemetry))
    except KeyboardInterrupt:
        obs.finish(status="interrupted")
        _interrupt_summary(args, progress)
        return EXIT_INTERRUPTED
    for failure in result.failures:
        print(f"warning: {failure.describe()}", file=sys.stderr)
    with obs.phase("rank"):
        ranking = rank_parameters_from_result(result)
    if results_path is not None:
        if result.complete:
            from repro.guard.verify import write_results

            write_results(results_path, result, ranking)
            print(f"results sealed to {results_path}",
                  file=sys.stderr)
        else:
            print("warning: run incomplete; results.json not "
                  "written (repro verify would be inconclusive)",
                  file=sys.stderr)
    obs.finish()
    print(render_ranking(ranking, title="Parameter ranks"))
    print()
    print("significant (sum-of-ranks gap):",
          ", ".join(ranking.significant_factors()))
    if args.lenth:
        for bench, table in result.effects.items():
            significant = lenth_test(table, args.alpha) \
                .significant_factors()
            print(f"Lenth-significant on {bench}: "
                  f"{', '.join(significant) or '(none)'}")
    if args.plot:
        from repro.reporting import render_half_normal

        for bench, table in result.effects.items():
            print()
            print(render_half_normal(
                table, alpha=args.alpha,
                title=f"Half-normal plot: {bench}",
            ))
    return 0


def cmd_classify(args) -> int:
    from repro.core import (
        PAPER_SIMILARITY_THRESHOLD,
        PBExperiment,
        rank_parameters_from_result,
    )
    from repro.reporting import render_distance_matrix, render_groups

    obs = _Obs(args, "classify")
    if args.paper:
        from repro.core.paper_data import paper_table9_ranking

        ranking = paper_table9_ranking()
    else:
        traces = _traces(args)
        options = _exec_options(args)
        progress = _CellProgress()
        print(f"running 88 configurations x {len(traces)} benchmarks ...",
              file=sys.stderr)
        try:
            result = PBExperiment(traces, core=args.core,
                                  progress=progress) \
                .run(**options.run_kwargs(telemetry=obs.telemetry))
        except KeyboardInterrupt:
            obs.finish(status="interrupted")
            _interrupt_summary(args, progress)
            return EXIT_INTERRUPTED
        for failure in result.failures:
            print(f"warning: {failure.describe()}", file=sys.stderr)
        with obs.phase("rank"):
            ranking = rank_parameters_from_result(result)
    threshold = args.threshold or PAPER_SIMILARITY_THRESHOLD
    with obs.phase("classify", threshold=round(threshold, 3)):
        matrix = render_distance_matrix(ranking,
                                        title="Distance matrix")
        groups = render_groups(ranking, threshold, title="Groups")
    obs.finish()
    print(matrix)
    print()
    print(groups)
    return 0


def cmd_enhance(args) -> int:
    from repro.core import (
        EnhancementAnalysis,
        PBExperiment,
        rank_parameters_from_result,
    )
    from repro.cpu import build_precompute_table
    from repro.reporting import render_enhancement

    traces = _traces(args)
    options = _exec_options(args)
    obs = _Obs(args, "enhance")
    progress = _CellProgress()
    run_kwargs = options.run_kwargs(telemetry=obs.telemetry)
    print(f"running 2 x 88 configurations x {len(traces)} benchmarks ...",
          file=sys.stderr)
    try:
        with obs.phase("enhance-before"):
            before = PBExperiment(traces, core=args.core,
                                  progress=progress) \
                .run(**run_kwargs)
        if args.kind == "precompute":
            with obs.phase("precompute-tables",
                           entries=args.table_entries):
                tables = {
                    name: build_precompute_table(
                        trace, args.table_entries
                    )
                    for name, trace in traces.items()
                }
            with obs.phase("enhance-after"):
                after = PBExperiment(
                    traces, precompute_tables=tables,
                    core=args.core, progress=progress,
                ).run(**run_kwargs)
        else:
            with obs.phase("enhance-after"):
                after = PBExperiment(
                    traces, prefetch_lines=args.lines,
                    core=args.core, progress=progress,
                ).run(**run_kwargs)
    except KeyboardInterrupt:
        obs.finish(status="interrupted")
        _interrupt_summary(args, progress)
        return EXIT_INTERRUPTED
    for failure in before.failures + after.failures:
        print(f"warning: {failure.describe()}", file=sys.stderr)
    with obs.phase("rank"):
        analysis = EnhancementAnalysis(
            rank_parameters_from_result(before),
            rank_parameters_from_result(after),
        )
    obs.finish()
    print(render_enhancement(
        analysis, top=args.top,
        title=f"Sum-of-ranks shifts under {args.kind}",
    ))
    shift = analysis.biggest_shift_among_significant()
    print(f"\nbiggest shift among significant parameters: "
          f"{shift.factor} ({shift.sum_before} -> {shift.sum_after})")
    return 0


def cmd_simulate(args) -> int:
    from repro.cpu import MachineConfig, simulate
    from repro.workloads import benchmark_trace

    if args.benchmark not in BENCHMARK_NAMES:
        raise SystemExit(f"unknown benchmark {args.benchmark!r}")
    overrides = {}
    for item in args.set or []:
        try:
            key, value = item.split("=", 1)
        except ValueError:
            raise SystemExit(f"bad --set {item!r}; use field=value")
        try:
            overrides[key] = int(value)
        except ValueError:
            overrides[key] = value
    try:
        config = MachineConfig().evolve(**overrides)
    except (TypeError, ValueError) as exc:
        raise SystemExit(f"bad configuration: {exc}")
    trace = benchmark_trace(args.benchmark, args.length)
    stats = simulate(config, trace, warmup=not args.cold,
                     core=args.core)
    print(stats.summary())
    return 0


def cmd_characterize(args) -> int:
    from repro.workloads import benchmark_trace, characterization_report

    if args.benchmarks.strip().lower() == "all":
        names = list(BENCHMARK_NAMES)
    else:
        names = [b.strip() for b in args.benchmarks.split(",")
                 if b.strip()]
    unknown = [n for n in names if n not in BENCHMARK_NAMES]
    if unknown:
        raise SystemExit(f"unknown benchmarks: {', '.join(unknown)}")
    for name in names:
        print(characterization_report(
            benchmark_trace(name, args.length)
        ))
        print()
    return 0


def cmd_tables(args) -> int:
    from repro.core import PAPER_SIMILARITY_THRESHOLD
    from repro.core.paper_data import paper_table9_ranking
    from repro.doe import compute_effects, pb_design
    from repro.reporting import (
        render_design_cost_table,
        render_design_matrix,
        render_distance_matrix,
        render_effects,
        render_groups,
        render_parameter_values,
        render_ranking,
    )

    which = set(args.which or ["all"])
    everything = "all" in which

    if everything or "1" in which:
        print(render_design_cost_table(40), end="\n\n")
    if everything or "2" in which:
        print(render_design_matrix(pb_design(7), title="Table 2"),
              end="\n\n")
    if everything or "3" in which:
        print(render_design_matrix(pb_design(7).foldover(),
                                   title="Table 3"), end="\n\n")
    if everything or "4" in which:
        design = pb_design(7, factor_names=list("ABCDEFG"))
        table = compute_effects(design, [1, 9, 74, 28, 3, 6, 112, 84])
        print(render_effects(table, title="Table 4"), end="\n\n")
    if everything or "params" in which:
        print(render_parameter_values(), end="\n\n")
    if everything or "9" in which:
        print(render_ranking(paper_table9_ranking(),
                             title="Table 9 (paper's published data)"),
              end="\n\n")
    if everything or "10" in which:
        print(render_distance_matrix(paper_table9_ranking(),
                                     title="Table 10"), end="\n\n")
    if everything or "11" in which:
        print(render_groups(paper_table9_ranking(),
                            PAPER_SIMILARITY_THRESHOLD,
                            title="Table 11"), end="\n\n")
    return 0


def cmd_diffcore(args) -> int:
    from repro.cpu.equivalence import differential_sweep

    def progress(done, total, div):
        if div is not None:
            print(f"[{done}/{total}] DIVERGED {div.describe()}",
                  file=sys.stderr)
        elif done == total or done % 25 == 0:
            print(f"[{done}/{total}] ok", file=sys.stderr)

    found = differential_sweep(
        args.pairs, seed=args.seed,
        core=args.core, oracle=args.oracle,
        progress=progress if not args.quiet else None,
    )
    if found:
        print(f"{len(found)} divergence(s) across {args.pairs} "
              f"randomized pairs ({args.core} vs {args.oracle}):")
        for div in found:
            print(f"  {div.describe()}")
        print("a divergence is either a core bug (fix it) or an "
              "intentional timing change (bump SIMULATOR_VERSION "
              "and re-pin the goldens) — never a tolerance")
        return 1
    print(f"{args.pairs} randomized (config, trace) pairs: "
          f"{args.core} == {args.oracle} field-exact")
    return 0


def cmd_bench_check(args) -> int:
    from repro.guard.bench import check_directory

    report = check_directory(
        args.baseline_dir, args.current,
        tolerance=args.tolerance,
        labels=[s.strip() for s in args.labels.split(",")
                if s.strip()] if args.labels else None,
    )
    print(report.describe())
    return report.status


def cmd_lint(args) -> int:
    from repro.analysis.cli import run

    return run(args)


def cmd_verify(args) -> int:
    from repro.guard.verify import verify_run

    report = verify_run(
        args.run_dir,
        manifest_path=args.manifest,
        journal_path=args.journal,
        results_path=args.results,
        cache_dir=args.cache_dir,
        spool_dir=args.spool,
    )
    print(report.describe())
    return report.status


def cmd_worker(args) -> int:
    from repro.dist.worker import DistWorker

    if args.fsfault:
        from repro.guard import fsfault

        try:
            fsfault.install(
                fsfault.FsFaultInjector.from_spec(args.fsfault)
            )
        except ValueError as exc:
            raise SystemExit(f"bad --fsfault spec: {exc}")
    worker = DistWorker(
        args.spool,
        worker_id=args.worker_id,
        poll=args.poll,
        lease_ttl=args.lease_ttl,
        heartbeat_interval=args.heartbeat_interval,
        max_idle=args.max_idle,
        max_tasks=args.max_tasks,
        stream=not args.no_stream,
    )
    print(f"worker {worker.worker_id} attaching to {args.spool}",
          file=sys.stderr)
    try:
        executed = worker.run()
    except KeyboardInterrupt:
        print(f"worker {worker.worker_id} interrupted after "
              f"{worker.executed} task(s); the broker reclaims any "
              "leased work", file=sys.stderr)
        return EXIT_INTERRUPTED
    print(f"worker {worker.worker_id} done: {executed} task(s) "
          "executed", file=sys.stderr)
    return 0


def cmd_top(args) -> int:
    import json
    import os
    import time

    from repro.obs.fleet import fleet_snapshot

    if not os.path.isdir(args.root):
        raise SystemExit(f"no such directory: {args.root}")
    if args.once:
        snap = fleet_snapshot(
            args.root, heartbeat_grace=args.heartbeat_grace
        )
        print(json.dumps(snap.to_dict(), indent=2, sort_keys=True))
        return 0
    try:
        while True:
            snap = fleet_snapshot(
                args.root, heartbeat_grace=args.heartbeat_grace
            )
            if sys.stdout.isatty():
                sys.stdout.write("\x1b[2J\x1b[H")
            print(snap.render())
            if snap.complete:
                print("run complete", file=sys.stderr)
                return 0
            time.sleep(args.interval)
    except KeyboardInterrupt:
        return EXIT_INTERRUPTED


def cmd_obs_export(args) -> int:
    import json
    import os

    if not os.path.isdir(args.root):
        raise SystemExit(f"no such directory: {args.root}")
    if args.format == "prometheus":
        from repro.obs.export import prometheus_text
        from repro.obs.fleet import fleet_snapshot

        snap = fleet_snapshot(args.root)
        synthesized = {
            name: {"type": "counter", "value": value}
            for name, value in snap.counters.items()
        }
        for name, value in snap.gauges.items():
            synthesized[name] = {"type": "gauge", "value": value}
        for key in ("done", "total"):
            synthesized[f"progress.{key}"] = {
                "type": "gauge", "value": snap.progress.get(key, 0),
            }
        states = {}
        for view in snap.workers:
            states[view.state] = states.get(view.state, 0) + 1
        for state, count in states.items():
            synthesized[f"fleet.workers.{state}"] = {
                "type": "gauge", "value": count,
            }
        text = prometheus_text(synthesized)
    else:
        from repro.obs.stream import (
            find_stream_lanes,
            scan_stream,
            trace_from_streams,
        )

        lanes = find_stream_lanes(args.root)
        if not lanes:
            raise SystemExit(
                f"no event-log lanes (*.events.jsonl) under "
                f"{args.root}"
            )
        scans = [scan_stream(path) for path in lanes]
        text = json.dumps(trace_from_streams(scans), sort_keys=True)
    if args.out:
        from pathlib import Path

        out = Path(args.out)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(text, encoding="utf-8")
        print(f"wrote {args.format} export to {out}", file=sys.stderr)
    else:
        sys.stdout.write(text)
    return 0


def cmd_journal_scan(args) -> int:
    import os

    from repro.exec import scan_journal

    if not os.path.exists(args.path):
        raise SystemExit(f"no such journal: {args.path}")
    if os.path.getsize(args.path) == 0:
        # A zero-length journal is a normal state (a run that died
        # before its first checkpoint, or one created by --journal
        # and interrupted immediately) — not damage.
        print(f"{args.path}: empty journal (0 bytes); nothing to "
              "scan — a resume starts from scratch")
        return 0
    version = None if args.any_version else _default_sim_version()
    scan = scan_journal(args.path, version=version)
    print(f"{scan.path}: {scan.total} line(s), {scan.valid} valid")
    for lineno, reason in scan.invalid:
        print(f"  line {lineno}: {reason}")
    if scan.torn_tail:
        print(f"  torn tail: truncating would keep {scan.keep_bytes} "
              "bytes (run 'repro journal repair')")
    return 1 if scan.invalid else 0


def cmd_journal_repair(args) -> int:
    import os

    from repro.exec import repair_journal

    if not os.path.exists(args.path):
        raise SystemExit(f"no such journal: {args.path}")
    if os.path.getsize(args.path) == 0:
        print(f"{args.path}: empty journal (0 bytes); nothing to "
              "repair — a resume starts from scratch")
        return 0
    version = None if args.any_version else _default_sim_version()
    repair = repair_journal(args.path, version=version)
    scan = repair.scan
    print(f"{scan.path}: {scan.total} line(s), {scan.valid} valid")
    if repair.truncated_bytes:
        print(f"  truncated torn tail: {repair.truncated_bytes} "
              "byte(s) removed")
    else:
        print("  no torn tail")
    for lineno, reason in repair.dropped:
        print(f"  line {lineno}: {reason} (left in place; a resume "
              "will drop it)")
    if repair.dropped:
        print(f"  {len(repair.dropped)} damaged line(s) remain; "
              "their cells will re-simulate on resume")
    return 0


def cmd_gc(args) -> int:
    import json
    import os

    from repro.guard.retention import gc_run_dir

    if not os.path.isdir(args.run_dir):
        raise SystemExit(f"no such run directory: {args.run_dir}")
    report = gc_run_dir(
        args.run_dir,
        cache_budget_bytes=args.cache_budget_bytes,
        cache_budget_entries=args.cache_budget_entries,
        quarantine_budget_bytes=args.quarantine_budget_bytes,
        quarantine_budget_entries=args.quarantine_budget_entries,
        spool_budget_results=args.spool_budget_results,
        compact=args.compact_journal,
        dry_run=args.dry_run,
    )
    if args.json:
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
        return 0
    verb = "would remove" if args.dry_run else "removed"
    print(f"{args.run_dir}: gc {verb}:")
    print(f"  cache: {report.cache_evicted} entries "
          f"({report.cache_evicted_bytes} bytes), "
          f"{report.cache_pinned_kept} pinned kept")
    print(f"  quarantine: {report.quarantine_pruned} files "
          f"({report.quarantine_pruned_bytes} bytes)")
    print(f"  spool: {report.spool_results_removed} consumed results "
          f"({report.spool_results_bytes} bytes), "
          f"{report.spool_tmp_removed} orphaned temp files")
    print(f"  journal: {report.journal_lines_dropped} lines dropped "
          f"({report.journal_bytes_freed} bytes freed)")
    return 0


def cmd_cache_stats(args) -> int:
    import json
    import os

    from repro.guard.retention import cache_stats

    if not os.path.isdir(args.cache_dir):
        raise SystemExit(f"no such cache directory: {args.cache_dir}")
    stats = cache_stats(args.cache_dir)
    if args.json:
        print(json.dumps(stats.to_dict(), indent=2, sort_keys=True))
        return 0
    print(f"{stats.path}: {stats.entries} entries, "
          f"{stats.bytes} bytes; quarantine: "
          f"{stats.quarantine_entries} files, "
          f"{stats.quarantine_bytes} bytes")
    return 0


def _default_sim_version():
    """The current simulator version tag (lazy import)."""
    from repro.cpu import SIMULATOR_VERSION

    return SIMULATOR_VERSION


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=__doc__.splitlines()[0],
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("screen", help="PB parameter screen (§4.1)")
    _add_workload_args(p)
    _add_core_arg(p)
    _add_exec_args(p)
    _add_obs_args(p)
    p.add_argument("--lenth", action="store_true",
                   help="also report Lenth-significant factors")
    p.add_argument("--alpha", type=float, default=0.05,
                   help="Lenth significance level (default 0.05)")
    p.add_argument("--plot", action="store_true",
                   help="draw a text half-normal plot per benchmark")
    p.add_argument(
        "--run-dir", default=None, metavar="DIR",
        help="write every artifact of a verifiable run under DIR "
             "(journal, manifest, metrics, cache, sealed results); "
             "check it later with 'repro verify DIR'",
    )
    p.set_defaults(func=cmd_screen)

    p = sub.add_parser("classify", help="benchmark classification (§4.2)")
    _add_workload_args(p)
    _add_core_arg(p)
    _add_exec_args(p)
    _add_obs_args(p)
    p.add_argument("--paper", action="store_true",
                   help="use the paper's published Table 9 data")
    p.add_argument("--threshold", type=float, default=None,
                   help="similarity threshold (default sqrt(4000))")
    p.set_defaults(func=cmd_classify)

    p = sub.add_parser("enhance", help="enhancement analysis (§4.3)")
    _add_workload_args(p)
    _add_core_arg(p)
    _add_exec_args(p)
    _add_obs_args(p)
    p.add_argument("--kind", choices=["precompute", "prefetch"],
                   default="precompute")
    p.add_argument("--table-entries", type=int, default=128,
                   help="precomputation table size (default 128)")
    p.add_argument("--lines", type=int, default=2,
                   help="prefetch lines (default 2)")
    p.add_argument("--top", type=int, default=12,
                   help="shifts to display (default 12)")
    p.set_defaults(func=cmd_enhance)

    p = sub.add_parser("simulate", help="run one benchmark once")
    p.add_argument("benchmark", help="benchmark name")
    p.add_argument("--length", "-n", type=int, default=10000)
    _add_core_arg(p)
    p.add_argument("--set", action="append", metavar="FIELD=VALUE",
                   help="override a MachineConfig field (repeatable)")
    p.add_argument("--cold", action="store_true",
                   help="skip the functional warmup")
    p.set_defaults(func=cmd_simulate)

    p = sub.add_parser("characterize",
                       help="classical workload characterization")
    _add_workload_args(p, default_length=8000)
    p.set_defaults(func=cmd_characterize)

    p = sub.add_parser("tables", help="print the paper's exact exhibits")
    p.add_argument("which", nargs="*",
                   help="subset: 1 2 3 4 params 9 10 11 (default all)")
    p.set_defaults(func=cmd_tables)

    p = sub.add_parser(
        "diffcore",
        help="differential-equivalence sweep between simulator cores",
    )
    from repro.cpu import SIMULATOR_CORES

    p.add_argument("--pairs", "-p", type=int, default=25,
                   help="randomized (config, trace) pairs to compare "
                        "(default %(default)s)")
    p.add_argument("--seed", type=int, default=0,
                   help="sweep seed; the pair sequence is a pure "
                        "function of it (default %(default)s)")
    p.add_argument("--core", default="batched",
                   choices=SIMULATOR_CORES,
                   help="core under test (default %(default)s)")
    p.add_argument("--oracle", default="reference",
                   choices=SIMULATOR_CORES,
                   help="core treated as ground truth "
                        "(default %(default)s)")
    p.add_argument("--quiet", "-q", action="store_true",
                   help="suppress per-pair progress on stderr")
    p.set_defaults(func=cmd_diffcore)

    p = sub.add_parser(
        "bench",
        help="benchmark-manifest regression checks",
    )
    bsub = p.add_subparsers(dest="action", required=True)
    pc = bsub.add_parser(
        "check",
        help="compare fresh BENCH_<label>.json manifests against "
             "committed baselines (exit 0 ok / 1 regression / "
             "2 incomparable)",
    )
    pc.add_argument("current", metavar="CURRENT_DIR",
                    help="directory of freshly emitted BENCH manifests "
                         "(pytest benchmarks/ --manifest-dir DIR)")
    pc.add_argument("--baseline-dir", default="benchmarks/baselines",
                    metavar="DIR",
                    help="committed baselines (default %(default)s)")
    pc.add_argument("--tolerance", type=float, default=0.5,
                    metavar="FRACTION",
                    help="allowed fractional slowdown of wall time "
                         "before it counts as a perf regression "
                         "(default %(default)s); deterministic "
                         "simulator totals always compare exact")
    pc.add_argument("--labels", default=None, metavar="L1,L2",
                    help="check only these labels (default: every "
                         "baseline present)")
    pc.set_defaults(func=cmd_bench_check)

    p = sub.add_parser(
        "lint",
        help="determinism & fork-safety static analysis (REP0xx)",
    )
    from repro.analysis.cli import add_arguments

    add_arguments(p)
    p.set_defaults(func=cmd_lint)

    p = sub.add_parser(
        "verify",
        help="cross-check a finished run's artifacts (exit 0/1/2)",
    )
    p.add_argument("run_dir", metavar="RUN_DIR",
                   help="directory written by 'repro screen --run-dir'")
    p.add_argument("--manifest", default=None, metavar="FILE",
                   help="manifest path (default RUN_DIR/manifest.json)")
    p.add_argument("--journal", default=None, metavar="FILE",
                   help="journal path (default RUN_DIR/journal.jsonl)")
    p.add_argument("--results", default=None, metavar="FILE",
                   help="results path (default RUN_DIR/results.json)")
    p.add_argument("--cache-dir", default=None, metavar="DIR",
                   help="cache directory (default RUN_DIR/cache)")
    p.add_argument("--spool", default=None, metavar="DIR",
                   help="distributed spool directory "
                        "(default RUN_DIR/spool, checked if present)")
    p.set_defaults(func=cmd_verify)

    p = sub.add_parser(
        "worker",
        help="attach a distributed grid worker to a spool directory",
    )
    p.add_argument("spool", metavar="SPOOL_DIR",
                   help="shared spool directory (the broker side is "
                        "'repro screen --dist SPOOL_DIR')")
    p.add_argument("--worker-id", default=None, metavar="ID",
                   help="stable worker identity (default w<pid>)")
    p.add_argument("--poll", type=float, default=0.05,
                   metavar="SECONDS",
                   help="sleep between empty spool scans "
                        "(default %(default)s)")
    p.add_argument("--lease-ttl", type=float, default=15.0,
                   metavar="SECONDS",
                   help="wall-clock budget written into each claimed "
                        "ticket's lease (default %(default)s)")
    p.add_argument("--heartbeat-interval", type=float, default=0.5,
                   metavar="SECONDS",
                   help="heartbeat period (default %(default)s)")
    p.add_argument("--max-idle", type=float, default=None,
                   metavar="SECONDS",
                   help="exit after this long without work (default: "
                        "wait for the broker's drain marker)")
    p.add_argument("--max-tasks", type=int, default=None, metavar="N",
                   help="exit after executing N tickets (chaos "
                        "harness; default unbounded)")
    p.add_argument("--no-stream", action="store_true",
                   help="skip the worker's event-log lane "
                        "(stream/<id>.events.jsonl under the spool)")
    p.add_argument("--fsfault", default=None, metavar="SPEC",
                   help="inject deterministic I/O faults in this "
                        "worker's write seam (same grammar as the "
                        "experiment commands' --fsfault)")
    p.set_defaults(func=cmd_worker)

    p = sub.add_parser(
        "top",
        help="live fleet view aggregated from the spool and event log",
    )
    p.add_argument("root", metavar="DIR",
                   help="run directory, spool directory, or stream "
                        "directory")
    p.add_argument("--once", action="store_true",
                   help="print one machine-readable JSON snapshot and "
                        "exit instead of refreshing")
    p.add_argument("--interval", type=float, default=1.0,
                   metavar="SECONDS",
                   help="refresh period (default %(default)s)")
    p.add_argument("--heartbeat-grace", type=float, default=5.0,
                   metavar="SECONDS",
                   help="beat age past which a worker shows as "
                        "stalled (default %(default)s)")
    p.set_defaults(func=cmd_top)

    p = sub.add_parser(
        "obs",
        help="telemetry tooling over the event stream",
    )
    obsub = p.add_subparsers(dest="action", required=True)
    pe = obsub.add_parser(
        "export",
        help="export Prometheus text or a Perfetto trace "
             "reconstructed from the event log (works on "
             "interrupted runs)",
    )
    pe.add_argument("root", metavar="DIR",
                    help="run directory, spool directory, or stream "
                         "directory")
    pe.add_argument("--format", required=True,
                    choices=["prometheus", "perfetto"],
                    help="output format")
    pe.add_argument("--out", default=None, metavar="FILE",
                    help="write to FILE instead of stdout")
    pe.set_defaults(func=cmd_obs_export)

    p = sub.add_parser(
        "journal",
        help="inspect or repair a checkpoint journal",
    )
    jsub = p.add_subparsers(dest="action", required=True)
    ps = jsub.add_parser(
        "scan", help="classify every line without modifying the file"
    )
    ps.add_argument("path", help="journal file")
    ps.add_argument("--any-version", action="store_true",
                    help="skip the simulator-version check")
    ps.set_defaults(func=cmd_journal_scan)
    pr = jsub.add_parser(
        "repair",
        help="truncate a torn tail; report remaining damage",
    )
    pr.add_argument("path", help="journal file")
    pr.add_argument("--any-version", action="store_true",
                    help="skip the simulator-version check")
    pr.set_defaults(func=cmd_journal_repair)

    p = sub.add_parser(
        "gc",
        help="garbage-collect a run directory's stores under "
             "explicit budgets (journal-referenced and in-flight "
             "keys are never evicted)",
    )
    p.add_argument("run_dir", metavar="RUN_DIR",
                   help="directory written by '--run-dir' (cache/, "
                        "journal.jsonl, spool/ as present)")
    p.add_argument("--cache-budget-bytes", type=int, default=None,
                   metavar="N",
                   help="evict LRU cache entries until at most N "
                        "bytes remain (default: no byte budget)")
    p.add_argument("--cache-budget-entries", type=int, default=None,
                   metavar="N",
                   help="evict LRU cache entries until at most N "
                        "remain (default: no entry budget)")
    p.add_argument("--quarantine-budget-bytes", type=int, default=None,
                   metavar="N",
                   help="prune quarantined files, oldest first, to at "
                        "most N bytes")
    p.add_argument("--quarantine-budget-entries", type=int,
                   default=None, metavar="N",
                   help="prune quarantined files, oldest first, to at "
                        "most N files")
    p.add_argument("--spool-budget-results", type=int, default=None,
                   metavar="N",
                   help="remove journal-covered spool results, oldest "
                        "first, to at most N files (default with any "
                        "other flag absent: remove all consumed)")
    p.add_argument("--compact-journal", action="store_true",
                   help="also rewrite the journal keeping one line "
                        "per key (atomic; damaged lines dropped and "
                        "counted)")
    p.add_argument("--dry-run", action="store_true",
                   help="report what would be removed without "
                        "deleting anything")
    p.add_argument("--json", action="store_true",
                   help="print the GC report as JSON")
    p.set_defaults(func=cmd_gc)

    p = sub.add_parser(
        "cache",
        help="result-cache inventory",
    )
    csub = p.add_subparsers(dest="action", required=True)
    pcs = csub.add_parser(
        "stats",
        help="entries, bytes and quarantine load of a cache directory",
    )
    pcs.add_argument("cache_dir", metavar="CACHE_DIR",
                     help="a --cache-dir directory (or RUN_DIR/cache)")
    pcs.add_argument("--json", action="store_true",
                     help="print the inventory as JSON")
    pcs.set_defaults(func=cmd_cache_stats)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
