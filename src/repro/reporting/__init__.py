"""Text and markdown renderers for every table of the paper."""

from .halfnormal import half_normal_points, render_half_normal
from .markdown import (
    distance_markdown,
    enhancement_markdown,
    groups_markdown,
    markdown_table,
    parameters_markdown,
    ranking_markdown,
)
from .tables import (
    format_table,
    render_design_cost_table,
    render_design_matrix,
    render_distance_matrix,
    render_effects,
    render_enhancement,
    render_groups,
    render_parameter_values,
    render_ranking,
)

__all__ = [
    "distance_markdown",
    "enhancement_markdown",
    "format_table",
    "groups_markdown",
    "half_normal_points",
    "render_half_normal",
    "markdown_table",
    "parameters_markdown",
    "ranking_markdown",
    "render_design_cost_table",
    "render_design_matrix",
    "render_distance_matrix",
    "render_effects",
    "render_enhancement",
    "render_groups",
    "render_parameter_values",
    "render_ranking",
]
