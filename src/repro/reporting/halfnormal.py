"""Text half-normal plots of Plackett-Burman effects.

The half-normal plot is the classical graphical companion to Lenth's
method: |effects| are sorted and plotted against half-normal quantiles;
null effects fall on a line through the origin and real effects peel
off to the right.  This renderer draws the plot in plain text so the
diagnostic works in a terminal or a log file, and labels the points
that Lenth's test flags as significant.
"""

from __future__ import annotations

from math import sqrt
from typing import List, Sequence, Tuple

from repro.doe.effects import EffectTable
from repro.doe.lenth import lenth_test


def _half_normal_quantile(p: float) -> float:
    """Quantile of |Z| for standard normal Z (via the normal quantile)."""
    from repro.doe.lenth import _normal_quantile

    return _normal_quantile((1.0 + p) / 2.0)


def half_normal_points(
    table: EffectTable,
) -> List[Tuple[float, float, str]]:
    """(quantile, |effect|, factor) triples in plotting order."""
    pairs = sorted(
        zip((abs(e) for e in table.effects), table.factor_names)
    )
    m = len(pairs)
    out = []
    for i, (magnitude, name) in enumerate(pairs):
        p = (i + 0.5) / m
        out.append((_half_normal_quantile(p), magnitude, name))
    return out


def render_half_normal(
    table: EffectTable,
    *,
    width: int = 60,
    height: int = 18,
    alpha: float = 0.05,
    title: str = "Half-normal plot of |effects|",
) -> str:
    """Render the half-normal plot as ASCII art.

    Significant factors (per Lenth's test at ``alpha``) are drawn as
    ``*`` and listed beneath the plot; null-looking effects are ``.``.
    """
    points = half_normal_points(table)
    if not points:
        raise ValueError("no effects to plot")
    significant = set(lenth_test(table, alpha).significant_factors())
    max_q = max(q for q, _, _ in points) or 1.0
    max_m = max(m for _, m, _ in points) or 1.0

    grid = [[" "] * width for _ in range(height)]
    labelled: List[Tuple[str, float]] = []
    for q, magnitude, name in points:
        x = min(width - 1, int(q / max_q * (width - 1)))
        y = min(height - 1, int(magnitude / max_m * (height - 1)))
        row = height - 1 - y
        mark = "*" if name in significant else "."
        grid[row][x] = mark
        if name in significant:
            labelled.append((name, magnitude))

    lines = [title]
    lines.append(f"|effect| (max {max_m:.3g})")
    lines.extend("  |" + "".join(row) for row in grid)
    lines.append("  +" + "-" * width)
    lines.append("   half-normal quantile ->")
    if labelled:
        lines.append("significant (Lenth, alpha="
                     f"{alpha:g}):")
        for name, magnitude in sorted(labelled, key=lambda t: -t[1]):
            lines.append(f"  * {name} (|effect| {magnitude:.3g})")
    else:
        lines.append("no significant effects at alpha="
                     f"{alpha:g}")
    return "\n".join(lines)
