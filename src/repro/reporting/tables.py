"""Render every paper exhibit as an aligned text table.

Each ``render_*`` function regenerates one numbered table of the paper
from live objects; the benchmark harness prints these so a reader can
compare the reproduction side by side with the publication.
"""

from __future__ import annotations

from typing import List, Mapping, Optional, Sequence

import numpy as np

from repro.core.classification import distance_matrix, group_benchmarks
from repro.core.enhancement import EnhancementAnalysis
from repro.core.parameter_selection import ParameterRanking
from repro.cpu.params import PARAMETER_SPACE
from repro.doe import DesignMatrix, EffectTable, design_cost


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    *,
    title: Optional[str] = None,
) -> str:
    """Align a list of rows under headers with a box of dashes."""
    cells = [[str(h) for h in headers]] + [
        [str(c) for c in row] for row in rows
    ]
    widths = [max(len(r[i]) for r in cells) for i in range(len(headers))]
    def fmt(row):
        return "  ".join(c.rjust(w) for c, w in zip(row, widths))
    lines = []
    if title:
        lines.append(title)
    lines.append(fmt(cells[0]))
    lines.append("-" * len(lines[-1]))
    lines.extend(fmt(r) for r in cells[1:])
    return "\n".join(lines)


def render_design_cost_table(n_factors: int = 40) -> str:
    """Table 1: simulations vs level of detail for the three designs."""
    rows = [
        ("One Parameter at-a-time", "Simple Sensitivity Analysis",
         design_cost("one-at-a-time", n_factors), "Single Parameter"),
        ("Fractional", "Plackett and Burman",
         design_cost("plackett-burman-foldover", n_factors),
         "All Parameters, Selected Interactions"),
        ("Full Multifactorial", "ANOVA",
         design_cost("full-factorial", n_factors),
         "All Parameters, All Interactions"),
    ]
    return format_table(
        ("Design", "Example", "Simulations", "Level of Detail"),
        rows,
        title=f"Table 1 analogue (N = {n_factors} two-level parameters)",
    )


def render_design_matrix(design: DesignMatrix, title: str = "") -> str:
    """Tables 2/3: a design matrix in the paper's +1/-1 layout."""
    body = "\n".join(
        " ".join(f"{int(v):+d}" for v in row) for row in design.matrix
    )
    return f"{title}\n{body}" if title else body


def render_effects(table: EffectTable, title: str = "") -> str:
    """Table 4's bottom row: the computed effect of every factor."""
    rows = [(name, f"{table.effect(name):+.0f}")
            for name in table.factor_names]
    return format_table(("Factor", "Effect"), rows, title=title)


def render_parameter_values() -> str:
    """Tables 6-8: every varied parameter and its low/high values."""
    rows = [(spec.name, str(spec.low), str(spec.high))
            for spec in PARAMETER_SPACE]
    return format_table(
        ("Parameter", "Low/Off Value", "High/On Value"),
        rows,
        title="Tables 6-8 analogue: Plackett and Burman parameter values",
    )


def render_ranking(ranking: ParameterRanking, title: str = "Table 9") -> str:
    """Tables 9/12: per-benchmark ranks sorted by sum of ranks."""
    headers = ("Parameter",) + tuple(ranking.benchmarks) + ("Sum",)
    rows = []
    for i, factor in enumerate(ranking.factors):
        rows.append(
            (factor,)
            + tuple(int(v) for v in ranking.ranks[i])
            + (ranking.sums[i],)
        )
    return format_table(headers, rows, title=title)


def render_distance_matrix(ranking: ParameterRanking,
                           title: str = "Table 10") -> str:
    """Table 10: the benchmark similarity matrix."""
    names, dist = distance_matrix(ranking)
    headers = ("",) + tuple(names)
    rows = [
        (names[i],) + tuple(f"{dist[i, j]:.1f}" for j in range(len(names)))
        for i in range(len(names))
    ]
    return format_table(headers, rows, title=title)


def render_groups(ranking: ParameterRanking, threshold: float,
                  title: str = "Table 11") -> str:
    """Table 11: benchmark groups at a similarity threshold."""
    groups = group_benchmarks(ranking, threshold)
    rows = [(", ".join(group),) for group in groups]
    return format_table(
        (f"Groups (threshold {threshold:.1f})",), rows, title=title
    )


def render_enhancement(analysis: EnhancementAnalysis,
                       top: int = 15,
                       title: str = "Enhancement analysis") -> str:
    """§4.3: before/after sum-of-ranks and the biggest movers."""
    rows = []
    for shift in analysis.shifts()[:top]:
        rows.append(
            (shift.factor, shift.sum_before, shift.sum_after,
             f"{shift.shift:+d}")
        )
    return format_table(
        ("Parameter", "Sum before", "Sum after", "Shift"),
        rows, title=title,
    )
