"""Markdown renderings of the paper's tables.

Mirrors :mod:`repro.reporting.tables` but emits GitHub-flavoured
markdown, for dropping regenerated exhibits straight into documents
like EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core.classification import distance_matrix, group_benchmarks
from repro.core.enhancement import EnhancementAnalysis
from repro.core.parameter_selection import ParameterRanking
from repro.cpu.params import PARAMETER_SPACE


def markdown_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    *,
    align_first_left: bool = True,
) -> str:
    """A GitHub-flavoured markdown table."""
    cells = [[_escape(str(c)) for c in row] for row in rows]
    head = "| " + " | ".join(_escape(str(h)) for h in headers) + " |"
    marks = []
    for i in range(len(headers)):
        marks.append(":--" if (i == 0 and align_first_left) else "--:")
    sep = "| " + " | ".join(marks) + " |"
    body = ["| " + " | ".join(row) + " |" for row in cells]
    return "\n".join([head, sep] + body)


def _escape(text: str) -> str:
    return text.replace("|", "\\|")


def ranking_markdown(
    ranking: ParameterRanking, top: Optional[int] = None
) -> str:
    """Tables 9/12 as markdown (optionally truncated to the top rows)."""
    headers = ["Parameter"] + list(ranking.benchmarks) + ["Sum"]
    rows = []
    factors = ranking.factors[:top] if top else ranking.factors
    for i, factor in enumerate(factors):
        rows.append(
            [factor]
            + [int(v) for v in ranking.ranks[i]]
            + [ranking.sums[i]]
        )
    return markdown_table(headers, rows)


def distance_markdown(ranking: ParameterRanking) -> str:
    """Table 10 as markdown."""
    names, dist = distance_matrix(ranking)
    headers = [""] + list(names)
    rows = [
        [names[i]] + [f"{dist[i, j]:.1f}" for j in range(len(names))]
        for i in range(len(names))
    ]
    return markdown_table(headers, rows)


def groups_markdown(ranking: ParameterRanking, threshold: float) -> str:
    """Table 11 as markdown."""
    rows = [[", ".join(group)]
            for group in group_benchmarks(ranking, threshold)]
    return markdown_table([f"Groups (threshold {threshold:.1f})"], rows)


def enhancement_markdown(analysis: EnhancementAnalysis,
                         top: int = 10) -> str:
    """§4.3 shift table as markdown."""
    rows = [
        [s.factor, s.sum_before, s.sum_after, f"{s.shift:+d}"]
        for s in analysis.shifts()[:top]
    ]
    return markdown_table(
        ["Parameter", "Sum before", "Sum after", "Shift"], rows
    )


def parameters_markdown() -> str:
    """Tables 6-8 as markdown."""
    rows = [[spec.name, spec.low, spec.high] for spec in PARAMETER_SPACE]
    return markdown_table(
        ["Parameter", "Low/Off Value", "High/On Value"], rows
    )
