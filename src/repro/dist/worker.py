"""The distributed worker: claim, heartbeat, execute, seal, repeat.

A worker is an independent OS process (started by ``repro worker`` or
:class:`DistWorker` directly) that attaches to a spool directory and
drains it: scan ``pending/``, win tickets by atomic rename, simulate
the embedded cell, seal the outcome into ``results/``.  Workers hold
no grid state — everything they need rides inside the sealed ticket —
so any number can attach or leave at any time, including mid-screen.

Liveness is advertised two ways, deliberately distinct:

* a **heartbeat** file, rewritten every ``heartbeat_interval`` by a
  daemon thread that beats *even while a task executes* — a slow task
  is alive, not hung;
* a **lease** with a wall-clock TTL written when a ticket is claimed
  — a task that outlives its lease is over budget even if the worker
  is demonstrably alive.

The two signals drive the broker's two recovery paths (see
:mod:`repro.dist.broker`), and the fault injector can exercise each
separately: a ``delay`` fault sleeps on the instrumented path (the
heartbeat thread keeps beating, so only the lease expires), while a
``stall`` fault routes through :meth:`DistWorker._stall_sleep`, which
suppresses the heartbeat for the duration — the scripted equivalent
of a worker wedged in uninterruptible sleep.

Crash semantics: a worker may die at any instant (``kill`` faults do
exactly that, via ``os._exit``).  Whatever it held is recovered by
the broker from the spool alone — the claimed ticket is still in
``leased/``, the lease names the dead worker, and the result either
sealed completely (the rename happened) or not at all.
"""

from __future__ import annotations

import os
import threading
import time
from typing import Optional, Union

from repro.cpu import SIMULATOR_VERSION
from repro.exec import faultinject
from repro.exec.engine import _execute
from repro.guard.errors import SealError
from repro.obs.stream import EventWriter

from .spool import Spool

__all__ = ["DistWorker"]


class DistWorker:
    """One worker process's run loop over a shared spool.

    Parameters
    ----------
    spool:
        The spool directory (or a :class:`~repro.dist.spool.Spool`).
    worker_id:
        Stable identity used in leases, heartbeats and results;
        defaults to ``w<pid>`` — unique per live process on one host,
        with no wall-clock or random entropy.
    poll:
        Sleep between empty scans of ``pending/``.
    lease_ttl:
        Wall-clock budget written into each claimed ticket's lease.
    heartbeat_interval:
        Period of the background beat.
    max_idle:
        Exit after this many seconds without claiming anything
        (``None``: only a drain marker stops the worker).
    max_tasks:
        Exit after executing this many tickets (``None``: unbounded);
        the chaos harness uses it to script short-lived workers.
    version:
        Simulator version the spool's sealed records must carry.
    stream:
        When true (the default), the worker appends its telemetry
        lane — ``stream/<worker_id>.events.jsonl`` under the spool —
        recording claims, lease acquisitions, heartbeat suppression
        and per-task run spans for the fleet aggregator
        (:mod:`repro.obs.fleet`).  Strictly observational: the lane
        writer disables itself on I/O failure and task execution is
        untouched either way.
    """

    def __init__(self, spool: Union[str, os.PathLike, Spool], *,
                 worker_id: Optional[str] = None,
                 poll: float = 0.05,
                 lease_ttl: float = 15.0,
                 heartbeat_interval: float = 0.5,
                 max_idle: Optional[float] = None,
                 max_tasks: Optional[int] = None,
                 version: str = SIMULATOR_VERSION,
                 stream: bool = True):
        self.spool = (spool if isinstance(spool, Spool)
                      else Spool(spool, version=version))
        self.worker_id = worker_id or f"w{os.getpid()}"
        self.poll = poll
        self.lease_ttl = lease_ttl
        self.heartbeat_interval = heartbeat_interval
        self.max_idle = max_idle
        self.max_tasks = max_tasks
        self.executed = 0
        self._suppress_hb = threading.Event()
        self._stop_hb = threading.Event()
        self.stream = None
        if stream:
            self.stream = EventWriter(
                self.spool.stream_dir
                / f"{self.worker_id}.events.jsonl",
                lane=self.worker_id, version=version,
            )

    # -- liveness ---------------------------------------------------

    def _heartbeat_loop(self) -> None:
        while not self._stop_hb.is_set():
            if not self._suppress_hb.is_set():
                try:
                    self.spool.heartbeat(self.worker_id)
                except OSError:
                    # A missed beat must never crash the worker; the
                    # broker reads absence as staleness.
                    pass
            self._stop_hb.wait(self.heartbeat_interval)

    def _stall_sleep(self, seconds: float) -> None:
        """Sleep *without* heartbeats — the injected-hang clock.

        Installed as the active fault injector's ``stall_sleep`` so a
        ``stall`` fault makes this worker look wedged: alive as a
        process, silent as a peer.
        """
        self._suppress_hb.set()
        self._mark("hb-suppressed", seconds=seconds)
        try:
            time.sleep(seconds)
        finally:
            self._suppress_hb.clear()
            self._mark("hb-resumed")

    def _mark(self, name: str, **attrs) -> None:
        """One instant on the worker's lane (no-op when unstreamed)."""
        if self.stream is not None:
            self.stream.mark(name, "worker", **attrs)

    # -- main loop --------------------------------------------------

    def run(self) -> int:
        """Drain the spool until told to stop; returns tasks executed."""
        self.spool.ensure()
        injector = faultinject.active()
        if injector is not None:
            injector.stall_sleep = self._stall_sleep
        # Announce before the first scan so the broker's attach grace
        # sees us even if the spool is momentarily empty.
        self.spool.heartbeat(self.worker_id)
        self._mark("worker-attach", pid=os.getpid(),
                   lease_ttl=self.lease_ttl,
                   heartbeat_interval=self.heartbeat_interval)
        thread = threading.Thread(
            target=self._heartbeat_loop,
            name=f"heartbeat-{self.worker_id}", daemon=True,
        )
        thread.start()
        last_work = time.monotonic()
        try:
            while True:
                if self.spool.draining():
                    break
                if self.max_tasks is not None \
                        and self.executed >= self.max_tasks:
                    break
                claimed = False
                for key in self.spool.pending_keys():
                    if self.spool.claim(key):
                        claimed = True
                        self._run_one(key)
                        last_work = time.monotonic()
                        break  # rescan: drain may have appeared
                if not claimed:
                    if self.max_idle is not None and \
                            time.monotonic() - last_work > self.max_idle:
                        break
                    time.sleep(self.poll)
        finally:
            self._stop_hb.set()
            thread.join(timeout=1.0)
            if self.stream is not None:
                # "detached" covers every exit the lane can witness
                # (drain, max-idle, max-tasks, Ctrl-C); a killed
                # worker writes nothing — the torn/short lane is the
                # signature the aggregator reads.
                self.stream.close("detached")
        return self.executed

    def _run_one(self, key: str) -> None:
        """Execute one claimed ticket end to end."""
        self._mark("claim", key=key[:12])
        try:
            ticket = self.spool.read_task(key)
        except FileNotFoundError:
            return  # reclaimed between claim and read; not ours anymore
        except SealError as exc:
            # A corrupt ticket is evidence, not work: move it aside so
            # the broker sees the key vanish and republishes.
            self.spool.quarantine(
                self.spool.task_path(key, leased=True), exc.reason
            )
            self.spool.release(key, self.worker_id)
            self._mark("ticket-quarantined", key=key[:12],
                       reason=exc.reason)
            return
        index = int(ticket["index"])
        attempt = int(ticket["attempt"])
        deadline = self.spool.write_lease(key, self.worker_id, attempt,
                                          self.lease_ttl)
        self._mark("lease-acquire", key=key[:12], index=index,
                   attempt=attempt, ttl=self.lease_ttl,
                   deadline=deadline)
        sid = (self.stream.open_span(
                   "task", "task", index=index, attempt=attempt,
                   key=key[:12])
               if self.stream is not None else None)
        injector = faultinject.active()
        try:
            if injector is not None:
                # in_worker=True: a kill fault takes this process down
                # for real — the broker must recover from the spool.
                injector.fire(index, attempt, in_worker=True)
            stats = _execute(ticket["task"])
        except KeyboardInterrupt:
            # Leave the leased ticket in place: the broker reclaims it
            # exactly as it would after a crash.
            raise
        except BaseException as exc:  # repro: noqa[REP007] -- every failure must be sealed into the spool so the broker can apply the retry policy
            self.spool.write_result(
                key, index=index, attempt=attempt,
                worker=self.worker_id, ok=False,
                error_type=type(exc).__name__, message=str(exc),
            )
            if sid is not None:
                self.stream.close_span(sid, ok=False,
                                       error=type(exc).__name__)
        else:
            self.spool.write_result(
                key, index=index, attempt=attempt,
                worker=self.worker_id, ok=True, stats=stats,
            )
            if sid is not None:
                self.stream.close_span(sid, ok=True)
        self.executed += 1
        self.spool.release(key, self.worker_id)
        self._mark("release", key=key[:12])
