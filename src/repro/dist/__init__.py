"""repro.dist — the crash-safe distributed grid runtime.

Turns :func:`repro.exec.run_grid` from a single-host fork pool into a
multi-process experiment service coordinated through a shared *spool*
directory: the broker (:func:`repro.dist.broker.run_dist`, entered
via ``run_grid(dist=...)``) publishes sealed task tickets, any number
of independent worker processes (``repro worker`` /
:class:`repro.dist.worker.DistWorker`) claim them under atomic-rename
leases, heartbeat while they compute, and seal results back for the
broker to harvest into the ordinary cache/journal/telemetry path.

The design constraints, in order:

1. **Nothing a crash can corrupt.**  Every durable record is written
   whole-then-renamed and sealed; every claim is a single atomic
   rename.  Any process — worker or broker — may die at any
   instruction and the spool remains a consistent, resumable ledger.
2. **Results identical to single-host.**  The broker reuses the
   engine's storage/retry callbacks, the simulator is deterministic,
   and dedup is content-keyed, so a chaos-ridden distributed screen
   seals byte-identical results to a quiet in-process one (the
   acceptance tests prove this).
3. **Graceful degradation.**  A spool nobody attaches to is not an
   outage: the broker withdraws its tickets and the grid completes
   locally.

See ``docs/distributed.md`` for the lease protocol, the failure
matrix, and the exactly-once argument.
"""

from .options import DistOptions, coerce_dist_options

__all__ = ["DistOptions", "coerce_dist_options"]
