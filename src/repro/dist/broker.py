"""The experiment broker: publish, watch, reclaim, harvest.

:func:`run_dist` is the distributed counterpart of the engine's fork
pool, and deliberately speaks the *same* callback protocol
(``store`` / ``task_failed`` / ``attempt_number`` / ``resolved``) so
every grid guarantee — task-order determinism, retry accounting,
caching, journaling, audits, telemetry — is enforced by exactly one
implementation, in the broker's process.  Workers compute; the broker
decides.

Failure matrix (every row is exercised by the chaos tests):

=====================  ==========================  ====================
worker state           broker evidence             recovery
=====================  ==========================  ====================
dead (kill/OOM)        heartbeat goes stale        reclaim lease, count
                                                   a ``worker-died``
                                                   resubmission,
                                                   republish
hung (stall fault)     heartbeat goes stale        same as dead — a
                       while the process lives     silent worker is
                                                   indistinguishable
slow (delay fault)     heartbeats flow but the     reclaim as a
                       lease deadline passes       ``timeout`` attempt
crashed mid-claim      ticket in ``leased/`` with  grace period, then
                       no lease record             reclaim
crashed mid-write      no published file at all    key vanishes from
(or quarantined        for the key                 the spool —
torn ticket)                                       republish
torn result/lease      seal check fails            quarantine the file,
                                                   reclaim, republish
broker dies            sealed spool + journal      restart adopts
                       survive                     results and
                                                   in-flight tickets
no worker ever         no heartbeat within the     degrade: unpublish,
attaches               attach grace                drain, hand the
                                                   cells back for
                                                   local execution
=====================  ==========================  ====================

Exactly-once, stated precisely: *execution* is at-least-once (a
reclaimed-but-alive worker and its replacement may both simulate a
cell), but *results* are effectively exactly-once because (a) the
simulator is deterministic, so duplicate executions seal
byte-identical payloads under the same content key, and (b) the
broker routes every harvest through the engine's ``resolved`` set and
content-keyed cache/journal, which are idempotent per key.  A
duplicate result is therefore indistinguishable from the first —
there is nothing it could disagree with.

Resubmission stampedes: when a worker dies holding several leases (or
many leases expire in one sweep), every reclaimed key becomes
republishable at once.  Republish instants are spread with the retry
policy's seeded jitter (token = task key), so the schedule is
deterministic yet de-correlated — see
:class:`repro.exec.fault.RetryPolicy`.
"""

from __future__ import annotations

import os
import time
import warnings
from typing import Callable, Dict, List, Optional, Sequence, Set

from repro.guard import retention
from repro.guard.errors import SealError

from .options import DistOptions
from .spool import Spool

__all__ = ["CHAOS_EXIT_CODE", "run_dist"]

#: Exit status of a chaos-scripted broker crash (``chaos_exit_after``)
#: — distinct from worker kills (87) so logs attribute each death.
CHAOS_EXIT_CODE = 86


def run_dist(
    tasks: Sequence,
    pending: List[int],
    *,
    options: DistOptions,
    keys: List[Optional[str]],
    version: str,
    store: Callable,
    task_failed: Callable,
    attempt_number: Callable,
    resolved: Set[int],
    obs,
    policy,
) -> List[int]:
    """Drive ``pending`` cells through the spool; returns leftovers.

    The return value is empty on a completed distributed run; when
    the broker degrades (no worker attached within the grace) it is
    the still-unresolved indices, which ``run_grid`` finishes locally.
    Invoked only through ``run_grid(dist=...)`` — the argument
    protocol is the engine's internal callback set.
    """
    spool = Spool(options.spool, version=version)
    spool.ensure()
    spool.clear_drain()
    spool.write_manifest(n_tasks=len(pending))

    #: key -> all grid indices sharing it (duplicate cells collapse
    #: into one ticket; every index is stored on harvest).
    by_key: Dict[str, List[int]] = {}
    for i in pending:
        by_key.setdefault(keys[i], []).append(i)
    primary = {key: indices[0] for key, indices in by_key.items()}

    start = time.monotonic()
    lanes: Dict[str, int] = {}
    stale_workers: Set[str] = set()
    republish_at: Dict[str, float] = {}
    claim_seen: Dict[str, float] = {}
    harvested = 0
    degraded = False

    dist_span = obs.begin("dist", "grid", spool=str(spool.root),
                          cells=len(pending), keys=len(by_key))
    for name in ("dist.published", "dist.results", "dist.reissued",
                 "dist.reclaimed.heartbeat", "dist.reclaimed.lease",
                 "dist.quarantined",
                 # The pool path's fleet surface, mirrored here so a
                 # local and a distributed snapshot expose the same
                 # metric names: attached workers count as spawned,
                 # stale transitions as deaths.
                 "workers.spawned", "workers.deaths"):
        obs.count(name, 0)  # register up front: stable snapshot shape
    obs.gauge("queue.depth", 0)

    def _unsettled(key: str) -> bool:
        return any(i not in resolved for i in by_key[key])

    def _leftover() -> List[int]:
        return [i for i in pending if i not in resolved]

    def _lane(worker: str) -> int:
        if worker and worker not in lanes:
            lanes[worker] = len(lanes) + 1
            obs.count("dist.workers")
            obs.count("workers.spawned")
            obs.event("worker-attach", "dist", track=lanes[worker],
                      worker=worker)
        return lanes.get(worker, 0)

    def _publish(key: str) -> None:
        i = primary[key]
        spool.publish_task(key, i, attempt_number(i), tasks[i])
        obs.count("dist.published")

    def _reclaim(key: str, kind: str, why: str) -> None:
        """Take a leased key back and account one failed attempt."""
        spool.release(key)
        i = primary[key]
        counter = ("dist.reclaimed.lease" if kind == "timeout"
                   else "dist.reclaimed.heartbeat")
        obs.count(counter)
        obs.event("lease-reclaim", "dist", index=i, reason=why)
        if task_failed(i, kind, "",
                       f"lease on task {i} reclaimed ({why})"):
            republish_at[key] = time.monotonic() + policy.delay(
                max(1, attempt_number(i)), token=key
            )

    def _harvest() -> None:
        nonlocal harvested
        for key in spool.result_keys():
            if key not in by_key:
                continue  # another grid's leftovers; not ours to touch
            try:
                record = spool.read_result(key)
            except SealError as exc:
                # A torn result is a crash signature: quarantine it
                # and recover the key as a worker death.
                spool.quarantine(spool.result_path(key), exc.reason)
                obs.count("dist.quarantined")
                if _unsettled(key) and key not in republish_at:
                    _reclaim(key, "worker-died", "torn-result")
                continue
            if not _unsettled(key):
                continue  # duplicate from a reclaimed-but-alive worker
            lane = _lane(str(record.get("worker", "")))
            if record.get("ok"):
                republish_at.pop(key, None)
                spool.unpublish(key)
                spool.release(key)
                obs.count("dist.results")
                obs.count("tasks.simulated")
                obs.event("dist-result", "dist", track=lane,
                          index=primary[key], outcome="ok")
                stats = record["stats"]
                for i in by_key[key]:
                    if i not in resolved:
                        store(i, stats)
                harvested += 1
                if options.chaos_exit_after is not None \
                        and harvested >= options.chaos_exit_after:
                    # Scripted broker crash: no drain marker, no
                    # cleanup — workers live on, and a restarted
                    # broker must resume from the sealed spool alone.
                    os._exit(CHAOS_EXIT_CODE)  # repro: noqa[REP204] -- scripted chaos crash; skipping atexit/finally is the point
            else:
                spool.remove_result(key)
                spool.release(key)
                obs.event("dist-result", "dist", track=lane,
                          index=primary[key], outcome="error",
                          error=record.get("error_type", ""))
                i = primary[key]
                if task_failed(i, "error",
                               str(record.get("error_type", "")),
                               str(record.get("message", ""))):
                    # task_failed already applied the retry pause.
                    republish_at[key] = time.monotonic()

    try:
        # A restarted broker adopts before it publishes: results that
        # sealed while it was dead resolve immediately, and tickets
        # already pending or claimed keep flowing without duplication.
        _harvest()
        in_flight = set(spool.pending_keys()) | set(spool.leased_keys())
        for key in sorted(by_key):
            if not _unsettled(key):
                continue
            if key in in_flight:
                obs.count("dist.adopted")
            else:
                _publish(key)

        while _leftover():
            _harvest()
            if not _leftover():
                break
            now = time.monotonic()

            for key in sorted(republish_at):
                if not _unsettled(key):
                    republish_at.pop(key)
                elif republish_at[key] <= now:
                    republish_at.pop(key)
                    _publish(key)

            beats = spool.read_heartbeats()
            for worker in beats:
                _lane(worker)
            for worker, at in beats.items():
                stale = now - at > options.heartbeat_grace
                if stale and worker not in stale_workers:
                    stale_workers.add(worker)
                    obs.count("dist.workers.stale")
                    obs.count("workers.deaths")
                    obs.event("worker-stale", "dist",
                              track=_lane(worker), worker=worker)
                elif not stale:
                    stale_workers.discard(worker)

            for key in spool.leased_keys():
                if key not in by_key or not _unsettled(key) \
                        or key in republish_at:
                    continue
                try:
                    lease = spool.read_lease(key)
                except SealError as exc:
                    spool.quarantine(spool.lease_path(key), exc.reason)
                    obs.count("dist.quarantined")
                    _reclaim(key, "worker-died", "torn-lease")
                    continue
                if lease is None:
                    # Claim won, lease not yet written: either a
                    # worker mid-handshake or one that died in the
                    # gap.  Give it one grace window, then recover.
                    first = claim_seen.setdefault(key, now)
                    if now - first > options.heartbeat_grace:
                        claim_seen.pop(key)
                        _reclaim(key, "worker-died", "no-lease")
                    continue
                claim_seen.pop(key, None)
                if lease.get("worker") in stale_workers:
                    _reclaim(key, "worker-died", "heartbeat")
                elif float(lease.get("deadline", 0.0)) < now:
                    _reclaim(key, "timeout", "lease-expired")

            pending_now = spool.pending_keys()
            obs.gauge("queue.depth", len(pending_now))
            present = set(pending_now)
            present.update(spool.leased_keys())
            present.update(spool.result_keys())
            for key in sorted(by_key):
                if _unsettled(key) and key not in present \
                        and key not in republish_at:
                    # The key vanished without a result — a worker
                    # quarantined a torn ticket, or a crash ate it.
                    obs.count("dist.reissued")
                    _publish(key)

            if not lanes and now - start > options.attach_grace:
                for key in spool.pending_keys():
                    spool.unpublish(key)
                warnings.warn(
                    "no distributed worker attached to "
                    f"{spool.root} within {options.attach_grace:.3g}s; "
                    "running remaining cells locally",
                    RuntimeWarning, stacklevel=3,
                )
                obs.count("dist.degraded")
                obs.event("dist-degraded", "dist", reason="no-workers")
                degraded = True
                break

            time.sleep(options.poll)
    finally:
        # Reached on completion, degradation, and any propagating
        # failure (GridError, AuditMismatch, Ctrl-C) — workers must
        # not be left polling a dead grid.  The scripted chaos crash
        # (os._exit above) bypasses this on purpose.
        spool.drain()
        if options.spool_budget_results is not None:
            # Retention: sealed results whose every grid index is
            # stored are *consumed* — a restarted broker would skip
            # them anyway — so a long-lived shared spool stays within
            # its budget without an operator running ``repro gc``.
            consumed = {key for key in by_key if not _unsettled(key)}
            report = retention.gc_spool(
                spool.root, consumed=consumed,
                budget_results=options.spool_budget_results,
            )
            obs.count("spool.gc.results", report.spool_results_removed)
        obs.finish(dist_span, harvested=harvested,
                   degraded=degraded, workers=len(lanes))
    return _leftover() if degraded else []
