"""Tuning knobs for the distributed grid runtime.

Kept import-light (no engine, no spool) so ``run_grid``'s lazy
``dist=`` coercion costs nothing on single-host runs, and so the CLI
can build options without loading the broker.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Union

__all__ = ["DistOptions", "coerce_dist_options"]


@dataclass(frozen=True)
class DistOptions:
    """Broker-side configuration of one distributed grid.

    Parameters
    ----------
    spool:
        The shared spool directory (created if absent).
    lease_ttl:
        Informational only on the broker side — workers write their
        own TTL into each lease; the broker enforces whatever
        deadline the lease carries.  Kept here so one options object
        can describe a whole deployment.
    heartbeat_grace:
        Seconds without a fresh beat before a worker is presumed dead
        and its leases are reclaimed.  Must comfortably exceed the
        workers' heartbeat interval.
    attach_grace:
        Seconds the broker waits for the *first* worker heartbeat
        before degrading to local execution.
    poll:
        Broker supervision loop period.
    chaos_exit_after:
        Test hook: hard-crash the broker (``os._exit``) after this
        many harvested results, leaving the spool exactly as a real
        broker death would.  ``None`` (always, outside chaos tests)
        disables it.
    spool_budget_results:
        Retention budget for sealed result files left in the spool
        after the broker finishes.  When set, the broker's final
        cleanup garbage-collects *consumed* results (keys it stored
        into the grid this run) oldest-first until at most this many
        remain — so a long-lived shared spool stays bounded without an
        operator ever running ``repro gc`` by hand.  ``None`` keeps
        results indefinitely (they are idempotent and a restarted
        broker adopts them for free).
    """

    spool: Path
    lease_ttl: float = 15.0
    heartbeat_grace: float = 2.5
    attach_grace: float = 10.0
    poll: float = 0.05
    chaos_exit_after: Optional[int] = None
    spool_budget_results: Optional[int] = None

    def __post_init__(self):
        object.__setattr__(self, "spool", Path(self.spool))
        for name in ("lease_ttl", "heartbeat_grace", "attach_grace",
                     "poll"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be > 0")
        if self.spool_budget_results is not None \
                and self.spool_budget_results < 0:
            raise ValueError("spool_budget_results must be >= 0")


def coerce_dist_options(
    value: Union[DistOptions, str, os.PathLike]
) -> DistOptions:
    """``run_grid(dist=...)`` accepts options or a bare spool path."""
    if isinstance(value, DistOptions):
        return value
    return DistOptions(spool=Path(value))
