"""The shared spool: on-disk state machine of the distributed grid.

A distributed screen is coordinated entirely through one directory —
the *spool* — shared by the broker and every worker.  There is no
socket, no server, no database: the filesystem's two atomic
primitives (``rename`` within a directory, ``replace`` onto a name)
are the whole concurrency model, which is exactly why a crashed
process can never leave the spool half-updated.

Layout::

    <spool>/
      pending/<key>.task     sealed ticket, claimable by any worker
      leased/<key>.task      the same ticket after an atomic-rename claim
      leased/<key>.lease     sealed lease: who holds it, until when
      results/<key>.result   sealed outcome (stats or a structured error)
      hb/<worker>.hb         heartbeat: latest monotonic instant, renamed in
      quarantine/            torn/corrupt files, moved aside, never deleted
      stream/<worker>.events.jsonl   per-worker telemetry lane (see
                             :mod:`repro.obs.stream`; append-only, torn-tail
                             tolerant — the one append-discipline record here)
      spool.json             sealed manifest describing the grid
      drain                  marker: workers must finish up and exit

``<key>`` is the content hash from :func:`repro.exec.cache.task_key`,
so the spool inherits the cache's dedup semantics: two grids asking
for the same cell share one ticket name, and a result file is valid
for *any* run that computes the same key.

Every durable record (ticket, lease, result, manifest) is sealed with
:func:`repro.guard.seal.seal`, so a torn write — the signature of a
process crashing mid-``write`` before the ``rename`` — is *impossible
to publish* (the rename never happened), and a corrupted published
file is detected by checksum and quarantined rather than trusted.
Heartbeats are the one unsealed record: they are overwritten many
times a second and their loss is self-describing (a missing or stale
beat *is* the signal).

Clocks: all instants in the spool are ``time.monotonic()`` values.
On a single host (the supported deployment: processes sharing one
filesystem) ``CLOCK_MONOTONIC`` is shared across processes, so a
lease deadline written by a worker is directly comparable to the
broker's clock.  Wall-clock time never enters the protocol.
"""

from __future__ import annotations

import base64
import binascii
import json
import os
import pickle
import time
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.cpu import SIMULATOR_VERSION
from repro.guard import fsfault
from repro.guard.errors import SealCorrupt, SealError
from repro.guard.seal import check, seal

__all__ = [
    "LEASE_KIND",
    "MANIFEST_KIND",
    "RESULT_KIND",
    "SPOOL_SCHEMA",
    "Spool",
    "TASK_KIND",
]

#: Format version of every sealed spool record.
SPOOL_SCHEMA = 1

TASK_KIND = "dist-task"
RESULT_KIND = "dist-result"
LEASE_KIND = "dist-lease"
MANIFEST_KIND = "dist-spool"

_DRAIN_NAME = "drain"
_MANIFEST_NAME = "spool.json"


def _encode(payload: dict, *, kind: str,
            version: Optional[str] = None) -> bytes:
    body = json.dumps(
        payload, sort_keys=True, separators=(",", ":")
    ).encode("utf-8")
    return seal(body, kind=kind, schema=SPOOL_SCHEMA,
                simulator_version=version)


def _decode(blob: bytes, *, kind: str,
            version: Optional[str] = None) -> dict:
    body = check(blob, kind=kind, schema=SPOOL_SCHEMA,
                 simulator_version=version)
    try:
        payload = json.loads(body.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise SealCorrupt(
            f"sealed {kind} payload is not JSON: {exc}",
            reason="malformed-payload",
        ) from None
    if not isinstance(payload, dict):
        raise SealCorrupt(
            f"sealed {kind} payload is not an object",
            reason="malformed-payload",
        )
    return payload


def pack_obj(obj) -> str:
    """Pickle ``obj`` into a base64 string (for JSON embedding)."""
    return base64.b64encode(
        pickle.dumps(obj, pickle.HIGHEST_PROTOCOL)
    ).decode("ascii")


def unpack_obj(text: str):
    """Invert :func:`pack_obj`; corruption surfaces as
    :class:`~repro.guard.errors.SealCorrupt` so callers quarantine it
    on the same path as a bad checksum."""
    try:
        return pickle.loads(base64.b64decode(text, validate=True))
    except (TypeError, ValueError, binascii.Error,
            pickle.UnpicklingError, EOFError,
            AttributeError, ImportError) as exc:
        raise SealCorrupt(
            f"embedded pickle does not load: {exc}",
            reason="unpicklable",
        ) from None


class Spool:
    """One distributed grid's shared directory, with atomic accessors.

    All mutation goes through two patterns:

    * **publish** — write to a dot-prefixed temp name in the target
      directory, then ``os.replace`` onto the final name.  Readers
      never observe a partial file.
    * **claim** — ``os.rename(pending/<k>.task, leased/<k>.task)``.
      The filesystem guarantees exactly one renamer wins; every loser
      gets ``FileNotFoundError`` and moves on.  This *is* the lease
      acquisition: no lock file, no fencing token handshake.
    """

    def __init__(self, root: Union[str, os.PathLike], *,
                 version: str = SIMULATOR_VERSION):
        self.root = Path(root)
        self.version = str(version)
        self.pending_dir = self.root / "pending"
        self.leased_dir = self.root / "leased"
        self.results_dir = self.root / "results"
        self.hb_dir = self.root / "hb"
        self.quarantine_dir = self.root / "quarantine"
        self.stream_dir = self.root / "stream"

    def ensure(self) -> None:
        """Create the spool directory tree (idempotent)."""
        for directory in (self.pending_dir, self.leased_dir,
                          self.results_dir, self.hb_dir,
                          self.quarantine_dir, self.stream_dir):
            directory.mkdir(parents=True, exist_ok=True)

    # -- atomic write primitive ------------------------------------

    def _write_atomic(self, path: Path, blob: bytes) -> None:
        # The sanctioned publish seam (temp name, write, replace —
        # every step fault-injectable): under ENOSPC/EIO/torn-write/
        # rename faults the destination name is never visible torn,
        # so a worker that can *see* a ticket can claim it whole.
        # Two retries ride out a transient fault window; a persistent
        # outage propagates, and the broker's reclaim machinery (not
        # a corrupt file) is what re-covers the task.
        fsfault.publish_bytes(path, blob, retries=2)

    # -- manifest ---------------------------------------------------

    @property
    def manifest_path(self) -> Path:
        return self.root / _MANIFEST_NAME

    def write_manifest(self, *, n_tasks: int) -> None:
        payload = {"n_tasks": int(n_tasks), "sim": self.version,
                   "schema": SPOOL_SCHEMA}
        self._write_atomic(
            self.manifest_path,
            _encode(payload, kind=MANIFEST_KIND, version=self.version),
        )

    def read_manifest(self) -> Optional[dict]:
        try:
            blob = self.manifest_path.read_bytes()
        except FileNotFoundError:
            return None
        return _decode(blob, kind=MANIFEST_KIND, version=self.version)

    # -- tickets ----------------------------------------------------

    def task_path(self, key: str, *, leased: bool = False) -> Path:
        base = self.leased_dir if leased else self.pending_dir
        return base / f"{key}.task"

    def publish_task(self, key: str, index: int, attempt: int,
                     task) -> None:
        """Make one cell claimable (atomically; replaces any stale
        ticket of the same key)."""
        payload = {"key": key, "index": int(index),
                   "attempt": int(attempt), "task": pack_obj(task)}
        self._write_atomic(
            self.task_path(key),
            _encode(payload, kind=TASK_KIND, version=self.version),
        )

    def unpublish(self, key: str) -> None:
        self.task_path(key).unlink(missing_ok=True)

    def pending_keys(self) -> List[str]:
        return [p.stem
                for p in sorted(self.pending_dir.glob("*.task"))]

    def leased_keys(self) -> List[str]:
        return [p.stem
                for p in sorted(self.leased_dir.glob("*.task"))]

    def claim(self, key: str) -> bool:
        """Try to take the pending ticket; exactly one caller wins."""
        try:
            os.rename(self.task_path(key),
                      self.task_path(key, leased=True))
        except FileNotFoundError:
            return False
        return True

    def read_task(self, key: str) -> dict:
        """Load a *claimed* ticket; the embedded task is unpickled.

        Raises :class:`FileNotFoundError` if the broker reclaimed the
        ticket meanwhile, or a seal error on corruption.
        """
        blob = self.task_path(key, leased=True).read_bytes()
        payload = _decode(blob, kind=TASK_KIND, version=self.version)
        payload["task"] = unpack_obj(payload["task"])
        return payload

    # -- leases -----------------------------------------------------

    def lease_path(self, key: str) -> Path:
        return self.leased_dir / f"{key}.lease"

    def write_lease(self, key: str, worker: str, attempt: int,
                    ttl: float) -> float:
        """Record who holds ``key`` and until when; returns the
        deadline (a monotonic instant)."""
        deadline = time.monotonic() + float(ttl)
        payload = {"key": key, "worker": str(worker),
                   "attempt": int(attempt), "deadline": deadline}
        self._write_atomic(
            self.lease_path(key), _encode(payload, kind=LEASE_KIND)
        )
        return deadline

    def read_lease(self, key: str) -> Optional[dict]:
        """The lease record for ``key``, ``None`` if absent; seal
        errors propagate (the caller quarantines)."""
        try:
            blob = self.lease_path(key).read_bytes()
        except FileNotFoundError:
            return None
        return _decode(blob, kind=LEASE_KIND)

    def release(self, key: str, worker: Optional[str] = None) -> None:
        """Drop the leased ticket and lease for ``key``.

        With ``worker`` given, the files are only removed when the
        lease is absent or held by that worker — a worker that was
        reclaimed while stalled must not destroy its successor's
        lease.  The broker releases unconditionally (``worker=None``).
        """
        if worker is not None:
            try:
                lease = self.read_lease(key)
            except SealError:
                return  # torn lease: leave evidence for the broker
            if lease is not None and lease.get("worker") != worker:
                return
        self.lease_path(key).unlink(missing_ok=True)
        self.task_path(key, leased=True).unlink(missing_ok=True)

    # -- results ----------------------------------------------------

    def result_path(self, key: str) -> Path:
        return self.results_dir / f"{key}.result"

    def write_result(self, key: str, *, index: int, attempt: int,
                     worker: str, ok: bool, stats=None,
                     error_type: str = "", message: str = "") -> None:
        payload = {
            "key": key, "index": int(index), "attempt": int(attempt),
            "worker": str(worker), "ok": bool(ok),
            "stats": pack_obj(stats) if ok else None,
            "error_type": str(error_type), "message": str(message),
        }
        self._write_atomic(
            self.result_path(key),
            _encode(payload, kind=RESULT_KIND, version=self.version),
        )

    def result_keys(self) -> List[str]:
        return [p.stem
                for p in sorted(self.results_dir.glob("*.result"))]

    def read_result(self, key: str) -> dict:
        """Load one sealed result; ``stats`` is unpickled when ok."""
        blob = self.result_path(key).read_bytes()
        payload = _decode(blob, kind=RESULT_KIND, version=self.version)
        if payload.get("ok"):
            payload["stats"] = unpack_obj(payload["stats"])
        return payload

    def remove_result(self, key: str) -> None:
        self.result_path(key).unlink(missing_ok=True)

    # -- heartbeats -------------------------------------------------

    def heartbeat(self, worker: str) -> None:
        """Publish ``worker``'s liveness as of now (monotonic)."""
        blob = f"{time.monotonic():.6f}\n".encode("ascii")
        self._write_atomic(self.hb_dir / f"{worker}.hb", blob)

    def read_heartbeats(self) -> Dict[str, float]:
        """worker id -> latest beat instant, unreadable beats skipped."""
        out: Dict[str, float] = {}
        for path in sorted(self.hb_dir.glob("*.hb")):
            try:
                out[path.stem] = float(path.read_bytes().split()[0])
            except (OSError, ValueError, IndexError):
                # An unreadable beat is indistinguishable from no
                # beat; staleness detection covers both.
                continue
        return out

    # -- drain & quarantine -----------------------------------------

    @property
    def drain_path(self) -> Path:
        return self.root / _DRAIN_NAME

    def drain(self) -> None:
        """Tell every worker to exit once its current task is done."""
        self._write_atomic(self.drain_path, b"drained\n")

    def clear_drain(self) -> None:
        self.drain_path.unlink(missing_ok=True)

    def draining(self) -> bool:
        return self.drain_path.exists()

    def quarantine(self, path: Path, reason: str) -> Optional[Path]:
        """Move a corrupt file aside under its failure reason.

        Returns the quarantine path, or ``None`` when the file was
        already gone (another process got there first).
        """
        dest = self.quarantine_dir / f"{path.name}.{reason}"
        try:
            os.replace(path, dest)
        except FileNotFoundError:
            return None
        return dest
