"""The shared simulation execution engine.

Everything that measures a grid of (configuration, trace) pairs —
Plackett-Burman experiments, replicated designs, parameter sweeps,
iterative refinement, enhancement analyses — runs through
:func:`run_grid`, which adds worker-pool parallelism,
content-addressed result caching, and fault tolerance (supervised
workers, bounded retries, checkpoint/resume journals) while
guaranteeing results identical to the serial path.  See
:mod:`repro.exec.engine` for the execution model,
:mod:`repro.exec.cache` for the cache design,
:mod:`repro.exec.fault` for failure semantics,
:mod:`repro.exec.journal` for the resume journal, and
:mod:`repro.exec.faultinject` for the deterministic fault-injection
harness the fault paths are tested with.
"""

from .cache import (
    ResultCache,
    canonical_blob,
    canonicalize,
    core_family,
    task_key,
)
from .engine import SimTask, grid_tasks, run_grid
from .fault import (
    FailureRecord,
    GridError,
    GridResult,
    RetryPolicy,
)
from .faultinject import Fault, FaultInjector, InjectedFault
from .journal import (
    Journal,
    JournalRepair,
    JournalScan,
    repair_journal,
    scan_journal,
)

__all__ = [
    "FailureRecord",
    "Fault",
    "FaultInjector",
    "GridError",
    "GridResult",
    "InjectedFault",
    "Journal",
    "JournalRepair",
    "JournalScan",
    "ResultCache",
    "RetryPolicy",
    "SimTask",
    "canonical_blob",
    "core_family",
    "canonicalize",
    "grid_tasks",
    "repair_journal",
    "run_grid",
    "scan_journal",
    "task_key",
]
