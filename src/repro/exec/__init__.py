"""The shared simulation execution engine.

Everything that measures a grid of (configuration, trace) pairs —
Plackett-Burman experiments, replicated designs, parameter sweeps,
iterative refinement, enhancement analyses — runs through
:func:`run_grid`, which adds worker-pool parallelism and
content-addressed result caching while guaranteeing results identical
to the serial path.  See :mod:`repro.exec.engine` for the execution
model and :mod:`repro.exec.cache` for the cache design.
"""

from .cache import ResultCache, task_key
from .engine import SimTask, grid_tasks, run_grid

__all__ = [
    "ResultCache",
    "SimTask",
    "grid_tasks",
    "run_grid",
    "task_key",
]
