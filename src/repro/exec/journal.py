"""Append-only checkpoint journal for interrupted simulation grids.

A :class:`~repro.exec.cache.ResultCache` already makes reruns cheap,
but it is an *optional* performance feature keyed for global reuse.
The journal is the *durability* feature: one file per screen that
records every completed cell as it finishes, so a run killed at cell
79 of 88 — Ctrl-C, OOM, power loss — resumes from cell 80 instead of
cell 1, even when no cache directory was configured.

Format: one JSON line per completed cell::

    {"v": 1, "key": "<task_key sha-256>", "sha": "<sha-256 of blob>",
     "stats": "<base64 pickle of CoreStats>"}

Design points:

* **Append-only** — a crash can only ever damage the final line.
  Loading validates each line's embedded checksum and silently drops
  torn or corrupt lines (counted in :attr:`Journal.corrupt`), so a
  journal written right up to the moment of a ``kill -9`` still
  resumes from every fully recorded cell.
* **Content-keyed** — entries are stored under the same
  :func:`~repro.exec.cache.task_key` hash the cache uses, so a resume
  is correct even if the caller reorders the grid, and a journal
  written for one screen is simply inert (never wrong) for another.
* **Self-checking** — the pickle blob's own sha-256 travels with it;
  a flipped bit makes the line invalid rather than producing subtly
  wrong statistics.
"""

from __future__ import annotations

import base64
import hashlib
import json
import os
import pickle
from pathlib import Path
from typing import Dict, Iterator, Optional, Tuple, Union

__all__ = ["Journal"]

_FORMAT_VERSION = 1


class Journal:
    """Append-only record of completed (task-key, stats) cells.

    Parameters
    ----------
    path:
        The journal file.  Created (with parents) on first write; an
        existing file is loaded so previously completed cells are
        immediately visible via :meth:`get` — this is what makes
        ``--resume`` work.
    sync:
        Fsync after every record.  Off by default: the flush-per-line
        discipline already survives process death (Ctrl-C, SIGKILL),
        and fsync only adds protection against whole-machine crashes
        at a large per-cell cost.

    Attributes
    ----------
    corrupt:
        Torn or checksum-invalid lines dropped while loading.
    """

    def __init__(self, path: Union[str, os.PathLike], *,
                 sync: bool = False):
        self.path = Path(path)
        self.sync = sync
        self.corrupt = 0
        self._entries: Dict[str, object] = {}
        self._handle = None
        if self.path.exists():
            self._load()

    # -- reading ----------------------------------------------------

    def _load(self) -> None:
        with open(self.path, "rb") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    entry = json.loads(line.decode("utf-8"))
                    if entry.get("v") != _FORMAT_VERSION:
                        raise ValueError("unknown journal format version")
                    key = entry["key"]
                    blob = base64.b64decode(entry["stats"])
                    if hashlib.sha256(blob).hexdigest() != entry["sha"]:
                        raise ValueError("checksum mismatch")
                    stats = pickle.loads(blob)
                except Exception:
                    # A torn final line (interrupted write) or a
                    # damaged entry: drop it, never fail the resume.
                    self.corrupt += 1
                else:
                    self._entries[key] = stats

    def get(self, key: str):
        """The recorded stats for ``key``, or ``None``."""
        return self._entries.get(key)

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def keys(self) -> Iterator[str]:
        return iter(self._entries)

    # -- writing ----------------------------------------------------

    def record(self, key: str, stats) -> None:
        """Append one completed cell (idempotent per key).

        The line is flushed immediately so the entry survives the
        process dying right after the call.
        """
        if key in self._entries:
            return
        blob = pickle.dumps(stats, pickle.HIGHEST_PROTOCOL)
        line = json.dumps({
            "v": _FORMAT_VERSION,
            "key": key,
            "sha": hashlib.sha256(blob).hexdigest(),
            "stats": base64.b64encode(blob).decode("ascii"),
        })
        if self._handle is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._handle = open(self.path, "a", encoding="utf-8")
        self._handle.write(line + "\n")
        self._handle.flush()
        if self.sync:
            os.fsync(self._handle.fileno())
        self._entries[key] = stats

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "Journal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - GC timing dependent
        try:
            self.close()
        except Exception:  # repro: noqa[REP007] -- GC-time close must never raise; interpreter may be tearing down
            pass
