"""Append-only checkpoint journal for interrupted simulation grids.

A :class:`~repro.exec.cache.ResultCache` already makes reruns cheap,
but it is an *optional* performance feature keyed for global reuse.
The journal is the *durability* feature: one file per screen that
records every completed cell as it finishes, so a run killed at cell
79 of 88 — Ctrl-C, OOM, power loss — resumes from cell 80 instead of
cell 1, even when no cache directory was configured.

Format: one JSON line per completed cell::

    {"v": 2, "key": "<task_key sha-256>", "sha": "<sha-256 of blob>",
     "sim": "<SIMULATOR_VERSION>", "stats": "<base64 pickle>"}

Design points:

* **Append-only** — a crash can only ever damage the final line.
  Loading validates every line and drops invalid ones *loudly*: each
  drop is counted per reason (:attr:`Journal.dropped`), totalled in
  :attr:`Journal.corrupt`, and surfaced as a :class:`RuntimeWarning`
  naming the file and the repair command — never silently discarded.
* **Content-keyed** — entries are stored under the same
  :func:`~repro.exec.cache.task_key` hash the cache uses, so a resume
  is correct even if the caller reorders the grid, and a journal
  written for one screen is simply inert (never wrong) for another.
* **Self-checking** — the pickle blob's own sha-256 travels with it,
  and each line names the ``SIMULATOR_VERSION`` it was measured
  under; a flipped bit or a hand-migrated line from another simulator
  becomes an invalid line with a named reason rather than subtly
  wrong statistics.

Drop reasons (stable slugs, shared with :mod:`repro.guard.errors`):
``torn`` (unterminated final line — the crash signature), ``malformed``
(unparseable mid-file line), ``format-drift`` (journal format version
changed), ``version-drift`` (simulator version changed), ``checksum``
(payload hash mismatch), ``unpicklable`` (valid envelope, broken
payload).  :func:`scan_journal` reports them per line without loading;
:func:`repair_journal` (``repro journal repair``) truncates the torn
tail and reports every dropped line explicitly.
"""

from __future__ import annotations

import base64
import binascii
import hashlib
import json
import os
import pickle
import warnings

try:
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platform
    fcntl = None
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterator, Optional, Tuple, Union

from repro.cpu import SIMULATOR_VERSION
from repro.guard import fsfault

__all__ = [
    "Journal",
    "JournalRepair",
    "JournalScan",
    "repair_journal",
    "scan_journal",
]

#: Journal line format version.  v1 lines (no ``sim`` field) predate
#: sealed artifacts and are dropped as ``format-drift``.
_FORMAT_VERSION = 2


def _parse_line(raw: bytes, version: Optional[str]):
    """Validate one journal line.

    Returns ``(key, stats, None)`` on success or
    ``(None, None, reason)`` with a stable reason slug on failure.
    """
    try:
        entry = json.loads(raw.decode("utf-8"))
    except (ValueError, UnicodeDecodeError):
        return None, None, "malformed"
    if not isinstance(entry, dict):
        return None, None, "malformed"
    if entry.get("v") != _FORMAT_VERSION:
        return None, None, "format-drift"
    if version is not None and entry.get("sim") != str(version):
        return None, None, "version-drift"
    try:
        key = entry["key"]
        blob = base64.b64decode(entry["stats"], validate=True)
    except (KeyError, TypeError, ValueError, binascii.Error):
        return None, None, "malformed"
    if not isinstance(key, str) \
            or hashlib.sha256(blob).hexdigest() != entry.get("sha"):
        return None, None, "checksum"
    try:
        stats = pickle.loads(blob)
    except Exception:
        return None, None, "unpicklable"
    return key, stats, None


def _iter_lines(data: bytes):
    """Yield ``(lineno, raw, terminated, start_offset)`` per physical
    line (1-based line numbers, blank lines skipped)."""
    pos, lineno = 0, 0
    size = len(data)
    while pos < size:
        newline = data.find(b"\n", pos)
        if newline < 0:
            raw, next_pos, terminated = data[pos:], size, False
        else:
            raw, next_pos, terminated = data[pos:newline], newline + 1, True
        lineno += 1
        stripped = raw.strip()
        if stripped:
            yield lineno, stripped, terminated, pos
        pos = next_pos


class Journal:
    """Append-only record of completed (task-key, stats) cells.

    Parameters
    ----------
    path:
        The journal file.  Created (with parents) on first write; an
        existing file is loaded so previously completed cells are
        immediately visible via :meth:`get` — this is what makes
        ``--resume`` work.
    sync:
        Fsync after every record.  Off by default: the flush-per-line
        discipline already survives process death (Ctrl-C, SIGKILL),
        and fsync only adds protection against whole-machine crashes
        at a large per-cell cost.
    version:
        The simulator version recorded on (and required of) every
        line; defaults to :data:`~repro.cpu.SIMULATOR_VERSION`.

    Attributes
    ----------
    corrupt:
        Invalid lines dropped while loading (total across reasons).
    dropped:
        Per-reason breakdown of :attr:`corrupt` (``torn``,
        ``checksum``, ``version-drift``, ...).
    write_failures:
        Failed (and rolled-back) record attempts — each one is an
        I/O fault the journal survived atomically.
    """

    #: Write attempts per record: the first try plus retries after a
    #: rollback.  A transient fault window (injected or a disk that
    #: frees up) clears within the budget; a persistent one raises.
    _WRITE_ATTEMPTS = 3

    def __init__(self, path: Union[str, os.PathLike], *,
                 sync: bool = False, version: str = SIMULATOR_VERSION):
        self.path = Path(path)
        self.sync = sync
        self.version = str(version)
        self.corrupt = 0
        self.dropped: Dict[str, int] = {}
        self.write_failures = 0
        self._entries: Dict[str, object] = {}
        self._handle = None
        if self.path.exists():
            self._load()

    # -- reading ----------------------------------------------------

    def _load(self) -> None:
        data = self.path.read_bytes()
        for _lineno, raw, terminated, _start in _iter_lines(data):
            key, stats, reason = _parse_line(raw, self.version)
            if reason is None:
                self._entries[key] = stats
                continue
            if not terminated:
                # An unterminated final line is the signature of a
                # write interrupted mid-record, not of damage.
                reason = "torn"
            self.corrupt += 1
            self.dropped[reason] = self.dropped.get(reason, 0) + 1
        if self.corrupt:
            breakdown = ", ".join(
                f"{reason}: {count}"
                for reason, count in sorted(self.dropped.items())
            )
            warnings.warn(
                f"journal {self.path}: dropped {self.corrupt} invalid "
                f"line(s) ({breakdown}); run "
                f"'repro journal repair {self.path}' to inspect and "
                "truncate a torn tail",
                RuntimeWarning,
                stacklevel=3,
            )

    def get(self, key: str):
        """The recorded stats for ``key``, or ``None``."""
        return self._entries.get(key)

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def keys(self) -> Iterator[str]:
        return iter(self._entries)

    # -- writing ----------------------------------------------------

    def record(self, key: str, stats) -> None:
        """Append one completed cell (idempotent per key).

        The line is flushed immediately so the entry survives the
        process dying right after the call.

        Safe under *interleaved writers*: the file is opened in append
        mode (every write lands at the current end of file) and the
        write+fault-handling is wrapped in an exclusive ``flock``, so
        two processes — a broker and a straggling worker, two resumed
        runs racing on one run-dir — can append to the same journal
        without ever tearing each other's lines.  Lines are
        content-keyed and self-checking, so concurrent appends of the
        same cell are merely redundant, never conflicting.

        Fails **atomically** under I/O faults: the write goes through
        the sanctioned seam (:func:`repro.guard.fsfault.vfs_write`),
        and on any ``OSError`` — ENOSPC, EIO, a torn half-line — the
        file is truncated back to its pre-record length *while the
        lock is still held*, then the write is retried.  The journal
        therefore never shows a torn line, even transiently; a
        persistent fault propagates after the retry budget with the
        journal exactly as it was before the call.
        """
        if key in self._entries:
            return
        blob = pickle.dumps(stats, pickle.HIGHEST_PROTOCOL)
        data = (json.dumps({
            "v": _FORMAT_VERSION,
            "key": key,
            "sha": hashlib.sha256(blob).hexdigest(),
            "sim": self.version,
            "stats": base64.b64encode(blob).decode("ascii"),
        }) + "\n").encode("utf-8")
        if self._handle is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            # Unbuffered binary append: no hidden buffer can hold a
            # partial line across a failed write, so rollback (an
            # ftruncate to the pre-record size) is exact.
            self._handle = open(self.path, "ab", buffering=0)
        fd = self._handle.fileno()
        if fcntl is not None:
            fcntl.flock(fd, fcntl.LOCK_EX)
        try:
            start = os.fstat(fd).st_size
            for attempt in range(self._WRITE_ATTEMPTS):
                try:
                    fsfault.vfs_write(self._handle, data)
                    if self.sync:
                        fsfault.vfs_fsync(fd)
                    break
                except OSError:
                    self.write_failures += 1
                    # Roll back to the pre-record length (still under
                    # the lock, so no interleaved line can be cut).
                    os.ftruncate(fd, start)
                    if attempt == self._WRITE_ATTEMPTS - 1:
                        raise
        finally:
            if fcntl is not None:
                fcntl.flock(fd, fcntl.LOCK_UN)
        self._entries[key] = stats

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "Journal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - GC timing dependent
        try:
            self.close()
        except Exception:  # repro: noqa[REP007] -- GC-time close must never raise; interpreter may be tearing down
            pass


# -- offline inspection & repair -----------------------------------


@dataclass(frozen=True)
class JournalScan:
    """What a walk over a journal file found, line by line.

    Attributes
    ----------
    path:
        The file scanned.
    total:
        Non-blank physical lines.
    valid:
        Lines that load cleanly.
    invalid:
        ``(lineno, reason)`` pairs for every line a load would drop,
        1-based, in file order.
    torn_tail:
        True when the file ends in an unterminated, unparseable line
        — the footprint of a crash mid-write.
    keep_bytes:
        File size after truncating the torn tail (the full size when
        :attr:`torn_tail` is false).
    """

    path: Path
    total: int
    valid: int
    invalid: Tuple[Tuple[int, str], ...]
    torn_tail: bool
    keep_bytes: int

    def reasons(self) -> Dict[str, int]:
        """Per-reason counts of :attr:`invalid` lines."""
        out: Dict[str, int] = {}
        for _lineno, reason in self.invalid:
            out[reason] = out.get(reason, 0) + 1
        return out


@dataclass(frozen=True)
class JournalRepair:
    """Outcome of :func:`repair_journal`.

    Attributes
    ----------
    scan:
        The pre-repair :class:`JournalScan`.
    truncated_bytes:
        Bytes removed from the end of the file (0 when no torn tail).
    dropped:
        ``(lineno, reason)`` for every line a load will still drop
        *after* the repair — mid-file damage a tail truncation cannot
        (and must not) touch.
    """

    scan: JournalScan
    truncated_bytes: int
    dropped: Tuple[Tuple[int, str], ...]


def scan_journal(path: Union[str, os.PathLike], *,
                 version: Optional[str] = SIMULATOR_VERSION) \
        -> JournalScan:
    """Classify every line of a journal without building its entries.

    ``version=None`` skips the simulator-version check (useful when
    inspecting a journal from another simulator build).
    """
    path = Path(path)
    data = path.read_bytes()
    total = valid = 0
    invalid = []
    torn_tail = False
    keep_bytes = len(data)
    for lineno, raw, terminated, start in _iter_lines(data):
        total += 1
        _key, _stats, reason = _parse_line(raw, version)
        if reason is None:
            valid += 1
            continue
        if not terminated:
            reason = "torn"
            torn_tail = True
            keep_bytes = start
        invalid.append((lineno, reason))
    return JournalScan(path, total, valid, tuple(invalid),
                       torn_tail, keep_bytes)


def repair_journal(path: Union[str, os.PathLike], *,
                   version: Optional[str] = SIMULATOR_VERSION) \
        -> JournalRepair:
    """Truncate a journal's torn tail; report every dropped line.

    Only the unterminated final line is removed — it is the residue
    of an interrupted write and can never parse.  Mid-file invalid
    lines are *reported* (so the drops a resume performs are explicit)
    but left in place: destroying evidence of damage is not repair.
    """
    scan = scan_journal(path, version=version)
    truncated = 0
    if scan.torn_tail:
        size = scan.path.stat().st_size
        with open(scan.path, "r+b") as handle:
            handle.truncate(scan.keep_bytes)
        truncated = size - scan.keep_bytes
    remaining = tuple(
        (lineno, reason) for lineno, reason in scan.invalid
        if reason != "torn"
    )
    return JournalRepair(scan, truncated, remaining)
