"""Content-addressed result cache for simulation runs.

A simulation is a pure function of (machine configuration, trace,
enhancement settings, simulator version): the same inputs always
produce the same :class:`~repro.cpu.stats.CoreStats`.  That makes
results safe to memoise by a content hash of the inputs —
:func:`task_key` computes it, :class:`ResultCache` stores the stats.

The cache has two layers: an in-memory dict (always on) and an
optional on-disk directory of pickled stats, one file per key, written
atomically so concurrent runs sharing a cache directory never read a
torn entry.  Enhancement analyses, iterative refinement and repeated
benchmark sessions all hit the same keys, so the second time a
configuration is measured it costs a dictionary lookup or one small
file read instead of a full pipeline simulation.

On-disk entries are **sealed** (:mod:`repro.guard.seal`): each file
carries a header naming its kind, schema version, the
``SIMULATOR_VERSION`` it was measured under, and a content checksum.
A loader that finds anything wrong — corruption, truncation, a bare
legacy pickle, an entry written under a different simulator version
(possible despite key salting via hand edits or migrated directories)
— **quarantines** the file under ``<cache>/quarantine/`` with the
failure reason in its name, counts it per reason, and reports a miss.
Nothing is silently deleted and, more importantly, nothing invalid is
ever trusted.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import math
import os
import pickle
from pathlib import Path
from typing import Dict, Optional, Set, Union

from repro.cpu import SIMULATOR_VERSION
from repro.cpu.stats import CoreStats
from repro.guard import fsfault, retention
from repro.guard.errors import SealError, StatsInvalid
from repro.guard.seal import check as check_seal, seal as make_seal

#: Format version of one sealed cache entry (the ``schema`` field of
#: its seal header).  v1 was the bare pickle written before sealing
#: existed; bare pickles are now quarantined as ``unsealed``.
CACHE_ENTRY_SCHEMA = 2

#: Seal ``kind`` tag for result-cache entries.
CACHE_ENTRY_KIND = "result-cache"

#: Default cap on the quarantine directory, in entries.  Repeated
#: corruption (a flaky disk, a byte-flipping NFS client) must not
#: grow ``<cache>/quarantine/`` without bound; the newest evidence is
#: kept, the oldest pruned, every prune counted.  ``None`` disables.
QUARANTINE_BUDGET_ENTRIES = 256


def canonicalize(value):
    """``value`` reduced to a canonical, JSON-ready form.

    Cache keys must be a pure function of configuration *content*, so
    every representation accident is normalized away before hashing:

    * mappings are rebuilt with keys in sorted order (two dicts built
      in different insertion orders hash identically) and rejected if
      any key is not a string — non-string keys invite ``1`` vs
      ``"1"`` aliasing under JSON;
    * sets and frozensets become sorted lists, tuples become lists;
    * ``-0.0`` is normalized to ``0.0`` (distinct bit patterns, equal
      values — they must share a cache entry);
    * NaN and the infinities are **rejected** with :class:`ValueError`:
      no meaningful machine configuration contains them, NaN breaks
      equality-based canonicalization (``nan != nan``), and JSON has
      no portable encoding for any of the three;
    * other non-JSON scalars fall back to ``str()`` (enums, paths),
      matching the previous behaviour of ``json.dumps(default=str)``.
    """
    if isinstance(value, dict):
        keys = list(value.keys())
        if any(not isinstance(k, str) for k in keys):
            raise ValueError(
                "cache-key mappings must have string keys, got "
                f"{sorted(type(k).__name__ for k in keys)}"
            )
        return {k: canonicalize(value[k]) for k in sorted(keys)}
    if isinstance(value, (list, tuple)):
        return [canonicalize(v) for v in value]
    if isinstance(value, (set, frozenset)):
        return sorted(canonicalize(v) for v in value)
    if isinstance(value, float):
        if math.isnan(value) or math.isinf(value):
            raise ValueError(
                f"non-finite float {value!r} cannot enter a cache key"
            )
        return 0.0 if value == 0.0 else value
    if value is None or isinstance(value, (bool, int, str)):
        return value
    return str(value)


def canonical_blob(payload) -> bytes:
    """The canonical serialized form a cache key hashes.

    Exposed separately from :func:`task_key` so tests (and external
    tools building compatible keys) can assert on the exact bytes.
    """
    return json.dumps(
        canonicalize(payload), sort_keys=True, allow_nan=False,
        separators=(",", ":"),
    ).encode("utf-8")


def core_family(core: str) -> str:
    """The cache-key family of a simulator core.

    The batched implementations (``batched``, ``batched-native``,
    ``batched-python``) are interchangeable by contract — field-exact
    equivalent, enforced by :mod:`repro.cpu.equivalence` — so they
    share one family and therefore one set of cache entries: a grid
    run with the compiled kernel reuses results measured by the Python
    fallback and vice versa.  The interpreted ``reference`` oracle is
    its own family: it is the arbiter the batched cores are checked
    *against*, so its measurements must never be satisfied from (or
    leak into) batched-core entries — otherwise a batched-core bug
    could silently poison the oracle's results through the cache, and
    a differential run would compare a core against itself.
    """
    return "reference" if core == "reference" else "batched"


def task_key(task, *, version: str = SIMULATOR_VERSION) -> str:
    """Content hash of one :class:`~repro.exec.engine.SimTask`.

    The key covers every input the simulator's output depends on: all
    :class:`~repro.cpu.MachineConfig` field values, the trace's content
    fingerprint (arrays + name), the enhancement settings (precompute
    table contents, prefetch lines), the warmup discipline, the
    simulator ``version`` tag, and the :func:`core_family` of the
    task's simulator core.  Changing any of them — including bumping
    :data:`~repro.cpu.SIMULATOR_VERSION` after a timing-model change —
    yields a different key, so stale entries are simply never found
    rather than needing explicit invalidation.  The core enters only
    as its normalized family: equivalent batched variants share
    entries, while the reference oracle's entries stay segregated
    (cache-level cross-contamination would defeat differential
    testing).

    Results are stored as full :class:`CoreStats`, so the response
    function an experiment applies (cycles, energy, ...) does not enter
    the key: one cached measurement serves every response definition.
    """
    payload = {
        "version": str(version),
        "config": dataclasses.asdict(task.config),
        "trace": task.trace.fingerprint(),
        "precompute_table": (
            sorted(task.precompute_table)
            if task.precompute_table is not None else None
        ),
        "prefetch_lines": task.prefetch_lines,
        "warmup": task.warmup,
        "core": core_family(getattr(task, "core", "batched")),
    }
    return hashlib.sha256(canonical_blob(payload)).hexdigest()


class ResultCache:
    """Memoised simulation results, optionally persisted to disk.

    Parameters
    ----------
    path:
        Directory for the on-disk layer (created if missing).  ``None``
        keeps the cache purely in-memory — still useful within one
        process (e.g. iterative refinement revisiting configurations).
    version:
        The simulator version entries must have been measured under
        (default :data:`~repro.cpu.SIMULATOR_VERSION`).  Task keys
        already salt the version, but the key is only the file *name*;
        the seal inside the file is what proves the *content* matches
        — a renamed, hand-edited or migrated entry fails here.
    budget_bytes / budget_entries:
        Disk budget for the on-disk layer (``None`` = unbounded).
        After every put, least-recently-used entries are evicted
        until the directory fits — except keys this process has
        touched (:attr:`pinned`), which are never evicted: an
        in-flight run's working set outranks the budget.
    quarantine_entries:
        Cap on the quarantine directory
        (:data:`QUARANTINE_BUDGET_ENTRIES` by default; ``None``
        disables).  Oldest quarantined files are pruned first and
        counted in :attr:`quarantine_pruned`.

    Attributes
    ----------
    hits / misses:
        Lookup counters, for instrumentation and tests.
    corrupt:
        Invalid on-disk entries encountered (each is quarantined and
        treated as a miss); the total across all reasons.
    quarantined:
        Per-reason breakdown of :attr:`corrupt` (``checksum``,
        ``truncated``, ``unsealed``, ``version-drift``, ...), the
        reason slugs of :mod:`repro.guard.errors`.
    put_failures:
        Failed :meth:`put` calls (disk full, read-only directory).
        The execution engine increments this when a write raises, and
        stops attempting writes to a cache whose counter is non-zero
        — the counter *is* the "cache writes are down" flag, shared
        across every grid using the cache instance.
    """

    def __init__(self, path: Optional[Union[str, os.PathLike]] = None,
                 *, version: str = SIMULATOR_VERSION,
                 budget_bytes: Optional[int] = None,
                 budget_entries: Optional[int] = None,
                 quarantine_entries: Optional[int] =
                 QUARANTINE_BUDGET_ENTRIES):
        self.path = Path(path) if path is not None else None
        if self.path is not None:
            self.path.mkdir(parents=True, exist_ok=True)
        self.version = str(version)
        self.budget_bytes = budget_bytes
        self.budget_entries = budget_entries
        self.quarantine_entries = quarantine_entries
        self._memory: dict = {}
        #: Keys this process has touched (get/put) — never evicted.
        self.pinned: Set[str] = set()
        self.hits = 0
        self.misses = 0
        self.corrupt = 0
        self.put_failures = 0
        self.evicted = 0
        self.quarantine_pruned = 0
        self.quarantined: Dict[str, int] = {}

    def counters(self) -> dict:
        """The bookkeeping counters as a plain mapping.

        Keys (``hits``, ``misses``, ``corrupt``, ``put_failures``,
        ``quarantined``, ``evicted``, ``quarantine_pruned``) are
        stable — this is the shape the metrics registry
        (:mod:`repro.obs.metrics`) surfaces under ``cache.*``.
        ``quarantined`` equals ``corrupt`` (it is the same total,
        kept under the name the quarantine directory uses); the
        per-reason breakdown lives in :attr:`quarantined`.
        """
        return {
            "corrupt": self.corrupt,
            "evicted": self.evicted,
            "hits": self.hits,
            "misses": self.misses,
            "put_failures": self.put_failures,
            "quarantine_pruned": self.quarantine_pruned,
            "quarantined": sum(self.quarantined.values()),
        }

    def _file(self, key: str) -> Path:
        return self.path / f"{key}.pkl"

    def _quarantine(self, file: Path, key: str, reason: str) -> None:
        """Move a bad entry aside, named after its failure reason.

        ``<cache>/quarantine/<key>.<reason>.pkl`` — out of the lookup
        path (so it can never be trusted again) but preserved for
        diagnosis (``repro verify`` lists quarantined entries by
        reason).  If even the move fails the entry is deleted: an
        invalid file must never remain where ``get`` would retry it
        forever.
        """
        self.corrupt += 1
        self.quarantined[reason] = self.quarantined.get(reason, 0) + 1
        try:
            directory = self.path / "quarantine"
            directory.mkdir(exist_ok=True)
            os.replace(file, directory / f"{key}.{reason}.pkl")
        except OSError:
            file.unlink(missing_ok=True)
            return
        if self.quarantine_entries is not None:
            pruned = retention.gc_quarantine(
                directory, budget_entries=self.quarantine_entries,
            )
            self.quarantine_pruned += pruned.quarantine_pruned

    def _load_disk(self, key: str) -> Optional[CoreStats]:
        """Validate and load one on-disk entry (shared by ``get`` and
        ``__contains__`` so both agree on what counts as present).

        An entry that fails its seal check (torn, truncated, legacy
        unsealed, simulator-version drift), fails to unpickle, or
        carries numerically broken statistics is quarantined with its
        reason, counted, and reported as absent.
        """
        if self.path is None:
            return None
        file = self._file(key)
        try:
            blob = file.read_bytes()
        except FileNotFoundError:
            return None
        except OSError:
            return None
        try:
            payload = check_seal(
                blob, kind=CACHE_ENTRY_KIND, schema=CACHE_ENTRY_SCHEMA,
                simulator_version=self.version,
            )
        except SealError as exc:
            self._quarantine(file, key, exc.reason)
            return None
        try:
            stats = pickle.loads(payload)
        except Exception:
            self._quarantine(file, key, "unpicklable")
            return None
        validate = getattr(stats, "validate", None)
        if callable(validate):
            try:
                validate()
            except StatsInvalid:
                self._quarantine(file, key, "invalid-stats")
                return None
        self._memory[key] = stats
        self.pinned.add(key)
        # Refresh the entry's recency so budget eviction is true LRU:
        # "old" means unused, not merely written long ago.
        try:
            os.utime(file)
        except OSError:
            pass
        return stats

    def get(self, key: str) -> Optional[CoreStats]:
        """The cached stats for ``key``, or ``None`` on a miss."""
        if key in self._memory:
            self.hits += 1
            self.pinned.add(key)
            return self._memory[key]
        stats = self._load_disk(key)
        if stats is not None:
            self.hits += 1
            return stats
        self.misses += 1
        return None

    def put(self, key: str, stats: CoreStats) -> None:
        """Store ``stats`` under ``key`` in both layers (sealed on disk).

        The on-disk write goes through the sanctioned atomic-publish
        seam (:func:`repro.guard.fsfault.publish_bytes`): under an
        I/O fault — injected or real — the entry name is never
        visible torn, and the ``OSError`` propagates so the engine's
        ``put_failures`` accounting (the "cache writes are down"
        switch) can degrade loudly.  A successful put then enforces
        the disk budget, evicting LRU entries not pinned by this
        process.
        """
        self._memory[key] = stats
        self.pinned.add(key)
        if self.path is not None:
            blob = make_seal(
                pickle.dumps(stats, pickle.HIGHEST_PROTOCOL),
                kind=CACHE_ENTRY_KIND, schema=CACHE_ENTRY_SCHEMA,
                simulator_version=self.version,
            )
            fsfault.publish_bytes(self._file(key), blob)
            self._enforce_budget()

    def _enforce_budget(self) -> None:
        """Evict LRU unpinned entries until the budget is met."""
        if self.budget_bytes is None and self.budget_entries is None:
            return
        report = retention.gc_cache(
            self.path, budget_bytes=self.budget_bytes,
            budget_entries=self.budget_entries, pinned=self.pinned,
        )
        self.evicted += report.cache_evicted

    def __contains__(self, key: str) -> bool:
        """Membership that agrees with :meth:`get`.

        An on-disk file only counts if it actually loads: a torn entry
        (which ``get`` would delete and miss on) must not answer
        ``True`` here, or callers would skip work they still need to
        do.
        """
        if key in self._memory:
            return True
        return self._load_disk(key) is not None

    def __len__(self) -> int:
        """Number of distinct entries across both layers."""
        keys = set(self._memory)
        if self.path is not None:
            keys.update(f.stem for f in sorted(self.path.glob("*.pkl")))
        return len(keys)
