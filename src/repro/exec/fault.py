"""Failure semantics for the execution engine.

A production-scale screen is thousands of independent simulation
cells; at that scale individual cells *will* fail — a worker gets
OOM-killed, a task hangs, a flaky filesystem throws.  This module
defines the vocabulary :func:`~repro.exec.run_grid` uses to keep one
bad cell from destroying the other 87:

* :class:`RetryPolicy` — how many times a failing cell is
  re-attempted and how long to back off between attempts.  The sleep
  function is injectable so tests (and deterministic replays) never
  actually wait.
* :class:`FailureRecord` — the structured post-mortem of one cell
  that exhausted its attempts: which task, what kind of failure, what
  the error said, how many attempts were burned.
* :class:`GridResult` — the list of task-ordered results
  :func:`run_grid` returns, with ``.failures`` carrying the records
  for any skipped cells (empty on a fully successful grid).
* :class:`GridError` — raised when a cell fails permanently under
  ``on_error="raise"``/``"retry"``; wraps the :class:`FailureRecord`.

Failure *kinds* are deliberately coarse — ``"error"`` (the task
raised), ``"timeout"`` (the per-task wall-clock budget expired), and
``"worker-died"`` (the worker process vanished mid-task) — because
that is exactly the set of conditions a supervisor can distinguish
without cooperation from the failing code.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass, field
from typing import Callable, Iterable, List, Optional

__all__ = [
    "FailureRecord",
    "GridError",
    "GridResult",
    "RetryPolicy",
    "ON_ERROR_MODES",
]

#: Valid values for ``run_grid(on_error=...)``.
ON_ERROR_MODES = ("raise", "retry", "skip")


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retry with exponential backoff and seeded jitter.

    Parameters
    ----------
    max_attempts:
        Total tries per cell, the first attempt included; ``1`` means
        no retries.
    backoff:
        Delay in seconds before the first retry.  ``0`` (the default)
        retries immediately — simulation failures are usually either
        deterministic (retry is pointless, the bound stops it) or
        infrastructure blips (retry succeeds at once).
    backoff_factor:
        Multiplier applied for each further retry.
    max_backoff:
        Ceiling on any single delay.
    jitter:
        Fraction of each delay to spread deterministically, in
        ``[0, 1]``.  After a correlated failure burst — a mass lease
        expiry in :mod:`repro.dist`, a worker pool losing several
        cells to one dead host — every affected task computes the
        same backoff and would otherwise resubmit in lockstep (a
        retry stampede).  With jitter ``j``, the delay for a task is
        scaled into ``[delay * (1 - j), delay]`` by a value that is a
        pure function of ``(jitter_seed, token, failures)`` — no
        wall-clock or OS entropy, so replays stay bit-identical.
    jitter_seed:
        Seed of the jitter hash; two policies with different seeds
        spread the same tokens differently.
    sleep:
        The function that actually waits; injectable so tests and
        deterministic replays can record delays instead of sleeping.
    """

    max_attempts: int = 3
    backoff: float = 0.0
    backoff_factor: float = 2.0
    max_backoff: float = 30.0
    jitter: float = 0.0
    jitter_seed: int = 0
    sleep: Callable[[float], None] = field(
        default=time.sleep, repr=False, compare=False
    )

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ValueError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.backoff < 0:
            raise ValueError(f"backoff must be >= 0, got {self.backoff}")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError(
                f"jitter must be in [0, 1], got {self.jitter}"
            )

    def jitter_unit(self, failures: int, token=None) -> float:
        """The deterministic jitter draw in ``[0, 1)`` for one retry.

        A pure function of ``(jitter_seed, token, failures)`` — the
        sha-256 of the triple, scaled — so the same task backs off by
        the same amount in every replay, while distinct tokens (task
        indices, task keys) de-correlate from each other.
        """
        blob = f"{self.jitter_seed}:{token}:{failures}".encode("utf-8")
        digest = hashlib.sha256(blob).digest()
        return int.from_bytes(digest[:8], "big") / 2 ** 64

    def delay(self, failures: int, token=None) -> float:
        """Seconds to wait after the ``failures``-th failure (1-based).

        ``token`` identifies the retrying task (its grid index or task
        key) for jitter de-correlation; irrelevant when ``jitter`` is
        0.
        """
        if self.backoff <= 0 or failures < 1:
            return 0.0
        raw = self.backoff * self.backoff_factor ** (failures - 1)
        raw = min(raw, self.max_backoff)
        if self.jitter > 0:
            raw *= 1.0 - self.jitter * self.jitter_unit(failures, token)
        return raw

    def pause(self, failures: int, token=None) -> None:
        """Sleep the backoff delay for the ``failures``-th failure."""
        delay = self.delay(failures, token)
        if delay > 0:
            self.sleep(delay)


#: The policy used when a caller asks for retries without configuring
#: them (``on_error="retry"``/``"skip"`` with ``retry=None``).
DEFAULT_RETRY_POLICY = RetryPolicy()

#: The no-retry policy behind the default fail-fast mode.
NO_RETRY_POLICY = RetryPolicy(max_attempts=1)


@dataclass(frozen=True)
class FailureRecord:
    """One cell's permanent failure, after all attempts were spent.

    Attributes
    ----------
    index:
        The task's position in the grid (row-major, the same index the
        results list uses) — callers map it back to a (config, trace)
        cell.
    kind:
        ``"error"`` | ``"timeout"`` | ``"worker-died"``.
    error_type:
        Exception class name for ``"error"`` failures, else ``""``.
    message:
        Human-readable description of the final failure.
    attempts:
        Attempts consumed before giving up.
    """

    index: int
    kind: str
    error_type: str
    message: str
    attempts: int

    def describe(self) -> str:
        detail = f"{self.error_type}: {self.message}" if self.error_type \
            else self.message
        return (
            f"task {self.index} failed permanently after "
            f"{self.attempts} attempt(s) [{self.kind}] — {detail}"
        )


class GridError(RuntimeError):
    """A grid cell failed permanently and the mode said to raise.

    Carries the :class:`FailureRecord` as ``.record`` so callers can
    still identify the cell programmatically.
    """

    def __init__(self, record: FailureRecord):
        super().__init__(record.describe())
        self.record = record


class GridResult(list):
    """Task-ordered results of one grid, plus per-cell failure records.

    Behaves exactly like the plain list :func:`run_grid` has always
    returned (indexing, iteration, equality against lists), so every
    existing caller keeps working.  Under ``on_error="skip"`` a
    permanently failed cell holds ``None`` and is described by an
    entry in :attr:`failures`.
    """

    def __init__(self, results: Iterable = (),
                 failures: Iterable[FailureRecord] = ()):
        super().__init__(results)
        self.failures: List[FailureRecord] = list(failures)

    @property
    def ok(self) -> bool:
        """True when every cell completed."""
        return not self.failures

    def failed_indices(self) -> List[int]:
        """Grid indices of the cells that failed permanently."""
        return sorted(f.index for f in self.failures)

    def failure_at(self, index: int) -> Optional[FailureRecord]:
        """The failure record for ``index``, if that cell failed."""
        for record in self.failures:
            if record.index == index:
                return record
        return None
