"""Deterministic fault injection for the execution engine.

The fault-tolerance machinery in :mod:`repro.exec.engine` and
:mod:`repro.dist` — retries, per-task timeouts, dead-worker
resubmission, lease reclamation, journal resume — is only trustworthy
if it can be *demonstrated*, repeatedly and bit-for-bit, against real
failures.  This module is that test substrate: an injector that
raises, delays, stalls, kills the executing worker process, or
simulates a Ctrl-C at scheduled task indices, deterministically.

Determinism comes from scheduling faults by **(task index, attempt
number)** rather than wall-clock or randomness at fire time: the
engine passes both to :meth:`FaultInjector.fire` before executing a
cell, and a fault fires iff ``attempt < fault.attempts``.  A
transient fault (``attempts=1``) therefore fails the first try and
succeeds on retry or resubmission; a permanent one
(``attempts=ALWAYS``) exhausts any retry budget.  Because attempt
numbers are assigned by the supervising parent process, the schedule
replays identically across worker pools, in-process runs, and journal
resumes — no shared state between processes is needed.

The injector is installed process-wide with :func:`install` /
:func:`uninstall` or the :func:`injected` context manager; a fork
pool started while one is installed inherits it.  For CI and CLI
experiments, ``REPRO_FAULT_SPEC`` (see :meth:`FaultInjector.from_spec`)
installs one automatically at the first grid run.
"""

from __future__ import annotations

import os
import random
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional, Tuple

__all__ = [
    "ALWAYS",
    "Fault",
    "FaultInjector",
    "InjectedFault",
    "injected",
    "install",
    "uninstall",
    "active",
]

#: ``Fault.attempts`` value meaning "fire on every attempt".
ALWAYS = 10 ** 9

#: Exit status used when a kill-fault terminates a worker — visible in
#: the supervisor's logs and distinct from normal termination.
KILL_EXIT_CODE = 87

_ACTIONS = ("raise", "delay", "kill", "interrupt", "stall")


class InjectedFault(RuntimeError):
    """The error raised by ``raise`` faults (and in-process kills)."""


@dataclass(frozen=True)
class Fault:
    """One scheduled fault.

    Attributes
    ----------
    action:
        ``"raise"`` — raise :class:`InjectedFault`;
        ``"delay"`` — sleep ``seconds`` before executing (to trip
        per-task timeouts);
        ``"kill"`` — ``os._exit`` the executing worker process (in an
        in-process run, where exiting would kill the experiment
        itself, it degrades to :class:`InjectedFault`);
        ``"interrupt"`` — raise :class:`KeyboardInterrupt`, the
        scripted stand-in for Ctrl-C in resume tests;
        ``"stall"`` — sleep ``seconds`` through the injector's
        *uninstrumented* :attr:`FaultInjector.stall_sleep` clock.  In
        a distributed worker this simulates a hang: the worker stops
        heartbeating without dying (the worker routes ``stall_sleep``
        through its heartbeat-suppressing sleeper), so the broker's
        missed-heartbeat detection — not mere lease expiry — is what
        has to recover the task.  A plain ``delay`` keeps heartbeats
        flowing and exercises lease expiry instead.
    attempts:
        Fire while the task's attempt number is below this; ``1``
        (default) makes the fault transient, :data:`ALWAYS` permanent.
    seconds:
        Sleep length for ``"delay"``.
    """

    action: str
    attempts: int = 1
    seconds: float = 0.0

    def __post_init__(self):
        if self.action not in _ACTIONS:
            raise ValueError(
                f"unknown fault action {self.action!r}; "
                f"expected one of {_ACTIONS}"
            )
        if self.attempts < 1:
            raise ValueError("attempts must be >= 1")


class FaultInjector:
    """A deterministic schedule of faults, keyed by task index.

    Parameters
    ----------
    schedule:
        task index -> :class:`Fault`.
    sleep:
        Clock used by ``delay`` faults; injectable for fast tests.
    stall_sleep:
        Clock used by ``stall`` faults.  Kept separate from ``sleep``
        so a distributed worker can leave it *un*-instrumented (no
        heartbeat pumping) while its ``delay`` sleeps stay observable
        — the difference between a worker that looks hung and one
        that is merely slow.

    Attributes
    ----------
    fired:
        Log of ``(index, attempt, action)`` triples, in fire order.
        Per-process: a fork worker's log dies with the worker, so
        assert against it only for in-process runs.
    """

    def __init__(self, schedule: Mapping[int, Fault], *,
                 sleep: Callable[[float], None] = time.sleep,
                 stall_sleep: Callable[[float], None] = time.sleep):
        self.schedule: Dict[int, Fault] = dict(schedule)
        self.sleep = sleep
        self.stall_sleep = stall_sleep
        self.fired: List[Tuple[int, int, str]] = []

    @classmethod
    def seeded(cls, seed: int, n_tasks: int, *, raises: int = 0,
               kills: int = 0, delays: int = 0, stalls: int = 0,
               raise_attempts: int = 1, delay_seconds: float = 0.05,
               stall_seconds: float = 0.25,
               ) -> "FaultInjector":
        """A reproducible random schedule over ``n_tasks`` cells.

        Picks ``raises + kills + delays + stalls`` distinct task
        indices with ``random.Random(seed)`` and assigns the actions
        in that order — the same seed always yields the same schedule.
        """
        wanted = raises + kills + delays + stalls
        if wanted > n_tasks:
            raise ValueError(
                f"cannot schedule {wanted} faults over {n_tasks} tasks"
            )
        rng = random.Random(seed)
        indices = rng.sample(range(n_tasks), wanted)
        schedule: Dict[int, Fault] = {}
        cursor = 0
        for _ in range(raises):
            schedule[indices[cursor]] = Fault("raise", raise_attempts)
            cursor += 1
        for _ in range(kills):
            schedule[indices[cursor]] = Fault("kill")
            cursor += 1
        for _ in range(delays):
            schedule[indices[cursor]] = Fault(
                "delay", seconds=delay_seconds
            )
            cursor += 1
        for _ in range(stalls):
            schedule[indices[cursor]] = Fault(
                "stall", seconds=stall_seconds
            )
            cursor += 1
        return cls(schedule)

    @classmethod
    def from_spec(cls, spec: str) -> "FaultInjector":
        """Parse a compact schedule string (the CI/CLI entry point).

        ``spec`` is comma-separated ``action:index[:attempts[:seconds]]``
        items, e.g. ``"kill:5,raise:12:2,delay:20:1:0.25"`` — kill the
        worker running task 5 once, fail task 12 on its first two
        attempts, delay task 20's first attempt by 0.25 s.  ``attempts``
        may be ``always`` for a permanent fault.
        """
        schedule: Dict[int, Fault] = {}
        for item in spec.split(","):
            item = item.strip()
            if not item:
                continue
            parts = item.split(":")
            if len(parts) < 2:
                raise ValueError(
                    f"bad fault spec item {item!r}; "
                    "use action:index[:attempts[:seconds]]"
                )
            action = parts[0].strip().lower()
            index = int(parts[1])
            attempts = 1
            if len(parts) > 2 and parts[2].strip():
                field = parts[2].strip().lower()
                attempts = ALWAYS if field == "always" else int(field)
            seconds = float(parts[3]) if len(parts) > 3 else 0.0
            schedule[index] = Fault(action, attempts, seconds)
        return cls(schedule)

    def fire(self, index: int, attempt: int, *,
             in_worker: bool = False) -> None:
        """Apply the fault scheduled for ``(index, attempt)``, if any.

        Called by the engine immediately before executing a cell.
        """
        fault = self.schedule.get(index)
        if fault is None or attempt >= fault.attempts:
            return
        self.fired.append((index, attempt, fault.action))
        if fault.action == "delay":
            self.sleep(fault.seconds)
        elif fault.action == "stall":
            self.stall_sleep(fault.seconds)
        elif fault.action == "kill":
            if in_worker:
                os._exit(KILL_EXIT_CODE)  # repro: noqa[REP204] -- kill fault simulates SIGKILL; recovery must come from the spool
            # In-process there is no worker to sacrifice; fail the
            # task instead so retry still has something to chew on.
            raise InjectedFault(
                f"injected in-process kill at task {index} "
                f"(attempt {attempt})"
            )
        elif fault.action == "interrupt":
            raise KeyboardInterrupt(
                f"injected interrupt at task {index}"
            )
        else:
            raise InjectedFault(
                f"injected failure at task {index} (attempt {attempt})"
            )


#: The process-wide injector, if any.  Fork workers inherit it.
_ACTIVE: Optional[FaultInjector] = None
_ENV_CHECKED = False

#: Environment variable holding a ``from_spec`` schedule; read once,
#: at the first grid execution with no explicitly installed injector.
ENV_VAR = "REPRO_FAULT_SPEC"


def install(injector: FaultInjector) -> None:
    """Make ``injector`` the process-wide active injector."""
    global _ACTIVE  # repro: noqa[REP004] -- process-wide by design; fork workers inherit the parent's injector
    _ACTIVE = injector


def uninstall() -> None:
    """Remove the active injector (idempotent)."""
    global _ACTIVE  # repro: noqa[REP004] -- process-wide by design, see install()
    _ACTIVE = None


def active() -> Optional[FaultInjector]:
    """The active injector, auto-installing from ``REPRO_FAULT_SPEC``.

    The environment is consulted once per process; explicit
    :func:`install` / :func:`uninstall` always wins afterwards.
    """
    global _ACTIVE, _ENV_CHECKED  # repro: noqa[REP004] -- once-per-process memoisation of the env probe
    if _ACTIVE is None and not _ENV_CHECKED:
        _ENV_CHECKED = True
        spec = os.environ.get(ENV_VAR)  # repro: noqa[REP006] -- REPRO_FAULT_SPEC is the sanctioned CI/CLI fault-schedule entry point
        if spec:
            _ACTIVE = FaultInjector.from_spec(spec)
    return _ACTIVE


@contextmanager
def injected(injector: FaultInjector):
    """Scope an injector to a ``with`` block (used by the test suite)."""
    install(injector)
    try:
        yield injector
    finally:
        uninstall()
