"""Parallel, cached execution of simulation grids.

Every experiment in this repository — the 88-run Plackett-Burman
screen, its foldover and replicated variants, parameter sweeps,
iterative refinement, enhancement before/after studies — reduces to
the same primitive: simulate a grid of independent (configuration,
trace) pairs and collect one :class:`~repro.cpu.stats.CoreStats` per
cell.  :func:`run_grid` is that primitive, shared by all of them.

Guarantees:

* **Determinism** — results are returned in task order, keyed by task
  index rather than completion order, so downstream effects and ranks
  are bit-identical whether the grid ran on 1 worker or 16.
* **Parallelism** — with ``jobs >= 2`` the grid fans out across a
  ``multiprocessing`` pool (fork start method; workers receive the
  task list once, at pool start, and are handed chunked index ranges,
  so per-task IPC is an integer out and a small stats object back).
* **Caching** — with a :class:`~repro.exec.cache.ResultCache`, each
  task is first looked up by its content hash (see
  :func:`~repro.exec.cache.task_key`); only misses are simulated, and
  fresh results are written back for the next run.
* **Graceful fallback** — ``jobs=1``, a single pending task, or a
  platform without ``fork`` (e.g. Windows) all take the plain
  in-process path with identical results.
"""

from __future__ import annotations

import multiprocessing
from dataclasses import dataclass
from typing import (
    Callable, FrozenSet, Iterable, List, Optional, Sequence,
)

from repro.cpu import MachineConfig, SIMULATOR_VERSION
from repro.cpu.pipeline import simulate
from repro.cpu.stats import CoreStats
from repro.workloads import Trace

from .cache import ResultCache, task_key

__all__ = ["SimTask", "run_grid", "grid_tasks"]


@dataclass(frozen=True, eq=False)
class SimTask:
    """One independent cell of a simulation grid.

    Fields mirror :func:`repro.cpu.simulate`'s inputs; the precompute
    table is a ``frozenset`` so tasks stay hashable and immutable.
    """

    config: MachineConfig
    trace: Trace
    precompute_table: Optional[FrozenSet[int]] = None
    prefetch_lines: int = 0
    warmup: bool = True


def grid_tasks(
    configs: Sequence[MachineConfig],
    traces,
    *,
    precompute_tables=None,
    prefetch_lines: int = 0,
    warmup: bool = True,
) -> List[SimTask]:
    """The row-major (config, benchmark) task list for a full grid.

    Task ``i * len(traces) + j`` is configuration ``i`` on benchmark
    ``j`` (in ``traces`` iteration order) — the same nesting the serial
    loops always used, so positions map back trivially.
    """
    precompute_tables = precompute_tables or {}
    tasks = []
    for config in configs:
        for bench, trace in traces.items():
            table = precompute_tables.get(bench)
            tasks.append(SimTask(
                config=config,
                trace=trace,
                precompute_table=(
                    frozenset(table) if table is not None else None
                ),
                prefetch_lines=prefetch_lines,
                warmup=warmup,
            ))
    return tasks


def _execute(task: SimTask) -> CoreStats:
    table = (
        set(task.precompute_table)
        if task.precompute_table is not None else None
    )
    return simulate(
        task.config, task.trace,
        precompute_table=table,
        warmup=task.warmup,
        prefetch_lines=task.prefetch_lines,
    )


#: Task list seen by pool workers, installed once per worker at pool
#: start so per-task messages carry only an index, never a trace.
_WORKER_TASKS: Optional[List[SimTask]] = None


def _init_worker(tasks: List[SimTask]) -> None:
    global _WORKER_TASKS
    _WORKER_TASKS = tasks


def _run_at(index: int):
    return index, _execute(_WORKER_TASKS[index])


def _fork_available() -> bool:
    return "fork" in multiprocessing.get_all_start_methods()


def run_grid(
    tasks: Iterable[SimTask],
    *,
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
    progress: Optional[Callable[[int, int], None]] = None,
    version: str = SIMULATOR_VERSION,
    chunk_size: Optional[int] = None,
) -> List[CoreStats]:
    """Simulate every task; return stats in task order.

    Parameters
    ----------
    tasks:
        The grid cells to run (order defines result order).
    jobs:
        Worker processes.  ``1`` (the default) runs in-process; higher
        values fan pending tasks out over a fork-based pool.  On
        platforms without ``fork`` the engine silently falls back to
        in-process execution rather than paying spawn's re-import and
        task-pickling costs.
    cache:
        Optional :class:`ResultCache`; hits skip simulation entirely,
        misses are computed and written back.
    progress:
        ``(done, total)`` callback, invoked once per finished task
        (cache hits included) from the calling process.
    version:
        Simulator version tag mixed into cache keys; defaults to
        :data:`~repro.cpu.SIMULATOR_VERSION`.
    chunk_size:
        Tasks handed to a worker per request; defaults to roughly a
        quarter of an even share so stragglers rebalance.
    """
    tasks = list(tasks)
    total = len(tasks)
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    results: List[Optional[CoreStats]] = [None] * total
    done = 0

    keys: List[Optional[str]] = [None] * total
    pending: List[int] = []
    for i, task in enumerate(tasks):
        if cache is not None:
            keys[i] = task_key(task, version=version)
            hit = cache.get(keys[i])
            if hit is not None:
                results[i] = hit
                done += 1
                if progress is not None:
                    progress(done, total)
                continue
        pending.append(i)

    def _record(i: int, stats: CoreStats) -> int:
        results[i] = stats
        if cache is not None:
            cache.put(keys[i], stats)
        if progress is not None:
            progress(done + 1, total)
        return done + 1

    if jobs > 1 and len(pending) > 1 and _fork_available():
        workers = min(jobs, len(pending))
        if chunk_size is None:
            chunk_size = max(1, len(pending) // (workers * 4))
        context = multiprocessing.get_context("fork")
        with context.Pool(
            workers, initializer=_init_worker, initargs=(tasks,)
        ) as pool:
            for i, stats in pool.imap_unordered(
                _run_at, pending, chunksize=chunk_size
            ):
                done = _record(i, stats)
    else:
        for i in pending:
            done = _record(i, _execute(tasks[i]))
    return results
