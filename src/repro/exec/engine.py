"""Parallel, cached, fault-tolerant execution of simulation grids.

Every experiment in this repository — the 88-run Plackett-Burman
screen, its foldover and replicated variants, parameter sweeps,
iterative refinement, enhancement before/after studies — reduces to
the same primitive: simulate a grid of independent (configuration,
trace) pairs and collect one :class:`~repro.cpu.stats.CoreStats` per
cell.  :func:`run_grid` is that primitive, shared by all of them.

Guarantees:

* **Determinism** — results are returned in task order, keyed by task
  index rather than completion order, so downstream effects and ranks
  are bit-identical whether the grid ran on 1 worker or 16, and
  whether or not any cell was retried, resubmitted after a worker
  death, or restored from a journal.
* **Parallelism** — with ``jobs >= 2`` the grid fans out across a
  supervised pool of fork workers.  Each worker holds one task at a
  time; the supervisor tracks per-task deadlines, detects workers
  that die or hang, resubmits their in-flight cells (bounded), and
  falls back to in-process execution if the pool keeps losing
  workers.
* **Fault tolerance** — a :class:`~repro.exec.fault.RetryPolicy`
  bounds re-attempts of failing cells; ``on_error`` chooses between
  failing fast (``"raise"``), retrying then failing (``"retry"``),
  and annotating the cell and carrying on (``"skip"``), in which case
  the returned :class:`~repro.exec.fault.GridResult` holds ``None``
  for the failed cells and a
  :class:`~repro.exec.fault.FailureRecord` for each in
  ``.failures``.
* **Durability** — ``journal=`` appends every completed cell to an
  append-only :class:`~repro.exec.journal.Journal`; an interrupted
  grid resumes from its completed cells even with no result cache
  configured.
* **Caching** — with a :class:`~repro.exec.cache.ResultCache`, each
  task is first looked up by its content hash (see
  :func:`~repro.exec.cache.task_key`); only misses are simulated, and
  fresh results are written back for the next run.  A failing cache
  write (disk full, read-only directory) is reported once and never
  aborts the grid.
* **Graceful fallback** — ``jobs=1``, a single pending task, or a
  platform without ``fork`` (e.g. Windows) all take the plain
  in-process path with identical results.
* **Observability** — ``telemetry=`` (a
  :class:`repro.obs.Telemetry`) records the full task lifecycle as
  spans (queue wait, worker run, cache/journal restores, retries,
  timeouts, worker deaths) and counters (tasks
  completed/failed/retried, cache hits/misses, queue depth, per-task
  wall seconds).  Telemetry is strictly observational: every hook runs
  on the same guarded path as the ``progress`` callback — a raising
  observer warns once and is then ignored — and results are
  bit-identical with telemetry on or off.
"""

from __future__ import annotations

import multiprocessing
import os
import queue as queue_module
import time
import warnings
from collections import deque
from dataclasses import dataclass
from typing import (
    Callable, Dict, FrozenSet, Iterable, List, Optional, Sequence,
    Set, Tuple, Union,
)

from repro.cpu import MachineConfig, SIMULATOR_VERSION
from repro.cpu.pipeline import simulate
from repro.cpu.stats import CoreStats
from repro.guard.audit import AuditPolicy, coerce_policy, verify_restored
from repro.guard.errors import AuditMismatch
from repro.workloads import Trace

from . import faultinject
from .cache import ResultCache, task_key
from .fault import (
    DEFAULT_RETRY_POLICY,
    NO_RETRY_POLICY,
    ON_ERROR_MODES,
    FailureRecord,
    GridError,
    GridResult,
    RetryPolicy,
)
from .journal import Journal

__all__ = ["SimTask", "run_grid", "grid_tasks"]


@dataclass(frozen=True, eq=False)
class SimTask:
    """One independent cell of a simulation grid.

    Fields mirror :func:`repro.cpu.simulate`'s inputs; the precompute
    table is a ``frozenset`` so tasks stay hashable and immutable.
    ``core`` picks the simulator implementation
    (:data:`repro.cpu.SIMULATOR_CORES`) — a speed knob, not a model
    knob, since all cores are field-exact equivalent; only its
    normalized family enters the cache key (see
    :func:`repro.exec.cache.task_key`).
    """

    config: MachineConfig
    trace: Trace
    precompute_table: Optional[FrozenSet[int]] = None
    prefetch_lines: int = 0
    warmup: bool = True
    core: str = "batched"


def grid_tasks(
    configs: Sequence[MachineConfig],
    traces,
    *,
    precompute_tables=None,
    prefetch_lines: int = 0,
    warmup: bool = True,
    core: str = "batched",
) -> List[SimTask]:
    """The row-major (config, benchmark) task list for a full grid.

    Task ``i * len(traces) + j`` is configuration ``i`` on benchmark
    ``j`` (in ``traces`` iteration order) — the same nesting the serial
    loops always used, so positions map back trivially.
    """
    precompute_tables = precompute_tables or {}
    tasks = []
    for config in configs:
        for bench, trace in traces.items():
            table = precompute_tables.get(bench)
            tasks.append(SimTask(
                config=config,
                trace=trace,
                precompute_table=(
                    frozenset(table) if table is not None else None
                ),
                prefetch_lines=prefetch_lines,
                warmup=warmup,
                core=core,
            ))
    return tasks


def _execute(task: SimTask) -> CoreStats:
    table = (
        set(task.precompute_table)
        if task.precompute_table is not None else None
    )
    return simulate(
        task.config, task.trace,
        precompute_table=table,
        warmup=task.warmup,
        prefetch_lines=task.prefetch_lines,
        core=task.core,
    )


#: True in pool worker processes; lets kill-faults know whether there
#: is a sacrificial process to exit.
_IN_WORKER = False


def _execute_cell(task: SimTask, index: int, attempt: int) -> CoreStats:
    """Execute one cell, giving the fault injector its shot first."""
    injector = faultinject.active()
    if injector is not None:
        injector.fire(index, attempt, in_worker=_IN_WORKER)
    return _execute(task)


def _fork_available() -> bool:
    return "fork" in multiprocessing.get_all_start_methods()


# ---------------------------------------------------------------------------
# Supervised worker pool
# ---------------------------------------------------------------------------

#: Supervisor poll period: how often deadlines and worker liveness are
#: checked while waiting for results.
_POLL_SECONDS = 0.05

#: Per-task resubmissions granted after a worker death, independent of
#: the error retry policy (a dying worker is an infrastructure fault,
#: not evidence against the task).
_MAX_RESUBMITS = 2


def _worker_main(tasks, inbox, results, worker_id) -> None:
    """Pool worker loop: one task at a time, results keyed by index.

    Any exception — including an injected one — is reported as a
    structured error result rather than crashing the worker, so the
    supervisor can apply the retry policy.  Only an actual process
    death (kill fault, OOM, segfault) takes the worker down.
    """
    global _IN_WORKER  # repro: noqa[REP004] -- per-process flag, set only in the child after fork
    _IN_WORKER = True
    while True:
        message = inbox.get()
        if message is None:
            return
        index, attempt = message
        try:
            stats = _execute_cell(tasks[index], index, attempt)
            payload = (worker_id, index, True, stats)
        except BaseException as exc:  # repro: noqa[REP007] -- worker must report every failure (incl. injected interrupts) to the supervisor, which re-applies interrupt semantics
            payload = (worker_id, index, False,
                       (type(exc).__name__, str(exc)))
        try:
            results.put(payload)
        except Exception:  # pragma: no cover - broken result pipe
            os._exit(1)  # repro: noqa[REP204] -- result pipe is gone; nothing a dying worker can report survives cleanup


class _Worker:
    """One supervised worker process and its dispatch state."""

    def __init__(self, context, tasks, results, worker_id: int):
        self.inbox = context.SimpleQueue()
        self.process = context.Process(
            target=_worker_main,
            args=(tasks, self.inbox, results, worker_id),
            daemon=True,
        )
        self.process.start()
        #: (index, deadline) of the in-flight task, or None when idle.
        self.current: Optional[Tuple[int, Optional[float]]] = None

    def dispatch(self, index: int, attempt: int,
                 timeout: Optional[float]) -> None:
        deadline = (time.monotonic() + timeout) if timeout else None
        self.current = (index, deadline)
        self.inbox.put((index, attempt))

    def stop(self) -> None:
        """Best-effort shutdown: polite for idle, forceful for busy."""
        if self.process.is_alive():
            if self.current is None:
                try:
                    self.inbox.put(None)
                except Exception:
                    self.process.terminate()
            else:
                self.process.terminate()
        self.process.join(timeout=1.0)
        if self.process.is_alive():  # pragma: no cover - stubborn child
            self.process.kill()
            self.process.join(timeout=1.0)


class _PoolUnhealthy(Exception):
    """Internal: too many worker deaths; degrade to in-process."""


# ---------------------------------------------------------------------------
# Guarded observation (progress callback + telemetry)
# ---------------------------------------------------------------------------

class _Observer:
    """Fans engine events out to the progress callback and telemetry,
    with every call guarded.

    Observation must never abort execution: a user ``progress``
    callback that raises, or a broken tracer/metrics hook, is reported
    once as a :class:`RuntimeWarning` and silenced thereafter — the
    grid carries on either way.  All methods are no-ops when the
    corresponding sink is absent, so an un-instrumented run pays a
    single attribute check per event.

    The telemetry argument is duck-typed (``tracer`` / ``metrics`` /
    ``simulator_counters`` / ``stream`` attributes) so this module
    needs no import of :mod:`repro.obs`.  With a ``stream`` lane
    attached, progress (done/total) is additionally appended to the
    event log — the ETA input the fleet view reads; spans and metrics
    reach the stream through their own sinks.
    """

    def __init__(self, progress, telemetry):
        self._progress = progress
        self.tracer = getattr(telemetry, "tracer", None)
        self.metrics = getattr(telemetry, "metrics", None)
        self.stream = getattr(telemetry, "stream", None)
        self.simulator_counters = (
            self.metrics is not None
            and bool(getattr(telemetry, "simulator_counters", False))
        )
        self._warned = False

    def _guard(self, call, *args, **kwargs):
        try:
            return call(*args, **kwargs)
        except Exception as exc:
            if not self._warned:
                self._warned = True
                warnings.warn(
                    "progress/telemetry callback failed "
                    f"({type(exc).__name__}: {exc}); suppressing "
                    "further observer errors — the grid continues",
                    RuntimeWarning,
                    stacklevel=3,
                )
            return None

    def progress(self, done: int, total: int) -> None:
        if self._progress is not None:
            self._guard(self._progress, done, total)
        if self.stream is not None:
            self._guard(self.stream.progress, done, total)

    # -- spans ------------------------------------------------------

    def begin(self, name, category, **attrs):
        if self.tracer is None:
            return None
        return self._guard(self.tracer.begin, name, category, **attrs)

    def begin_async(self, name, category, **attrs):
        if self.tracer is None:
            return None
        return self._guard(
            self.tracer.begin, name, category, asynchronous=True,
            **attrs,
        )

    def finish(self, span, **attrs) -> None:
        if self.tracer is not None and span is not None:
            self._guard(self.tracer.finish, span, **attrs)

    def finish_open(self, span, **attrs) -> None:
        """Finish ``span`` only if nothing finished it already."""
        if span is not None and getattr(span, "end", True) is None:
            self.finish(span, **attrs)

    def event(self, name, category, **attrs) -> None:
        if self.tracer is not None:
            self._guard(self.tracer.event, name, category, **attrs)

    # -- metrics ----------------------------------------------------

    def count(self, name: str, amount: int = 1) -> None:
        # amount == 0 still registers the instrument, so snapshots
        # have a stable shape (e.g. ``cache.hits`` on an all-miss run).
        if self.metrics is not None:
            self._guard(self.metrics.count, name, amount)

    def gauge(self, name: str, value) -> None:
        if self.metrics is not None:
            self._guard(self.metrics.set_gauge, name, value)

    def observe(self, name: str, value) -> None:
        if self.metrics is not None:
            self._guard(self.metrics.observe, name, value)

    def sim_stats(self, stats: CoreStats) -> None:
        """Fold one completed cell's simulator counters into ``sim.*``
        (opt-in; tolerates stats restored from pre-attribution caches).
        """
        if not self.simulator_counters:
            return
        self._guard(self._sim_stats, stats)

    def _sim_stats(self, stats: CoreStats) -> None:
        registry = self.metrics
        registry.count("sim.cycles", int(stats.cycles))
        registry.count("sim.instructions", int(stats.instructions))
        registry.count("sim.precompute_hits",
                       int(stats.precompute_hits))
        stalls = getattr(stats, "stall_cycles", None) or {}
        registry.absorb_counts(stalls, prefix="sim.stall.")


# ---------------------------------------------------------------------------
# run_grid
# ---------------------------------------------------------------------------

def run_grid(
    tasks: Iterable[SimTask],
    *,
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
    progress: Optional[Callable[[int, int], None]] = None,
    version: str = SIMULATOR_VERSION,
    chunk_size: Optional[int] = None,
    retry: Optional[RetryPolicy] = None,
    timeout: Optional[float] = None,
    on_error: str = "raise",
    journal: Optional[Union[Journal, str, os.PathLike]] = None,
    max_worker_deaths: Optional[int] = None,
    telemetry=None,
    audit: Union[AuditPolicy, float, None] = None,
    dist=None,
) -> GridResult:
    """Simulate every task; return stats in task order.

    Parameters
    ----------
    tasks:
        The grid cells to run (order defines result order).
    jobs:
        Worker processes.  ``1`` (the default) runs in-process; higher
        values fan pending tasks out over a supervised fork pool.  On
        platforms without ``fork`` the engine silently falls back to
        in-process execution rather than paying spawn's re-import and
        task-pickling costs.
    cache:
        Optional :class:`ResultCache`; hits skip simulation entirely,
        misses are computed and written back.  Cache *write* failures
        (disk full, read-only directory) are reported once as a
        :class:`RuntimeWarning` and never abort the grid.
    progress:
        ``(done, total)`` callback, invoked once per finished task
        (cache/journal hits and permanently skipped cells included)
        from the calling process.
    version:
        Simulator version tag mixed into cache keys; defaults to
        :data:`~repro.cpu.SIMULATOR_VERSION`.
    chunk_size:
        Accepted for backward compatibility and ignored: the
        supervised pool dispatches tasks singly so that per-task
        deadlines and dead-worker resubmission stay exact.
    retry:
        :class:`RetryPolicy` for failing cells.  ``None`` selects no
        retries under ``on_error="raise"`` and the default policy (3
        attempts, no backoff) under ``"retry"``/``"skip"``.
    timeout:
        Per-task wall-clock budget in seconds, enforced on the pool
        path (an in-process task cannot be preempted): a task over
        budget has its worker killed and counts as one failed attempt
        of kind ``"timeout"``.
    on_error:
        ``"raise"`` (default) propagates a cell's failure immediately;
        ``"retry"`` retries per policy and raises
        :class:`~repro.exec.fault.GridError` on exhaustion; ``"skip"``
        retries, then records a
        :class:`~repro.exec.fault.FailureRecord` and carries on,
        leaving ``None`` in that cell of the result.
    journal:
        A :class:`~repro.exec.journal.Journal` (or a path to one).
        Completed cells present in the journal are restored without
        simulation; every newly completed cell is appended, so an
        interrupted run resumes where it stopped.
    max_worker_deaths:
        Unexpected worker deaths tolerated before the pool is declared
        unhealthy and the remaining cells run in-process (default
        ``2 * jobs + 2``).  Deliberate timeout kills do not count.
    telemetry:
        Optional :class:`repro.obs.Telemetry`.  Its tracer receives
        the grid/preload phase spans, one ``run`` span per simulated
        attempt, async ``queue`` spans for pool wait time, and instant
        events for restores, retries, timeouts and worker deaths; its
        metrics registry receives the ``tasks.*`` / ``cache.*`` /
        ``workers.*`` counters, the ``queue.depth`` gauge, and the
        ``task.seconds`` histogram (plus opt-in ``sim.*`` counters
        aggregated from every completed cell).  All hooks run on the
        same guarded path as ``progress``; see :class:`_Observer`.
    audit:
        Sampled re-execution audit of cache/journal hits: an
        :class:`~repro.guard.audit.AuditPolicy` or a bare fraction in
        ``[0, 1]``.  A deterministic, seeded subset of restored cells
        (selection is a pure function of the policy seed and the task
        key) is re-simulated in-process and compared bit-exact against
        the restored stats; any divergence raises
        :class:`~repro.guard.errors.AuditMismatch` carrying both
        payloads — a stale or tampered store must stop the run.
        Audited cells take the normal (possibly parallel) execution
        path, so a clean audit changes nothing but wall time; counters
        land under ``audit.*``.
    dist:
        A :class:`repro.dist.DistOptions` (or a spool directory path)
        selecting the distributed execution path: pending cells are
        published as sealed tickets into the shared spool, claimed by
        independent ``repro worker`` processes under atomic-rename
        leases, and harvested back through the same ``_store`` /
        retry machinery as every other path — so caching, journaling,
        auditing, telemetry and failure semantics are unchanged.  When
        no worker ever attaches the broker degrades to the local path
        (pool or in-process per ``jobs``), and any cells left behind
        by a degrading broker are finished locally; results stay
        bit-identical either way.  See :mod:`repro.dist`.
    """
    tasks = list(tasks)
    total = len(tasks)
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    if on_error not in ON_ERROR_MODES:
        raise ValueError(
            f"on_error must be one of {ON_ERROR_MODES}, got {on_error!r}"
        )
    if retry is not None:
        policy = retry
    elif on_error in ("retry", "skip"):
        policy = DEFAULT_RETRY_POLICY
    else:
        policy = NO_RETRY_POLICY
    fail_fast = on_error == "raise" and retry is None
    if journal is not None and not isinstance(journal, Journal):
        journal = Journal(journal)
    if max_worker_deaths is None:
        max_worker_deaths = 2 * jobs + 2

    audit_policy = coerce_policy(audit)

    results: List[Optional[CoreStats]] = [None] * total
    failures: List[FailureRecord] = []
    keys: List[Optional[str]] = [None] * total
    state = {"done": 0}
    error_counts: Dict[int, int] = {}
    death_counts: Dict[int, int] = {}
    resolved: Set[int] = set()
    #: index -> (restored stats, source) for cells the audit selected;
    #: the re-executed result is compared against this in ``_store``.
    audit_expect: Dict[int, Tuple[CoreStats, str]] = {}

    obs = _Observer(progress, telemetry)
    cache_before = cache.counters() if cache is not None else None
    grid_span = obs.begin("grid", "grid", tasks=total, jobs=jobs)
    obs.count("grid.tasks", total)
    if audit_policy.fraction > 0:
        # Register the audit instruments up front so snapshots have a
        # stable shape even when no cell is selected or violated.
        obs.count("audit.selected", 0)
        obs.count("audit.passed", 0)
        obs.count("audit.violations", 0)

    def _advance() -> None:
        state["done"] += 1
        obs.progress(state["done"], total)

    def _store(i: int, stats: CoreStats) -> None:
        """A completed cell: result list, cache, journal, progress."""
        expected = audit_expect.pop(i, None)
        if expected is not None:
            restored, source = expected
            try:
                verify_restored(keys[i], i, source, restored, stats)
            except AuditMismatch:
                obs.count("audit.violations")
                obs.event("audit-violation", "guard", index=i,
                          source=source)
                raise
            obs.count("audit.passed")
            obs.event("audit-passed", "guard", index=i, source=source)
        results[i] = stats
        resolved.add(i)
        if cache is not None and cache.put_failures == 0:
            try:
                cache.put(keys[i], stats)
            except Exception as exc:
                # The counter doubles as the "writes are down" switch:
                # one failure stops further attempts on this cache.
                cache.put_failures += 1
                warnings.warn(
                    "result cache writes failing "
                    f"({type(exc).__name__}: {exc}); continuing without "
                    "persisting results",
                    RuntimeWarning,
                    stacklevel=2,
                )
        if journal is not None:
            journal.record(keys[i], stats)
        obs.count("tasks.completed")
        obs.sim_stats(stats)
        _advance()

    def _attempt_number(i: int) -> int:
        return error_counts.get(i, 0) + death_counts.get(i, 0)

    def _give_up(i: int, kind: str, error_type: str,
                 message: str) -> None:
        """All attempts spent: record (skip) or raise (retry/raise)."""
        record = FailureRecord(
            index=i, kind=kind, error_type=error_type,
            message=message, attempts=_attempt_number(i),
        )
        obs.count("tasks.failed")
        obs.event("task-failed", "fault", index=i, kind=kind,
                  error=error_type)
        if on_error == "skip":
            failures.append(record)
            resolved.add(i)
            _advance()
        else:
            raise GridError(record)

    def _task_failed(i: int, kind: str, error_type: str,
                     message: str) -> bool:
        """Register one failed attempt; True means try again."""
        if kind == "timeout":
            obs.count("tasks.timeouts")
        if kind == "worker-died":
            death_counts[i] = death_counts.get(i, 0) + 1
            if death_counts[i] <= _MAX_RESUBMITS:
                obs.count("tasks.resubmitted")
                obs.event("resubmit", "fault", index=i,
                          attempt=_attempt_number(i))
                return True
        else:
            error_counts[i] = error_counts.get(i, 0) + 1
            if error_counts[i] < policy.max_attempts:
                obs.count("tasks.retried")
                obs.event("retry", "fault", index=i, kind=kind,
                          attempt=_attempt_number(i))
                policy.pause(error_counts[i], token=i)
                return True
        _give_up(i, kind, error_type, message)
        return False

    # -- preload: journal first (the resume source), then cache -----
    pending: List[int] = []
    preload_span = obs.begin(
        "preload", "phase",
        probing=("journal+cache" if journal is not None
                 and cache is not None
                 else "journal" if journal is not None
                 else "cache" if cache is not None else "none"),
    )
    for i, task in enumerate(tasks):
        if cache is not None or journal is not None:
            keys[i] = task_key(task, version=version)
        hit = None
        source = ""
        if journal is not None:
            hit = journal.get(keys[i])
            if hit is not None:
                source = "journal"
                obs.count("tasks.restored.journal")
                obs.event("restore", "cache", index=i,
                          source="journal")
        if hit is None and cache is not None:
            hit = cache.get(keys[i])
            if hit is not None:
                source = "cache"
                obs.count("tasks.restored.cache")
                obs.event("restore", "cache", index=i, source="cache")
        if hit is not None:
            if audit_policy.selects(keys[i]):
                # Keep the restored value aside and re-execute the
                # cell on the normal path; ``_store`` compares.
                audit_expect[i] = (hit, source)
                obs.count("audit.selected")
                obs.event("audit-selected", "guard", index=i,
                          source=source)
                pending.append(i)
                continue
            _store(i, hit)
            continue
        pending.append(i)
    obs.finish(preload_span,
               restored=total - len(pending),
               audited=len(audit_expect),
               pending=len(pending))

    def _run_serial(indices: Iterable[int]) -> None:
        for i in indices:
            if i in resolved:
                continue
            while True:
                attempt = _attempt_number(i)
                span = obs.begin("run", "task", index=i,
                                 attempt=attempt)
                started = time.monotonic()
                try:
                    stats = _execute_cell(tasks[i], i, attempt)
                except KeyboardInterrupt:
                    # Never a task failure: completed cells are already
                    # journaled, so the caller can resume.
                    obs.finish(span, outcome="interrupted")
                    raise
                except Exception as exc:
                    obs.finish(span, outcome="error",
                               error=type(exc).__name__)
                    if fail_fast:
                        raise
                    error_counts[i] = error_counts.get(i, 0) + 1
                    if error_counts[i] < policy.max_attempts:
                        obs.count("tasks.retried")
                        obs.event("retry", "fault", index=i,
                                  kind="error",
                                  attempt=_attempt_number(i))
                        policy.pause(error_counts[i], token=i)
                        continue
                    try:
                        _give_up(i, "error", type(exc).__name__, str(exc))
                    except GridError as failure:
                        raise failure from exc
                    break
                else:
                    obs.finish(span, outcome="ok")
                    obs.observe("task.seconds",
                                time.monotonic() - started)
                    obs.count("tasks.simulated")
                    _store(i, stats)
                    break

    try:
        if dist is not None and pending:
            # Imported lazily: the distributed runtime is optional
            # machinery and single-host grids must not pay for it.
            from repro.dist import coerce_dist_options
            from repro.dist.broker import run_dist
            for i in pending:
                if keys[i] is None:
                    keys[i] = task_key(tasks[i], version=version)
            pending = run_dist(
                tasks, pending,
                options=coerce_dist_options(dist),
                keys=keys, version=version,
                store=_store, task_failed=_task_failed,
                attempt_number=_attempt_number, resolved=resolved,
                obs=obs, policy=policy,
            )
        if jobs > 1 and len(pending) > 1 and _fork_available():
            remaining = _run_pool(
                tasks, pending,
                jobs=jobs, timeout=timeout,
                max_worker_deaths=max_worker_deaths,
                store=_store, task_failed=_task_failed,
                attempt_number=_attempt_number, resolved=resolved,
                obs=obs,
            )
            if remaining:
                _run_serial(remaining)
        else:
            _run_serial(pending)
    finally:
        # Surface the cache's own counters as this grid's deltas, so
        # a registry shared across grids accumulates true totals.
        if cache is not None and obs.metrics is not None:
            for name, value in cache.counters().items():
                obs.count(f"cache.{name}",
                          value - cache_before[name])
        obs.finish(grid_span, completed=state["done"],
                   failures=len(failures))
    return GridResult(results, failures)


def _run_pool(
    tasks: List[SimTask],
    pending: List[int],
    *,
    jobs: int,
    timeout: Optional[float],
    max_worker_deaths: int,
    store: Callable[[int, CoreStats], None],
    task_failed: Callable[[int, str, str, str], bool],
    attempt_number: Callable[[int], int],
    resolved: Set[int],
    obs: _Observer,
) -> List[int]:
    """Supervise a fork pool over ``pending``; returns leftovers.

    The return value is normally empty; when the pool is declared
    unhealthy (too many unexpected worker deaths, or workers cannot be
    spawned) it is the list of still-unfinished task indices, which
    the caller runs in-process.

    Telemetry (all parent-side, via ``obs``): each pending task gets
    an async ``queue`` span from enqueue to dispatch, then a ``run``
    span on its worker's lane from dispatch to result; timeouts,
    deaths and degradation become instant events.  Span identities
    derive from (task index, attempt), so traces from identical runs
    match structurally no matter which worker drew which task.
    """
    context = multiprocessing.get_context("fork")
    results_q = context.Queue()
    todo = deque(pending)
    workers: Dict[int, _Worker] = {}
    next_id = 0
    deaths = 0

    #: Open telemetry spans keyed by task index (at most one queue
    #: wait and one in-flight run per task at any moment).
    queue_spans: Dict[int, object] = {}
    run_spans: Dict[int, object] = {}
    run_started: Dict[int, float] = {}

    def _enqueue_span(i: int) -> None:
        queue_spans[i] = obs.begin_async(
            "queue", "task", index=i, attempt=attempt_number(i),
        )

    for i in todo:
        _enqueue_span(i)

    def _remaining() -> List[int]:
        left = [i for i in todo if i not in resolved]
        for worker in workers.values():
            if worker.current is not None:
                i = worker.current[0]
                if i not in resolved and i not in left:
                    left.append(i)
        return left

    def _inflight() -> int:
        return sum(1 for w in workers.values() if w.current is not None)

    try:
        while (todo or _inflight()) :
            # Keep the pool sized to the work left; replace dead
            # workers here too (spawn failure => degrade).
            want = min(jobs, len(todo) + _inflight())
            while len(workers) < want:
                try:
                    workers[next_id] = _Worker(
                        context, tasks, results_q, next_id
                    )
                except OSError as exc:
                    warnings.warn(
                        f"cannot spawn simulation worker ({exc}); "
                        "running remaining cells in-process",
                        RuntimeWarning, stacklevel=3,
                    )
                    obs.count("pool.degraded")
                    obs.event("pool-degraded", "fault",
                              reason="spawn-failure")
                    raise _PoolUnhealthy from exc
                obs.count("workers.spawned")
                next_id += 1

            # Dispatch to idle workers.
            for wid, worker in workers.items():
                if worker.current is None and todo:
                    i = todo.popleft()
                    if i in resolved:
                        obs.finish_open(queue_spans.pop(i, None),
                                        outcome="superseded")
                        continue
                    attempt = attempt_number(i)
                    worker.dispatch(i, attempt, timeout)
                    obs.finish_open(queue_spans.pop(i, None),
                                    outcome="dispatched")
                    run_spans[i] = obs.begin(
                        "run", "task", track=wid + 1,
                        index=i, attempt=attempt,
                    )
                    run_started[i] = time.monotonic()
                    obs.gauge("queue.depth", len(todo))
            if not todo and not _inflight():
                break

            # Wait briefly for a result, then run health checks.
            try:
                wid, i, ok, payload = results_q.get(
                    timeout=_POLL_SECONDS
                )
            except queue_module.Empty:
                pass
            else:
                worker = workers.get(wid)
                if worker is not None and worker.current is not None \
                        and worker.current[0] == i:
                    worker.current = None
                if i not in resolved:
                    if ok:
                        obs.finish_open(run_spans.pop(i, None),
                                        outcome="ok")
                        started = run_started.pop(i, None)
                        if started is not None:
                            obs.observe("task.seconds",
                                        time.monotonic() - started)
                        obs.count("tasks.simulated")
                        store(i, payload)
                    else:
                        error_type, message = payload
                        obs.finish_open(run_spans.pop(i, None),
                                        outcome="error", error=error_type)
                        run_started.pop(i, None)
                        if task_failed(i, "error", error_type, message):
                            todo.append(i)
                            _enqueue_span(i)
                continue

            now = time.monotonic()
            for wid, worker in list(workers.items()):
                current = worker.current
                if current is not None:
                    i, deadline = current
                    if deadline is not None and now > deadline:
                        # Hung task: kill the worker deliberately
                        # (doesn't count against pool health).
                        worker.process.kill()
                        worker.process.join(timeout=1.0)
                        del workers[wid]
                        obs.finish_open(run_spans.pop(i, None),
                                        outcome="timeout")
                        run_started.pop(i, None)
                        if i not in resolved and task_failed(
                            i, "timeout", "",
                            f"exceeded {timeout:.3g}s wall-clock budget",
                        ):
                            todo.append(i)
                            _enqueue_span(i)
                        continue
                if not worker.process.is_alive():
                    # Unexpected death (kill fault, OOM, segfault).
                    worker.process.join(timeout=1.0)
                    del workers[wid]
                    deaths += 1
                    obs.count("workers.deaths")
                    obs.event("worker-death", "fault",
                              code=worker.process.exitcode)
                    if current is not None:
                        i = current[0]
                        code = worker.process.exitcode
                        obs.finish_open(run_spans.pop(i, None),
                                        outcome="worker-died")
                        run_started.pop(i, None)
                        if i not in resolved and task_failed(
                            i, "worker-died",
                            "", f"worker exited with code {code} "
                                f"while running task {i}",
                        ):
                            todo.append(i)
                            _enqueue_span(i)
                    if deaths > max_worker_deaths:
                        warnings.warn(
                            f"worker pool unhealthy ({deaths} worker "
                            "deaths); running remaining cells "
                            "in-process",
                            RuntimeWarning, stacklevel=3,
                        )
                        obs.count("pool.degraded")
                        obs.event("pool-degraded", "fault",
                                  deaths=deaths)
                        raise _PoolUnhealthy
    except _PoolUnhealthy:
        return _remaining()
    finally:
        # Close any spans left open by degradation or interruption;
        # a healthy pool has already popped every entry.
        for span in queue_spans.values():
            obs.finish_open(span, outcome="abandoned")
        for span in run_spans.values():
            obs.finish_open(span, outcome="abandoned")
        for worker in workers.values():
            worker.stop()
        results_q.close()
    return []
