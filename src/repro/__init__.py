"""Reproduction of Yi, Lilja & Hawkins, "A Statistically Rigorous
Approach for Improving Simulation Methodology" (HPCA 2003).

The library has five layers, importable as subpackages:

* :mod:`repro.doe` — Plackett-Burman / factorial designs, effects,
  ranks, ANOVA (the statistical machinery of Section 2);
* :mod:`repro.cpu` — a trace-driven out-of-order superscalar simulator
  exposing all 41 parameters of Tables 6-8;
* :mod:`repro.workloads` — a statistical workload generator with the
  13 SPEC 2000-like benchmark profiles of Table 5;
* :mod:`repro.core` — the paper's methodology itself: parameter
  selection (Section 4.1, Table 9), benchmark classification (Section
  4.2, Tables 10-11), and enhancement analysis (Section 4.3, Table 12),
  plus the paper's own published data for exact validation;
* :mod:`repro.reporting` — text renderings of every paper table;
* :mod:`repro.exec` — the parallel, cached execution engine every
  experiment and sweep runs its simulation grid through;
* :mod:`repro.analysis` — the determinism & fork-safety static
  analysis (``repro lint``) that gates changes to all of the above;
* :mod:`repro.guard` — end-to-end integrity: simulation watchdogs,
  sealed artifacts, sampled re-execution audits, and the offline
  ``repro verify`` cross-check.

Quick start::

    from repro.workloads import benchmark_suite
    from repro.core import PBExperiment, rank_parameters_from_result

    traces = benchmark_suite(length=5000)
    result = PBExperiment(traces).run()
    ranking = rank_parameters_from_result(result)
    print(ranking.significant_factors())
"""

__version__ = "1.0.0"

#: Subpackages resolved lazily (PEP 562).  Laziness is load-bearing:
#: ``python -m repro.analysis`` must work on a bare interpreter (the
#: CI lint job installs nothing), and eagerly importing the simulator
#: stack would drag NumPy in at ``import repro`` time.
_SUBPACKAGES = (
    "analysis", "core", "cpu", "doe", "exec", "guard", "obs",
    "reporting", "workloads",
)

__all__ = [*_SUBPACKAGES, "__version__"]


def __getattr__(name):
    if name in _SUBPACKAGES:
        import importlib

        module = importlib.import_module(f".{name}", __name__)
        globals()[name] = module
        return module
    raise AttributeError(
        f"module {__name__!r} has no attribute {name!r}"
    )


def __dir__():
    return sorted({*globals(), *_SUBPACKAGES})
