"""Offline cross-verification of a finished screen run.

``repro verify <run-dir>`` answers, without trusting any single
artifact, "do this run's artifacts still agree with each other and
with the statistics they claim to derive from?":

* the **manifest** proves what was run (and carries its own integrity
  digest);
* the **journal** is the ground truth of raw results: every completed
  cell's :class:`~repro.cpu.stats.CoreStats`, checksummed per line;
* the **result cache** (when present) must agree bit-exact with the
  journal on every shared cell;
* the **results document** (``results.json``, sealed) holds what the
  screen *reported* — responses, per-benchmark effect tables, the
  Table 9 ranking.

The verifier rebuilds the task grid from the manifest's workload
description (the workload generator is deterministic, so traces —
and therefore task keys — reproduce exactly), pulls the raw stats
back out of the journal, recomputes PB effects and rank sums from
scratch, and compares against the sealed results document per
benchmark.  Exit-code contract:

* ``0`` — every artifact present, intact, and in agreement;
* ``1`` — a violation: corruption, tampering, or a recomputation
  that disagrees with what the run reported;
* ``2`` — verification impossible: artifacts missing or incomplete
  (nothing proven either way).

Heavyweight imports (NumPy, the simulator stack) happen inside
functions: ``repro.guard`` itself stays importable on a bare
interpreter.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from . import fsfault
from .errors import SealError, SealMissing
from .seal import check as check_seal, seal as make_seal

__all__ = [
    "RESULTS_KIND",
    "RESULTS_SCHEMA",
    "VerifyCheck",
    "VerifyReport",
    "load_results",
    "screen_results_payload",
    "verify_run",
    "write_results",
]

#: Seal ``kind`` / format version of a screen's results document.
RESULTS_KIND = "screen-results"
RESULTS_SCHEMA = 1

#: Exit codes of the verify contract.
_OK, _VIOLATION, _INCONCLUSIVE = 0, 1, 2


# -- results document ----------------------------------------------


def screen_results_payload(result, ranking) -> Dict[str, object]:
    """The JSON-ready results document for one finished screen.

    ``result`` is a :class:`~repro.core.experiment.PBExperimentResult`,
    ``ranking`` the :class:`~repro.core.ParameterRanking` derived from
    it.  Everything ``verify_run`` recomputes is in here: the raw
    response columns, the per-benchmark effect tables, and the
    serialized Table 9.
    """
    return {
        "design": {
            "factors": list(result.design.factor_names),
            "n_runs": int(result.design.n_runs),
        },
        "responses": {
            bench: list(column)
            for bench, column in result.responses.items()
        },
        "effects": {
            bench: {
                "factors": list(table.factor_names),
                "effects": list(table.effects),
            }
            for bench, table in result.effects.items()
        },
        "ranking": ranking.to_dict(),
    }


def write_results(path: Union[str, os.PathLike], result,
                  ranking) -> Path:
    """Seal and write a screen's results document; returns the path."""
    from repro.cpu import SIMULATOR_VERSION

    payload = json.dumps(
        screen_results_payload(result, ranking),
        sort_keys=True, indent=2,
    ).encode("utf-8")
    blob = make_seal(
        payload, kind=RESULTS_KIND, schema=RESULTS_SCHEMA,
        simulator_version=SIMULATOR_VERSION,
    )
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    # The sanctioned publish seam: a reader (or a crash) never
    # observes a half-written results document, and an injected
    # ENOSPC/rename fault either clears within the retry budget or
    # propagates with the previous document intact.
    fsfault.publish_bytes(path, blob, retries=2)
    return path


def load_results(path: Union[str, os.PathLike], *,
                 simulator_version: Optional[str] = None) \
        -> Dict[str, object]:
    """Check a sealed results document and return its parsed payload.

    Raises the :class:`~repro.guard.errors.SealError` family on any
    integrity failure, exactly like the other sealed loaders.
    """
    blob = Path(path).read_bytes()
    payload = check_seal(
        blob, kind=RESULTS_KIND, schema=RESULTS_SCHEMA,
        simulator_version=simulator_version,
    )
    return json.loads(payload.decode("utf-8"))


# -- report structure ----------------------------------------------


@dataclass(frozen=True)
class VerifyCheck:
    """One named cross-check and its outcome.

    ``ok=None`` means the check could not run (its inputs were
    missing or unusable) — inconclusive, not passed.
    """

    name: str
    ok: Optional[bool]
    detail: str = ""

    def describe(self) -> str:
        """One report line: status, check name, detail."""
        mark = {True: "ok  ", False: "FAIL", None: "----"}[self.ok]
        detail = f": {self.detail}" if self.detail else ""
        return f"[{mark}] {self.name}{detail}"


@dataclass
class VerifyReport:
    """Everything ``verify_run`` established about one run directory."""

    run_dir: str
    checks: List[VerifyCheck] = field(default_factory=list)

    def add(self, name: str, ok: Optional[bool],
            detail: str = "") -> None:
        """Record one check outcome."""
        self.checks.append(VerifyCheck(name, ok, detail))

    @property
    def violations(self) -> List[VerifyCheck]:
        """Checks that ran and failed."""
        return [c for c in self.checks if c.ok is False]

    @property
    def inconclusive(self) -> List[VerifyCheck]:
        """Checks that could not run."""
        return [c for c in self.checks if c.ok is None]

    @property
    def status(self) -> int:
        """The exit code: 0 verified, 1 violation, 2 inconclusive.

        A found violation outranks missing evidence: a run that is
        both incomplete *and* demonstrably corrupt reports ``1``.
        """
        if self.violations:
            return _VIOLATION
        if self.inconclusive:
            return _INCONCLUSIVE
        return _OK

    def describe(self) -> str:
        """The full human-readable report."""
        lines = [f"verify {self.run_dir}"]
        lines.extend("  " + check.describe() for check in self.checks)
        status = self.status
        verdict = {
            _OK: "VERIFIED: all artifacts agree",
            _VIOLATION: (
                f"VIOLATIONS: {len(self.violations)} check(s) failed"
            ),
            _INCONCLUSIVE: (
                "INCONCLUSIVE: "
                f"{len(self.inconclusive)} check(s) could not run"
            ),
        }[status]
        lines.append(verdict)
        return "\n".join(lines)


# -- the verifier ---------------------------------------------------


def _benchmark_names(spec: str) -> List[str]:
    """The CLI's ``--benchmarks`` string, resolved to names."""
    from repro.workloads import BENCHMARK_NAMES

    if spec.strip().lower() == "all":
        return list(BENCHMARK_NAMES)
    return [b.strip() for b in spec.split(",") if b.strip()]


def _load_manifest_checked(report: VerifyReport,
                           path: Path) -> Optional[dict]:
    from repro.obs.manifest import load_manifest

    if not path.exists():
        report.add("manifest", None, f"{path} does not exist")
        return None
    try:
        doc = load_manifest(path)
    except SealMissing as exc:
        report.add("manifest", None, str(exc))
        return None
    except SealError as exc:
        report.add("manifest", False, f"[{exc.reason}] {exc}")
        return None
    report.add("manifest", True, "integrity digest verified")
    return doc


def verify_run(run_dir: Union[str, os.PathLike], *,
               manifest_path=None, journal_path=None,
               results_path=None, cache_dir=None,
               spool_dir=None) -> VerifyReport:
    """Cross-check every artifact of one screen run directory.

    The directory layout is what ``repro screen --run-dir`` writes:
    ``manifest.json``, ``journal.jsonl``, ``results.json`` and
    (optionally) ``cache/`` and a distributed ``spool/``; the keyword
    overrides point at artifacts living elsewhere.  Returns a
    :class:`VerifyReport`; its ``status`` property implements the
    0/1/2 exit-code contract.
    """
    import warnings as warnings_module

    run_dir = Path(run_dir)
    report = VerifyReport(str(run_dir))
    manifest_path = Path(manifest_path or run_dir / "manifest.json")
    journal_path = Path(journal_path or run_dir / "journal.jsonl")
    results_path = Path(results_path or run_dir / "results.json")
    cache_dir = Path(cache_dir) if cache_dir is not None \
        else run_dir / "cache"
    spool_dir = Path(spool_dir) if spool_dir is not None \
        else run_dir / "spool"

    # 1. Manifest: self-integrity, then the workload description.
    manifest = _load_manifest_checked(report, manifest_path)
    if manifest is None:
        return report
    run_info = manifest.get("run", {})
    workload = run_info.get("workload", {})
    sim_version = run_info.get("simulator_version")
    if not sim_version:
        report.add("workload", None,
                   "manifest records no simulator_version; cannot "
                   "re-derive task keys")
        return report
    try:
        names = _benchmark_names(str(workload["benchmarks"]))
        length = int(workload["length"])
    except (KeyError, TypeError, ValueError):
        report.add("workload", None,
                   "manifest has no usable workload description")
        return report

    # 2. Rebuild the grid: deterministic traces -> identical keys.
    from repro.core import PBExperiment, rank_parameters
    from repro.doe import compute_effects
    from repro.exec import Journal, ResultCache, task_key
    from repro.exec.engine import grid_tasks
    from repro.guard.audit import differing_fields
    from repro.workloads import benchmark_suite

    try:
        traces = benchmark_suite(length=length, names=names)
    except (KeyError, ValueError) as exc:
        report.add("workload", None, f"cannot rebuild traces: {exc}")
        return report
    # The core only enters keys as its normalized family, but the
    # reference oracle's family is distinct — rebuild with the core
    # the manifest says the run used.
    core = str(run_info.get("settings", {}).get("core", "batched"))
    experiment = PBExperiment(traces, core=core)
    configs = experiment.configs()
    tasks = grid_tasks(configs, traces, core=core)
    keys = [task_key(t, version=sim_version) for t in tasks]
    report.add(
        "workload", True,
        f"{len(configs)} configurations x {len(traces)} benchmarks "
        f"rebuilt ({len(tasks)} cells)",
    )

    # 3. Journal: every dropped line is a violation; every cell of
    #    the grid must be present to recompute anything.
    if not journal_path.exists():
        report.add("journal", None, f"{journal_path} does not exist")
        return report
    with warnings_module.catch_warnings():
        # The drop warning is redundant here: the report itself is
        # the louder channel.
        warnings_module.simplefilter("ignore", RuntimeWarning)
        journal = Journal(journal_path, version=sim_version)
    if journal.corrupt:
        breakdown = ", ".join(
            f"{reason}: {count}"
            for reason, count in sorted(journal.dropped.items())
        )
        report.add("journal", False,
                   f"{journal_path}: dropped {journal.corrupt} "
                   f"invalid line(s) ({breakdown})")
    else:
        report.add("journal", True,
                   f"{len(journal)} entries, all checksums valid")
    # 4. Cache (optional): every entry must be intact and agree
    #    bit-exact with the journal.  Runs even when the journal is
    #    incomplete so a report names *all* damaged artifacts.
    if cache_dir.exists():
        cache = ResultCache(cache_dir, version=sim_version)
        compared = mismatched = 0
        for key in keys:
            entry = cache.get(key)
            journaled = journal.get(key)
            if entry is None or journaled is None:
                continue
            compared += 1
            diff = differing_fields(journaled, entry)
            if diff:
                mismatched += 1
                report.add(
                    "cache-agreement", False,
                    f"entry {key[:12]}... disagrees with the journal "
                    f"on {', '.join(diff)}",
                )
        if cache.corrupt:
            breakdown = ", ".join(
                f"{reason}: {count}"
                for reason, count in sorted(cache.quarantined.items())
            )
            report.add("cache", False,
                       f"{cache_dir}: {cache.corrupt} corrupt "
                       f"entr(y/ies) quarantined ({breakdown})")
        elif not mismatched:
            report.add("cache", True,
                       f"{compared} shared entries agree with the "
                       "journal bit-exact")

    # 4b. Distributed spool (optional): every sealed worker result
    #     must agree bit-exact with the journal, no file may be torn,
    #     and a drained spool must hold no in-flight tickets.  Error
    #     outcomes awaiting republish are not violations — the
    #     journal-coverage check below judges completeness.
    if spool_dir.exists():
        from repro.dist.spool import Spool

        spool = Spool(spool_dir, version=sim_version)
        agreed = spool_bad = 0
        for key in spool.result_keys():
            try:
                record = spool.read_result(key)
            except SealError as exc:
                spool_bad += 1
                report.add("spool", False,
                           f"result {key[:12]}...: [{exc.reason}] {exc}")
                continue
            if not record.get("ok"):
                continue
            journaled = journal.get(key)
            if journaled is None:
                continue
            diff = differing_fields(journaled, record["stats"])
            if diff:
                spool_bad += 1
                report.add(
                    "spool-agreement", False,
                    f"result {key[:12]}... disagrees with the journal "
                    f"on {', '.join(diff)}",
                )
            else:
                agreed += 1
        if not spool_bad:
            report.add("spool", True,
                       f"{agreed} sealed worker results agree with "
                       "the journal bit-exact")
        in_flight = len(spool.pending_keys()) + len(spool.leased_keys())
        if in_flight:
            report.add("spool-drained", None,
                       f"{in_flight} ticket(s) still pending/leased "
                       "— the distributed run did not finish")
        else:
            report.add("spool-drained", True, "no tickets in flight")

    # 4c. Event log (optional): every telemetry lane must carry only
    #     intact sealed lines.  A torn tail is a crash *signature*
    #     (the writer died mid-append) — tolerated and reported, the
    #     same stance the journal scanner takes; mid-file damage is
    #     evidence of tampering or disk trouble and is named per lane
    #     and line, exactly like journal damage.
    from repro.obs.stream import find_stream_lanes, scan_stream

    lane_paths = []
    for root in (run_dir, spool_dir):
        if root.exists():
            for path in find_stream_lanes(root):
                if path not in lane_paths:
                    lane_paths.append(path)
    if lane_paths:
        stream_bad = total_records = 0
        torn: List[str] = []
        for path in lane_paths:
            try:
                scan = scan_stream(path)
            except OSError as exc:
                report.add("event-log", None,
                           f"{path}: unreadable ({exc})")
                continue
            total_records += len(scan.records)
            if scan.torn_tail:
                torn.append(scan.lane)
            for lineno, reason in scan.damage:
                stream_bad += 1
                report.add("event-log", False,
                           f"{path.name} line {lineno}: {reason}")
        if not stream_bad:
            detail = (f"{len(lane_paths)} lane(s), "
                      f"{total_records} records intact")
            if torn:
                detail += (", torn tail tolerated on "
                           + ", ".join(sorted(torn)))
            report.add("event-log", True, detail)

    # 5. Results document seal — checked before the coverage bailout
    #    so a report names every damaged artifact, not just the first.
    results = None
    if not results_path.exists():
        report.add("results", None, f"{results_path} does not exist")
    else:
        try:
            results = load_results(results_path,
                                   simulator_version=sim_version)
        except SealError as exc:
            report.add("results", False,
                       f"{results_path}: [{exc.reason}] {exc}")
        else:
            report.add("results", True, "seal verified")

    missing = [k for k in keys if k not in journal]
    if missing:
        report.add(
            "journal-coverage", None,
            f"{len(missing)} of {len(keys)} grid cells absent from "
            "the journal; cannot recompute effects",
        )
        return report
    report.add("journal-coverage", True,
               f"all {len(keys)} grid cells journaled")
    if results is None:
        return report

    # 6. Recompute responses, effects and ranks from the raw journal
    #    stats; compare against the sealed results document.
    responses = {bench: [] for bench in traces}
    index = 0
    for _config in configs:
        for bench in traces:
            responses[bench].append(
                float(journal.get(keys[index]).cycles)
            )
            index += 1
    effects = {
        bench: compute_effects(experiment.design, column)
        for bench, column in responses.items()
    }
    ranking = rank_parameters(effects)

    stored_responses = results.get("responses", {})
    stored_effects = results.get("effects", {})
    for bench in traces:
        problems = []
        if stored_responses.get(bench) != responses[bench]:
            problems.append("responses")
        stored = stored_effects.get(bench, {})
        if stored.get("factors") != list(
                experiment.design.factor_names) \
                or stored.get("effects") != list(effects[bench].effects):
            problems.append("effects")
        report.add(
            f"recompute:{bench}",
            not problems,
            ("recomputed responses and effects agree"
             if not problems else
             f"disagrees on {', '.join(problems)}"),
        )
    stored_ranking = results.get("ranking", {})
    ranking_agrees = (
        stored_ranking.get("factors") == list(ranking.factors)
        and stored_ranking.get("sums") == list(ranking.sums)
        and stored_ranking.get("ranks") == ranking.ranks.tolist()
    )
    report.add(
        "rank-sums", ranking_agrees,
        ("recomputed Table 9 ranking and rank sums agree"
         if ranking_agrees else
         "recomputed ranking disagrees with the results document"),
    )
    return report
