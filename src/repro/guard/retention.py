"""Disk budgets and retention GC for the durable artifact stores.

The cache, journal, spool and quarantine directories are all
append-mostly: a long-lived experiment service (ROADMAP item 2) that
shares them across runs grows them without bound.  This module is the
reclamation layer — the *only* code in the tree allowed to delete a
valid artifact, and it does so under three strict rules:

* **Pinned keys are never evicted.**  A key referenced by an
  in-flight run (the engine pins every key it touches), by a journal
  (ground truth for resume and verification), or by a live spool
  ticket/lease is off-limits regardless of budget pressure.
* **Eviction is LRU, oldest first.**  Recency is the entry file's
  mtime; :class:`~repro.exec.cache.ResultCache` refreshes it on every
  hit, so "old" means "not used by any recent run", not "written
  long ago".
* **Everything is reported.**  :class:`GCReport` counts entries and
  bytes per target; ``repro gc --dry-run`` prints the same report
  without deleting anything.

Deletions route through plain ``unlink`` (removal needs no atomic
publish); the one rewrite — journal compaction — publishes the
compacted file through :func:`repro.guard.fsfault.publish_bytes`, so
a crash mid-compaction leaves the original journal untouched.

Surfaced as ``repro gc`` and ``repro cache stats``; the engine and
the distributed broker call :func:`gc_spool` /
``ResultCache`` budgets inline so long-lived stores stay bounded
without an operator cron job.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Set, Tuple, Union

from . import fsfault

__all__ = [
    "CacheStats",
    "GCReport",
    "cache_stats",
    "compact_journal",
    "gc_cache",
    "gc_quarantine",
    "gc_run_dir",
    "gc_spool",
    "journal_keys",
    "spool_inflight_keys",
]


def _dir_entries(directory: Path, pattern: str) \
        -> List[Tuple[Path, int, float]]:
    """``(path, size, mtime)`` per match, oldest first (mtime, then
    name, so ties break deterministically)."""
    entries = []
    for path in sorted(directory.glob(pattern)):
        try:
            stat = path.stat()
        except OSError:
            continue
        entries.append((path, stat.st_size, stat.st_mtime))
    entries.sort(key=lambda entry: (entry[2], entry[0].name))
    return entries


# -- inventory ------------------------------------------------------


@dataclass(frozen=True)
class CacheStats:
    """What one cache directory holds (``repro cache stats``)."""

    path: Path
    entries: int
    bytes: int
    quarantine_entries: int
    quarantine_bytes: int

    def to_dict(self) -> Dict[str, object]:
        return {
            "path": str(self.path),
            "entries": self.entries,
            "bytes": self.bytes,
            "quarantine_entries": self.quarantine_entries,
            "quarantine_bytes": self.quarantine_bytes,
        }


def cache_stats(cache_dir: Union[str, os.PathLike]) -> CacheStats:
    """Inventory a cache directory (entries, bytes, quarantine)."""
    cache_dir = Path(cache_dir)
    entries = _dir_entries(cache_dir, "*.pkl")
    quarantine = _dir_entries(cache_dir / "quarantine", "*") \
        if (cache_dir / "quarantine").is_dir() else []
    return CacheStats(
        path=cache_dir,
        entries=len(entries),
        bytes=sum(size for _p, size, _m in entries),
        quarantine_entries=len(quarantine),
        quarantine_bytes=sum(size for _p, size, _m in quarantine),
    )


# -- the report -----------------------------------------------------


@dataclass
class GCReport:
    """What one GC pass removed (or would remove, under dry-run)."""

    dry_run: bool = False
    cache_evicted: int = 0
    cache_evicted_bytes: int = 0
    cache_pinned_kept: int = 0
    quarantine_pruned: int = 0
    quarantine_pruned_bytes: int = 0
    spool_results_removed: int = 0
    spool_results_bytes: int = 0
    spool_tmp_removed: int = 0
    journal_lines_dropped: int = 0
    journal_bytes_freed: int = 0
    details: List[str] = field(default_factory=list)

    def merge(self, other: "GCReport") -> "GCReport":
        for name in ("cache_evicted", "cache_evicted_bytes",
                     "cache_pinned_kept", "quarantine_pruned",
                     "quarantine_pruned_bytes", "spool_results_removed",
                     "spool_results_bytes", "spool_tmp_removed",
                     "journal_lines_dropped", "journal_bytes_freed"):
            setattr(self, name,
                    getattr(self, name) + getattr(other, name))
        self.details.extend(other.details)
        return self

    def to_dict(self) -> Dict[str, object]:
        return {
            "dry_run": self.dry_run,
            "cache": {
                "evicted": self.cache_evicted,
                "evicted_bytes": self.cache_evicted_bytes,
                "pinned_kept": self.cache_pinned_kept,
            },
            "quarantine": {
                "pruned": self.quarantine_pruned,
                "pruned_bytes": self.quarantine_pruned_bytes,
            },
            "spool": {
                "results_removed": self.spool_results_removed,
                "results_bytes": self.spool_results_bytes,
                "tmp_removed": self.spool_tmp_removed,
            },
            "journal": {
                "lines_dropped": self.journal_lines_dropped,
                "bytes_freed": self.journal_bytes_freed,
            },
        }


# -- pinning sources ------------------------------------------------


def journal_keys(path: Union[str, os.PathLike]) -> Set[str]:
    """Every task key a journal file references.

    Pins liberally: any line that *names* a key counts, even when the
    line would fail a full checksum validation — a damaged line is
    still evidence that the key matters to someone.
    """
    keys: Set[str] = set()
    try:
        data = Path(path).read_bytes()
    except OSError:
        return keys
    for raw in data.splitlines():
        raw = raw.strip()
        if not raw:
            continue
        try:
            entry = json.loads(raw.decode("utf-8"))
        except (ValueError, UnicodeDecodeError):
            continue
        if isinstance(entry, dict) and isinstance(entry.get("key"), str):
            keys.add(entry["key"])
    return keys


def spool_inflight_keys(spool_root: Union[str, os.PathLike]) \
        -> Set[str]:
    """Keys a spool still has in flight (pending tickets + leases)."""
    root = Path(spool_root)
    keys: Set[str] = set()
    for sub, pattern in (("pending", "*.task"), ("leased", "*.task"),
                         ("leased", "*.lease")):
        directory = root / sub
        if directory.is_dir():
            keys.update(p.name.rsplit(".", 1)[0]
                        for p in sorted(directory.glob(pattern)))
    return keys


# -- cache eviction -------------------------------------------------


def gc_cache(cache_dir: Union[str, os.PathLike], *,
             budget_bytes: Optional[int] = None,
             budget_entries: Optional[int] = None,
             pinned: Iterable[str] = (),
             dry_run: bool = False) -> GCReport:
    """Evict LRU cache entries until the directory fits its budget.

    Pinned keys are never evicted, even when that leaves the
    directory over budget — correctness of in-flight runs outranks
    the budget (the property the test suite proves).  Entries are
    visited oldest-first by mtime (hits refresh it, so this is LRU).
    """
    cache_dir = Path(cache_dir)
    report = GCReport(dry_run=dry_run)
    if budget_bytes is None and budget_entries is None:
        return report
    pinned = set(pinned)
    entries = _dir_entries(cache_dir, "*.pkl")
    total_bytes = sum(size for _p, size, _m in entries)
    total_entries = len(entries)
    for path, size, _mtime in entries:
        over_bytes = (budget_bytes is not None
                      and total_bytes > budget_bytes)
        over_entries = (budget_entries is not None
                        and total_entries > budget_entries)
        if not over_bytes and not over_entries:
            break
        if path.stem in pinned:
            report.cache_pinned_kept += 1
            continue
        if not dry_run:
            try:
                path.unlink()
            except OSError:
                continue
        report.cache_evicted += 1
        report.cache_evicted_bytes += size
        total_bytes -= size
        total_entries -= 1
    return report


def gc_quarantine(directory: Union[str, os.PathLike], *,
                  budget_bytes: Optional[int] = None,
                  budget_entries: Optional[int] = None,
                  dry_run: bool = False) -> GCReport:
    """Prune a quarantine directory to its budget, oldest first.

    Quarantined files are evidence, not data — nothing pins them, but
    pruning only happens under an explicit budget, and the newest
    files (the most recent damage, the most likely to be under
    investigation) are kept.
    """
    directory = Path(directory)
    report = GCReport(dry_run=dry_run)
    if budget_bytes is None and budget_entries is None:
        return report
    if not directory.is_dir():
        return report
    entries = _dir_entries(directory, "*")
    total_bytes = sum(size for _p, size, _m in entries)
    total_entries = len(entries)
    for path, size, _mtime in entries:
        over_bytes = (budget_bytes is not None
                      and total_bytes > budget_bytes)
        over_entries = (budget_entries is not None
                        and total_entries > budget_entries)
        if not over_bytes and not over_entries:
            break
        if not dry_run:
            try:
                path.unlink()
            except OSError:
                continue
        report.quarantine_pruned += 1
        report.quarantine_pruned_bytes += size
        total_bytes -= size
        total_entries -= 1
    return report


# -- spool GC -------------------------------------------------------


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)  # repro: noqa[REP204] -- signal 0 is a pure liveness probe; nothing is killed
    except ProcessLookupError:
        return False
    except (PermissionError, OSError):
        return True
    return True


def gc_spool(spool_root: Union[str, os.PathLike], *,
             consumed: Iterable[str] = (),
             budget_results: Optional[int] = None,
             dry_run: bool = False) -> GCReport:
    """Remove consumed sealed results and dead temp files.

    ``consumed`` names keys whose results are safe to drop — they
    have been harvested *and* recorded in a journal, so the journal
    (not the spool) is now their ground truth.  In-flight keys
    (pending or leased) are never touched even if listed.
    ``budget_results`` additionally caps the results directory: when
    over, the oldest consumed results go first; unharvested results
    are never removed for budget reasons.

    Orphaned ``*.tmp-<pid>`` files whose writing process is gone are
    deleted — they are publishes that never happened.
    """
    root = Path(spool_root)
    report = GCReport(dry_run=dry_run)
    results_dir = root / "results"
    if not results_dir.is_dir():
        return report
    inflight = spool_inflight_keys(root)
    consumed = {key for key in consumed if key not in inflight}
    entries = _dir_entries(results_dir, "*.result")
    removable = [(p, size, m) for p, size, m in entries
                 if p.name.rsplit(".", 1)[0] in consumed]
    total = len(entries)
    # With no budget every consumed result goes (explicit GC mode);
    # under a budget the oldest consumed results go until it fits.
    for path, size, _mtime in removable:
        if budget_results is not None and total <= budget_results:
            break
        if not dry_run:
            try:
                path.unlink()
            except OSError:
                continue
        report.spool_results_removed += 1
        report.spool_results_bytes += size
        total -= 1
    for sub in ("pending", "leased", "results", "hb", ""):
        directory = root / sub if sub else root
        if not directory.is_dir():
            continue
        candidates = set(directory.glob("*.tmp-*"))
        candidates.update(directory.glob(".*.tmp-*"))
        for path in sorted(candidates):
            pid = path.name.split(".tmp-", 1)[-1].split("-", 1)[0]
            if pid.isdigit() and _pid_alive(int(pid)):
                continue
            if not dry_run:
                try:
                    path.unlink()
                except OSError:
                    continue
            report.spool_tmp_removed += 1
    return report


# -- journal compaction ---------------------------------------------


def compact_journal(path: Union[str, os.PathLike], *,
                    dry_run: bool = False) -> GCReport:
    """Rewrite a journal keeping one line per key (the last).

    Duplicate keys arise from interleaved writers and re-harvested
    cells; the loader's dict semantics already mean "last wins", so
    compaction preserves exactly what a resume would see.  Kept lines
    are copied **byte-for-byte** (never re-encoded) so checksums and
    bit-exact journal/cache agreement survive.  Damaged lines are
    dropped and counted — compaction is an explicit, reported
    destruction of residue, unlike ``repair`` which only truncates a
    torn tail.  The rewrite publishes atomically: a crash leaves the
    original journal in place.
    """
    path = Path(path)
    report = GCReport(dry_run=dry_run)
    try:
        data = path.read_bytes()
    except OSError:
        return report
    kept: Dict[str, bytes] = {}
    order: List[str] = []
    dropped = 0
    for raw in data.splitlines(keepends=True):
        stripped = raw.strip()
        if not stripped:
            continue
        if not raw.endswith(b"\n"):
            dropped += 1        # torn tail: residue, not a record
            continue
        try:
            entry = json.loads(stripped.decode("utf-8"))
            key = entry["key"]
        except (ValueError, UnicodeDecodeError, KeyError, TypeError):
            dropped += 1
            continue
        if not isinstance(key, str):
            dropped += 1
            continue
        if key in kept:
            dropped += 1        # superseded duplicate
        else:
            order.append(key)
        kept[key] = raw
    compacted = b"".join(kept[key] for key in order)
    report.journal_lines_dropped = dropped
    report.journal_bytes_freed = len(data) - len(compacted)
    if dropped and not dry_run:
        fsfault.publish_bytes(path, compacted, retries=2)
    return report


# -- the run-dir orchestrator ---------------------------------------


def gc_run_dir(run_dir: Union[str, os.PathLike], *,
               cache_budget_bytes: Optional[int] = None,
               cache_budget_entries: Optional[int] = None,
               quarantine_budget_bytes: Optional[int] = None,
               quarantine_budget_entries: Optional[int] = None,
               spool_budget_results: Optional[int] = None,
               compact: bool = False,
               dry_run: bool = False) -> GCReport:
    """One GC pass over a run directory's stores (``repro gc``).

    Pins every key the run's journal references and every key its
    spool has in flight before touching the cache; spool results are
    only consumed once the journal covers them.
    """
    run_dir = Path(run_dir)
    journal = run_dir / "journal.jsonl"
    cache_dir = run_dir / "cache"
    spool = run_dir / "spool"
    pinned = journal_keys(journal)
    if spool.is_dir():
        pinned |= spool_inflight_keys(spool)
    report = GCReport(dry_run=dry_run)
    if cache_dir.is_dir():
        report.merge(gc_cache(
            cache_dir, budget_bytes=cache_budget_bytes,
            budget_entries=cache_budget_entries, pinned=pinned,
            dry_run=dry_run,
        ))
        report.merge(gc_quarantine(
            cache_dir / "quarantine",
            budget_bytes=quarantine_budget_bytes,
            budget_entries=quarantine_budget_entries,
            dry_run=dry_run,
        ))
    if spool.is_dir():
        report.merge(gc_spool(
            spool, consumed=journal_keys(journal),
            budget_results=spool_budget_results, dry_run=dry_run,
        ))
    if compact and journal.exists():
        report.merge(compact_journal(journal, dry_run=dry_run))
    return report
