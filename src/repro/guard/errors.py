"""The integrity-failure vocabulary of :mod:`repro.guard`.

Every guard failure is *named*: an exception here always carries a
short machine-readable ``reason`` slug (used to label quarantined
artifacts and counters) next to the human-readable message.  The
module is deliberately import-free so the simulator, the execution
engine, and the artifact loaders can all raise these without pulling
each other in.

Hierarchy::

    GuardViolation                 integrity of *data* is in doubt
    ├── SealError                  a sealed artifact failed its check
    │   ├── SealMissing            no seal header at all (legacy/foreign)
    │   ├── SealTruncated          payload shorter than the header says
    │   ├── SealCorrupt            unparseable header / checksum mismatch
    │   └── SealVersionDrift       schema or simulator version mismatch
    ├── TraceCorrupt               a trace archive violates invariants
    └── AuditMismatch              re-execution disagreed with a cache hit

    SimulationHang                 the *simulation* stopped retiring
    StatsInvalid                   a finished run's statistics are broken

:class:`SimulationHang` and :class:`StatsInvalid` are not
:class:`GuardViolation` subclasses on purpose: they indict the live
simulation (a model bug, a livelocked configuration), not a stored
artifact, and the execution engine's retry machinery must be able to
treat them as ordinary task errors.
"""

from __future__ import annotations

__all__ = [
    "AuditMismatch",
    "GuardViolation",
    "SealCorrupt",
    "SealError",
    "SealMissing",
    "SealTruncated",
    "SealVersionDrift",
    "SimulationHang",
    "StatsInvalid",
    "TraceCorrupt",
]


class GuardViolation(RuntimeError):
    """Some artifact or result failed an integrity check.

    Parameters
    ----------
    message:
        Human-readable description.
    reason:
        Short slug naming the failure class (``"checksum"``,
        ``"version-drift"``, ``"torn"``, ...) — stable across
        releases, suitable for counters and quarantine file names.
    artifact:
        The artifact concerned (a path or a logical name), when known.
    """

    def __init__(self, message: str, *, reason: str = "violation",
                 artifact=None):
        super().__init__(message)
        self.reason = reason
        self.artifact = artifact


class SealError(GuardViolation):
    """A sealed artifact failed :func:`repro.guard.seal.check`."""


class SealMissing(SealError):
    """The blob carries no seal header at all.

    Either a legacy artifact written before sealing existed, or a
    foreign file that was never ours.  Loaders treat it exactly like
    corruption — quarantine, never trust — but the distinct reason
    (``"unsealed"``) keeps migration noise distinguishable from bit
    rot in the counters.
    """

    def __init__(self, message: str, *, artifact=None):
        super().__init__(message, reason="unsealed", artifact=artifact)


class SealTruncated(SealError):
    """The payload is shorter than the header promised.

    The signature of an interrupted write (or a partial copy): the
    header survived, the tail did not.
    """

    def __init__(self, message: str, *, artifact=None):
        super().__init__(message, reason="truncated", artifact=artifact)


class SealCorrupt(SealError):
    """Unparseable header, trailing garbage, or checksum mismatch."""

    def __init__(self, message: str, *, reason: str = "checksum",
                 artifact=None):
        super().__init__(message, reason=reason, artifact=artifact)


class SealVersionDrift(SealError):
    """The seal is intact but was written by a different world.

    Schema drift (the artifact format changed) or simulator drift
    (the timing model changed, so the payload describes a machine
    that no longer exists).  The payload may be perfectly readable —
    using it would still be wrong.
    """

    def __init__(self, message: str, *, reason: str = "version-drift",
                 artifact=None):
        super().__init__(message, reason=reason, artifact=artifact)


class TraceCorrupt(GuardViolation):
    """A trace archive violates a structural invariant.

    Carries the index of the first offending record (``index``) and
    the field concerned, so the error message points at the byte
    neighbourhood to inspect rather than surfacing later as a
    ``KeyError`` deep inside the ISA layer.
    """

    def __init__(self, message: str, *, index: int = -1,
                 field: str = "", reason: str = "structure",
                 artifact=None):
        super().__init__(message, reason=reason, artifact=artifact)
        self.index = index
        self.field = field


class AuditMismatch(GuardViolation):
    """A sampled re-execution disagreed with a restored result.

    The smoking gun for a stale cache or version drift that key
    salting failed to catch (a hand-edited entry, a migrated
    directory, a non-deterministic simulator bug).  Carries both
    payloads so the divergence can be diffed field by field.

    Attributes
    ----------
    key:
        The content hash under which the stale result was stored.
    index:
        The task's grid position.
    source:
        ``"cache"`` or ``"journal"`` — where the restored value came
        from.
    expected:
        The restored (trusted-until-now) stats.
    actual:
        The freshly re-executed stats.
    fields:
        Names of the differing stat fields.
    """

    def __init__(self, message: str, *, key: str = "", index: int = -1,
                 source: str = "", expected=None, actual=None,
                 fields=()):
        super().__init__(message, reason="audit-mismatch",
                         artifact=source or None)
        self.key = key
        self.index = index
        self.source = source
        self.expected = expected
        self.actual = actual
        self.fields = tuple(fields)


class SimulationHang(RuntimeError):
    """The pipeline stopped retiring instructions.

    Raised by the retirement-progress watchdog in
    :class:`repro.cpu.pipeline.Pipeline` when no instruction commits
    for ``hang_cycles`` consecutive cycles — a livelock diagnosis
    delivered in seconds instead of a silent task-timeout minutes
    later.  ``dump`` is a plain dict snapshot of the machine state
    (cycle, committed count, IFQ/ROB/LSQ occupancy, the head-of-ROB
    entry, fetch stall state) for post-mortem without re-running.
    """

    def __init__(self, message: str, *, dump=None):
        super().__init__(message)
        self.dump = dict(dump or {})

    def describe(self) -> str:
        """The message plus the state dump, one ``key=value`` per line."""
        lines = [str(self)]
        for key in sorted(self.dump):
            lines.append(f"  {key}={self.dump[key]!r}")
        return "\n".join(lines)


class StatsInvalid(RuntimeError):
    """A finished run produced numerically broken statistics.

    NaN or infinite derived metrics, negative counters, impossible
    rates — signs of an arithmetic bug (overflow, divide-by-zero
    feeding a later product) that would otherwise skew every
    downstream effect and rank silently.  ``failures`` lists the
    individual check failures.
    """

    def __init__(self, message: str, *, failures=()):
        super().__init__(message)
        self.failures = tuple(failures)
