"""End-to-end integrity guards for the simulation pipeline.

Everything downstream of the simulator — effect tables, rank sums,
classification trees, enhancement verdicts — is only as trustworthy
as the simulations and stored artifacts feeding it.  This package
makes that trust checkable at four layers:

* **Watchdogs** (:mod:`repro.guard.errors`, wired into
  :mod:`repro.cpu.pipeline`): a retirement-progress monitor raises
  :class:`SimulationHang` with a machine-state dump when the pipeline
  livelocks, and :meth:`~repro.cpu.stats.CoreStats.validate` raises
  :class:`StatsInvalid` on NaN/overflow-poisoned statistics.
* **Sealed artifacts** (:mod:`repro.guard.seal`): result-cache
  entries, journal headers, trace archives and run manifests share one
  self-describing header (kind, schema, simulator version, payload
  checksum); loaders quarantine anything that fails :func:`check`
  with a named reason instead of trusting or silently deleting it.
* **Sampled re-execution audits** (:mod:`repro.guard.audit`):
  ``run_grid(audit=...)`` deterministically re-runs a fraction of
  cache/journal hits and compares bit-exact, raising
  :class:`AuditMismatch` carrying both payloads on divergence.
* **Offline verification** (:mod:`repro.guard.verify`, surfaced as
  ``repro verify <run-dir>``): cross-checks a finished run's manifest,
  journal, cache and effect tables, recomputing PB effects and rank
  sums from the journaled raw results.

The submodules this package eagerly re-exports (``errors``, ``seal``,
``audit``) are stdlib-only, so the simulator and the execution engine
can depend on them without import cycles; the heavyweight offline
verifier stays behind an explicit ``from repro.guard import verify``.
"""

from .audit import (
    AuditPolicy,
    coerce_policy,
    differing_fields,
    verify_restored,
)
from .errors import (
    AuditMismatch,
    GuardViolation,
    SealCorrupt,
    SealError,
    SealMissing,
    SealTruncated,
    SealVersionDrift,
    SimulationHang,
    StatsInvalid,
    TraceCorrupt,
)
from .seal import MAGIC, check, read_header, seal

__all__ = [
    "AuditMismatch",
    "AuditPolicy",
    "GuardViolation",
    "MAGIC",
    "SealCorrupt",
    "SealError",
    "SealMissing",
    "SealTruncated",
    "SealVersionDrift",
    "SimulationHang",
    "StatsInvalid",
    "TraceCorrupt",
    "check",
    "coerce_policy",
    "differing_fields",
    "read_header",
    "seal",
    "verify_restored",
]
