"""Deterministic I/O fault injection and the sanctioned write seam.

Every durability layer in this tree — the result cache, the journal,
the distributed spool, the event stream, trace archives, manifests,
profiles, the sealed ``results.json`` — ultimately performs the same
four filesystem operations: open a temp name, write bytes, maybe
fsync, rename into place.  This module is the *one* place those
operations happen (:func:`publish_bytes`, :func:`vfs_write`,
:func:`vfs_fsync`, :func:`vfs_replace`), which buys two things at
once:

* a single enforcement point for the atomic-publish discipline (the
  REP101/REP105 static rules point here), and
* a single interposition point where scheduled I/O faults — ENOSPC,
  EIO, fsync failure, rename failure, partial/torn writes — can be
  injected deterministically, in the style of
  :mod:`repro.exec.faultinject`.

Determinism comes from scheduling faults by **operation index** on
three independent channels: every byte-write through the seam
consumes one ``write`` index, every fsync one ``fsync`` index, every
rename one ``rename`` index.  A fault fires iff the channel's running
counter falls inside the fault's ``[index, index + count)`` window,
so the same spec against the same operation sequence always faults
the same operations — no randomness at fire time, no wall clock.
Counters are per-process (a fork worker starts from the parent's
snapshot), exactly like the task-fault injector's ``fired`` log.

The injector is installed process-wide with :func:`install` /
:func:`uninstall` or the :func:`injected` context manager; for CI and
CLI experiments ``REPRO_FSFAULT_SPEC`` (see
:meth:`FsFaultInjector.from_spec`) installs one automatically at the
first seam operation, and every experiment subcommand takes
``--fsfault SPEC``.

Under any injected (or real) fault every writer must satisfy one of
two contracts, documented per writer in ``docs/robustness.md``:

* **degrade loudly** — self-disable, count the failure, keep the run
  going (cache puts, event-stream lanes, telemetry artifacts); or
* **fail atomically** — no torn sealed artifact ever becomes visible
  (journal lines roll back, spool/results publishes leave only a
  temp file that is removed, never the destination name).

:func:`publish_bytes` implements the second contract directly: the
destination name is only ever touched by ``os.replace``, and the temp
file is unlinked on any failure, injected or real.
"""

from __future__ import annotations

import errno
import os
import random
import tempfile
import threading
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Tuple, Union

__all__ = [
    "ALWAYS",
    "FsFault",
    "FsFaultInjector",
    "active",
    "injected",
    "install",
    "publish_bytes",
    "publish_text",
    "uninstall",
    "vfs_fsync",
    "vfs_replace",
    "vfs_write",
]

#: ``FsFault.count`` value meaning "every operation from index on".
ALWAYS = 10 ** 9

#: action -> the operation channel its faults fire on.
_CHANNELS = {
    "enospc": "write",
    "eio": "write",
    "erofs": "write",
    "torn": "write",
    "fsync": "fsync",
    "rename": "rename",
}


@dataclass(frozen=True)
class FsFault:
    """One scheduled I/O fault.

    Attributes
    ----------
    action:
        ``"enospc"`` — the write raises ``OSError(ENOSPC)`` before a
        byte lands;
        ``"eio"`` — the write raises ``OSError(EIO)``;
        ``"erofs"`` — the write raises ``OSError(EROFS)`` (the run
        directory was remounted read-only, the classic failover
        signature of a sick network filesystem);
        ``"torn"`` — half the bytes land, then ``OSError(ENOSPC)``
        (the disk filled mid-write: the signature the seal layer's
        truncation detection exists for);
        ``"fsync"`` — the fsync raises ``OSError(EIO)`` (data may or
        may not be durable — the caller must treat it as not);
        ``"rename"`` — the ``os.replace`` raises ``OSError(EIO)``
        (the publish never happened; the temp file is the only
        residue).
    index:
        First operation index (on the action's channel) the fault
        applies to.
    count:
        Number of consecutive operations faulted starting at
        ``index``; :data:`ALWAYS` for a permanent outage.  A window
        models "disk full for a while, then space restored".
    """

    action: str
    index: int
    count: int = 1

    def __post_init__(self):
        if self.action not in _CHANNELS:
            raise ValueError(
                f"unknown fsfault action {self.action!r}; "
                f"expected one of {tuple(sorted(_CHANNELS))}"
            )
        if self.index < 0:
            raise ValueError("index must be >= 0")
        if self.count < 1:
            raise ValueError("count must be >= 1")

    @property
    def channel(self) -> str:
        return _CHANNELS[self.action]


class FsFaultInjector:
    """A deterministic schedule of I/O faults, keyed by op index.

    Attributes
    ----------
    fired:
        Log of ``(channel, index, action)`` triples in fire order.
        Per-process, like :attr:`repro.exec.faultinject.FaultInjector.fired`.
    counts:
        Live per-channel operation counters (``write``, ``fsync``,
        ``rename``) — how many operations of each kind have crossed
        the seam in this process.
    """

    def __init__(self, faults):
        self.faults: List[FsFault] = list(faults)
        self.counts: Dict[str, int] = {
            "write": 0, "fsync": 0, "rename": 0,
        }
        self.fired: List[Tuple[str, int, str]] = []
        self._lock = threading.Lock()

    @classmethod
    def seeded(cls, seed: int, n_ops: int, *, enospc: int = 0,
               eio: int = 0, torn: int = 0, fsyncs: int = 0,
               renames: int = 0, count: int = 1) -> "FsFaultInjector":
        """A reproducible random schedule over ``n_ops`` operations.

        Write-channel faults (``enospc + eio + torn``) are placed on
        distinct indices drawn with ``random.Random(seed)``; fsync and
        rename faults are drawn independently on their own channels
        over the same index range.  The same seed always yields the
        same schedule.
        """
        wanted = enospc + eio + torn
        if max(wanted, fsyncs, renames) > n_ops:
            raise ValueError(
                f"cannot schedule that many faults over {n_ops} ops"
            )
        rng = random.Random(seed)
        faults: List[FsFault] = []
        indices = rng.sample(range(n_ops), wanted)
        cursor = 0
        for action, n in (("enospc", enospc), ("eio", eio),
                          ("torn", torn)):
            for _ in range(n):
                faults.append(FsFault(action, indices[cursor], count))
                cursor += 1
        for action, n in (("fsync", fsyncs), ("rename", renames)):
            for index in rng.sample(range(n_ops), n):
                faults.append(FsFault(action, index, count))
        return cls(faults)

    @classmethod
    def from_spec(cls, spec: str) -> "FsFaultInjector":
        """Parse a compact schedule string (the CI/CLI entry point).

        ``spec`` is comma-separated ``action:index[:count]`` items,
        e.g. ``"enospc:5:10,torn:30,rename:2,fsync:0:always"`` —
        write operations 5–14 see a full disk, write 30 is torn,
        rename 2 fails, every fsync from the first on fails.
        ``count`` may be ``always`` for a permanent outage.
        """
        faults: List[FsFault] = []
        for item in spec.split(","):
            item = item.strip()
            if not item:
                continue
            parts = item.split(":")
            if len(parts) < 2:
                raise ValueError(
                    f"bad fsfault spec item {item!r}; "
                    "use action:index[:count]"
                )
            action = parts[0].strip().lower()
            index = int(parts[1])
            count = 1
            if len(parts) > 2 and parts[2].strip():
                field = parts[2].strip().lower()
                count = ALWAYS if field == "always" else int(field)
            faults.append(FsFault(action, index, count))
        return cls(faults)

    def poll(self, channel: str) -> Optional[str]:
        """Consume one operation index on ``channel``; the action to
        inject there, or ``None``.  Called by the seam helpers only.
        """
        with self._lock:
            index = self.counts[channel]
            self.counts[channel] = index + 1
            for fault in self.faults:
                if fault.channel != channel:
                    continue
                if fault.index <= index < fault.index + fault.count:
                    self.fired.append((channel, index, fault.action))
                    return fault.action
        return None


#: The process-wide injector, if any.  Fork workers inherit it.
_ACTIVE: Optional[FsFaultInjector] = None
_ENV_CHECKED = False

#: Environment variable holding a ``from_spec`` schedule; read once,
#: at the first seam operation with no explicitly installed injector.
ENV_VAR = "REPRO_FSFAULT_SPEC"


def install(injector: FsFaultInjector) -> None:
    """Make ``injector`` the process-wide active injector."""
    global _ACTIVE  # repro: noqa[REP004] -- process-wide by design; fork workers inherit the parent's injector
    _ACTIVE = injector


def uninstall() -> None:
    """Remove the active injector (idempotent)."""
    global _ACTIVE  # repro: noqa[REP004] -- process-wide by design, see install()
    _ACTIVE = None


def active() -> Optional[FsFaultInjector]:
    """The active injector, auto-installing from ``REPRO_FSFAULT_SPEC``.

    The environment is consulted once per process; explicit
    :func:`install` / :func:`uninstall` always wins afterwards.
    """
    global _ACTIVE, _ENV_CHECKED  # repro: noqa[REP004] -- once-per-process memoisation of the env probe
    if _ACTIVE is None and not _ENV_CHECKED:
        _ENV_CHECKED = True
        spec = os.environ.get(ENV_VAR)  # repro: noqa[REP006] -- REPRO_FSFAULT_SPEC is the sanctioned CI/CLI fault-schedule entry point
        if spec:
            _ACTIVE = FsFaultInjector.from_spec(spec)
    return _ACTIVE


@contextmanager
def injected(injector: FsFaultInjector):
    """Scope an injector to a ``with`` block (used by the test suite)."""
    install(injector)
    try:
        yield injector
    finally:
        uninstall()


def _poll(channel: str) -> Optional[str]:
    injector = active()
    if injector is None:
        return None
    return injector.poll(channel)


# -- the seam primitives -------------------------------------------


def vfs_write(handle, data) -> None:
    """Write ``data`` (bytes or str) to an open handle via the seam.

    Consumes one ``write`` operation index.  An ``enospc``/``eio``
    fault raises before a byte lands; a ``torn`` fault writes half
    the data, flushes it so the damage is on disk, then raises
    ``OSError(ENOSPC)`` — the caller is responsible for rolling the
    file back (journal) or abandoning the temp name (publish).
    """
    action = _poll("write")
    if action == "torn":
        handle.write(data[: len(data) // 2])
        try:
            handle.flush()
        except (OSError, ValueError):
            pass
        raise OSError(
            errno.ENOSPC,
            "injected torn write: disk filled mid-write",
        )
    if action == "enospc":
        raise OSError(errno.ENOSPC, "injected ENOSPC")
    if action == "eio":
        raise OSError(errno.EIO, "injected EIO")
    if action == "erofs":
        raise OSError(errno.EROFS, "injected read-only filesystem")
    handle.write(data)


def vfs_fsync(fd: int) -> None:
    """``os.fsync`` via the seam (one ``fsync`` operation index)."""
    if _poll("fsync") is not None:
        raise OSError(errno.EIO, "injected fsync failure")
    os.fsync(fd)


def vfs_replace(src: Union[str, os.PathLike],
                dst: Union[str, os.PathLike]) -> None:
    """``os.replace`` via the seam (one ``rename`` operation index)."""
    if _poll("rename") is not None:
        raise OSError(errno.EIO, "injected rename failure")
    os.replace(src, dst)


def publish_bytes(path: Union[str, os.PathLike], blob: bytes, *,
                  fsync: bool = False, retries: int = 0) -> Path:
    """Atomically publish ``blob`` at ``path`` (the sanctioned dance).

    Writes to a dot-prefixed ``mkstemp`` name in the destination
    directory, optionally fsyncs, then ``os.replace``s onto the final
    name — every step through the fault seam.  On *any* failure the
    temp file is unlinked and the destination is untouched: a reader
    can never observe a torn artifact, which is the fail-atomically
    half of the degradation contract.

    ``retries`` re-runs the whole dance after a failure (each retry
    consumes fresh operation indices, so a transient fault window
    clears); the last failure propagates.
    """
    path = Path(path)
    last: Optional[BaseException] = None
    for _attempt in range(int(retries) + 1):
        try:
            _publish_once(path, blob, fsync=fsync)
            return path
        except OSError as exc:
            last = exc
    assert last is not None
    raise last


def publish_text(path: Union[str, os.PathLike], text: str, *,
                 encoding: str = "utf-8", fsync: bool = False,
                 retries: int = 0) -> Path:
    """:func:`publish_bytes` for text payloads."""
    return publish_bytes(Path(path), text.encode(encoding),
                         fsync=fsync, retries=retries)


def _publish_once(path: Path, blob: bytes, *, fsync: bool) -> None:
    # The temp marker ends the name (directory scans glob on final
    # suffixes like *.task / *.pkl, which an in-progress write must
    # never satisfy) and embeds the writer's pid so spool GC can tell
    # an orphaned temp file from one still being written.
    fd, tmp = tempfile.mkstemp(
        dir=str(path.parent),
        prefix=f".{path.name}.tmp-{os.getpid()}-",
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            vfs_write(handle, blob)
            handle.flush()
            if fsync:
                vfs_fsync(handle.fileno())
        vfs_replace(tmp, path)
    except OSError:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
