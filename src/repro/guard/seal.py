"""Sealing and checking binary artifacts.

Every durable artifact this project writes — result-cache entries,
journal lines, run manifests — used to carry its own ad-hoc notion of
validity (a pickle that happens to load, a line whose checksum
happens to match).  :func:`seal` and :func:`check` replace that with
one uniform header so every loader detects the same four failure
classes the same way:

* **corruption** — the payload's SHA-256 no longer matches;
* **truncation** — the payload is shorter than the header promised;
* **schema drift** — the artifact format version changed;
* **simulator drift** — :data:`repro.cpu.SIMULATOR_VERSION` changed,
  so the payload describes measurements of a machine model that no
  longer exists.

Format (all ASCII until the payload)::

    REPROSEAL1<newline>
    {"kind": "...", "schema": N, "sim": "...", "len": N, "sha256": "..."}<newline>
    <payload bytes>

The header is a single canonical JSON line, so a sealed artifact is
self-describing under ``head -2`` and greppable in a directory of
thousands.  :func:`check` raises the typed errors of
:mod:`repro.guard.errors`; each carries a stable ``reason`` slug the
loaders use to name quarantined files and counters.
"""

from __future__ import annotations

import hashlib
import json
from typing import Dict, Optional

from .errors import (
    SealCorrupt,
    SealMissing,
    SealTruncated,
    SealVersionDrift,
)

__all__ = ["MAGIC", "seal", "check", "read_header"]

#: First line of every sealed artifact.  The trailing ``1`` is the
#: version of the *seal container* itself, independent of the sealed
#: artifact's own ``schema``.
MAGIC = b"REPROSEAL1\n"


def _digest(payload: bytes) -> str:
    return hashlib.sha256(payload).hexdigest()


def seal(payload: bytes, *, kind: str, schema: int,
         simulator_version: Optional[str] = None) -> bytes:
    """Wrap ``payload`` in a sealed envelope.

    Parameters
    ----------
    payload:
        The artifact's raw bytes (a pickle, JSON, anything).
    kind:
        What this artifact is (``"result-cache"``, ``"manifest"``,
        ...); :func:`check` refuses a blob sealed as something else,
        so artifacts cannot silently masquerade across stores.
    schema:
        The artifact format version.
    simulator_version:
        :data:`repro.cpu.SIMULATOR_VERSION` for artifacts whose
        contents depend on the timing model; ``None`` for artifacts
        that do not (the check is then skipped on load).
    """
    header = {
        "kind": kind,
        "len": len(payload),
        "schema": int(schema),
        "sha256": _digest(payload),
    }
    if simulator_version is not None:
        header["sim"] = str(simulator_version)
    line = json.dumps(header, sort_keys=True, separators=(",", ":"))
    return MAGIC + line.encode("ascii") + b"\n" + payload


def read_header(blob: bytes) -> Dict[str, object]:
    """The parsed seal header of ``blob`` (no payload validation).

    For inspection tools; raises :class:`SealMissing` /
    :class:`SealCorrupt` exactly like :func:`check` when even the
    header cannot be trusted.
    """
    if not blob.startswith(MAGIC):
        raise SealMissing("no seal header (legacy or foreign artifact)")
    newline = blob.find(b"\n", len(MAGIC))
    if newline < 0:
        raise SealCorrupt("seal header line never terminates",
                          reason="malformed-header")
    try:
        header = json.loads(blob[len(MAGIC):newline].decode("ascii"))
        if not isinstance(header, dict):
            raise ValueError("header is not an object")
    except (ValueError, UnicodeDecodeError) as exc:
        raise SealCorrupt(f"unparseable seal header: {exc}",
                          reason="malformed-header") from None
    header["_payload_offset"] = newline + 1
    return header


def check(blob: bytes, *, kind: str, schema: Optional[int] = None,
          simulator_version: Optional[str] = None) -> bytes:
    """Validate a sealed blob and return its payload bytes.

    Checks, in order: the magic, the header, the artifact ``kind``,
    schema drift, simulator drift, truncation, and finally the
    payload checksum.  Drift is diagnosed *before* the checksum so a
    stale-but-intact artifact is reported as drift (actionable:
    regenerate) rather than corruption (alarming: investigate the
    disk).

    Parameters mirror :func:`seal`; pass ``schema=None`` or
    ``simulator_version=None`` to skip the respective drift check.
    """
    header = read_header(blob)
    offset = header.pop("_payload_offset")
    found_kind = header.get("kind")
    if found_kind != kind:
        raise SealCorrupt(
            f"sealed as {found_kind!r}, expected {kind!r}",
            reason="wrong-kind",
        )
    if schema is not None and header.get("schema") != int(schema):
        raise SealVersionDrift(
            f"schema v{header.get('schema')} != expected v{schema}",
            reason="schema-drift",
        )
    if simulator_version is not None and "sim" in header \
            and header["sim"] != str(simulator_version):
        raise SealVersionDrift(
            f"simulator version {header['sim']!r} != current "
            f"{simulator_version!r}",
            reason="version-drift",
        )
    payload = blob[offset:]
    expected_len = header.get("len")
    if not isinstance(expected_len, int) or expected_len < 0:
        raise SealCorrupt("seal header carries no valid payload length",
                          reason="malformed-header")
    if len(payload) < expected_len:
        raise SealTruncated(
            f"payload is {len(payload)} bytes, header promised "
            f"{expected_len}"
        )
    if len(payload) > expected_len:
        raise SealCorrupt(
            f"{len(payload) - expected_len} bytes of trailing garbage "
            "after the sealed payload",
            reason="trailing-garbage",
        )
    if _digest(payload) != header.get("sha256"):
        raise SealCorrupt("payload checksum mismatch")
    return payload
