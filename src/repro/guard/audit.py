"""Sampled re-execution audits of restored simulation results.

The result cache and checkpoint journal are trusted because a
simulation is a pure function of its content-hashed inputs.  The
audit closes the remaining gap — *is the store still telling the
truth?* — by deterministically re-running a configurable fraction of
cache/journal hits in-process and comparing bit-exact.  A mismatch
means a stale or tampered entry, version drift that key salting
failed to catch, or a non-deterministic simulator bug; all of them
must stop the run, because every further rank sum would be built on
an unverifiable foundation.

Selection is a pure function of ``(seed, task key)``, so two runs of
the same grid audit the same cells (reproducible), cells are audited
independently of grid order (a reordered screen audits the same
work), and no RNG state is consumed (the determinism lint stays
quiet).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, fields, is_dataclass
from typing import List, Union

from .errors import AuditMismatch

__all__ = ["AuditPolicy", "differing_fields", "verify_restored"]


@dataclass(frozen=True)
class AuditPolicy:
    """How aggressively restored results are re-verified.

    Parameters
    ----------
    fraction:
        Probability mass of restored cells to re-execute, in
        ``[0, 1]``.  ``0`` disables the audit, ``1`` re-runs every
        hit (a full replication pass).
    seed:
        Salt mixed into the per-key selection hash; two policies with
        different seeds audit different (deterministic) subsets, so
        repeated screens with rotating seeds eventually cover the
        whole store.
    """

    fraction: float = 0.0
    seed: int = 0

    def __post_init__(self):
        if not 0.0 <= self.fraction <= 1.0:
            raise ValueError(
                f"audit fraction must be in [0, 1], got {self.fraction}"
            )

    def selects(self, key: str) -> bool:
        """True when the cell stored under ``key`` must be re-run.

        A pure function of ``(seed, key)``: the first 8 bytes of
        ``sha256(seed ':' key)`` read as a fraction of 2**64,
        compared against :attr:`fraction`.
        """
        if self.fraction <= 0.0:
            return False
        if self.fraction >= 1.0:
            return True
        digest = hashlib.sha256(
            f"{self.seed}:{key}".encode("ascii")
        ).digest()
        draw = int.from_bytes(digest[:8], "big") / 2.0 ** 64
        return draw < self.fraction


def coerce_policy(audit: Union["AuditPolicy", float, None]) -> \
        "AuditPolicy":
    """Normalize ``run_grid(audit=...)``'s argument to a policy.

    Accepts a ready :class:`AuditPolicy`, a bare fraction, or
    ``None`` (no auditing).
    """
    if audit is None:
        return AuditPolicy(0.0)
    if isinstance(audit, AuditPolicy):
        return audit
    return AuditPolicy(float(audit))


def differing_fields(expected, actual) -> List[str]:
    """Names of the dataclass fields on which two stats disagree.

    Field-by-field equality over :class:`~repro.cpu.stats.CoreStats`
    (or any dataclass): nested dataclasses and dicts compare by
    value, exactly the bit-exactness the determinism contract
    promises.  Non-dataclass inputs fall back to one synthetic
    ``"value"`` entry on inequality.
    """
    if not (is_dataclass(expected) and is_dataclass(actual)) \
            or type(expected) is not type(actual):
        return [] if expected == actual else ["value"]
    return [
        f.name for f in fields(expected)
        if getattr(expected, f.name) != getattr(actual, f.name)
    ]


def verify_restored(key: str, index: int, source: str,
                    expected, actual) -> None:
    """Raise :class:`AuditMismatch` unless the re-run reproduced the
    restored result exactly.

    ``expected`` is what the cache/journal claimed, ``actual`` what a
    fresh in-process execution produced.  Both travel on the raised
    exception so the divergence can be diffed post-mortem.
    """
    diff = differing_fields(expected, actual)
    if not diff:
        return
    raise AuditMismatch(
        f"audit re-execution of task {index} (restored from {source}, "
        f"key {key[:12]}...) diverged on {', '.join(diff)} — the "
        "stored result is stale, tampered with, or the simulator is "
        "non-deterministic",
        key=key, index=index, source=source,
        expected=expected, actual=actual, fields=diff,
    )
