"""Benchmark-manifest regression gate: ``repro bench check``.

The benchmark harness (``benchmarks/conftest.py``) emits one
``BENCH_<label>.json`` run manifest per session experiment.  A
baseline set of those manifests — measured on the interpreted
reference core and committed under ``benchmarks/baselines/`` — turns
every later session into a regression check along two axes:

* **Determinism** — the ``sim.*`` counters (total cycles,
  instructions, precompute hits, per-cause stall totals) and the grid
  shape (``grid.tasks`` / ``tasks.completed``) are pure functions of
  the experiment inputs and the simulator version.  Any drift is a
  correctness bug or an undeclared timing-model change, so these
  compare **bit-exact**, never within a tolerance.  Because the
  committed baselines come from the reference core, a fresh run on the
  batched core re-proves the equivalence contract end to end on every
  check.
* **Performance** — wall time (``outcome.elapsed_seconds``) may drift
  with the host, so it compares within a fractional ``tolerance``;
  only slowdowns beyond it fail (a faster run is never a regression).

Both manifests must describe the *same experiment* (equal input
fingerprints, equal simulator versions) to be comparable at all; a
mismatch there is reported as *incomparable* rather than as a
regression — after an intentional ``SIMULATOR_VERSION`` bump the
baselines must be regenerated and recommitted, which is exactly the
paper trail the version-bump rule wants (see ``docs/simulator.md``).

Exit-status contract (mirrors ``repro verify``): 0 = every label
passed, 1 = at least one regression or determinism divergence, 2 = at
least one pair was incomparable (missing/corrupt manifest, fingerprint
or simulator-version drift).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from repro.guard.errors import SealError

__all__ = ["BenchCheck", "BenchReport", "check_directory",
           "compare_manifests"]

#: Metric-name prefixes whose counter values must match bit-exact.
EXACT_PREFIXES = ("sim.",)

#: Individual counters that must match bit-exact (grid shape).
EXACT_COUNTERS = ("grid.tasks", "tasks.completed")


@dataclass
class BenchCheck:
    """One comparison outcome for one label."""

    label: str
    name: str                 # metric name, or "elapsed_seconds"
    verdict: str              # "ok" | "regressed" | "diverged"
    baseline: object = None
    current: object = None

    def describe(self) -> str:
        if self.verdict == "ok":
            return f"  ok         {self.name}"
        if self.verdict == "regressed":
            return (f"  REGRESSED  {self.name}: "
                    f"{self.baseline} -> {self.current}")
        return (f"  DIVERGED   {self.name}: baseline {self.baseline}, "
                f"current {self.current}")


@dataclass
class BenchReport:
    """Every check across every label, plus incomparability problems."""

    checks: List[BenchCheck] = field(default_factory=list)
    #: label -> reason this pair could not be compared at all.
    incomparable: Dict[str, str] = field(default_factory=dict)
    labels: List[str] = field(default_factory=list)

    @property
    def failures(self) -> List[BenchCheck]:
        return [c for c in self.checks if c.verdict != "ok"]

    @property
    def status(self) -> int:
        if self.incomparable:
            return 2
        return 1 if self.failures else 0

    def describe(self) -> str:
        lines = []
        for label in self.labels:
            if label in self.incomparable:
                lines.append(f"{label}: INCOMPARABLE — "
                             f"{self.incomparable[label]}")
                continue
            mine = [c for c in self.checks if c.label == label]
            bad = [c for c in mine if c.verdict != "ok"]
            lines.append(f"{label}: {len(mine) - len(bad)}/{len(mine)} "
                         "checks passed")
            for check in mine:
                if check.verdict != "ok":
                    lines.append(check.describe())
        verdict = {0: "PASS", 1: "FAIL (regression)",
                   2: "FAIL (incomparable)"}[self.status]
        lines.append(f"bench check: {verdict}")
        return "\n".join(lines)


def _counter_values(doc: dict) -> Dict[str, object]:
    """name -> value for every counter instrument in a manifest's
    final metrics snapshot."""
    metrics = (doc.get("outcome") or {}).get("metrics") or {}
    out: Dict[str, object] = {}
    for name, snap in metrics.items():
        if isinstance(snap, dict) and snap.get("type") == "counter":
            out[name] = snap.get("value")
    return out


def _is_exact(name: str) -> bool:
    return name in EXACT_COUNTERS or \
        any(name.startswith(p) for p in EXACT_PREFIXES)


def compare_manifests(
    baseline: dict,
    current: dict,
    *,
    label: str,
    tolerance: float = 0.5,
) -> Union[List[BenchCheck], str]:
    """Compare two loaded manifest documents for one label.

    Returns the list of checks, or a string naming why the pair is
    incomparable (different experiment or simulator version).
    """
    b_run = baseline.get("run") or {}
    c_run = current.get("run") or {}
    if b_run.get("fingerprint") != c_run.get("fingerprint"):
        return ("input fingerprints differ — the manifests describe "
                "different experiments (check REPRO_BENCH_SCALE and "
                "the benchmark set)")
    b_sim = (baseline.get("integrity") or {}).get("sim")
    c_sim = (current.get("integrity") or {}).get("sim")
    if b_sim != c_sim:
        return (f"simulator version drift (baseline {b_sim!r}, "
                f"current {c_sim!r}) — regenerate and recommit the "
                "baselines for the new version")

    checks: List[BenchCheck] = []
    b_counters = _counter_values(baseline)
    c_counters = _counter_values(current)
    for name in sorted(b_counters):
        if not _is_exact(name):
            continue
        expected = b_counters[name]
        actual = c_counters.get(name)
        checks.append(BenchCheck(
            label=label, name=name,
            verdict="ok" if actual == expected else "diverged",
            baseline=expected, current=actual,
        ))

    b_elapsed = (baseline.get("outcome") or {}).get("elapsed_seconds")
    c_elapsed = (current.get("outcome") or {}).get("elapsed_seconds")
    if isinstance(b_elapsed, (int, float)) \
            and isinstance(c_elapsed, (int, float)):
        budget = b_elapsed * (1.0 + tolerance)
        checks.append(BenchCheck(
            label=label, name="elapsed_seconds",
            verdict="ok" if c_elapsed <= budget else "regressed",
            baseline=round(float(b_elapsed), 3),
            current=round(float(c_elapsed), 3),
        ))
    return checks


def _manifests_in(directory: Path) -> Dict[str, Path]:
    """label -> path for every ``BENCH_<label>.json`` in a directory."""
    out: Dict[str, Path] = {}
    for file in sorted(directory.glob("BENCH_*.json")):
        label = file.stem[len("BENCH_"):]
        if label:
            out[label] = file
    return out


def check_directory(
    baseline_dir,
    current_dir,
    *,
    tolerance: float = 0.5,
    labels: Optional[Sequence[str]] = None,
) -> BenchReport:
    """Compare every baseline label against its fresh counterpart.

    ``labels`` restricts the comparison to a subset; by default every
    ``BENCH_<label>.json`` committed under ``baseline_dir`` must have
    a fresh, comparable, non-regressed counterpart in ``current_dir``.
    Manifests are loaded through the checking loader
    (:func:`repro.obs.manifest.load_manifest`), so a tampered or torn
    manifest on either side is *incomparable*, never silently trusted.
    """
    from repro.obs.manifest import load_manifest

    report = BenchReport()
    baseline_dir = Path(baseline_dir)
    current_dir = Path(current_dir)
    if not baseline_dir.is_dir():
        report.labels.append("(baselines)")
        report.incomparable["(baselines)"] = \
            f"no baseline directory {baseline_dir}"
        return report
    baselines = _manifests_in(baseline_dir)
    if labels is not None:
        missing = sorted(set(labels) - set(baselines))
        for label in missing:
            report.labels.append(label)
            report.incomparable[label] = \
                f"no committed baseline in {baseline_dir}"
        baselines = {k: v for k, v in baselines.items() if k in labels}
    if not baselines and not report.incomparable:
        report.labels.append("(baselines)")
        report.incomparable["(baselines)"] = \
            f"no BENCH_<label>.json baselines in {baseline_dir}"
        return report
    currents = _manifests_in(current_dir) if current_dir.is_dir() else {}

    for label, base_path in sorted(baselines.items()):
        report.labels.append(label)
        cur_path = currents.get(label)
        if cur_path is None:
            report.incomparable[label] = \
                f"no fresh BENCH_{label}.json in {current_dir}"
            continue
        try:
            base_doc = load_manifest(base_path)
        except SealError as exc:
            report.incomparable[label] = f"baseline unusable: {exc}"
            continue
        try:
            cur_doc = load_manifest(cur_path)
        except SealError as exc:
            report.incomparable[label] = f"current unusable: {exc}"
            continue
        outcome = compare_manifests(
            base_doc, cur_doc, label=label, tolerance=tolerance,
        )
        if isinstance(outcome, str):
            report.incomparable[label] = outcome
        else:
            report.checks.extend(outcome)
    return report
