"""Observability for the execution engine and simulator: spans,
metrics, exporters, and run manifests.

The engine of :mod:`repro.exec` runs 88-configuration screens across
worker pools with caching, retries and fault injection — and until
this package, its only window was a bare ``(done, total)`` progress
callback.  :mod:`repro.obs` adds the measurement layer:

* :mod:`repro.obs.span` — a lightweight span tracer recording the full
  task lifecycle (queue wait, worker run, retries, timeouts,
  cache/journal restores) plus coarse pipeline phases;
* :mod:`repro.obs.metrics` — a registry of counters, gauges and
  histograms with a deterministic snapshot API;
* :mod:`repro.obs.stream` — the crash-durable event log: sealed-line
  JSONL appended record by record by the engine, broker and every
  dist worker, torn-tail tolerant, reconstructable into traces even
  for interrupted runs;
* :mod:`repro.obs.fleet` — cross-worker aggregation of spool liveness
  and event lanes into one snapshot (the ``repro top`` data model);
* :mod:`repro.obs.profile` — opt-in per-phase cProfile capture with
  flamegraph-ready collapsed-stack export;
* :mod:`repro.obs.export` — Chrome trace-event JSON (Perfetto),
  metrics JSONL, Prometheus text format, and text summary tables;
* :mod:`repro.obs.manifest` — one JSON provenance record per run;
* :mod:`repro.obs.telemetry` — the :class:`Telemetry` facade threaded
  through ``run_grid(telemetry=...)`` and the CLI's
  ``--trace/--metrics/--manifest/--stream/--profile`` flags;
* :mod:`repro.obs.clock` — the tree's **single sanctioned wall-clock
  site** under the REP002 determinism lint.

The package-wide contract: telemetry is strictly observational.  With
it enabled, results are bit-identical to a bare run, span identities
derive from task content (never RNG or time), and two identical runs
produce traces equal after timestamp scrubbing
(:func:`~repro.obs.export.scrub_trace`).  ``docs/observability.md``
has the span model, metric catalogue, event schema and manifest
schema.
"""

from .clock import elapsed, monotonic, wall_time
from .export import (
    chrome_trace,
    prometheus_text,
    render_metrics_table,
    scrub_trace,
    write_chrome_trace,
    write_metrics_jsonl,
)
from .fleet import FleetSnapshot, WorkerView, fleet_snapshot
from .manifest import RunManifest, config_fingerprint, load_manifest
from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .profile import PhaseProfiler
from .span import Span, Tracer
from .stream import (
    EVENT_SCHEMA,
    EventRecord,
    EventWriter,
    StreamScan,
    find_stream_lanes,
    scan_stream,
    trace_from_streams,
)
from .telemetry import Telemetry, phase_of

__all__ = [
    "Counter",
    "EVENT_SCHEMA",
    "EventRecord",
    "EventWriter",
    "FleetSnapshot",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "PhaseProfiler",
    "RunManifest",
    "Span",
    "StreamScan",
    "Telemetry",
    "Tracer",
    "WorkerView",
    "chrome_trace",
    "config_fingerprint",
    "elapsed",
    "find_stream_lanes",
    "fleet_snapshot",
    "load_manifest",
    "monotonic",
    "phase_of",
    "prometheus_text",
    "render_metrics_table",
    "scan_stream",
    "scrub_trace",
    "trace_from_streams",
    "wall_time",
    "write_chrome_trace",
    "write_metrics_jsonl",
]
