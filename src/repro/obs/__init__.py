"""Observability for the execution engine and simulator: spans,
metrics, exporters, and run manifests.

The engine of :mod:`repro.exec` runs 88-configuration screens across
worker pools with caching, retries and fault injection — and until
this package, its only window was a bare ``(done, total)`` progress
callback.  :mod:`repro.obs` adds the measurement layer:

* :mod:`repro.obs.span` — a lightweight span tracer recording the full
  task lifecycle (queue wait, worker run, retries, timeouts,
  cache/journal restores) plus coarse pipeline phases;
* :mod:`repro.obs.metrics` — a registry of counters, gauges and
  histograms with a deterministic snapshot API;
* :mod:`repro.obs.export` — Chrome trace-event JSON (Perfetto),
  metrics JSONL, and text summary tables;
* :mod:`repro.obs.manifest` — one JSON provenance record per run;
* :mod:`repro.obs.telemetry` — the :class:`Telemetry` facade threaded
  through ``run_grid(telemetry=...)`` and the CLI's
  ``--trace/--metrics/--manifest`` flags;
* :mod:`repro.obs.clock` — the tree's **single sanctioned wall-clock
  site** under the REP002 determinism lint.

The package-wide contract: telemetry is strictly observational.  With
it enabled, results are bit-identical to a bare run, span identities
derive from task content (never RNG or time), and two identical runs
produce traces equal after timestamp scrubbing
(:func:`~repro.obs.export.scrub_trace`).  ``docs/observability.md``
has the span model, metric catalogue and manifest schema.
"""

from .clock import elapsed, wall_time
from .export import (
    chrome_trace,
    render_metrics_table,
    scrub_trace,
    write_chrome_trace,
    write_metrics_jsonl,
)
from .manifest import RunManifest, config_fingerprint, load_manifest
from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .span import Span, Tracer
from .telemetry import Telemetry, phase_of

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "RunManifest",
    "Span",
    "Telemetry",
    "Tracer",
    "chrome_trace",
    "config_fingerprint",
    "elapsed",
    "load_manifest",
    "phase_of",
    "render_metrics_table",
    "scrub_trace",
    "wall_time",
    "write_chrome_trace",
    "write_metrics_jsonl",
]
