"""Lightweight span tracing for simulation runs.

A :class:`Tracer` records *spans* — named intervals with attributes —
and *instant events*, cheaply enough to wrap every task of an 88-run
screen.  The design is shaped by the determinism contract of
:mod:`repro.obs`:

* **IDs are content-derived.**  A span's identity comes from the name
  and attributes its creator passes (task index, attempt number,
  task-key prefix), never from RNG, object addresses, or the clock.
  Two identical runs therefore produce traces that differ only in
  timestamps (see :func:`repro.obs.export.scrub_trace`).
* **Time is annotation.**  Start/end readings come from
  :mod:`repro.obs.clock` and are stored as offsets from the tracer's
  epoch; nothing downstream of a timestamp feeds back into execution.
* **Recording is observational.**  A tracer never raises out of
  ``begin``/``finish``/``event`` in normal operation, and the engine
  additionally guards every telemetry call, so a broken tracer cannot
  abort a healthy grid.

Spans come in two flavours for export: *sync* spans belong to one
track (the supervisor thread or a worker lane) and must nest; *async*
spans (queue waits) may overlap freely and are rendered as async
arrows by Perfetto.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

from . import clock

__all__ = ["Span", "Tracer"]

#: Track number used for spans recorded by the calling process (the
#: grid supervisor); worker lanes are ``1 + worker_id``.
SUPERVISOR_TRACK = 0


@dataclass
class Span:
    """One named interval (or instant, when ``end`` stays ``None``)."""

    name: str
    category: str
    attributes: Dict[str, object]
    #: Seconds since the tracer epoch (monotonic, not wall time).
    start: float
    end: Optional[float] = None
    #: Export lane: 0 is the supervisor, 1+N is worker N.
    track: int = SUPERVISOR_TRACK
    #: Overlapping span rendered as an async event pair; ``sync``
    #: spans on one track must nest.
    asynchronous: bool = False
    #: True for zero-duration instant events.
    instant: bool = False

    @property
    def duration(self) -> Optional[float]:
        """Span length in seconds, or ``None`` while still open."""
        if self.end is None:
            return None
        return self.end - self.start

    def ident(self) -> str:
        """A deterministic identity string (no RNG, no clock).

        Derived from the name, category and sorted attributes, so the
        same logical span gets the same identity in every run — this
        is what async event pairing and trace diffing key on.
        """
        parts = [self.category, self.name]
        for key in sorted(self.attributes):
            parts.append(f"{key}={self.attributes[key]}")
        return ":".join(parts)


class Tracer:
    """Collects spans and instant events for one run.

    The tracer is append-only and single-process: the engine emits all
    telemetry from the calling process (worker processes report plain
    results), so no locking is needed and recording order is the
    supervisor's observation order.

    An optional *sink* (duck-typed ``span_open(span)`` /
    ``span_close(span)`` / ``instant(span)`` — in practice a
    :class:`~repro.obs.stream.EventWriter`) is notified as each span
    opens, closes, or fires, turning the in-memory record into a live
    stream without changing any emitting call site.  Sink calls are
    best-effort: the sink itself is expected to guard its I/O, and the
    engine's telemetry guard covers the rest.
    """

    def __init__(self, sink=None):
        #: Monotonic reading all span offsets are relative to.
        self.epoch = clock.elapsed()
        #: Wall-clock anchor for the epoch, exported as metadata so a
        #: trace can be placed in civil time.
        self.epoch_wall = clock.wall_time()
        self._spans: List[Span] = []
        self.sink = sink

    def __len__(self) -> int:
        return len(self._spans)

    def spans(self) -> List[Span]:
        """All recorded spans, in recording order."""
        return list(self._spans)

    def begin(self, name: str, category: str = "phase", *,
              track: int = SUPERVISOR_TRACK,
              asynchronous: bool = False,
              **attributes) -> Span:
        """Open a span; pair with :meth:`finish`."""
        span = Span(
            name=name, category=category, attributes=dict(attributes),
            start=clock.elapsed() - self.epoch, track=track,
            asynchronous=asynchronous,
        )
        self._spans.append(span)
        if self.sink is not None:
            self.sink.span_open(span)
        return span

    def finish(self, span: Span, **attributes) -> Span:
        """Close ``span``, merging any final attributes (idempotent)."""
        was_open = span.end is None
        if span.end is None:
            span.end = clock.elapsed() - self.epoch
        if attributes:
            span.attributes.update(attributes)
        if was_open and self.sink is not None:
            self.sink.span_close(span)
        return span

    def event(self, name: str, category: str = "event",
              *, track: int = SUPERVISOR_TRACK, **attributes) -> Span:
        """Record an instant event (retry, worker death, ...)."""
        span = Span(
            name=name, category=category, attributes=dict(attributes),
            start=clock.elapsed() - self.epoch, track=track,
            instant=True,
        )
        span.end = span.start
        self._spans.append(span)
        if self.sink is not None:
            self.sink.instant(span)
        return span

    def span(self, name: str, category: str = "phase",
             **attributes) -> "_SpanContext":
        """Context manager form for straight-line phases::

            with tracer.span("effects", rows=88):
                ...
        """
        return _SpanContext(self, name, category, attributes)

    def close_open_spans(self) -> int:
        """Finish every still-open span (e.g. after an interrupt).

        Returns the number closed, and marks each with
        ``interrupted=True`` so a truncated trace is honest about it.
        """
        closed = 0
        for span in self._spans:
            if span.end is None:
                self.finish(span, interrupted=True)
                closed += 1
        return closed


class _SpanContext:
    """``with``-statement adapter around begin/finish."""

    def __init__(self, tracer: Tracer, name: str, category: str,
                 attributes: Dict[str, object]):
        self._tracer = tracer
        self._name = name
        self._category = category
        self._attributes = attributes
        self._span: Optional[Span] = None

    def __enter__(self) -> Span:
        self._span = self._tracer.begin(
            self._name, self._category, **self._attributes
        )
        return self._span

    def __exit__(self, exc_type, exc, tb) -> None:
        extra = {}
        if exc_type is not None:
            extra["error"] = exc_type.__name__
        self._tracer.finish(self._span, **extra)
