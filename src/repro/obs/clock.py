"""The single sanctioned wall-clock site of the tree.

The determinism lint (:mod:`repro.analysis`, rule REP002) forbids
wall-clock reads everywhere else, because a timestamp that flows into
a simulator decision, an effect computation, or a cache/journal key
silently breaks replay.  Telemetry is the one place wall time is
*meant* to exist — a trace without timestamps is not a trace — so all
of it funnels through this module, where the suppression is visible,
reasoned, and auditable in one place.

The contract the rest of :mod:`repro.obs` upholds in exchange:

* timestamps annotate spans, metrics dumps, and manifests **only**;
  they never reach :func:`repro.exec.cache.task_key`, a journal entry,
  or any simulated quantity;
* everything structural (span names, IDs, attributes, counter values)
  is derived from task content, so two identical runs differ only in
  the numbers these two functions return.
"""

from __future__ import annotations

import time

__all__ = ["elapsed", "monotonic", "wall_time"]


def wall_time() -> float:
    """Seconds since the epoch, for human-facing timestamps.

    Used once per tracer/manifest to anchor relative span times to
    civil time; never used for durations (see :func:`elapsed`).
    """
    return time.time()  # repro: noqa[REP002] -- the tree's single sanctioned wall-clock read; annotates telemetry artifacts only and never enters results, cache keys, or journals


def elapsed() -> float:
    """A monotonic high-resolution reading, for span durations.

    ``time.perf_counter`` never goes backwards and is unaffected by
    NTP steps, so span durations are always non-negative.  Only
    *differences* of this value are meaningful.
    """
    return time.perf_counter()


def monotonic() -> float:
    """The cross-process monotonic instant, for the event stream.

    ``time.monotonic`` reads ``CLOCK_MONOTONIC``, which is shared by
    every process on the host — the same clock the dist spool stamps
    on leases and heartbeats — so a stream event, a lease deadline and
    a heartbeat instant from different processes compare directly.
    ``elapsed`` (``perf_counter``) is *not* guaranteed comparable
    across processes, which is why the stream does not use it.  Only
    *differences* of this value are meaningful.
    """
    return time.monotonic()
