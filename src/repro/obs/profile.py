"""Opt-in per-phase profiling for engine runs.

``repro <cmd> --profile DIR`` arms a :class:`PhaseProfiler` on the
run's :class:`~repro.obs.telemetry.Telemetry`; every coarse engine
phase (``pb-design``, ``grid``, ``pb-analyze``, ``enhance-before``,
...) then executes under :mod:`cProfile` and dumps two artifacts per
phase into ``DIR``:

* ``<phase>.pstats`` — the raw stats file, for ``python -m pstats`` or
  snakeviz;
* ``<phase>.collapsed.txt`` — collapsed-stack text (one
  ``caller;callee count`` line per edge, counts in microseconds of
  cumulative time), directly consumable by ``flamegraph.pl`` and
  speedscope.  This is a *two-frame edge* collapse derived from the
  pstats caller table, not a full stack reconstruction — cProfile does
  not retain whole stacks — which is the standard fidelity for
  pstats-sourced flamegraphs.

Design constraints:

* **cProfile cannot nest** — a second ``enable()`` while one profiler
  runs raises.  Engine phases do nest (``grid`` inside a CLI command
  span), so the profiler captures only the *outermost* active phase
  and counts the inner ones as part of it (a depth guard, not an
  error).
* **Profiling is observational** — any failure to enable (another
  profiler active, e.g. under coverage tooling) or to write artifacts
  warns once and disables capture; the run continues.
* Artifacts are written tmp + :func:`os.replace`, the repository's
  publish discipline, so a crash mid-dump never leaves a torn
  ``.pstats`` behind.
"""

from __future__ import annotations

import cProfile
import os
import pstats
import re
import warnings
from contextlib import contextmanager
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.guard import fsfault

__all__ = ["PhaseProfiler", "collapsed_stacks"]


def _slug(name: str) -> str:
    return re.sub(r"[^A-Za-z0-9._-]+", "-", name).strip("-") or "phase"


def _frame(func) -> str:
    filename, lineno, name = func
    if filename == "~":
        return name  # builtins print as "<built-in ...>" already
    return f"{Path(filename).name}:{lineno}:{name}"


def collapsed_stacks(stats: pstats.Stats) -> List[str]:
    """``caller;callee microseconds`` lines from a pstats table.

    Sorted for determinism of *shape* (the counts are wall time and
    vary run to run).  Root frames — functions with no recorded
    caller — appear as single-frame lines carrying their total time.
    """
    lines: List[str] = []
    for func, (cc, nc, tt, ct, callers) in stats.stats.items():
        callee = _frame(func)
        if callers:
            for caller, (ccc, cnc, ctt, cct) in callers.items():
                lines.append(
                    f"{_frame(caller)};{callee} "
                    f"{max(1, int(round(cct * 1e6)))}"
                )
        else:
            lines.append(f"{callee} {max(1, int(round(ct * 1e6)))}")
    return sorted(lines)


class PhaseProfiler:
    """Captures one cProfile per outermost telemetry phase.

    Parameters
    ----------
    directory:
        Where ``<phase>.pstats`` / ``<phase>.collapsed.txt`` land;
        created on first dump.  Repeated phase names (two grids in an
        enhancement analysis) get ``-2``, ``-3``... suffixes so no
        capture overwrites an earlier one.
    """

    def __init__(self, directory: Union[str, os.PathLike]):
        self.directory = Path(directory)
        self._depth = 0
        self._disabled = False
        self._warned = False
        self._names: Dict[str, int] = {}
        #: ``phase name -> [pstats path, collapsed path]`` for every
        #: successful capture, recorded into the run manifest.
        self.captures: Dict[str, List[str]] = {}

    def _disable(self, exc: BaseException) -> None:
        self._disabled = True
        if not self._warned:
            self._warned = True
            warnings.warn(
                f"phase profiling failed ({type(exc).__name__}: {exc});"
                " disabling capture — the run continues unprofiled",
                RuntimeWarning, stacklevel=4,
            )

    @contextmanager
    def phase(self, name: str):
        """Profile ``name`` if it is the outermost active phase."""
        if self._disabled or self._depth > 0:
            # Inner phases run inside the outer capture; cProfile
            # cannot nest, so they are attributed to their parent.
            self._depth += 1
            try:
                yield None
            finally:
                self._depth -= 1
            return
        profiler = cProfile.Profile()
        try:
            profiler.enable()
        except (ValueError, RuntimeError) as exc:
            # Another profiler (coverage, an outer cProfile) owns the
            # hook; degrade to no capture rather than abort the run.
            self._disable(exc)
            yield None
            return
        self._depth += 1
        try:
            yield profiler
        finally:
            self._depth -= 1
            try:
                profiler.disable()
                self._dump(name, profiler)
            except Exception as exc:  # observational profiler: a failed dump disables capture instead of aborting the run
                self._disable(exc)

    def _unique_slug(self, name: str) -> str:
        slug = _slug(name)
        seen = self._names.get(slug, 0) + 1
        self._names[slug] = seen
        return slug if seen == 1 else f"{slug}-{seen}"

    def _dump(self, name: str, profiler: cProfile.Profile) -> None:
        self.directory.mkdir(parents=True, exist_ok=True)
        slug = self._unique_slug(name)
        stats_path = self.directory / f"{slug}.pstats"
        collapsed_path = self.directory / f"{slug}.collapsed.txt"

        # cProfile insists on writing the .pstats file itself, so the
        # raw dump lands on the temp name outside the seam; the
        # publishing rename still routes through it.
        tmp = stats_path.with_name(
            stats_path.name + f".tmp-{os.getpid()}-p")
        profiler.dump_stats(tmp)
        fsfault.vfs_replace(tmp, stats_path)

        stats = pstats.Stats(str(stats_path))
        fsfault.publish_text(
            collapsed_path,
            "\n".join(collapsed_stacks(stats)) + "\n",
        )

        self.captures[name] = [str(stats_path), str(collapsed_path)]
