"""Crash-durable structured event log: the live telemetry stream.

:mod:`repro.obs` (PR 4) collects spans and metrics in memory and
exports them at clean process exit — which means a three-hour
distributed screen is invisible while it runs and a crashed broker
leaves no telemetry at all.  This module is the incremental half: an
**append-only, sealed-line JSONL event log** written record by record
as the run executes, so the on-disk stream is always at most one torn
line behind reality.

Format: one JSON object per line, journal-style (the discipline of
:mod:`repro.exec.journal`)::

    {"v": 1, "lane": "main", "seq": 3, "kind": "span-open",
     "name": "grid", "cat": "grid", "t": 12345.678901, "sid": 1,
     "attrs": {"tasks": 176}, "sha": "<sha-256 of the canonical
     record without this field>"}

* **Append + flush per record** — a crash can only ever tear the
  final line, and a torn tail is a *crash signature*, not damage:
  readers skip it silently (:func:`scan_stream` reports it apart from
  mid-file corruption, which is named per line with the journal's
  reason slugs).  Writers repair a torn tail on reopen, so a
  restarted broker appending to the same lane never glues a new
  record onto a dead one's residue.
* **One lane per writer** — the engine/broker process writes
  ``stream/main.events.jsonl`` under the run directory; every dist
  worker writes ``stream/<worker-id>.events.jsonl`` under the spool.
  A lane has exactly one living writer, and each writer *generation*
  (process) opens with a ``stream-open`` record carrying its epoch
  anchors, so a reader can tell a restart from a continuation.
* **Monotonic instants** — every record's ``t`` is
  :func:`repro.obs.clock.monotonic`, the same cross-process clock the
  spool's leases and heartbeats use, so the fleet aggregator can age
  a lease against a stream event directly.  Wall time appears exactly
  once per generation, as the ``stream-open`` anchor, read through
  the sanctioned :mod:`repro.obs.clock` site.

Event kinds (:data:`EVENT_KINDS`): ``stream-open`` / ``stream-close``
(writer lifecycle), ``span-open`` / ``span-close`` (paired by ``sid``
within a generation), ``instant``, ``counter`` (deltas), ``gauge``
(emitted on value change only), ``observe`` (histogram samples), and
``progress`` (tasks done/total — the ETA inputs).  The schema is
versioned (:data:`EVENT_SCHEMA`); a line under another version is
named ``schema-drift`` damage rather than misread.

The stream is **strictly observational**, like everything in this
package: the writer never raises into the run (a failing disk warns
once and disables the lane), record identity derives from run
content, and the 88-run screen is bit-identical with streaming armed
or bare.  :func:`trace_from_streams` reconstructs a Chrome/Perfetto
trace from the log alone — including for interrupted runs, where
dangling ``span-open`` records are closed at their lane's last
observed instant and marked ``interrupted``.
"""

from __future__ import annotations

import hashlib
import json
import os
import warnings
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

try:
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platform
    fcntl = None

from repro.guard import fsfault

from . import clock

__all__ = [
    "EVENT_KINDS",
    "EVENT_SCHEMA",
    "EventRecord",
    "EventWriter",
    "StreamScan",
    "find_stream_lanes",
    "scan_stream",
    "trace_from_streams",
]

#: Event-record format version; a line under any other version is
#: ``schema-drift`` damage, never silently reinterpreted.
EVENT_SCHEMA = 1

#: Every record kind a v1 stream may carry.
EVENT_KINDS = (
    "stream-open", "stream-close",
    "span-open", "span-close", "instant",
    "counter", "gauge", "observe", "progress",
)

#: Filename suffix of every event-log lane.
LANE_SUFFIX = ".events.jsonl"


def _canonical(record: Dict[str, object]) -> bytes:
    return json.dumps(
        record, sort_keys=True, separators=(",", ":"), default=str
    ).encode("utf-8")


def _line_sha(record: Dict[str, object]) -> str:
    return hashlib.sha256(_canonical(record)).hexdigest()


# ---------------------------------------------------------------------------
# Writing
# ---------------------------------------------------------------------------


class EventWriter:
    """One lane of the event log: append-only, flushed per record.

    Doubles as the *sink* the in-memory telemetry objects fan out to:
    a :class:`~repro.obs.span.Tracer` built with ``sink=writer``
    streams every span open/close and instant as it happens, and a
    :class:`~repro.obs.metrics.MetricsRegistry` with ``sink=writer``
    streams counter deltas, gauge changes and histogram observations
    — so the engine and broker stream with no engine changes at all.
    Dist workers hold no tracer and call :meth:`open_span` /
    :meth:`close_span` / :meth:`mark` directly.

    Emission is guarded end to end: any I/O or encoding failure warns
    once, disables the lane, and the run continues — recording is
    observational, never load-bearing.

    Parameters
    ----------
    path:
        The lane file (``*.events.jsonl``).  Created (with parents)
        on first emit; an existing file has its torn tail repaired —
        truncated back to the last complete line — before this
        generation's ``stream-open`` is appended.
    lane:
        Lane name carried on every record (``"main"`` for the
        engine/broker process, the worker id for dist workers).
    version:
        Simulator version recorded in the ``stream-open`` anchor;
        defaults to :data:`~repro.cpu.SIMULATOR_VERSION`.
    sync:
        Fsync after every record (off by default, like the journal:
        flush-per-line already survives process death).
    """

    def __init__(self, path: Union[str, os.PathLike], *, lane: str,
                 version: Optional[str] = None, sync: bool = False):
        self.path = Path(path)
        self.lane = str(lane)
        self.version = version
        self.sync = sync
        self._handle = None
        self._seq = 0
        self._next_sid = 0
        self._sids: Dict[int, int] = {}
        self._gauges: Dict[str, object] = {}
        self._disabled = False
        self._warned = False

    # -- plumbing ---------------------------------------------------

    def _disable(self, exc: BaseException) -> None:
        self._disabled = True
        if not self._warned:
            self._warned = True
            warnings.warn(
                f"event stream {self.path} failed "
                f"({type(exc).__name__}: {exc}); disabling the lane — "
                "the run continues without live telemetry",
                RuntimeWarning, stacklevel=4,
            )

    def _repair_tail(self) -> None:
        """Truncate an unterminated final line left by a crashed
        previous generation, so this one never appends onto residue."""
        try:
            size = self.path.stat().st_size
        except FileNotFoundError:
            return
        if size == 0:
            return
        data = self.path.read_bytes()
        if data.endswith(b"\n"):
            return
        keep = data.rfind(b"\n") + 1
        with open(self.path, "r+b") as handle:
            handle.truncate(keep)

    def _open(self) -> None:
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._repair_tail()
        self._handle = open(self.path, "a", encoding="utf-8")
        if self.version is None:
            from repro.cpu import SIMULATOR_VERSION

            self.version = SIMULATOR_VERSION
        self.emit(
            "stream-open",
            schema=EVENT_SCHEMA, sim=str(self.version),
            pid=os.getpid(), wall=clock.wall_time(),
        )

    def emit(self, kind: str, name: str = "", category: str = "",
             sid: Optional[int] = None, **attrs) -> None:
        """Append one record (guarded; never raises into the run)."""
        if self._disabled:
            return
        try:
            if self._handle is None:
                self._open()
            record = {
                "v": EVENT_SCHEMA, "lane": self.lane,
                "seq": self._seq, "kind": kind,
                "t": clock.monotonic(), "attrs": attrs,
            }
            if name:
                record["name"] = name
            if category:
                record["cat"] = category
            if sid is not None:
                record["sid"] = sid
            record["sha"] = _line_sha(record)
            line = _canonical(record).decode("utf-8") + "\n"
            # Append under an exclusive flock, the journal discipline:
            # interleaved writers (never expected on one lane, but
            # never fatal either) cannot tear each other's lines.
            if fcntl is not None:
                fcntl.flock(self._handle.fileno(), fcntl.LOCK_EX)
            try:
                # Through the fault seam: an injected (or real)
                # ENOSPC/EIO/torn write surfaces here and the except
                # below disables the lane — degrade loudly, never
                # abort the run.  A torn final line is exactly the
                # crash signature the next generation's tail repair
                # (and scan_stream) already tolerates.
                fsfault.vfs_write(self._handle, line)
                self._handle.flush()
                if self.sync:
                    fsfault.vfs_fsync(self._handle.fileno())
            finally:
                if fcntl is not None:
                    fcntl.flock(self._handle.fileno(), fcntl.LOCK_UN)
            self._seq += 1
        except Exception as exc:  # observational sink: any failure disables the lane instead of aborting the run
            self._disable(exc)

    # -- direct span / instant emission (dist workers) --------------

    def open_span(self, name: str, category: str = "phase",
                  **attrs) -> int:
        """Emit a ``span-open``; returns the ``sid`` to close it with."""
        self._next_sid += 1
        sid = self._next_sid
        self.emit("span-open", name, category, sid=sid, **attrs)
        return sid

    def close_span(self, sid: int, **attrs) -> None:
        """Emit the matching ``span-close`` for an :meth:`open_span`."""
        self.emit("span-close", sid=sid, **attrs)

    def mark(self, name: str, category: str = "event", **attrs) -> None:
        """Emit one instant event."""
        self.emit("instant", name, category, **attrs)

    # -- the telemetry sink protocol --------------------------------

    def span_open(self, span) -> None:
        """Tracer sink: a span began."""
        self._next_sid += 1
        self._sids[id(span)] = self._next_sid
        self.emit("span-open", span.name, span.category,
                  sid=self._next_sid,
                  **dict(span.attributes,
                         **({"async": True} if span.asynchronous
                            else {})))

    def span_close(self, span) -> None:
        """Tracer sink: a span ended (attributes are final)."""
        sid = self._sids.pop(id(span), None)
        if sid is not None:
            self.emit("span-close", sid=sid, **span.attributes)

    def instant(self, span) -> None:
        """Tracer sink: an instant event was recorded."""
        self.emit("instant", span.name, span.category,
                  **span.attributes)

    def counter(self, name: str, amount: int) -> None:
        """Metrics sink: a counter moved by ``amount``."""
        self.emit("counter", name, delta=int(amount))

    def gauge(self, name: str, value) -> None:
        """Metrics sink: a gauge was sampled (streamed on change only,
        so a broker polling an unchanged queue does not flood the
        lane)."""
        if self._gauges.get(name) == value:
            return
        self._gauges[name] = value
        self.emit("gauge", name, value=value)

    def observe(self, name: str, value) -> None:
        """Metrics sink: one histogram observation."""
        self.emit("observe", name, value=float(value))

    def progress(self, done: int, total: int) -> None:
        """Engine progress: cells resolved so far."""
        self.emit("progress", done=int(done), total=int(total))

    # -- lifecycle --------------------------------------------------

    def close(self, status: str = "closed") -> None:
        """Seal the generation with a ``stream-close`` record."""
        if self._handle is None:
            return
        self.emit("stream-close", status=str(status))
        try:
            self._handle.close()
        except OSError:
            pass
        self._handle = None
        self._disabled = True

    def __enter__(self) -> "EventWriter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close("interrupted" if exc_info[0] is not None
                   else "closed")


# ---------------------------------------------------------------------------
# Reading
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class EventRecord:
    """One validated stream record."""

    lane: str
    seq: int
    kind: str
    t: float
    name: str = ""
    category: str = ""
    sid: Optional[int] = None
    attrs: Dict[str, object] = None
    lineno: int = 0


@dataclass(frozen=True)
class StreamScan:
    """What a walk over one lane file found.

    ``invalid`` mirrors the journal contract: ``(lineno, reason)``
    per damaged line with the shared slugs (``malformed``,
    ``checksum``, ``schema-drift``); a torn final line is reported as
    ``torn`` and flagged in :attr:`torn_tail` — the crash signature,
    tolerated by every reader.
    """

    path: Path
    lane: str
    records: Tuple[EventRecord, ...]
    invalid: Tuple[Tuple[int, str], ...]
    torn_tail: bool

    @property
    def damage(self) -> Tuple[Tuple[int, str], ...]:
        """Mid-file damage only: every invalid line except the torn
        tail.  This is what ``repro verify`` treats as a violation."""
        return tuple((lineno, reason) for lineno, reason in self.invalid
                     if reason != "torn")

    def generations(self) -> List[Tuple[EventRecord, ...]]:
        """Records split into writer generations at each
        ``stream-open`` (a restarted broker appends a new one)."""
        out: List[List[EventRecord]] = []
        for record in self.records:
            if record.kind == "stream-open" or not out:
                out.append([])
            out[-1].append(record)
        return [tuple(gen) for gen in out]


def _parse_line(raw: bytes) -> Tuple[Optional[EventRecord], Optional[str]]:
    try:
        entry = json.loads(raw.decode("utf-8"))
    except (ValueError, UnicodeDecodeError):
        return None, "malformed"
    if not isinstance(entry, dict):
        return None, "malformed"
    if entry.get("v") != EVENT_SCHEMA:
        return None, "schema-drift"
    sha = entry.pop("sha", None)
    if sha != _line_sha(entry):
        return None, "checksum"
    try:
        record = EventRecord(
            lane=str(entry["lane"]), seq=int(entry["seq"]),
            kind=str(entry["kind"]), t=float(entry["t"]),
            name=str(entry.get("name", "")),
            category=str(entry.get("cat", "")),
            sid=entry.get("sid"),
            attrs=dict(entry.get("attrs") or {}),
        )
    except (KeyError, TypeError, ValueError):
        return None, "malformed"
    if record.kind not in EVENT_KINDS:
        return None, "malformed"
    return record, None


def scan_stream(path: Union[str, os.PathLike]) -> StreamScan:
    """Classify every line of one lane file.

    Torn-tail tolerant: an unterminated, unparseable final line is
    the footprint of a crash mid-write and is skipped (reported as
    ``torn``); any other invalid line is named with its reason so the
    damage is never silent.
    """
    path = Path(path)
    data = path.read_bytes()
    records: List[EventRecord] = []
    invalid: List[Tuple[int, str]] = []
    torn_tail = False
    pos, lineno = 0, 0
    size = len(data)
    while pos < size:
        newline = data.find(b"\n", pos)
        if newline < 0:
            raw, next_pos, terminated = data[pos:], size, False
        else:
            raw, next_pos, terminated = \
                data[pos:newline], newline + 1, True
        pos = next_pos
        lineno += 1
        stripped = raw.strip()
        if not stripped:
            continue
        record, reason = _parse_line(stripped)
        if reason is None:
            records.append(EventRecord(
                lane=record.lane, seq=record.seq, kind=record.kind,
                t=record.t, name=record.name,
                category=record.category, sid=record.sid,
                attrs=record.attrs, lineno=lineno,
            ))
            continue
        if not terminated:
            reason = "torn"
            torn_tail = True
        invalid.append((lineno, reason))
    lane = records[0].lane if records else path.name[
        :-len(LANE_SUFFIX)] if path.name.endswith(LANE_SUFFIX) \
        else path.stem
    return StreamScan(path, lane, tuple(records), tuple(invalid),
                      torn_tail)


def find_stream_lanes(root: Union[str, os.PathLike]) -> List[Path]:
    """Every lane file reachable from ``root``, sorted by path.

    Accepts a run directory (``stream/`` plus ``spool/stream/``), a
    spool directory (``stream/``), or a bare stream directory — the
    layouts ``repro top`` and ``repro obs export`` are pointed at.
    """
    root = Path(root)
    lanes: List[Path] = []
    for directory in (root, root / "stream", root / "spool" / "stream"):
        if directory.is_dir():
            lanes.extend(sorted(directory.glob(f"*{LANE_SUFFIX}")))
    seen = set()
    unique = []
    for path in lanes:
        if path not in seen:
            seen.add(path)
            unique.append(path)
    return unique


# ---------------------------------------------------------------------------
# Trace reconstruction
# ---------------------------------------------------------------------------

#: Synthetic process id for reconstructed trace events.
_PID = 1


def _microseconds(seconds: float) -> int:
    return int(round(seconds * 1e6))


def trace_from_streams(scans: Sequence[StreamScan]) -> Dict[str, object]:
    """A Chrome trace-event document rebuilt from the event log alone.

    This is what makes interrupted runs finally produce usable
    traces: span pairing happens per lane and per generation, and a
    ``span-open`` whose close never made it to disk (a killed worker,
    a crashed broker) is closed at its lane's last observed instant
    with ``interrupted: true`` — accounted for, and honest about it.
    Gauges become Perfetto counter tracks (``ph: "C"``); instants
    become ``"i"`` marks.
    """
    lanes = sorted({scan.lane for scan in scans},
                   key=lambda lane: (lane != "main", lane))
    tids = {lane: n for n, lane in enumerate(lanes)}
    instants = [record.t for scan in scans for record in scan.records]
    epoch = min(instants) if instants else 0.0
    wall_anchor = None
    events: List[Dict[str, object]] = []

    for scan in scans:
        tid = tids[scan.lane]
        for gen in scan.generations():
            open_spans: Dict[int, EventRecord] = {}
            last_t = gen[-1].t if gen else epoch
            for record in gen:
                ts = _microseconds(record.t - epoch)
                if record.kind == "stream-open":
                    if wall_anchor is None and scan.lane == "main":
                        wall_anchor = record.attrs.get("wall")
                    continue
                if record.kind == "span-open":
                    open_spans[record.sid] = record
                elif record.kind == "span-close":
                    opened = open_spans.pop(record.sid, None)
                    if opened is None:
                        continue
                    events.append(_complete(
                        opened, record.attrs, tid, epoch, record.t))
                elif record.kind == "instant":
                    events.append({
                        "name": record.name, "cat": record.category,
                        "ph": "i", "s": "t", "pid": _PID, "tid": tid,
                        "ts": ts, "args": dict(record.attrs),
                    })
                elif record.kind == "gauge":
                    events.append({
                        "name": record.name, "cat": "metric",
                        "ph": "C", "pid": _PID, "tid": tid, "ts": ts,
                        "args": {"value": record.attrs.get("value")},
                    })
            for opened in open_spans.values():
                closed = dict(opened.attrs)
                closed["interrupted"] = True
                events.append(_complete(opened, closed, tid, epoch,
                                        last_t))

    metadata = [{
        "name": "process_name", "ph": "M", "pid": _PID, "tid": 0,
        "args": {"name": "repro (reconstructed from event stream)"},
    }]
    for lane in lanes:
        metadata.append({
            "name": "thread_name", "ph": "M", "pid": _PID,
            "tid": tids[lane], "args": {"name": lane},
        })
    return {
        "traceEvents": metadata + events,
        "displayTimeUnit": "ms",
        "otherData": {
            "producer": "repro.obs.stream",
            "event_schema": EVENT_SCHEMA,
            "epoch_wall_time": wall_anchor,
        },
    }


def _complete(opened: EventRecord, close_attrs: Dict[str, object],
              tid: int, epoch: float, end: float) -> Dict[str, object]:
    args = dict(opened.attrs)
    args.update(close_attrs)
    return {
        "name": opened.name, "cat": opened.category, "ph": "X",
        "pid": _PID, "tid": tid,
        "ts": _microseconds(opened.t - epoch),
        "dur": _microseconds(max(0.0, end - opened.t)),
        "args": args,
    }
