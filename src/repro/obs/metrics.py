"""Counters, gauges and histograms with a deterministic snapshot API.

A :class:`MetricsRegistry` is a flat, name-keyed collection of three
instrument kinds:

* :class:`Counter` — monotonically increasing integers (tasks
  completed, cache hits, worker deaths);
* :class:`Gauge` — a sampled level (queue depth), remembering both the
  last and the maximum value observed;
* :class:`Histogram` — a streaming summary (count / sum / min / max)
  of a measured quantity (per-task wall seconds).

The *snapshot* is deterministic in **shape**: `snapshot()` always
returns the same keys in sorted order with the same per-kind fields,
so two metric dumps diff line-for-line.  Whether the *values* are
deterministic depends on the instrument: everything counted from task
content (completions, retries, cache hits) is identical across runs of
the same grid, while wall-time histograms vary — the catalogue in
``docs/observability.md`` marks which is which.

Instruments are created on first use (:meth:`MetricsRegistry.counter`
et al.), so emitting code never needs registration boilerplate, and a
registry can be shared across several grids (an enhancement analysis
accumulates both of its screens into one registry).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple, Union

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]


class Counter:
    """A monotonically increasing integer."""

    kind = "counter"

    def __init__(self):
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up, got {amount}")
        self.value += amount

    def snapshot(self) -> Dict[str, object]:
        return {"type": self.kind, "value": self.value}


class Gauge:
    """A sampled level; remembers the last and the peak sample."""

    kind = "gauge"

    def __init__(self):
        self.value: Union[int, float] = 0
        self.peak: Union[int, float] = 0
        self.samples = 0

    def set(self, value: Union[int, float]) -> None:
        self.value = value
        self.samples += 1
        if value > self.peak:
            self.peak = value

    def snapshot(self) -> Dict[str, object]:
        return {
            "type": self.kind, "value": self.value,
            "peak": self.peak, "samples": self.samples,
        }


class Histogram:
    """A streaming count/sum/min/max summary of observations."""

    kind = "histogram"

    def __init__(self):
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: Union[int, float]) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> Optional[float]:
        return self.total / self.count if self.count else None

    def snapshot(self) -> Dict[str, object]:
        return {
            "type": self.kind, "count": self.count,
            "sum": self.total, "min": self.min, "max": self.max,
            "mean": self.mean,
        }


_Instrument = Union[Counter, Gauge, Histogram]


class MetricsRegistry:
    """A flat namespace of instruments, created on first use.

    Names are dotted strings (``"tasks.completed"``,
    ``"cache.hits"``); asking for an existing name with a different
    instrument kind is a programming error and raises ``TypeError``
    rather than silently shadowing data.

    An optional *sink* (duck-typed ``counter(name, amount)`` /
    ``gauge(name, value)`` / ``observe(name, value)`` — in practice a
    :class:`~repro.obs.stream.EventWriter`) sees every emission made
    through the convenience methods, streaming counter deltas, gauge
    changes and observations live.  Direct instrument mutation
    (``registry.counter(n).inc()``) bypasses the sink; the execution
    layers emit exclusively through the convenience methods.
    """

    def __init__(self, sink=None):
        self._instruments: Dict[str, _Instrument] = {}
        self.sink = sink

    def _get(self, name: str, cls) -> _Instrument:
        instrument = self._instruments.get(name)
        if instrument is None:
            instrument = self._instruments[name] = cls()
        elif not isinstance(instrument, cls):
            raise TypeError(
                f"metric {name!r} is a {instrument.kind}, "
                f"not a {cls.kind}"
            )
        return instrument

    def counter(self, name: str) -> Counter:
        """The counter called ``name`` (created if new)."""
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        """The gauge called ``name`` (created if new)."""
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        """The histogram called ``name`` (created if new)."""
        return self._get(name, Histogram)

    # -- convenience emission ---------------------------------------

    def count(self, name: str, amount: int = 1) -> None:
        """Increment the counter ``name`` by ``amount``."""
        self.counter(name).inc(amount)
        if self.sink is not None:
            self.sink.counter(name, amount)

    def set_gauge(self, name: str, value: Union[int, float]) -> None:
        """Sample the gauge ``name`` at ``value``."""
        self.gauge(name).set(value)
        if self.sink is not None:
            self.sink.gauge(name, value)

    def observe(self, name: str, value: Union[int, float]) -> None:
        """Add one observation to the histogram ``name``."""
        self.histogram(name).observe(value)
        if self.sink is not None:
            self.sink.observe(name, value)

    def absorb_counts(self, counts: Dict[str, int],
                      prefix: str = "") -> None:
        """Fold a plain ``name -> amount`` mapping into counters.

        Keys are visited in sorted order so instrument creation order
        (and therefore nothing at all downstream) depends on the
        mapping's insertion order.  Used to surface per-run simulator
        counters (``CoreStats.stall_cycles``) through the registry.
        """
        for key in sorted(counts):
            self.count(prefix + key, int(counts[key]))

    # -- snapshots --------------------------------------------------

    def __len__(self) -> int:
        return len(self._instruments)

    def __contains__(self, name: str) -> bool:
        return name in self._instruments

    def names(self) -> List[str]:
        """All instrument names, sorted."""
        return sorted(self._instruments)

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """``name -> fields`` for every instrument, keys sorted.

        The shape is stable across runs: same names, same per-kind
        fields, sorted iteration order — a metrics dump of one run
        diffs cleanly against another's.
        """
        return {
            name: self._instruments[name].snapshot()
            for name in self.names()
        }

    def items(self) -> Iterator[Tuple[str, _Instrument]]:
        """(name, instrument) pairs in sorted-name order."""
        for name in self.names():
            yield name, self._instruments[name]
