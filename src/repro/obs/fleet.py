"""Fleet aggregation: one coherent snapshot of a running grid.

A distributed screen scatters its observable state across the spool
(heartbeats, leases, tickets) and the event-log lanes each process
appends (:mod:`repro.obs.stream`).  :func:`fleet_snapshot` merges all
of it into a single :class:`FleetSnapshot` — the data model behind
``repro top`` — by reading *only* on-disk state, so it works equally
against a live run, a crashed one, or a finished one, from any
process on the host.

Per-worker state is classified from two independent liveness signals
plus the worker's own lane, most-severe first:

``exited``
    The lane's last generation ends in a ``stream-close`` — the
    worker left on purpose (drain, max-idle, Ctrl-C).
``dead``
    No heartbeat within ``dead_after`` seconds — the process is gone
    (or wedged far beyond stall territory).  A killed worker's lane
    just stops, often with a torn tail; the silence *is* the record.
``stalled``
    Beating less recently than ``heartbeat_grace`` but within
    ``dead_after`` — the broker would be reclaiming its leases now.
``executing``
    Holds at least one live lease.
``claiming``
    The lane's most recent event is a ``claim`` that has not yet
    produced a lease — the claim/lease handshake window.
``idle``
    Beating, holding nothing.

All ages are differences of ``CLOCK_MONOTONIC`` instants — heartbeat
files, lease deadlines and stream timestamps all use the clock shared
by every process on the host (:func:`repro.obs.clock.monotonic`), so
no wall-clock arithmetic enters the state machine.

Counter roll-ups sum, per lane, the deltas of the *latest writer
generation only* (counters reset at each ``stream-open``): a
restarted broker re-counts the cells it restores from the journal, so
summing across its generations would double-count — the latest
generation is the authoritative tally for that lane.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from . import clock
from .stream import StreamScan, find_stream_lanes, scan_stream

__all__ = ["FleetSnapshot", "WorkerView", "fleet_snapshot"]

#: Beat age past which a worker is ``stalled`` (matches the broker's
#: conservative default grace).
DEFAULT_HEARTBEAT_GRACE = 5.0


@dataclass
class WorkerView:
    """One worker's merged state."""

    worker: str
    state: str
    #: Seconds since the last heartbeat, ``None`` if never seen.
    beat_age: Optional[float] = None
    #: ``(key-prefix, seconds-until-deadline)`` per live lease.
    leases: List[Tuple[str, float]] = field(default_factory=list)
    tasks_done: int = 0
    tasks_failed: int = 0
    #: Name and age of the lane's most recent event.
    last_event: str = ""
    last_event_age: Optional[float] = None

    def to_dict(self) -> Dict[str, object]:
        return {
            "worker": self.worker, "state": self.state,
            "beat_age": self.beat_age,
            "leases": [{"key": key, "remaining": remaining}
                       for key, remaining in self.leases],
            "tasks_done": self.tasks_done,
            "tasks_failed": self.tasks_failed,
            "last_event": self.last_event,
            "last_event_age": self.last_event_age,
        }


@dataclass
class FleetSnapshot:
    """Everything ``repro top`` shows, as plain data."""

    root: Path
    workers: List[WorkerView]
    counters: Dict[str, int]
    gauges: Dict[str, object]
    #: ``{"done": N, "total": M}`` from the supervisor's progress
    #: records, or counter/manifest fallbacks; empty when unknown.
    progress: Dict[str, int]
    eta_seconds: Optional[float]
    #: lane name -> {"path", "records", "generations", "torn_tail",
    #: "damage"} for every lane merged in.
    lanes: Dict[str, Dict[str, object]]
    #: Wall-clock stamp of snapshot creation (annotation only).
    generated: float

    @property
    def complete(self) -> bool:
        """True when the progress records say every task finished."""
        total = self.progress.get("total", 0)
        return bool(total) and self.progress.get("done", 0) >= total

    def to_dict(self) -> Dict[str, object]:
        return {
            "root": str(self.root),
            "generated": self.generated,
            "progress": dict(self.progress),
            "eta_seconds": self.eta_seconds,
            "workers": [w.to_dict() for w in self.workers],
            "counters": dict(sorted(self.counters.items())),
            "gauges": dict(sorted(self.gauges.items())),
            "lanes": {name: dict(info)
                      for name, info in sorted(self.lanes.items())},
        }

    def render(self) -> str:
        """The refreshing-terminal view, one snapshot as text."""
        lines: List[str] = []
        done = self.progress.get("done")
        total = self.progress.get("total")
        head = f"repro top — {self.root}"
        lines.append(head)
        lines.append("=" * len(head))
        if total:
            pct = 100.0 * done / total if total else 0.0
            bar = f"tasks {done}/{total} ({pct:.1f}%)"
            if self.eta_seconds is not None:
                bar += f"   eta ~{self.eta_seconds:.0f}s"
            lines.append(bar)
        depth = self.gauges.get("queue.depth")
        if depth is not None:
            lines.append(f"queue depth {depth}")
        key_counters = [
            (name, self.counters[name]) for name in (
                "tasks.completed", "tasks.retried", "cache.hits",
                "dist.results", "dist.reissued", "workers.deaths",
            ) if name in self.counters
        ]
        if key_counters:
            lines.append("   ".join(f"{name}={value}"
                                    for name, value in key_counters))
        lines.append("")
        if self.workers:
            header = (f"{'WORKER':<16} {'STATE':<10} {'BEAT':>7} "
                      f"{'LEASES':<22} {'DONE':>5} {'FAIL':>5}  LAST")
            lines.append(header)
            for view in self.workers:
                beat = (f"{view.beat_age:.1f}s"
                        if view.beat_age is not None else "-")
                leases = ",".join(
                    f"{key}({remaining:+.0f}s)"
                    for key, remaining in view.leases[:2]
                ) or "-"
                last = view.last_event or "-"
                if view.last_event_age is not None:
                    last += f" {view.last_event_age:.1f}s ago"
                lines.append(
                    f"{view.worker:<16} {view.state:<10} {beat:>7} "
                    f"{leases:<22} {view.tasks_done:>5} "
                    f"{view.tasks_failed:>5}  {last}"
                )
        else:
            lines.append("(no workers observed)")
        torn = [name for name, info in sorted(self.lanes.items())
                if info.get("torn_tail")]
        if torn:
            lines.append("")
            lines.append(
                "torn lanes (crash signatures): " + ", ".join(torn))
        return "\n".join(lines) + "\n"


# ---------------------------------------------------------------------------
# Aggregation
# ---------------------------------------------------------------------------


def _find_spool(root: Path) -> Optional[Path]:
    """The spool directory reachable from ``root``, if any."""
    for candidate in (root, root / "spool"):
        if (candidate / "hb").is_dir() \
                or (candidate / "spool.json").is_file():
            return candidate
    return None


def _latest_generation_rollup(scan: StreamScan):
    """Counters / gauges / progress from the lane's last generation."""
    counters: Dict[str, int] = {}
    gauges: Dict[str, object] = {}
    progress: Dict[str, int] = {}
    generations = scan.generations()
    for record in (generations[-1] if generations else ()):
        if record.kind == "counter":
            delta = int(record.attrs.get("delta", 0))
            counters[record.name] = counters.get(record.name, 0) + delta
        elif record.kind == "gauge":
            gauges[record.name] = record.attrs.get("value")
        elif record.kind == "progress":
            progress = {"done": int(record.attrs.get("done", 0)),
                        "total": int(record.attrs.get("total", 0))}
    return counters, gauges, progress


def _task_tallies(scan: StreamScan):
    """(done, failed, durations) from a worker lane's task spans."""
    done = failed = 0
    durations: List[float] = []
    for gen in scan.generations():
        opens: Dict[int, float] = {}
        for record in gen:
            if record.kind == "span-open" and record.name == "task":
                opens[record.sid] = record.t
            elif record.kind == "span-close" \
                    and record.sid in opens:
                durations.append(record.t - opens.pop(record.sid))
                if record.attrs.get("ok"):
                    done += 1
                else:
                    failed += 1
    return done, failed, durations


def fleet_snapshot(
    root: Union[str, os.PathLike], *,
    heartbeat_grace: float = DEFAULT_HEARTBEAT_GRACE,
    dead_after: Optional[float] = None,
) -> FleetSnapshot:
    """Merge spool liveness and event lanes under ``root``.

    ``root`` may be a run directory (stream under ``stream/``, spool
    under ``spool/`` when co-located), a spool directory, or a bare
    stream directory — whatever exists is merged; what does not is
    simply absent from the snapshot.
    """
    root = Path(root)
    if dead_after is None:
        dead_after = max(4.0 * heartbeat_grace, 10.0)
    now = clock.monotonic()

    scans: Dict[str, StreamScan] = {}
    for path in find_stream_lanes(root):
        try:
            scan = scan_stream(path)
        except OSError:
            continue
        scans[scan.lane] = scan

    beats: Dict[str, float] = {}
    leases: Dict[str, List[Tuple[str, float]]] = {}
    spool_total: Optional[int] = None
    spool_dir = _find_spool(root)
    if spool_dir is not None:
        from repro.dist.spool import Spool
        from repro.guard.errors import SealError

        spool = Spool(spool_dir)
        beats = spool.read_heartbeats()
        for key in spool.leased_keys():
            try:
                lease = spool.read_lease(key)
            except SealError:
                continue  # torn lease: the broker's problem, not ours
            if lease is None:
                continue
            remaining = float(lease.get("deadline", 0.0)) - now
            leases.setdefault(str(lease.get("worker", "")), []).append(
                (key[:12], remaining))
        try:
            manifest = spool.read_manifest()
        except SealError:
            manifest = None
        if manifest:
            spool_total = int(manifest.get("n_tasks", 0)) or None

    counters: Dict[str, int] = {}
    gauges: Dict[str, object] = {}
    progress: Dict[str, int] = {}
    lane_info: Dict[str, Dict[str, object]] = {}
    durations: List[float] = []
    worker_tallies: Dict[str, Tuple[int, int]] = {}

    for lane, scan in sorted(scans.items()):
        lane_counters, lane_gauges, lane_progress = \
            _latest_generation_rollup(scan)
        for name, value in lane_counters.items():
            counters[name] = counters.get(name, 0) + value
        gauges.update(lane_gauges)
        if lane == "main" and lane_progress:
            progress = lane_progress
        done, failed, lane_durations = _task_tallies(scan)
        durations.extend(lane_durations)
        if lane != "main":
            worker_tallies[lane] = (done, failed)
        lane_info[lane] = {
            "path": str(scan.path),
            "records": len(scan.records),
            "generations": len(scan.generations()),
            "torn_tail": scan.torn_tail,
            "damage": len(scan.damage),
        }

    if not progress:
        done = counters.get("tasks.completed")
        total = spool_total
        if done is not None and total:
            progress = {"done": done, "total": total}

    workers: List[WorkerView] = []
    names = sorted(set(beats) | set(leases) - {""}
                   | {lane for lane in scans if lane != "main"})
    for name in names:
        scan = scans.get(name)
        closed = False
        last_event, last_age = "", None
        if scan is not None and scan.records:
            generations = scan.generations()
            closed = any(r.kind == "stream-close"
                         for r in generations[-1])
            tail = scan.records[-1]
            last_event = tail.name or tail.kind
            last_age = max(0.0, now - tail.t)
        beat_age = (max(0.0, now - beats[name])
                    if name in beats else None)
        held = sorted(leases.get(name, ()))
        if closed:
            state = "exited"
        elif beat_age is None:
            state = "silent"
        elif beat_age > dead_after:
            state = "dead"
        elif beat_age > heartbeat_grace:
            state = "stalled"
        elif held:
            state = "executing"
        elif last_event == "claim":
            state = "claiming"
        else:
            state = "idle"
        done, failed = worker_tallies.get(name, (0, 0))
        workers.append(WorkerView(
            worker=name, state=state, beat_age=beat_age,
            leases=held, tasks_done=done, tasks_failed=failed,
            last_event=last_event, last_event_age=last_age,
        ))

    eta = None
    if progress.get("total"):
        remaining = progress["total"] - progress.get("done", 0)
        executing = sum(1 for w in workers
                        if w.state in ("executing", "claiming"))
        if remaining > 0 and durations:
            mean = sum(durations) / len(durations)
            eta = remaining * mean / max(1, executing)
        elif remaining <= 0:
            eta = 0.0

    return FleetSnapshot(
        root=root, workers=workers, counters=counters,
        gauges=gauges, progress=progress, eta_seconds=eta,
        lanes=lane_info, generated=clock.wall_time(),
    )
