"""The :class:`Telemetry` facade the execution layers carry around.

One object bundles the per-run observability state — a
:class:`~repro.obs.span.Tracer`, a
:class:`~repro.obs.metrics.MetricsRegistry`, and the opt-in simulator
counter hook — so every API that learned a ``telemetry=`` keyword
(:func:`repro.exec.run_grid`, :meth:`repro.core.PBExperiment.run`,
:func:`repro.core.sweep`, :func:`repro.core.analyze_enhancement`, the
CLI commands) threads a single optional argument instead of three.

Any component may be absent: ``Telemetry(metrics=registry)`` collects
counters without paying for span recording, and ``telemetry=None``
(the default everywhere) is the zero-overhead off switch.  The
:meth:`phase` helper degrades to a no-op context manager when there is
no tracer, so instrumented code reads identically either way.

Telemetry is **strictly observational**: the engine invokes every
tracer/metrics call through a guarded path (a raising hook warns once
and is ignored), results are bit-identical with telemetry on or off,
and nothing recorded here feeds back into execution.
"""

from __future__ import annotations

from contextlib import ExitStack, contextmanager, nullcontext
from typing import ContextManager, Optional

from .metrics import MetricsRegistry
from .span import Tracer

__all__ = ["Telemetry", "phase_of"]


class Telemetry:
    """Bundled tracer + metrics registry + simulator-counter opt-in.

    Parameters
    ----------
    tracer:
        Span recorder, or ``None`` to skip span collection.
    metrics:
        Metrics registry, or ``None`` to skip counters.
    simulator_counters:
        When true, the engine folds each completed cell's
        :class:`~repro.cpu.stats.CoreStats` counters (cycles,
        instructions, stall-cycle attribution, precompute hits) into
        the registry under ``sim.*`` — opt-in because an 88-run screen
        emits them 1144 times.
    stream:
        A :class:`~repro.obs.stream.EventWriter` lane that the tracer
        and registry fan out to, making the run watchable while it
        executes.  Held here so shutdown (:meth:`close`) can flush
        open spans into the stream and seal the generation.
    profiler:
        A :class:`~repro.obs.profile.PhaseProfiler` capturing a
        cProfile per engine phase; :meth:`phase` composes it with the
        tracer span so instrumented code is unchanged.
    """

    def __init__(self, *, tracer: Optional[Tracer] = None,
                 metrics: Optional[MetricsRegistry] = None,
                 simulator_counters: bool = False,
                 stream=None, profiler=None):
        self.tracer = tracer
        self.metrics = metrics
        self.simulator_counters = simulator_counters
        self.stream = stream
        self.profiler = profiler

    @classmethod
    def armed(cls, *, trace: bool = True, metrics: bool = True,
              simulator_counters: bool = False,
              stream=None, profiler=None) -> "Telemetry":
        """A telemetry bundle with the requested components built.

        When a ``stream`` lane is given it is installed as the sink of
        every component built here, so arming the stream alone is
        enough to get live span and metric events.
        """
        return cls(
            tracer=Tracer(sink=stream) if trace else None,
            metrics=MetricsRegistry(sink=stream) if metrics else None,
            simulator_counters=simulator_counters,
            stream=stream, profiler=profiler,
        )

    @property
    def enabled(self) -> bool:
        """True when at least one component is collecting."""
        return (self.tracer is not None or self.metrics is not None
                or self.stream is not None)

    def phase(self, name: str, **attributes) -> ContextManager:
        """A coarse phase span, or a no-op without a tracer::

            with telemetry.phase("effects", benchmarks=13):
                ...

        With a profiler attached the phase body is also profiled
        (outermost phase only — cProfile cannot nest).

        Safe on a ``None``-less call site only; the execution layers
        use ``telemetry.phase(...) if telemetry else nullcontext()``
        via :func:`phase_of`.
        """
        span = (self.tracer.span(name, "phase", **attributes)
                if self.tracer is not None else nullcontext())
        if self.profiler is None:
            return span
        return _stacked(span, self.profiler.phase(name))

    def close(self, status: str = "completed") -> None:
        """Flush and seal the telemetry for shutdown — clean or not.

        Closes every still-open span (which, with a stream sink
        attached, emits their ``span-close`` records marked
        ``interrupted``) and seals the stream generation with a
        ``stream-close`` carrying ``status``.  Idempotent; safe to
        call from interrupt handlers.
        """
        if self.tracer is not None:
            self.tracer.close_open_spans()
        if self.stream is not None:
            self.stream.close(status)

    def count(self, name: str, amount: int = 1) -> None:
        """Increment a counter if a registry is attached."""
        if self.metrics is not None:
            self.metrics.count(name, amount)

    def snapshot(self) -> dict:
        """The metrics snapshot, or ``{}`` without a registry."""
        if self.metrics is None:
            return {}
        return self.metrics.snapshot()


@contextmanager
def _stacked(*managers):
    """Enter several context managers as one (span + profiler)."""
    with ExitStack() as stack:
        results = [stack.enter_context(cm) for cm in managers]
        yield results[0]


def phase_of(telemetry: Optional[Telemetry], name: str,
             **attributes) -> ContextManager:
    """``telemetry.phase(...)`` that also accepts ``None``.

    The standard guard for instrumenting a pipeline stage without
    forcing every caller to carry a telemetry object.
    """
    if telemetry is None:
        return nullcontext()
    return telemetry.phase(name, **attributes)
