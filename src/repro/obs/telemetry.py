"""The :class:`Telemetry` facade the execution layers carry around.

One object bundles the per-run observability state — a
:class:`~repro.obs.span.Tracer`, a
:class:`~repro.obs.metrics.MetricsRegistry`, and the opt-in simulator
counter hook — so every API that learned a ``telemetry=`` keyword
(:func:`repro.exec.run_grid`, :meth:`repro.core.PBExperiment.run`,
:func:`repro.core.sweep`, :func:`repro.core.analyze_enhancement`, the
CLI commands) threads a single optional argument instead of three.

Any component may be absent: ``Telemetry(metrics=registry)`` collects
counters without paying for span recording, and ``telemetry=None``
(the default everywhere) is the zero-overhead off switch.  The
:meth:`phase` helper degrades to a no-op context manager when there is
no tracer, so instrumented code reads identically either way.

Telemetry is **strictly observational**: the engine invokes every
tracer/metrics call through a guarded path (a raising hook warns once
and is ignored), results are bit-identical with telemetry on or off,
and nothing recorded here feeds back into execution.
"""

from __future__ import annotations

from contextlib import nullcontext
from typing import ContextManager, Optional

from .metrics import MetricsRegistry
from .span import Tracer

__all__ = ["Telemetry", "phase_of"]


class Telemetry:
    """Bundled tracer + metrics registry + simulator-counter opt-in.

    Parameters
    ----------
    tracer:
        Span recorder, or ``None`` to skip span collection.
    metrics:
        Metrics registry, or ``None`` to skip counters.
    simulator_counters:
        When true, the engine folds each completed cell's
        :class:`~repro.cpu.stats.CoreStats` counters (cycles,
        instructions, stall-cycle attribution, precompute hits) into
        the registry under ``sim.*`` — opt-in because an 88-run screen
        emits them 1144 times.
    """

    def __init__(self, *, tracer: Optional[Tracer] = None,
                 metrics: Optional[MetricsRegistry] = None,
                 simulator_counters: bool = False):
        self.tracer = tracer
        self.metrics = metrics
        self.simulator_counters = simulator_counters

    @classmethod
    def armed(cls, *, trace: bool = True, metrics: bool = True,
              simulator_counters: bool = False) -> "Telemetry":
        """A telemetry bundle with the requested components built."""
        return cls(
            tracer=Tracer() if trace else None,
            metrics=MetricsRegistry() if metrics else None,
            simulator_counters=simulator_counters,
        )

    @property
    def enabled(self) -> bool:
        """True when at least one component is collecting."""
        return self.tracer is not None or self.metrics is not None

    def phase(self, name: str, **attributes) -> ContextManager:
        """A coarse phase span, or a no-op without a tracer::

            with telemetry.phase("effects", benchmarks=13):
                ...

        Safe on a ``None``-less call site only; the execution layers
        use ``telemetry.phase(...) if telemetry else nullcontext()``
        via :func:`phase_of`.
        """
        if self.tracer is None:
            return nullcontext()
        return self.tracer.span(name, "phase", **attributes)

    def count(self, name: str, amount: int = 1) -> None:
        """Increment a counter if a registry is attached."""
        if self.metrics is not None:
            self.metrics.count(name, amount)

    def snapshot(self) -> dict:
        """The metrics snapshot, or ``{}`` without a registry."""
        if self.metrics is None:
            return {}
        return self.metrics.snapshot()


def phase_of(telemetry: Optional[Telemetry], name: str,
             **attributes) -> ContextManager:
    """``telemetry.phase(...)`` that also accepts ``None``.

    The standard guard for instrumenting a pipeline stage without
    forcing every caller to carry a telemetry object.
    """
    if telemetry is None:
        return nullcontext()
    return telemetry.phase(name, **attributes)
