"""Run manifests: one JSON document describing one run.

A manifest answers, months later, "what exactly produced this
output?": the command and its workload, a content fingerprint of the
experiment inputs, the simulator version, the interpreter and
platform, every engine setting that shaped execution (jobs, cache,
retry policy, timeout, journal), the active fault-injection spec, and
the final metrics snapshot.  Together with the journal (ground truth
of *what* ran) and the trace (ground truth of *when*), it completes
the run's provenance record.

The schema is deliberately flat and versioned (:data:`SCHEMA_VERSION`)
so downstream tooling — the ``BENCH_*.json`` perf-trajectory files the
benchmark harness emits, CI assertions — can consume it with plain
``json.load`` and a handful of key checks.  Field values are either
reproducible facts (fingerprint, versions, settings) or clearly
volatile annotations (timestamps, host platform, elapsed seconds);
:func:`RunManifest.to_dict` keeps them in separate top-level groups so
a diff between two manifests separates signal from noise.

Schema v2 adds an ``integrity`` group: the JSON-native equivalent of
the binary seal envelope (:mod:`repro.guard.seal`) — artifact kind,
schema version, simulator version, and a SHA-256 over the canonical
encoding of the other groups.  ``json.load`` keeps working untouched;
:func:`load_manifest` is the checking loader, raising the same typed
:class:`~repro.guard.errors.SealError` family every other sealed
artifact uses when a manifest was tampered with, truncated-and-
reassembled, or written under a different schema.

Schema v3 (current) extends the artifact vocabulary for the live
telemetry layer: ``run.artifacts`` may now record ``stream`` (the
event-log directory of :mod:`repro.obs.stream`) and ``profile`` (the
per-phase profile directory of :mod:`repro.obs.profile`), and
``run.settings`` records the corresponding ``stream``/``profile``
options.  The integrity envelope is unchanged; the bump exists so a
consumer that understands streams can tell at a glance whether a run
could have produced any.
"""

from __future__ import annotations

import hashlib
import json
import os
import platform
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Optional, Union

from repro.guard import fsfault
from repro.guard.errors import SealCorrupt, SealMissing, SealVersionDrift

from . import clock

__all__ = ["RunManifest", "config_fingerprint", "load_manifest"]

#: v1 had no ``integrity`` group; v2 added one; v3 (current) adds the
#: stream/profile artifact vocabulary.
SCHEMA_VERSION = 3

#: Seal ``kind`` tag manifests carry in their ``integrity`` group.
MANIFEST_KIND = "manifest"


def _integrity_digest(doc: Dict[str, object]) -> str:
    """SHA-256 over the canonical encoding of a manifest's payload
    groups (everything except ``integrity`` itself)."""
    payload = {k: v for k, v in doc.items() if k != "integrity"}
    blob = json.dumps(
        payload, sort_keys=True, separators=(",", ":")
    ).encode("utf-8")
    return hashlib.sha256(blob).hexdigest()


def config_fingerprint(payload: Dict[str, object]) -> str:
    """SHA-256 of a canonicalized experiment-input description.

    Uses the execution engine's canonical JSON encoding
    (:func:`repro.exec.cache.canonical_blob`) so the fingerprint is
    insensitive to mapping order and representation accidents, exactly
    like a cache key.  Callers pass whatever identifies the run's
    inputs: benchmark names, trace lengths, enhancement settings,
    design parameters.
    """
    from repro.exec.cache import canonical_blob

    return hashlib.sha256(canonical_blob(payload)).hexdigest()


@dataclass
class RunManifest:
    """Provenance record for one telemetry-enabled run.

    Build one per command invocation (or per benchmark session), call
    :meth:`finalize` when the run ends, and :meth:`write` it next to
    the trace and metrics artifacts.
    """

    command: str
    #: Content fingerprint of the experiment inputs (see
    #: :func:`config_fingerprint`); ``None`` when the caller has no
    #: meaningful input description.
    fingerprint: Optional[str] = None
    #: Engine settings that shaped execution (jobs, cache, retry, ...).
    settings: Dict[str, object] = field(default_factory=dict)
    #: Workload description (benchmarks, trace length, ...).
    workload: Dict[str, object] = field(default_factory=dict)
    #: The ``REPRO_FAULT_SPEC`` in effect, if any.
    fault_spec: Optional[str] = None
    #: Final metrics snapshot (see
    #: :meth:`repro.obs.metrics.MetricsRegistry.snapshot`).
    metrics: Dict[str, Dict[str, object]] = field(default_factory=dict)
    #: Sibling artifact paths (trace file, metrics file, journal).
    artifacts: Dict[str, str] = field(default_factory=dict)

    def __post_init__(self):
        from repro.cpu import SIMULATOR_VERSION

        self.simulator_version = SIMULATOR_VERSION
        self.python_version = platform.python_version()
        self.platform = platform.platform()
        self.argv = list(sys.argv)
        self.created = clock.wall_time()
        self._t0 = clock.elapsed()
        self.elapsed_seconds: Optional[float] = None
        self.exit_status: Optional[str] = None

    def finalize(self, *, status: str = "completed",
                 metrics: Optional[Dict] = None) -> "RunManifest":
        """Stamp the outcome: elapsed time, status, final metrics."""
        self.elapsed_seconds = clock.elapsed() - self._t0
        self.exit_status = status
        if metrics is not None:
            self.metrics = metrics
        return self

    def to_dict(self) -> Dict[str, object]:
        """The manifest as a JSON-ready dict (stable key groups).

        ``run`` holds reproducible facts, ``host`` the environment
        annotations, ``outcome`` the volatile results — so diffing two
        manifests of the same experiment shows differences exactly
        where differences are expected.
        """
        doc = {
            "schema": SCHEMA_VERSION,
            "run": {
                "command": self.command,
                "fingerprint": self.fingerprint,
                "simulator_version": self.simulator_version,
                "settings": dict(self.settings),
                "workload": dict(self.workload),
                "fault_spec": self.fault_spec,
                "artifacts": dict(self.artifacts),
            },
            "host": {
                "python_version": self.python_version,
                "platform": self.platform,
                "argv": self.argv,
                "created": self.created,
            },
            "outcome": {
                "exit_status": self.exit_status,
                "elapsed_seconds": self.elapsed_seconds,
                "metrics": self.metrics,
            },
        }
        doc["integrity"] = {
            "kind": MANIFEST_KIND,
            "schema": SCHEMA_VERSION,
            "sim": self.simulator_version,
            "sha256": _integrity_digest(doc),
        }
        return doc

    def write(self, path: Union[str, os.PathLike]) -> Path:
        """Write the manifest as indented JSON; returns the path.

        Publishes atomically through the sanctioned seam
        (:func:`repro.guard.fsfault.publish_text`): a reader — or
        ``repro verify`` after a crash — never sees a torn manifest,
        only the previous one or none.
        """
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        fsfault.publish_text(
            path,
            json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n",
            retries=2,
        )
        return path


def load_manifest(path: Union[str, os.PathLike],
                  *, simulator_version: Optional[str] = None) \
        -> Dict[str, object]:
    """Load a manifest and verify its ``integrity`` group.

    Raises the typed seal errors of :mod:`repro.guard.errors`:
    :class:`SealMissing` for a v1/foreign manifest without an
    integrity group, :class:`SealVersionDrift` on schema (or, when
    ``simulator_version`` is given, simulator) drift, and
    :class:`SealCorrupt` when the recomputed payload digest disagrees
    — i.e. any group was edited after the run wrote it.  Returns the
    parsed document.
    """
    path = Path(path)
    try:
        doc = json.loads(path.read_text(encoding="utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise SealCorrupt(
            f"{path}: unparseable manifest: {exc}",
            reason="malformed", artifact=str(path),
        ) from None
    if not isinstance(doc, dict) or "integrity" not in doc:
        raise SealMissing(
            f"{path}: manifest carries no integrity group "
            "(schema v1 or foreign document)",
            artifact=str(path),
        )
    integrity = doc["integrity"]
    if not isinstance(integrity, dict) \
            or integrity.get("kind") != MANIFEST_KIND:
        raise SealCorrupt(
            f"{path}: integrity group is not a manifest seal",
            reason="wrong-kind", artifact=str(path),
        )
    if integrity.get("schema") != SCHEMA_VERSION \
            or doc.get("schema") != SCHEMA_VERSION:
        raise SealVersionDrift(
            f"{path}: manifest schema v{doc.get('schema')} != "
            f"expected v{SCHEMA_VERSION}",
            reason="schema-drift", artifact=str(path),
        )
    if simulator_version is not None \
            and integrity.get("sim") != str(simulator_version):
        raise SealVersionDrift(
            f"{path}: manifest written under simulator "
            f"{integrity.get('sim')!r}, expected {simulator_version!r}",
            artifact=str(path),
        )
    if _integrity_digest(doc) != integrity.get("sha256"):
        raise SealCorrupt(
            f"{path}: manifest payload does not match its integrity "
            "digest — the document was edited after it was written",
            artifact=str(path),
        )
    return doc
