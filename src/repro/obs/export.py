"""Exporters: Chrome trace JSON, metrics JSONL, text summary tables.

Three audiences, three formats:

* **Perfetto / ``about:tracing``** — :func:`chrome_trace` renders a
  :class:`~repro.obs.span.Tracer` as Chrome trace-event JSON
  (``{"traceEvents": [...]}``).  Sync spans become complete (``"X"``)
  events on named tracks (track 0 is the grid supervisor, track 1+N is
  worker lane N); async spans (queue waits) become ``"b"``/``"e"``
  pairs keyed by their deterministic identity; instant events become
  ``"i"`` marks.  Load the file via "Open trace file" in
  https://ui.perfetto.dev or ``chrome://tracing``.
* **Tools** — :func:`write_metrics_jsonl` dumps a
  :class:`~repro.obs.metrics.MetricsRegistry` snapshot as one JSON
  object per line, sorted by metric name, alongside the run's journal.
* **Humans** — :func:`render_metrics_table` renders the same snapshot
  as an aligned text table through :func:`repro.reporting.format_table`.

:func:`scrub_trace` is the determinism half: it reduces a trace to its
*structure* (names, categories, attributes — no timestamps, no track
assignments, no recording order), which must be identical across two
runs of the same grid.  Tests and external diff tooling share it.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.guard import fsfault

from .metrics import MetricsRegistry
from .span import Span, Tracer

__all__ = [
    "chrome_trace",
    "prometheus_text",
    "render_metrics_table",
    "scrub_trace",
    "write_chrome_trace",
    "write_metrics_jsonl",
]

#: Synthetic process id for all trace events (one run = one process).
_PID = 1


def _microseconds(seconds: float) -> int:
    return int(round(seconds * 1e6))


def _args(span: Span) -> Dict[str, object]:
    return {k: span.attributes[k] for k in sorted(span.attributes)}


def chrome_trace(tracer: Tracer) -> Dict[str, object]:
    """The tracer's spans as a Chrome trace-event document.

    Still-open spans (an interrupted run) are closed first and marked
    ``interrupted=True`` rather than dropped, so a truncated trace
    still accounts for the time spent.
    """
    tracer.close_open_spans()
    events: List[Dict[str, object]] = []
    tracks = {0}
    for span in tracer.spans():
        tracks.add(span.track)
        common = {
            "name": span.name,
            "cat": span.category,
            "pid": _PID,
            "tid": span.track,
            "ts": _microseconds(span.start),
        }
        if span.instant:
            events.append({**common, "ph": "i", "s": "t",
                           "args": _args(span)})
        elif span.asynchronous:
            ident = span.ident()
            events.append({**common, "ph": "b", "id": ident,
                           "args": _args(span)})
            events.append({
                **common, "ph": "e", "id": ident,
                "ts": _microseconds(span.end),
            })
        else:
            events.append({
                **common, "ph": "X",
                "dur": _microseconds(span.duration),
                "args": _args(span),
            })
    metadata = [{
        "name": "process_name", "ph": "M", "pid": _PID, "tid": 0,
        "args": {"name": "repro"},
    }]
    for track in sorted(tracks):
        label = "supervisor" if track == 0 else f"worker-{track - 1}"
        metadata.append({
            "name": "thread_name", "ph": "M", "pid": _PID,
            "tid": track, "args": {"name": label},
        })
    return {
        "traceEvents": metadata + events,
        "displayTimeUnit": "ms",
        "otherData": {
            "producer": "repro.obs",
            "epoch_wall_time": tracer.epoch_wall,
        },
    }


def write_chrome_trace(tracer: Tracer,
                       path: Union[str, os.PathLike]) -> Path:
    """Write :func:`chrome_trace` to ``path``; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fsfault.publish_text(
        path, json.dumps(chrome_trace(tracer), sort_keys=True),
        retries=2,
    )
    return path


#: Event fields that legitimately differ between two identical runs:
#: every timestamp, plus track/lane assignment (which worker happened
#: to pick a task up).  Async ``id`` fields are *kept*: they derive
#: from span content (:meth:`repro.obs.span.Span.ident`), so they must
#: match across runs.
_VOLATILE_FIELDS = ("ts", "dur", "tid", "pid")


def scrub_trace(trace: Dict[str, object]) -> List[str]:
    """The trace reduced to sorted, timestamp-free structure lines.

    Two runs of the same grid must produce *equal* scrubbed traces:
    the same spans with the same names, categories, phases and
    attributes, regardless of worker scheduling, recording order, or
    how long anything took.  Volatile per-run detail (timestamps,
    durations, worker-lane numbers, the wall-clock anchor) is dropped;
    everything else is kept, canonically JSON-encoded, and sorted.
    """
    lines = []
    for event in trace.get("traceEvents", []):
        if event.get("ph") == "M":
            continue  # thread names embed worker-lane numbers
        kept = {
            k: v for k, v in event.items() if k not in _VOLATILE_FIELDS
        }
        args = kept.get("args")
        if isinstance(args, dict):
            kept["args"] = {
                k: v for k, v in args.items() if k != "worker"
            }
        lines.append(json.dumps(kept, sort_keys=True))
    return sorted(lines)


def write_metrics_jsonl(registry: MetricsRegistry,
                        path: Union[str, os.PathLike]) -> Path:
    """One JSON line per metric, sorted by name; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    lines = [
        json.dumps({"name": name, **fields}, sort_keys=True)
        for name, fields in registry.snapshot().items()
    ]
    fsfault.publish_text(path, "".join(line + "\n" for line in lines),
                         retries=2)
    return path


def _prom_name(name: str) -> str:
    cleaned = "".join(
        ch if ch.isalnum() or ch == "_" else "_" for ch in name
    )
    if cleaned and cleaned[0].isdigit():
        cleaned = "_" + cleaned
    return "repro_" + cleaned


def _prom_value(value: object) -> str:
    if value is None:
        return "NaN"
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, (int, float)):
        return repr(float(value)) if isinstance(value, float) \
            else str(value)
    return "NaN"


def prometheus_text(snapshot: Dict[str, Dict[str, object]],
                    labels: Optional[Dict[str, str]] = None) -> str:
    """A metrics snapshot in the Prometheus text exposition format.

    ``snapshot`` is the :meth:`MetricsRegistry.snapshot` shape
    (``name -> {"type": ..., ...fields}``) — which the fleet
    aggregator also synthesizes from its counter/gauge roll-ups, so
    one exporter serves live registries and reconstructed streams
    alike.  Dotted names become underscored with a ``repro_`` prefix;
    histograms expand to ``_count`` / ``_sum`` / ``_min`` / ``_max``
    series; gauges also export their ``_peak``.  Optional ``labels``
    are attached to every sample (e.g. ``{"run": "..."}``).
    """
    label_text = ""
    if labels:
        inner = ",".join(
            '{}="{}"'.format(k, str(v).replace("\\", "\\\\")
                             .replace('"', '\\"'))
            for k, v in sorted(labels.items())
        )
        label_text = "{" + inner + "}"
    lines: List[str] = []
    for name in sorted(snapshot):
        fields = snapshot[name]
        kind = fields.get("type")
        base = _prom_name(name)
        if kind == "counter":
            lines.append(f"# TYPE {base}_total counter")
            lines.append(f"{base}_total{label_text} "
                         f"{_prom_value(fields.get('value'))}")
        elif kind == "gauge":
            lines.append(f"# TYPE {base} gauge")
            lines.append(f"{base}{label_text} "
                         f"{_prom_value(fields.get('value'))}")
            if "peak" in fields:
                lines.append(f"# TYPE {base}_peak gauge")
                lines.append(f"{base}_peak{label_text} "
                             f"{_prom_value(fields['peak'])}")
        elif kind == "histogram":
            lines.append(f"# TYPE {base} summary")
            lines.append(f"{base}_count{label_text} "
                         f"{_prom_value(fields.get('count'))}")
            lines.append(f"{base}_sum{label_text} "
                         f"{_prom_value(fields.get('sum'))}")
            for extreme in ("min", "max"):
                lines.append(f"{base}_{extreme}{label_text} "
                             f"{_prom_value(fields.get(extreme))}")
    return "\n".join(lines) + "\n"


def _format_value(value: object) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.6g}"
    return str(value)


def render_metrics_table(registry: MetricsRegistry,
                         title: Optional[str] = "Run metrics") -> str:
    """The registry snapshot as an aligned text table.

    Counters and gauges print their value (gauges add the peak);
    histograms print count and mean/min/max.  Rendering goes through
    :func:`repro.reporting.format_table` so metric summaries look like
    every other exhibit this repository prints.
    """
    # Imported lazily: repro.reporting pulls in NumPy and the core
    # analysis stack, which the rest of repro.obs must not require.
    from repro.reporting import format_table

    rows = []
    for name, fields in registry.snapshot().items():
        kind = fields["type"]
        if kind == "counter":
            detail = ""
            value = _format_value(fields["value"])
        elif kind == "gauge":
            detail = f"peak {_format_value(fields['peak'])}"
            value = _format_value(fields["value"])
        else:
            detail = (
                f"mean {_format_value(fields['mean'])}  "
                f"min {_format_value(fields['min'])}  "
                f"max {_format_value(fields['max'])}"
            )
            value = _format_value(fields["count"])
        rows.append((name, kind, value, detail))
    return format_table(
        ("Metric", "Kind", "Value", "Detail"), rows, title=title
    )
