"""Statistical workload generation.

The paper runs MinneSPEC reduced inputs of 13 SPEC 2000 benchmarks.
Those binaries (and a SimpleScalar toolchain to run them) are not
reproducible here, so this module generates *synthetic dynamic traces*
whose statistical structure exercises the same machine mechanisms:

* **code model** — a static program of basic blocks with per-block
  instruction slots; control flow follows a per-block successor model
  (dominant successor with a persistent per-branch bias, loop back
  edges, calls into linear functions with bounded nesting).  Re-executed
  blocks re-execute the *same* static slots, so instruction mix,
  branch biases and I-cache locality behave like real code;
* **data model** — every static memory slot is bound to one of three
  access behaviours: *working-set* (power-law reuse over the data
  footprint: small caches miss, large ones hit), *streaming*
  (sequential, exercising block size and memory bandwidth), or
  *pointer-chasing* (loads feeding their own address register,
  serializing on memory latency);
* **dependence model** — source registers are drawn from recently
  written registers with a geometric lookback, setting the available ILP;
* **redundancy model** — a fraction of compute slots carry a persistent
  redundancy key drawn from a power-law pool, feeding the instruction
  precomputation enhancement.

A :class:`WorkloadProfile` fixes all of these knobs; thirteen profiles
tuned to the paper's benchmark fingerprints live in
:mod:`repro.workloads.profiles`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.cpu.isa import NO_REG, NO_VALUE, BranchKind, OpClass
from .trace import Trace

_POINTER_REG = 30              # dedicated pointer-chase register
_WORD = 8                      # bytes per data access
# Segment bases are staggered at *both* page granularities Table 8 uses
# (4 KB and 4 MB): aligned bases would land every segment in the same
# TLB set and ping-pong catastrophically under 2-way associativity.
_CODE_BASE = 0x0040_0000
_DATA_BASE = 0x1040_0000 + 0x35 * 4096
_HEAP_BASE = 0x2140_0000 + 0x61 * 4096
_STREAM_BASE = 0x4240_0000 + 0xD3 * 4096
_STACK_BASE = 0x7FFF_0000 + 0x1F * 4096


@dataclass(frozen=True)
class WorkloadProfile:
    """All the knobs of one synthetic benchmark.

    The defaults describe a bland integer program; the named SPEC-like
    profiles override nearly everything (see ``profiles.py``).
    """

    name: str
    seed: int = 1

    # Instruction mix (weights; normalized internally).  Branch
    # frequency is set by block length, loads/stores/computes by these.
    ialu_weight: float = 0.50
    imult_weight: float = 0.01
    idiv_weight: float = 0.002
    falu_weight: float = 0.0
    fmult_weight: float = 0.0
    fdiv_weight: float = 0.0
    fsqrt_weight: float = 0.0
    load_weight: float = 0.25
    store_weight: float = 0.10

    # Code model
    n_blocks: int = 256                # main-program basic blocks
    block_len_mean: float = 6.0        # instructions per block (incl. branch)
    loop_fraction: float = 0.35        # blocks whose dominant successor is a back edge
    loop_span: int = 12                # how far back edges reach (blocks)
    loop_bias_cap: float = 0.75        # max P(take a back edge): bounds loop trip counts
    bias_alpha: float = 8.0            # Beta() of dominant-successor probability:
    bias_beta: float = 1.0             #   high alpha/low beta = predictable branches
    call_fraction: float = 0.04        # blocks ending in a call
    n_functions: int = 12
    function_blocks: int = 3           # linear blocks per function
    nested_call_fraction: float = 0.2  # function blocks that call deeper
    max_call_depth: int = 4

    # Data model
    data_footprint: int = 1 << 20      # bytes of working-set data
    reuse_exponent: float = 4.0        # >1: power-law concentration of reuse
    stack_fraction: float = 0.45       # accesses hitting the tiny stack region
    stack_bytes: int = 2048            # stack/locals region size
    hot_fraction: float = 0.30         # accesses walking the hot heap region
    hot_bytes: int = 32 * 1024         # hot heap size (between the L1D levels)
    n_arenas: int = 36                 # concurrent cold-tier walkers (page pressure)
    n_streams: int = 4                 # concurrent sequential streams
    region_bytes: int = 4096           # cold-tier region (page) granularity
    streaming_fraction: float = 0.10   # memory slots that stream sequentially
    pointer_fraction: float = 0.05     # load slots that pointer-chase
    stream_region: int = 1 << 24       # bytes a stream walks before wrapping

    # Dependence / ILP model
    dep_lookback_p: float = 0.25       # geometric(p): small p = long lookback = high ILP

    # Redundancy model (instruction precomputation)
    redundancy_fraction: float = 0.25  # compute slots that are redundant
    n_redundant_keys: int = 2048       # size of the redundant-computation pool
    redundancy_exponent: float = 2.0   # power-law skew of key popularity

    def __post_init__(self):
        if self.block_len_mean < 2:
            raise ValueError("blocks need room for at least branch + 1 op")
        weights = self._weights()
        if min(weights.values()) < 0 or sum(weights.values()) <= 0:
            raise ValueError("instruction-mix weights must be non-negative")
        for frac in (self.loop_fraction, self.call_fraction,
                     self.streaming_fraction, self.pointer_fraction,
                     self.redundancy_fraction, self.nested_call_fraction,
                     self.stack_fraction, self.hot_fraction):
            if not 0.0 <= frac <= 1.0:
                raise ValueError("fractions must lie in [0, 1]")
        if self.stack_fraction + self.hot_fraction > 1.0:
            raise ValueError("stack + hot fractions exceed 1")
        if not 0.0 < self.dep_lookback_p <= 1.0:
            raise ValueError("dep_lookback_p must lie in (0, 1]")

    def _weights(self) -> Dict[OpClass, float]:
        return {
            OpClass.IALU: self.ialu_weight,
            OpClass.IMULT: self.imult_weight,
            OpClass.IDIV: self.idiv_weight,
            OpClass.FALU: self.falu_weight,
            OpClass.FMULT: self.fmult_weight,
            OpClass.FDIV: self.fdiv_weight,
            OpClass.FSQRT: self.fsqrt_weight,
            OpClass.LOAD: self.load_weight,
            OpClass.STORE: self.store_weight,
        }


class _StaticSlot:
    """One static non-branch instruction (re-executed identically)."""

    __slots__ = ("op", "mode", "key", "stream_cursor", "stream_start",
                 "hot_cursor")

    def __init__(self, op: int, mode: int, key: int,
                 stream_start: int = 0, hot_cursor: int = 0):
        self.op = op
        self.mode = mode          # 0 = plain/working-set, 1 = stream, 2 = pointer
        self.key = key            # redundancy key or NO_VALUE
        self.stream_start = stream_start
        self.stream_cursor = stream_start
        self.hot_cursor = hot_cursor  # walking pointer within the hot heap


class _Block:
    """A static basic block: body slots plus a terminating branch."""

    __slots__ = ("pc", "slots", "kind", "dominant", "bias", "others",
                 "callee", "end_pc")

    def __init__(self, pc: int):
        self.pc = pc
        self.slots: List[_StaticSlot] = []
        self.kind = int(BranchKind.CONDITIONAL)
        self.dominant = 0         # dominant successor block id
        self.bias = 1.0           # probability of taking the dominant edge
        self.others: List[int] = []
        self.callee = -1
        self.end_pc = pc


class SyntheticProgram:
    """The static structure generated from one profile.

    Building the program is separated from emitting a trace so tests
    can inspect the static structure, and so multiple trace lengths
    share one layout.
    """

    def __init__(self, profile: WorkloadProfile):
        self.profile = profile
        rng = np.random.default_rng(profile.seed)
        self._rng = rng
        ops, probs = self._mix_distribution(profile)
        self.main_blocks: List[_Block] = []
        self.function_entry: List[int] = []
        self.blocks: List[_Block] = []
        next_pc = _CODE_BASE
        # Main program blocks.
        for i in range(profile.n_blocks):
            block, next_pc = self._make_block(next_pc, ops, probs)
            self.main_blocks.append(block)
            self.blocks.append(block)
        self._wire_main_control_flow()
        # Functions: linear chains ending in a return.
        for f in range(profile.n_functions):
            entry = len(self.blocks)
            self.function_entry.append(entry)
            for j in range(profile.function_blocks):
                block, next_pc = self._make_block(next_pc, ops, probs)
                last = j == profile.function_blocks - 1
                if last:
                    block.kind = int(BranchKind.RETURN)
                else:
                    # Fall through (or occasionally call deeper).
                    block.kind = int(BranchKind.CONDITIONAL)
                    block.dominant = len(self.blocks) + 1
                    block.bias = 1.0
                    block.others = []
                    if rng.random() < profile.nested_call_fraction:
                        block.kind = int(BranchKind.CALL)
                self.blocks.append(block)
        self.code_bytes = next_pc - _CODE_BASE

    # -- construction helpers -------------------------------------------------

    @staticmethod
    def _mix_distribution(profile) -> Tuple[np.ndarray, np.ndarray]:
        weights = profile._weights()
        ops = np.array([int(op) for op in weights], dtype=np.int64)
        probs = np.array([weights[op] for op in weights], dtype=np.float64)
        probs = probs / probs.sum()
        return ops, probs

    def _make_block(self, pc: int, ops, probs) -> Tuple[_Block, int]:
        profile = self.profile
        rng = self._rng
        block = _Block(pc)
        body_len = max(1, int(rng.poisson(profile.block_len_mean - 1)))
        slot_ops = rng.choice(ops, size=body_len, p=probs)
        for op in slot_ops:
            block.slots.append(self._make_slot(int(op)))
        block.end_pc = pc + 4 * body_len     # the branch's own pc
        return block, block.end_pc + 4

    def _make_slot(self, op: int) -> _StaticSlot:
        profile = self.profile
        rng = self._rng
        mode = 0
        key = NO_VALUE
        stream_start = 0
        hot_cursor = 0
        if op == int(OpClass.LOAD) or op == int(OpClass.STORE):
            u = rng.random()
            hot_cursor = int(
                rng.integers(0, max(1, profile.hot_bytes // _WORD))
            ) * _WORD
            if u < profile.streaming_fraction:
                mode = 1
                stream_start = int(rng.integers(0, 1 << 16))  # pool index
            elif op == int(OpClass.LOAD) and \
                    u < profile.streaming_fraction + profile.pointer_fraction:
                mode = 2
        elif rng.random() < profile.redundancy_fraction:
            # Redundant compute slot: persistent power-law key.
            u = rng.random()
            key = int(profile.n_redundant_keys *
                      u ** profile.redundancy_exponent)
            key = min(key, profile.n_redundant_keys - 1)
        return _StaticSlot(op, mode, key, stream_start, hot_cursor)

    def _wire_main_control_flow(self) -> None:
        profile = self.profile
        rng = self._rng
        n = len(self.main_blocks)
        for i, block in enumerate(self.main_blocks):
            if rng.random() < profile.call_fraction and profile.n_functions:
                block.kind = int(BranchKind.CALL)
                continue
            back_edge = rng.random() < profile.loop_fraction and i > 0
            if back_edge:
                low = max(0, i - profile.loop_span)
                block.dominant = int(rng.integers(low, i + 1))
            else:
                block.dominant = (i + 1) % n
            # Back-edge bias bounds the loop trip count; uncapped biases
            # would trap the walk in one loop and shrink the code
            # working set to a handful of blocks.
            cap = profile.loop_bias_cap if back_edge else 0.98
            block.bias = min(
                float(rng.beta(profile.bias_alpha, profile.bias_beta)), cap
            )
            # Non-dominant successors are mostly local (nearby blocks,
            # preserving I-cache locality) with one rare far jump.
            span = max(1, profile.loop_span)
            low = max(0, i - span)
            high = min(n, i + span + 1)
            nearby = [int(v) for v in rng.integers(low, high, size=4)]
            block.others = nearby + [int(rng.integers(0, n))]

    # -- trace emission ---------------------------------------------------------

    def emit(self, length: int, seed: Optional[int] = None,
             name: Optional[str] = None) -> Trace:
        """Generate a dynamic trace of exactly ``length`` instructions."""
        if length < 1:
            raise ValueError("trace length must be positive")
        profile = self.profile
        rng = np.random.default_rng(
            profile.seed * 1_000_003 + 17 if seed is None else seed
        )
        n = length
        pc = np.zeros(n, np.int64)
        op = np.zeros(n, np.uint8)
        src1 = np.full(n, NO_REG, np.int16)
        src2 = np.full(n, NO_REG, np.int16)
        dst = np.full(n, NO_REG, np.int16)
        mem_addr = np.full(n, NO_VALUE, np.int64)
        branch_kind = np.zeros(n, np.uint8)
        taken = np.zeros(n, np.bool_)
        target = np.full(n, NO_VALUE, np.int64)
        redundancy_key = np.full(n, NO_VALUE, np.int64)

        # Pre-drawn randomness in bulk (much faster than per-call).
        pool = 2 * n + 16
        uniforms = rng.random(pool)
        lookbacks = rng.geometric(profile.dep_lookback_p, pool)
        reuse_draws = rng.random(pool)
        u_i = 0

        words = max(1, profile.data_footprint // _WORD)
        stream_words = max(1, profile.stream_region // _WORD)
        # [region, access-count] per concurrent cold walker; walkers
        # start on contiguous regions (the hottest arenas), like real
        # allocators laying hot structures out together.
        n_cold_regions = max(
            1, profile.data_footprint // profile.region_bytes
        )
        self._walkers = [
            [w % n_cold_regions, 0]
            for w in range(max(1, profile.n_arenas))
        ]
        self._next_walker = 0
        self._cold_count = 0
        self._active_walker = 0
        # [start offset, bytes advanced] per shared sequential stream.
        # Starts are spread across distinct pages (and therefore cache/
        # TLB sets) deterministically, with a small in-page jitter.
        stream_rng = np.random.default_rng(profile.seed + 7)
        self._streams = [
            [(((3 + 2 * k) * 4096)
              + int(stream_rng.integers(0, 64)) * _WORD)
             % (stream_words * _WORD), 0]
            for k in range(max(1, profile.n_streams))
        ]
        recent_int: List[int] = [1, 2, 3, 4]
        recent_fp: List[int] = [32, 33, 34, 35]
        call_stack: List[int] = []      # block ids to return to
        ret_addr_stack: List[int] = []  # return pcs (targets of RETURN)
        current = 0                     # block id
        slot_index = 0
        i = 0
        blocks = self.blocks
        is_fp = {int(OpClass.FALU), int(OpClass.FMULT),
                 int(OpClass.FDIV), int(OpClass.FSQRT)}

        while i < n:
            block = blocks[current]
            if slot_index < len(block.slots):
                slot = block.slots[slot_index]
                o = slot.op
                pc[i] = block.pc + 4 * slot_index
                op[i] = o
                if o == int(OpClass.LOAD) or o == int(OpClass.STORE):
                    addr = self._data_address(
                        slot, words, stream_words, reuse_draws[u_i]
                    )
                    mem_addr[i] = addr
                    if slot.mode == 2:  # pointer chase
                        src1[i] = _POINTER_REG
                        if o == int(OpClass.LOAD):
                            dst[i] = _POINTER_REG
                    else:
                        src1[i] = self._pick_source(
                            recent_int, lookbacks[u_i]
                        )
                        if o == int(OpClass.LOAD):
                            d = int(1 + (lookbacks[u_i + 1] % 29))
                            dst[i] = d
                            self._record_write(recent_int, d)
                        else:
                            src2[i] = self._pick_source(
                                recent_int, lookbacks[u_i + 1]
                            )
                else:
                    fp = o in is_fp
                    pool = recent_fp if fp else recent_int
                    src1[i] = self._pick_source(pool, lookbacks[u_i])
                    src2[i] = self._pick_source(pool, lookbacks[u_i + 1])
                    base = 32 if fp else 1
                    span = 31 if fp else 29
                    d = int(base + (int(uniforms[u_i] * 1e9) % span))
                    dst[i] = d
                    self._record_write(pool, d)
                    redundancy_key[i] = slot.key
                u_i = (u_i + 2) % (2 * n)
                slot_index += 1
                i += 1
                continue

            # Block-terminating control transfer.
            pc[i] = block.end_pc
            op[i] = int(OpClass.BRANCH)
            kind = block.kind
            branch_kind[i] = kind
            src1[i] = recent_int[-1]
            if kind == int(BranchKind.CALL):
                callee_entry = self.function_entry[
                    int(uniforms[u_i] * len(self.function_entry))
                    % len(self.function_entry)
                ] if self.function_entry else 0
                if len(call_stack) >= profile.max_call_depth or \
                        not self.function_entry:
                    # Too deep: degrade to a fall-through branch.
                    branch_kind[i] = int(BranchKind.CONDITIONAL)
                    taken[i] = False
                    next_block = self._fallthrough_of(current)
                else:
                    return_block = self._fallthrough_of(current)
                    call_stack.append(return_block)
                    ret_addr_stack.append(block.end_pc + 4)
                    taken[i] = True
                    target[i] = blocks[callee_entry].pc
                    next_block = callee_entry
            elif kind == int(BranchKind.RETURN):
                if call_stack:
                    next_block = call_stack.pop()
                    taken[i] = True
                    target[i] = ret_addr_stack.pop()
                else:
                    next_block = 0
                    taken[i] = True
                    target[i] = blocks[0].pc
            else:  # conditional
                if uniforms[u_i] < block.bias:
                    next_block = block.dominant
                else:
                    choice = block.others[
                        int(uniforms[u_i] * 977) % len(block.others)
                    ]
                    next_block = choice
                fall = self._fallthrough_of(current)
                if next_block == fall:
                    taken[i] = False
                else:
                    taken[i] = True
                    target[i] = blocks[next_block].pc
            u_i = (u_i + 1) % (2 * n)
            current = next_block
            slot_index = 0
            i += 1

        trace = Trace(pc, op, src1, src2, dst, mem_addr, branch_kind,
                      taken, target, redundancy_key,
                      name=name or profile.name)
        return trace

    def _fallthrough_of(self, block_id: int) -> int:
        nxt = block_id + 1
        if nxt >= len(self.blocks):
            return 0
        # Main blocks wrap within main program; function chains continue.
        if block_id < len(self.main_blocks) <= nxt:
            return 0
        return nxt

    def _data_address(self, slot: _StaticSlot, words: int,
                      stream_words: int, draw: float) -> int:
        if slot.mode == 1:  # streaming: one of the program's shared streams
            pick = (slot.stream_start + int(draw * 524287.0))
            stream = self._streams[pick % len(self._streams)]
            addr = _STREAM_BASE + (stream[0] + stream[1]) % (
                stream_words * _WORD
            )
            stream[1] += _WORD
            return addr
        # Working-set / pointer-chase accesses are a three-tier mixture:
        #
        # * stack — a tiny region with near-total reuse (L1 resident);
        # * hot heap — per-slot sequential walks over a region sized
        #   between the paper's low and high L1 D-cache settings, so the
        #   L1D size/latency contrast has real traffic;
        # * cold tail — a power-law choice of a page-sized region plus a
        #   sequential per-slot offset within it: hot pages are revisited
        #   (L2-capacity and D-TLB reach contrasts) while the long tail
        #   keeps missing to DRAM (memory latency/bandwidth contrasts).
        profile = self.profile
        f_stack = profile.stack_fraction
        f_hot = profile.hot_fraction
        if draw < f_stack:
            stack_words = max(1, profile.stack_bytes // _WORD)
            index = int(stack_words * (draw / f_stack)) if f_stack else 0
            return _STACK_BASE + min(index, stack_words - 1) * _WORD
        if draw < f_stack + f_hot:
            addr = _HEAP_BASE + slot.hot_cursor
            slot.hot_cursor += _WORD
            if slot.hot_cursor >= profile.hot_bytes:
                slot.hot_cursor = 0
            return addr
        rest = 1.0 - f_stack - f_hot
        v = (draw - f_stack - f_hot) / rest if rest > 0 else 0.0
        return self._cold_address(v)

    def _cold_address(self, v: float) -> int:
        """One access from the program's pool of cold-arena walkers.

        The program keeps ``n_arenas`` concurrent walkers (live arenas);
        each walks its region in 64-word sequential runs, then jumps to
        a new power-law-selected region.  A small pool bounds the
        *concurrent* page working set (TLB pressure) while the power
        law still grades the total footprint (cache-capacity pressure).
        """
        profile = self.profile
        region_bytes = profile.region_bytes
        n_regions = max(1, profile.data_footprint // region_bytes)
        # Walkers are *sticky*: the program works on one arena for a
        # phase of accesses before switching (real code walks one
        # structure at a time).  Phasing keeps conflicting pages from
        # alternating rapidly, which is what actually costs TLB misses.
        self._cold_count += 1
        if self._cold_count % 24 == 0:
            self._active_walker = int(v * 7919.0) % len(self._walkers)
        walker = self._walkers[self._active_walker]
        # A walker visits a region for a 48-access sequential run, then
        # usually advances to the *next* region (real data structures
        # are contiguous page runs, which index TLB and cache sets
        # uniformly) and occasionally reseeds to a power-law-selected
        # region (temporal reuse of hot arenas).
        run_words = 48
        if walker[1] and walker[1] % run_words == 0:
            if (walker[1] // run_words) % 6:
                walker[0] = (walker[0] + 1) % n_regions
            else:
                walker[0] = min(
                    int(n_regions * v ** profile.reuse_exponent),
                    n_regions - 1,
                )
        offset = (walker[1] * _WORD) % region_bytes
        walker[1] += 1
        return _DATA_BASE + walker[0] * region_bytes + offset

    @staticmethod
    def _pick_source(recent: List[int], lookback: int) -> int:
        # Deep lookbacks fall off the recent-writer window: the value
        # is old enough to be "always ready" (no dependence edge).
        if lookback > 6:
            return NO_REG
        return recent[-1 - (int(lookback) - 1) % len(recent)]

    @staticmethod
    def _record_write(recent: List[int], reg: int) -> None:
        recent.append(reg)
        if len(recent) > 16:
            recent.pop(0)


def generate_trace(
    profile: WorkloadProfile, length: int, seed: Optional[int] = None
) -> Trace:
    """Build the static program for ``profile`` and emit one trace."""
    return SyntheticProgram(profile).emit(length, seed=seed)
