"""Workload characterization: the classical curves behind the ranks.

The paper classifies benchmarks by PB rank vectors; the traditional
approach characterizes them directly — instruction mixes, miss-rate
versus cache size curves, working-set and page-footprint counts,
branch statistics.  This module computes those classical metrics from
a trace, which is useful both for sanity-checking the synthetic
profiles against their SPEC role models and for interpreting *why* a
benchmark's rank vector looks the way it does.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.cpu.cache import Cache
from repro.cpu.isa import BranchKind, OpClass
from repro.cpu.memory import MainMemory

from .trace import Trace


@dataclass(frozen=True)
class BranchProfile:
    """Control-flow statistics of a trace."""

    branches: int
    taken_fraction: float
    conditional_fraction: float
    call_fraction: float
    return_fraction: float
    unique_sites: int

    @property
    def dynamic_per_static(self) -> float:
        """Average executions per static branch site."""
        return self.branches / self.unique_sites if self.unique_sites \
            else 0.0


def branch_profile(trace: Trace) -> BranchProfile:
    """Summarize a trace's branches."""
    is_branch = trace.op == int(OpClass.BRANCH)
    n = int(is_branch.sum())
    if n == 0:
        return BranchProfile(0, 0.0, 0.0, 0.0, 0.0, 0)
    kinds = trace.branch_kind[is_branch]
    return BranchProfile(
        branches=n,
        taken_fraction=float(trace.taken[is_branch].mean()),
        conditional_fraction=float(
            (kinds == int(BranchKind.CONDITIONAL)).mean()
        ),
        call_fraction=float((kinds == int(BranchKind.CALL)).mean()),
        return_fraction=float((kinds == int(BranchKind.RETURN)).mean()),
        unique_sites=len(np.unique(trace.pc[is_branch])),
    )


@dataclass(frozen=True)
class FootprintProfile:
    """Touched-memory statistics of a trace."""

    code_bytes: int            # distinct instruction bytes (block granular)
    data_bytes: int            # distinct data bytes (block granular)
    data_pages: int            # distinct 4 KB data pages
    code_pages: int
    memory_references: int


def footprint_profile(trace: Trace, block: int = 32,
                      page: int = 4096) -> FootprintProfile:
    """Count the trace's touched code/data footprints."""
    data = trace.mem_addr[trace.mem_addr >= 0]
    return FootprintProfile(
        code_bytes=len(np.unique(trace.pc // block)) * block,
        data_bytes=len(np.unique(data // block)) * block if len(data)
        else 0,
        data_pages=len(np.unique(data // page)) if len(data) else 0,
        code_pages=len(np.unique(trace.pc // page)),
        memory_references=int(len(data)),
    )


def miss_rate_curve(
    trace: Trace,
    sizes: Sequence[int] = (4096, 8192, 16384, 32768, 65536, 131072),
    *,
    assoc: int = 4,
    block: int = 32,
    stream: str = "data",
) -> List[Tuple[int, float]]:
    """Demand miss rate of an isolated cache across sizes.

    ``stream`` selects the reference stream: ``"data"`` replays
    loads/stores, ``"code"`` replays instruction-block fetches.  The
    result is the classical miss-rate-vs-capacity curve whose knee
    tells you which of the paper's cache-size levels a benchmark can
    tell apart.
    """
    if stream == "data":
        refs = trace.mem_addr[trace.mem_addr >= 0]
        writes = trace.op[trace.mem_addr >= 0] == int(OpClass.STORE)
    elif stream == "code":
        pcs = trace.pc
        keep = np.empty(len(pcs), dtype=bool)
        keep[0] = True
        keep[1:] = (pcs[1:] // block) != (pcs[:-1] // block)
        refs = pcs[keep]
        writes = np.zeros(len(refs), dtype=bool)
    else:
        raise ValueError("stream must be 'data' or 'code'")
    out: List[Tuple[int, float]] = []
    for size in sizes:
        memory = MainMemory(100, 2, 8)
        cache = Cache(size, assoc, block, 1, memory)
        for addr, write in zip(refs, writes):
            cache.access(int(addr), write=bool(write))
        # Replay once more so compulsory misses don't dominate short
        # traces (mirrors the simulator's functional warmup).
        cache.reset_stats()
        for addr, write in zip(refs, writes):
            cache.access(int(addr), write=bool(write))
        out.append((size, cache.stats.miss_rate))
    return out


def characterize(trace: Trace) -> Dict[str, object]:
    """One-call characterization bundle for a trace."""
    return {
        "name": trace.name,
        "instructions": len(trace),
        "mix": trace.instruction_mix(),
        "branches": branch_profile(trace),
        "footprint": footprint_profile(trace),
        "l1d_curve": miss_rate_curve(trace),
        "l1i_curve": miss_rate_curve(trace, stream="code"),
    }


def characterization_report(trace: Trace) -> str:
    """A readable characterization of one trace."""
    c = characterize(trace)
    b: BranchProfile = c["branches"]
    f: FootprintProfile = c["footprint"]
    mix = ", ".join(f"{k} {v:.1%}" for k, v in sorted(c["mix"].items()))
    lines = [
        f"{c['name']}: {c['instructions']} instructions",
        f"  mix: {mix}",
        f"  branches: {b.branches} ({b.taken_fraction:.0%} taken, "
        f"{b.unique_sites} sites, "
        f"{b.dynamic_per_static:.0f} execs/site)",
        f"  footprint: code {f.code_bytes // 1024} KB, "
        f"data {f.data_bytes // 1024} KB over {f.data_pages} pages",
        "  L1D miss-rate curve (warm): " + "  ".join(
            f"{size // 1024}K:{rate:.1%}" for size, rate in c["l1d_curve"]
        ),
        "  L1I miss-rate curve (warm): " + "  ".join(
            f"{size // 1024}K:{rate:.1%}" for size, rate in c["l1i_curve"]
        ),
    ]
    return "\n".join(lines)
