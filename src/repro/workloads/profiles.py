"""The thirteen SPEC 2000-like benchmark profiles.

Table 5 of the paper lists the benchmarks (MinneSPEC large reduced
inputs, run to completion).  Each profile below is tuned so the
machine-level *fingerprint* — which parameters its Plackett-Burman
column ranks highly — matches what Table 9 reports for the real
benchmark:

* ``gzip``/``bzip2`` — integer compute, window-sized working sets,
  branch-heavy inner loops (ROB, branch predictor, Int ALUs high);
* ``vpr-Place``/``twolf`` — placement/annealing codes with large
  instruction footprints and moderate data (L1 I-cache dominant; the
  paper measures them as each other's nearest neighbours);
* ``vpr-Route``/``parser`` — pointer-walking integer codes with
  L2-sized data;
* ``gcc``/``vortex`` — huge code footprints, deep call chains
  (I-cache and call/return machinery);
* ``mesa`` — FP rendering with a large instruction working set and
  predictable-but-frequent branches;
* ``art``/``ammp``/``equake`` — FP floating-point codes whose data
  streams past every cache (memory latency/bandwidth/L2 size);
* ``mcf`` — the classic pointer-chasing, TLB-thrashing memory hog.

Relative dynamic instruction counts follow Table 5 (gcc longest at
4040.7M, mcf shortest at 601.2M), scaled down by
``INSTRUCTIONS_PER_MILLION``.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Dict, List, Optional

from .synthetic import SyntheticProgram, WorkloadProfile
from .trace import Trace

#: Dynamic instruction counts from Table 5, in millions.
PAPER_INSTRUCTION_COUNTS_M: Dict[str, float] = {
    "gzip": 1364.2,
    "vpr-Place": 1521.7,
    "vpr-Route": 881.1,
    "gcc": 4040.7,
    "mesa": 1217.9,
    "art": 2181.1,
    "mcf": 601.2,
    "equake": 713.7,
    "ammp": 1228.1,
    "parser": 2721.6,
    "vortex": 1050.2,
    "bzip2": 2467.7,
    "twolf": 764.6,
}

#: Default scale: simulated instructions per paper-million.
INSTRUCTIONS_PER_MILLION = 5.0

_KB = 1024
_MB = 1024 * _KB


def _p(name: str, seed: int, **kw) -> WorkloadProfile:
    return WorkloadProfile(name=name, seed=seed, **kw)


#: The thirteen profiles, in Table 5 order.
PROFILES: Dict[str, WorkloadProfile] = {
    # Integer compression: hot loops, window-sized data, branchy.
    "gzip": _p(
        "gzip", 101,
        n_streams=2,
        n_arenas=6,
        loop_bias_cap=0.93,
        dep_lookback_p=0.22,
        ialu_weight=0.52, imult_weight=0.004, idiv_weight=0.0,
        load_weight=0.22, store_weight=0.09,
        n_blocks=160, block_len_mean=5.5,
        loop_fraction=0.45, loop_span=10,
        bias_alpha=13.0, bias_beta=1.0,
        call_fraction=0.02, n_functions=6, max_call_depth=3,
        stack_fraction=0.70, hot_fraction=0.24, hot_bytes=8 * _KB,
        data_footprint=512 * _KB, reuse_exponent=3.0,
        streaming_fraction=0.05, pointer_fraction=0.01,
        redundancy_fraction=0.35,
    ),
    # Placement: big code, simulated annealing, some FP.
    "vpr-Place": _p(
        "vpr-Place", 102,
        n_streams=2,
        n_arenas=6,
        loop_bias_cap=0.72,
        dep_lookback_p=0.19,
        ialu_weight=0.40, falu_weight=0.08, fmult_weight=0.04,
        load_weight=0.24, store_weight=0.10,
        n_blocks=2600, block_len_mean=6.5,
        loop_fraction=0.25, loop_span=25,
        bias_alpha=11.5, bias_beta=1.0,
        call_fraction=0.05, n_functions=24, max_call_depth=4,
        stack_fraction=0.70, hot_fraction=0.24, hot_bytes=8 * _KB,
        data_footprint=512 * _KB, reuse_exponent=3.0,
        streaming_fraction=0.02, pointer_fraction=0.03,
        redundancy_fraction=0.25,
    ),
    # Routing: pointer walking over the routing graph.
    "vpr-Route": _p(
        "vpr-Route", 103,
        n_arenas=48,
        loop_bias_cap=0.85,
        
        dep_lookback_p=0.24,
        ialu_weight=0.46, falu_weight=0.03,
        load_weight=0.28, store_weight=0.08,
        n_blocks=300, block_len_mean=5.5,
        loop_fraction=0.40, loop_span=25,
        bias_alpha=9.0, bias_beta=1.0,
        call_fraction=0.03, n_functions=10, max_call_depth=4,
        stack_fraction=0.60, hot_fraction=0.26, hot_bytes=16 * _KB,
        data_footprint=2 * _MB, reuse_exponent=2.1,
        streaming_fraction=0.03, pointer_fraction=0.12,
        redundancy_fraction=0.22,
    ),
    # Compiler: huge code footprint, deep calls, hard branches.
    "gcc": _p(
        "gcc", 104,
        n_streams=2,
        n_arenas=6,
        loop_bias_cap=0.60,
        
        dep_lookback_p=0.22,
        ialu_weight=0.50, imult_weight=0.003,
        load_weight=0.25, store_weight=0.12,
        n_blocks=3600, block_len_mean=5.0,
        loop_fraction=0.18, loop_span=25,
        bias_alpha=5.0, bias_beta=1.3,
        call_fraction=0.08, n_functions=48, function_blocks=4,
        nested_call_fraction=0.35, max_call_depth=12,
        stack_fraction=0.66, hot_fraction=0.25, hot_bytes=8 * _KB,
        data_footprint=1 * _MB, reuse_exponent=2.5,
        streaming_fraction=0.02, pointer_fraction=0.05,
        redundancy_fraction=0.20,
    ),
    # 3D rendering: large code, FP pipeline, predictable branches.
    "mesa": _p(
        "mesa", 105,
        n_streams=2,
        n_arenas=6,
        loop_bias_cap=0.72,
        dep_lookback_p=0.14,
        ialu_weight=0.30, falu_weight=0.16, fmult_weight=0.10,
        fdiv_weight=0.008, fsqrt_weight=0.004,
        load_weight=0.24, store_weight=0.11,
        n_blocks=3000, block_len_mean=7.0,
        loop_fraction=0.30, loop_span=25,
        bias_alpha=13.0, bias_beta=1.0,
        call_fraction=0.06, n_functions=36, max_call_depth=6,
        stack_fraction=0.70, hot_fraction=0.24, hot_bytes=8 * _KB,
        data_footprint=512 * _KB, reuse_exponent=3.0,
        streaming_fraction=0.06, pointer_fraction=0.01,
        redundancy_fraction=0.35,
    ),
    # Neural-net image recognition: tiny code, streams a big matrix.
    "art": _p(
        "art", 106,
        n_arenas=48,
        n_streams=8,
        loop_bias_cap=0.95,
        
        dep_lookback_p=0.10,
        ialu_weight=0.16, falu_weight=0.26, fmult_weight=0.18,
        fdiv_weight=0.004, fsqrt_weight=0.0,
        load_weight=0.28, store_weight=0.06,
        n_blocks=60, block_len_mean=7.5,
        loop_fraction=0.55, loop_span=6,
        bias_alpha=33.0, bias_beta=0.5,
        call_fraction=0.01, n_functions=4, max_call_depth=2,
        stack_fraction=0.30, hot_fraction=0.20, hot_bytes=24 * _KB,
        data_footprint=4 * _MB, reuse_exponent=1.4,
        streaming_fraction=0.12, pointer_fraction=0.0,
        stream_region=1 << 25,
        redundancy_fraction=0.18,
    ),
    # Network-flow optimizer: pure pointer chasing, TLB thrashing.
    "mcf": _p(
        "mcf", 107,
        n_arenas=48,
        loop_bias_cap=0.92,
        
        dep_lookback_p=0.34,
        ialu_weight=0.42, imult_weight=0.002,
        load_weight=0.33, store_weight=0.07,
        n_blocks=110, block_len_mean=5.0,
        loop_fraction=0.45, loop_span=10,
        bias_alpha=11.5, bias_beta=1.0,
        call_fraction=0.02, n_functions=4, max_call_depth=3,
        stack_fraction=0.34, hot_fraction=0.20, hot_bytes=24 * _KB,
        data_footprint=8 * _MB, reuse_exponent=1.3,
        streaming_fraction=0.02, pointer_fraction=0.35,
        redundancy_fraction=0.15,
    ),
    # Seismic simulation: FP with sizeable code and streaming data.
    "equake": _p(
        "equake", 108,
        n_arenas=48,
        n_streams=6,
        loop_bias_cap=0.8,
        
        dep_lookback_p=0.10,
        ialu_weight=0.28, falu_weight=0.18, fmult_weight=0.12,
        fdiv_weight=0.006,
        load_weight=0.27, store_weight=0.08,
        n_blocks=2200, block_len_mean=6.5,
        loop_fraction=0.30, loop_span=25,
        bias_alpha=19.0, bias_beta=1.0,
        call_fraction=0.04, n_functions=20, max_call_depth=5,
        stack_fraction=0.55, hot_fraction=0.27, hot_bytes=16 * _KB,
        data_footprint=3 * _MB, reuse_exponent=1.8,
        streaming_fraction=0.1, pointer_fraction=0.03,
        redundancy_fraction=0.22,
    ),
    # Molecular dynamics: streams particle arrays past every cache.
    "ammp": _p(
        "ammp", 109,
        n_arenas=16,
        n_streams=8,
        loop_bias_cap=0.95,
        
        dep_lookback_p=0.10,
        ialu_weight=0.20, falu_weight=0.24, fmult_weight=0.16,
        fdiv_weight=0.012, fsqrt_weight=0.006,
        load_weight=0.28, store_weight=0.08,
        n_blocks=120, block_len_mean=8.0,
        loop_fraction=0.55, loop_span=8,
        bias_alpha=33.0, bias_beta=0.5,
        call_fraction=0.01, n_functions=4, max_call_depth=2,
        stack_fraction=0.30, hot_fraction=0.20, hot_bytes=24 * _KB,
        data_footprint=6 * _MB, reuse_exponent=1.3,
        streaming_fraction=0.14, pointer_fraction=0.02,
        stream_region=1 << 25,
        redundancy_fraction=0.15,
    ),
    # Dictionary parser: pointerish integer code, hard branches.
    "parser": _p(
        "parser", 110,
        n_arenas=48,
        loop_bias_cap=0.85,
        
        dep_lookback_p=0.24,
        ialu_weight=0.48,
        load_weight=0.27, store_weight=0.09,
        n_blocks=420, block_len_mean=5.0,
        loop_fraction=0.30, loop_span=25,
        bias_alpha=8.0, bias_beta=1.1,
        call_fraction=0.06, n_functions=18, function_blocks=3,
        nested_call_fraction=0.3, max_call_depth=10,
        stack_fraction=0.62, hot_fraction=0.26, hot_bytes=16 * _KB,
        data_footprint=2 * _MB, reuse_exponent=2.1,
        streaming_fraction=0.02, pointer_fraction=0.1,
        redundancy_fraction=0.28,
    ),
    # OO database: very large code, deepest call chains.
    "vortex": _p(
        "vortex", 111,
        n_streams=2,
        n_arenas=6,
        loop_bias_cap=0.58,
        dep_lookback_p=0.20,
        ialu_weight=0.46, imult_weight=0.002,
        load_weight=0.26, store_weight=0.13,
        n_blocks=3200, block_len_mean=5.5,
        loop_fraction=0.15, loop_span=25,
        bias_alpha=16.0, bias_beta=1.0,
        call_fraction=0.09, n_functions=56, function_blocks=4,
        nested_call_fraction=0.4, max_call_depth=14,
        stack_fraction=0.66, hot_fraction=0.25, hot_bytes=8 * _KB,
        data_footprint=1 * _MB, reuse_exponent=2.5,
        streaming_fraction=0.02, pointer_fraction=0.03,
        redundancy_fraction=0.22,
    ),
    # Block-sorting compression: compute bound with L2-sized data.
    "bzip2": _p(
        "bzip2", 112,
        n_arenas=48,
        loop_bias_cap=0.92,
        
        dep_lookback_p=0.18,
        ialu_weight=0.56, imult_weight=0.004,
        load_weight=0.24, store_weight=0.08,
        n_blocks=140, block_len_mean=5.5,
        loop_fraction=0.50, loop_span=10,
        bias_alpha=9.0, bias_beta=1.0,
        call_fraction=0.015, n_functions=5, max_call_depth=3,
        stack_fraction=0.62, hot_fraction=0.27, hot_bytes=16 * _KB,
        data_footprint=2 * _MB, reuse_exponent=1.7,
        streaming_fraction=0.06, pointer_fraction=0.02,
        redundancy_fraction=0.30,
    ),
    # Standard-cell place & route: vpr-Place's sibling.
    "twolf": _p(
        "twolf", 113,
        n_streams=2,
        n_arenas=6,
        loop_bias_cap=0.72,
        dep_lookback_p=0.20,
        ialu_weight=0.42, falu_weight=0.06, fmult_weight=0.03,
        load_weight=0.25, store_weight=0.10,
        n_blocks=2400, block_len_mean=6.0,
        loop_fraction=0.25, loop_span=25,
        bias_alpha=10.0, bias_beta=1.0,
        call_fraction=0.05, n_functions=22, max_call_depth=4,
        stack_fraction=0.70, hot_fraction=0.24, hot_bytes=8 * _KB,
        data_footprint=512 * _KB, reuse_exponent=3.0,
        streaming_fraction=0.02, pointer_fraction=0.04,
        redundancy_fraction=0.25,
    ),
}

#: Benchmark names in Table 5 / Table 9 column order.
BENCHMARK_NAMES: List[str] = list(PAPER_INSTRUCTION_COUNTS_M)


def profile(name: str) -> WorkloadProfile:
    """Look up one benchmark profile by its paper name."""
    try:
        return PROFILES[name]
    except KeyError:
        raise KeyError(
            f"unknown benchmark {name!r}; choose from {BENCHMARK_NAMES}"
        ) from None


def default_length(
    name: str, instructions_per_million: float = INSTRUCTIONS_PER_MILLION
) -> int:
    """Trace length proportional to the paper's Table 5 dynamic count."""
    return max(1000, int(
        PAPER_INSTRUCTION_COUNTS_M[name] * instructions_per_million
    ))


@lru_cache(maxsize=64)
def _cached_trace(name: str, length: int) -> Trace:
    program = SyntheticProgram(profile(name))
    return program.emit(length, name=name)


def benchmark_trace(name: str, length: Optional[int] = None) -> Trace:
    """The canonical trace of one benchmark (cached per length).

    The same (name, length) pair always yields the identical trace, so
    all 88 configurations of a PB experiment measure the same workload
    — the analogue of the paper running each benchmark to completion on
    the same input.
    """
    if length is None:
        length = default_length(name)
    return _cached_trace(name, int(length))


def benchmark_suite(length: Optional[int] = None,
                    names: Optional[List[str]] = None) -> Dict[str, Trace]:
    """Traces for the whole suite (or a subset), keyed by name."""
    return {
        name: benchmark_trace(name, length)
        for name in (names or BENCHMARK_NAMES)
    }
