"""Packed dynamic-instruction traces.

A :class:`Trace` is the unit of work the simulator executes: a
structure-of-arrays encoding of a dynamic instruction stream.  The
packed form (numpy arrays) keeps trace generation and simulation fast;
:meth:`Trace.instruction` and :meth:`Trace.from_instructions` bridge to
the friendly :class:`~repro.cpu.isa.Instruction` objects for tests and
hand-built workloads.
"""

from __future__ import annotations

import hashlib
from typing import Iterable, Iterator, List, Sequence

import numpy as np

from repro.cpu.isa import NO_REG, NO_VALUE, BranchKind, Instruction, OpClass


class Trace:
    """A dynamic instruction stream in structure-of-arrays form.

    All arrays have the same length; see :class:`Instruction` for field
    semantics.  Instances should be treated as immutable.
    """

    __slots__ = (
        "pc", "op", "src1", "src2", "dst", "mem_addr",
        "branch_kind", "taken", "target", "redundancy_key", "name",
        "_fingerprint", "_decoded",
    )

    def __init__(
        self,
        pc: np.ndarray,
        op: np.ndarray,
        src1: np.ndarray,
        src2: np.ndarray,
        dst: np.ndarray,
        mem_addr: np.ndarray,
        branch_kind: np.ndarray,
        taken: np.ndarray,
        target: np.ndarray,
        redundancy_key: np.ndarray,
        name: str = "trace",
    ):
        n = len(pc)
        arrays = dict(
            pc=pc, op=op, src1=src1, src2=src2, dst=dst, mem_addr=mem_addr,
            branch_kind=branch_kind, taken=taken, target=target,
            redundancy_key=redundancy_key,
        )
        for field, arr in arrays.items():
            if len(arr) != n:
                raise ValueError(f"array {field!r} length mismatch")
        self.pc = np.ascontiguousarray(pc, dtype=np.int64)
        self.op = np.ascontiguousarray(op, dtype=np.uint8)
        self.src1 = np.ascontiguousarray(src1, dtype=np.int16)
        self.src2 = np.ascontiguousarray(src2, dtype=np.int16)
        self.dst = np.ascontiguousarray(dst, dtype=np.int16)
        self.mem_addr = np.ascontiguousarray(mem_addr, dtype=np.int64)
        self.branch_kind = np.ascontiguousarray(branch_kind, dtype=np.uint8)
        self.taken = np.ascontiguousarray(taken, dtype=np.bool_)
        self.target = np.ascontiguousarray(target, dtype=np.int64)
        self.redundancy_key = np.ascontiguousarray(
            redundancy_key, dtype=np.int64
        )
        self.name = name
        self._fingerprint = None
        self._decoded = None

    def __len__(self) -> int:
        return len(self.pc)

    def __getstate__(self):
        # Drop the decode cache when pickling (it is derived data and
        # can be large); keep the memoised fingerprint, which is tiny
        # and saves rehashing in forked workers.
        return {
            slot: getattr(self, slot)
            for slot in self.__slots__ if slot != "_decoded"
        }

    def __setstate__(self, state):
        for slot, value in state.items():
            object.__setattr__(self, slot, value)
        self._decoded = None

    def decoded(self) -> "DecodedTrace":
        """The batched simulator core's static decode of this trace.

        Computed lazily on first use and memoised (instances are
        treated as immutable); dropped when pickling.  See
        :class:`DecodedTrace` for what the decode contains and why it
        is exact.
        """
        if self._decoded is None:
            self._decoded = DecodedTrace(self)
        return self._decoded

    def fingerprint(self) -> str:
        """Content hash identifying this trace (arrays + name).

        Two traces with equal arrays and name share a fingerprint
        regardless of how they were built, which is what lets the
        execution engine's result cache recognise previously simulated
        workloads across processes and sessions.  Computed lazily and
        memoised; instances are treated as immutable.
        """
        if self._fingerprint is None:
            digest = hashlib.sha256()
            digest.update(self.name.encode("utf-8"))
            for field in (
                "pc", "op", "src1", "src2", "dst", "mem_addr",
                "branch_kind", "taken", "target", "redundancy_key",
            ):
                array = getattr(self, field)
                digest.update(field.encode("ascii"))
                digest.update(str(array.dtype).encode("ascii"))
                digest.update(array.tobytes())
            self._fingerprint = digest.hexdigest()
        return self._fingerprint

    def instruction(self, i: int) -> Instruction:
        """Instruction ``i`` as a rich object."""
        return Instruction(
            pc=int(self.pc[i]),
            op=OpClass(int(self.op[i])),
            src1=int(self.src1[i]),
            src2=int(self.src2[i]),
            dst=int(self.dst[i]),
            mem_addr=int(self.mem_addr[i]),
            branch_kind=BranchKind(int(self.branch_kind[i])),
            taken=bool(self.taken[i]),
            target=int(self.target[i]),
            redundancy_key=int(self.redundancy_key[i]),
        )

    def __iter__(self) -> Iterator[Instruction]:
        for i in range(len(self)):
            yield self.instruction(i)

    @classmethod
    def from_instructions(
        cls, instructions: Sequence[Instruction], name: str = "trace"
    ) -> "Trace":
        """Pack a sequence of :class:`Instruction` objects."""
        n = len(instructions)
        pc = np.empty(n, np.int64)
        op = np.empty(n, np.uint8)
        src1 = np.empty(n, np.int16)
        src2 = np.empty(n, np.int16)
        dst = np.empty(n, np.int16)
        mem_addr = np.empty(n, np.int64)
        branch_kind = np.empty(n, np.uint8)
        taken = np.empty(n, np.bool_)
        target = np.empty(n, np.int64)
        redundancy_key = np.empty(n, np.int64)
        for i, ins in enumerate(instructions):
            pc[i] = ins.pc
            op[i] = int(ins.op)
            src1[i] = ins.src1
            src2[i] = ins.src2
            dst[i] = ins.dst
            mem_addr[i] = ins.mem_addr
            branch_kind[i] = int(ins.branch_kind)
            taken[i] = ins.taken
            target[i] = ins.target
            redundancy_key[i] = ins.redundancy_key
        return cls(pc, op, src1, src2, dst, mem_addr, branch_kind,
                   taken, target, redundancy_key, name=name)

    # -- summary helpers ------------------------------------------------------

    def instruction_mix(self) -> dict:
        """Fraction of each op class present in the trace."""
        n = len(self)
        if n == 0:
            return {}
        counts = np.bincount(self.op, minlength=len(OpClass))
        return {
            OpClass(i).name: counts[i] / n
            for i in range(len(OpClass))
            if counts[i]
        }

    def branch_count(self) -> int:
        return int((self.op == int(OpClass.BRANCH)).sum())

    def memory_count(self) -> int:
        loads = self.op == int(OpClass.LOAD)
        stores = self.op == int(OpClass.STORE)
        return int(loads.sum() + stores.sum())

    def redundancy_counts(self) -> dict:
        """Dynamic execution count per redundancy key (key -> count).

        This is what the "compiler" of the instruction-precomputation
        enhancement profiles to fill the precomputation table with the
        highest-frequency redundant computations.
        """
        keys = self.redundancy_key[self.redundancy_key != NO_VALUE]
        unique, counts = np.unique(keys, return_counts=True)
        return {int(k): int(c) for k, c in zip(unique, counts)}

    def validate_decode(self) -> None:  # pragma: no cover - debug aid
        """Force and sanity-check the decode (debugging helper)."""
        d = self.decoded()
        n = len(self)
        for arr in (d.prod1, d.prod2, d.store_prod):
            if len(arr) != n or (arr >= np.arange(n)).any():
                raise ValueError("decode produced a non-causal producer")

    def validate(self) -> None:
        """Check internal consistency; raises ValueError on corruption."""
        is_mem = np.isin(self.op, (int(OpClass.LOAD), int(OpClass.STORE)))
        if (self.mem_addr[is_mem] < 0).any():
            raise ValueError("memory op without address")
        is_branch = self.op == int(OpClass.BRANCH)
        if (self.branch_kind[is_branch] == int(BranchKind.NONE)).any():
            raise ValueError("branch without a kind")
        if (self.branch_kind[~is_branch] != int(BranchKind.NONE)).any():
            raise ValueError("non-branch carrying a branch kind")
        taken_branches = is_branch & self.taken
        if (self.target[taken_branches] < 0).any():
            raise ValueError("taken branch without target")


class DecodedTrace:
    """Static dependence decode of one :class:`Trace`.

    The batched simulator core replaces the reference model's dynamic
    ``reg_producer`` / ``store_for_addr`` dictionaries with arrays
    computed once per trace:

    ``prod1[i]`` / ``prod2[i]``
        Index of the instruction producing ``src1``/``src2`` of
        instruction ``i`` (the last earlier writer of that register),
        or -1.  Exact because dispatch is in trace order: when ``i``
        dispatches, the reference dictionary necessarily maps the
        register to its last earlier writer.  Duplicate operands
        (``src1 == src2``) keep *two* edges, matching the reference's
        per-operand loop.

    ``store_prod[i]``
        For loads: index of the latest earlier store to the same
        address, or -1.  Exact for the same in-order reason; the
        reference's commit-time deletion (a committed store removes
        itself only while still newest for its address) is subsumed
        by the dynamic ``state != DONE`` check both cores apply at
        dispatch, because in-order commit means a deleted store is
        always DONE by the time any later load dispatches.

    Everything here is configuration-independent — per-configuration
    arrays (cache block ids, unit latencies, precompute-table flags)
    are derived by the core at run start.
    """

    __slots__ = ("n", "prod1", "prod2", "store_prod")

    def __init__(self, trace: "Trace"):
        from repro.cpu.isa import OpClass

        n = len(trace)
        self.n = n
        prod1 = np.full(n, -1, np.int32)
        prod2 = np.full(n, -1, np.int32)
        store_prod = np.full(n, -1, np.int32)
        src1 = trace.src1.tolist()
        src2 = trace.src2.tolist()
        dst = trace.dst.tolist()
        op = trace.op.tolist()
        addr = trace.mem_addr.tolist()
        load_op = int(OpClass.LOAD)
        store_op = int(OpClass.STORE)
        last_writer: dict = {}
        last_store: dict = {}
        p1 = prod1.tolist()
        p2 = prod2.tolist()
        sp = store_prod.tolist()
        for i in range(n):
            reg = src1[i]
            if reg >= 0:
                p1[i] = last_writer.get(reg, -1)
            reg = src2[i]
            if reg >= 0:
                p2[i] = last_writer.get(reg, -1)
            o = op[i]
            if o == load_op:
                sp[i] = last_store.get(addr[i], -1)
            elif o == store_op:
                last_store[addr[i]] = i
            if dst[i] >= 0:
                last_writer[dst[i]] = i
        self.prod1 = np.asarray(p1, np.int32)
        self.prod2 = np.asarray(p2, np.int32)
        self.store_prod = np.asarray(sp, np.int32)
