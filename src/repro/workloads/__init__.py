"""Synthetic SPEC 2000-like workloads (the MinneSPEC substitute).

Public surface:

* :class:`Trace` — packed dynamic instruction streams;
* :class:`WorkloadProfile` / :class:`SyntheticProgram` /
  :func:`generate_trace` — the statistical workload generator;
* :data:`PROFILES` / :func:`benchmark_trace` / :func:`benchmark_suite`
  — the thirteen named benchmarks of the paper's Table 5.
"""

from .profiles import (
    BENCHMARK_NAMES,
    INSTRUCTIONS_PER_MILLION,
    PAPER_INSTRUCTION_COUNTS_M,
    PROFILES,
    benchmark_suite,
    benchmark_trace,
    default_length,
    profile,
)
from .characterize import (
    BranchProfile,
    FootprintProfile,
    branch_profile,
    characterization_report,
    characterize,
    footprint_profile,
    miss_rate_curve,
)
from .io import load_trace, save_trace
from .synthetic import SyntheticProgram, WorkloadProfile, generate_trace
from .trace import Trace

__all__ = [
    "BENCHMARK_NAMES",
    "BranchProfile",
    "FootprintProfile",
    "branch_profile",
    "characterization_report",
    "characterize",
    "footprint_profile",
    "miss_rate_curve",
    "INSTRUCTIONS_PER_MILLION",
    "PAPER_INSTRUCTION_COUNTS_M",
    "PROFILES",
    "SyntheticProgram",
    "Trace",
    "WorkloadProfile",
    "benchmark_suite",
    "benchmark_trace",
    "default_length",
    "generate_trace",
    "load_trace",
    "profile",
    "save_trace",
]
