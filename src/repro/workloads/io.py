"""Saving and loading traces.

Traces are plain structure-of-arrays, so they serialize naturally to
compressed ``.npz`` archives.  This lets expensive generated workloads
(or externally converted ones — any tool that can emit the nine arrays
can feed the simulator) be reused across sessions and shared between
machines.
"""

from __future__ import annotations

import os
from typing import Union

import numpy as np

from .trace import Trace

#: Archive format version, stored alongside the arrays.
FORMAT_VERSION = 1

_FIELDS = (
    "pc", "op", "src1", "src2", "dst", "mem_addr",
    "branch_kind", "taken", "target", "redundancy_key",
)


def save_trace(trace: Trace, path: Union[str, os.PathLike]) -> None:
    """Write a trace to a compressed ``.npz`` archive.

    The benchmark name and a format version travel with the arrays, so
    :func:`load_trace` can validate what it reads.
    """
    arrays = {field: getattr(trace, field) for field in _FIELDS}
    np.savez_compressed(
        path,
        __version__=np.int64(FORMAT_VERSION),
        __name__=np.bytes_(trace.name.encode("utf-8")),
        **arrays,
    )


def load_trace(path: Union[str, os.PathLike]) -> Trace:
    """Read a trace archive written by :func:`save_trace`.

    The loaded trace is validated structurally before being returned,
    so a corrupt or hand-rolled archive fails loudly here rather than
    deep inside a simulation.
    """
    with np.load(path) as archive:
        try:
            version = int(archive["__version__"])
        except KeyError:
            raise ValueError(f"{path}: not a repro trace archive") from None
        if version != FORMAT_VERSION:
            raise ValueError(
                f"{path}: trace format v{version}, expected "
                f"v{FORMAT_VERSION}"
            )
        # The name travels as a 0-d NumPy scalar array.  Extract the
        # scalar explicitly with .item(): coercing the array itself
        # with bytes(...) reads the raw buffer, which is only correct
        # for bytes dtypes (a unicode-dtype archive, e.g. one written
        # by an external tool, would yield UTF-32 garbage).
        raw_name = archive["__name__"].item()
        if isinstance(raw_name, bytes):
            name = raw_name.decode("utf-8")
        else:
            name = str(raw_name)
        arrays = {}
        for field in _FIELDS:
            if field not in archive:
                raise ValueError(f"{path}: missing array {field!r}")
            arrays[field] = archive[field]
    trace = Trace(name=name, **arrays)
    trace.validate()
    return trace
