"""Saving and loading traces.

Traces are plain structure-of-arrays, so they serialize naturally to
compressed ``.npz`` archives.  This lets expensive generated workloads
(or externally converted ones — any tool that can emit the nine arrays
can feed the simulator) be reused across sessions and shared between
machines.

Archives written by :func:`save_trace` are **sealed**
(:mod:`repro.guard.seal`): the ``.npz`` payload travels inside an
envelope naming its kind, format version and content checksum, so a
truncated copy or a flipped bit is detected at load instead of
surfacing as a silent simulation difference.  Plain unsealed ``.npz``
archives (from external tools, or pre-seal versions of this library)
still load — they just skip the envelope check and rely on the
structural validation alone.

:func:`load_trace` has two validation levels: the default structural
check (:meth:`~repro.workloads.trace.Trace.validate`), and
``strict=True``, which additionally verifies per-record invariants —
opcode and branch-kind domains, non-negative PCs and addresses, and
sequential-PC control flow — raising
:class:`~repro.guard.errors.TraceCorrupt` with the offending record
index.
"""

from __future__ import annotations

import io
import os
import zipfile
from typing import Union

import numpy as np

from repro.cpu.isa import BranchKind, OpClass
from repro.guard import fsfault
from repro.guard.errors import TraceCorrupt
from repro.guard.seal import (
    MAGIC as SEAL_MAGIC,
    check as check_seal,
    seal as make_seal,
)

from .trace import Trace

#: Archive format version, stored alongside the arrays (and echoed in
#: the seal header's ``schema`` field).
FORMAT_VERSION = 1

#: Seal ``kind`` tag for trace archives.
TRACE_KIND = "trace"

_FIELDS = (
    "pc", "op", "src1", "src2", "dst", "mem_addr",
    "branch_kind", "taken", "target", "redundancy_key",
)


def save_trace(trace: Trace, path: Union[str, os.PathLike]) -> None:
    """Write a trace to a sealed, compressed ``.npz`` archive.

    The benchmark name and a format version travel with the arrays,
    and the whole archive is wrapped in a seal envelope
    (:func:`repro.guard.seal.seal`) so :func:`load_trace` can validate
    both what it reads and that it read all of it.  The write is
    atomic (temp file + rename): a crash mid-save leaves either the
    old archive or none, never a torn one.
    """
    arrays = {field: getattr(trace, field) for field in _FIELDS}
    buffer = io.BytesIO()
    np.savez_compressed(
        buffer,
        __version__=np.int64(FORMAT_VERSION),
        __name__=np.bytes_(trace.name.encode("utf-8")),
        **arrays,
    )
    blob = make_seal(
        buffer.getvalue(), kind=TRACE_KIND, schema=FORMAT_VERSION,
    )
    # The sanctioned publish seam: temp name + replace, every step
    # fault-injectable, the destination never visible torn.
    fsfault.publish_bytes(path, blob, retries=2)


def _strict_validate(trace: Trace, artifact) -> None:
    """Per-record invariant checks behind ``load_trace(strict=True)``.

    Raises :class:`TraceCorrupt` carrying the index of the *first*
    offending record, the field concerned, and a stable reason slug.
    """

    def fail(mask: np.ndarray, field: str, reason: str,
             message: str) -> None:
        if mask.any():
            index = int(np.argmax(mask))
            raise TraceCorrupt(
                f"{artifact}: record {index}: {message}",
                index=index, field=field, reason=reason,
                artifact=artifact,
            )

    op_domain = np.array([int(o) for o in OpClass], dtype=np.int64)
    fail(~np.isin(trace.op, op_domain), "op", "opcode-domain",
         "opcode outside the OpClass domain")
    kind_domain = np.array([int(k) for k in BranchKind], dtype=np.int64)
    fail(~np.isin(trace.branch_kind, kind_domain), "branch_kind",
         "branch-kind-domain", "branch kind outside the domain")
    fail(trace.pc < 0, "pc", "pc-domain", "negative program counter")
    is_mem = np.isin(
        trace.op, (int(OpClass.LOAD), int(OpClass.STORE))
    )
    fail(is_mem & (trace.mem_addr < 0), "mem_addr", "address-domain",
         "memory operation with a negative address")
    is_branch = trace.op == int(OpClass.BRANCH)
    fail(is_branch & trace.taken & (trace.target < 0), "target",
         "address-domain", "taken branch with a negative target")
    fail(is_branch & (trace.branch_kind == int(BranchKind.NONE)),
         "branch_kind", "structure", "branch without a kind")
    fail(~is_branch & (trace.branch_kind != int(BranchKind.NONE)),
         "branch_kind", "structure", "non-branch carrying a branch kind")
    if len(trace) > 1:
        # Control-flow monotonicity: the PC advances by one slot (4
        # bytes) except across a taken branch, which lands on its
        # recorded target.  Violations mean reordered, duplicated or
        # spliced records.
        expected = trace.pc[:-1] + 4
        redirect = is_branch[:-1] & trace.taken[:-1]
        expected = np.where(redirect, trace.target[:-1], expected)
        mismatch = trace.pc[1:] != expected
        if mismatch.any():
            index = int(np.argmax(mismatch)) + 1
            raise TraceCorrupt(
                f"{artifact}: record {index}: PC {int(trace.pc[index])} "
                f"does not follow from record {index - 1} "
                f"(expected {int(expected[index - 1])})",
                index=index, field="pc", reason="pc-flow",
                artifact=artifact,
            )


def load_trace(path: Union[str, os.PathLike], *,
               strict: bool = False) -> Trace:
    """Read a trace archive written by :func:`save_trace`.

    A sealed archive has its envelope verified first (checksum,
    truncation, kind, format version — the typed
    :class:`~repro.guard.errors.SealError` family on failure); a plain
    ``.npz`` from an external tool skips that and is validated
    structurally only.  With ``strict=True`` the per-record invariants
    of :func:`_strict_validate` run too, so a corrupt or hand-rolled
    archive fails loudly here — naming the offending record — rather
    than deep inside a simulation.
    """
    blob = None
    with open(path, "rb") as handle:
        head = handle.read(len(SEAL_MAGIC))
        if head == SEAL_MAGIC:
            blob = head + handle.read()
    if blob is not None:
        payload = check_seal(
            blob, kind=TRACE_KIND, schema=FORMAT_VERSION,
        )
        source = io.BytesIO(payload)
    else:
        source = os.fspath(path)
    try:
        archive_handle = np.load(source)
    except (ValueError, OSError, zipfile.BadZipFile) as exc:
        # Not a readable npz at all: a corrupted legacy archive, or a
        # sealed one whose magic itself was damaged.  Named, like
        # every other detection.
        raise TraceCorrupt(
            f"{path}: unreadable trace archive: {exc}",
            reason="malformed", artifact=os.fspath(path),
        ) from None
    with archive_handle as archive:
        try:
            version = int(archive["__version__"])
        except KeyError:
            raise ValueError(f"{path}: not a repro trace archive") from None
        if version != FORMAT_VERSION:
            raise ValueError(
                f"{path}: trace format v{version}, expected "
                f"v{FORMAT_VERSION}"
            )
        # The name travels as a 0-d NumPy scalar array.  Extract the
        # scalar explicitly with .item(): coercing the array itself
        # with bytes(...) reads the raw buffer, which is only correct
        # for bytes dtypes (a unicode-dtype archive, e.g. one written
        # by an external tool, would yield UTF-32 garbage).
        raw_name = archive["__name__"].item()
        if isinstance(raw_name, bytes):
            name = raw_name.decode("utf-8")
        else:
            name = str(raw_name)
        arrays = {}
        for field in _FIELDS:
            if field not in archive:
                raise ValueError(f"{path}: missing array {field!r}")
            arrays[field] = archive[field]
    trace = Trace(name=name, **arrays)
    trace.validate()
    if strict:
        _strict_validate(trace, os.fspath(path))
    return trace
