"""Differential equivalence: the batched core against the oracle.

The batched core (:mod:`repro.cpu.batched`, optionally compiled —
:mod:`repro.cpu.native`) must produce **field-exact**
:class:`~repro.cpu.stats.CoreStats` for every (configuration, trace)
pair the interpreted reference model handles.  This module is the
harness that earns that claim:

* :func:`random_machine` samples configurations across the full
  Plackett-Burman ±1 design space *plus* off-space corners the screen
  never visits (one-entry RAS, two-entry IFQ, tournament/bimodal/
  static predictors, random replacement, tiny ROBs) — the corners are
  where the version-2 bugfix sweep found every reference-model bug;
* :func:`random_trace` mixes the 13 synthetic benchmark profiles with
  hand-built corner traces (deep call chains that wrap the RAS,
  misfetch storms, same-address store bursts, precompute-saturated
  streams);
* :func:`compare_cores` runs one pair on two cores and reports the
  exact fields that disagree (empty = equivalent);
* :func:`differential_sweep` drives N randomized pairs and collects
  every divergence.

``repro diffcore`` is the CLI face of the sweep; CI runs it as a
smoke on every push.  A divergence here means either a batched-core
bug (fix it) or an intentional timing change (bump
``SIMULATOR_VERSION`` and re-pin the goldens) — never a tolerance.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

from repro.cpu.isa import BranchKind, Instruction, OpClass
from repro.cpu.params import (
    DEFAULT_CONFIG,
    PARAMETER_NAMES,
    MachineConfig,
)
from repro.cpu.pipeline import simulate
from repro.cpu.stats import CoreStats
from repro.guard.audit import differing_fields
from repro.workloads import PROFILES
from repro.workloads.synthetic import generate_trace
from repro.workloads.trace import Trace

#: Predictor kinds beyond the PB levels (low=2level, high=perfect).
_PREDICTORS = ("2level", "bimodal", "taken", "tournament", "perfect")


def random_machine(rng: random.Random) -> MachineConfig:
    """One randomized machine: a PB design-space point, then with
    probability ~1/2 pushed into an off-space corner."""
    from repro.cpu.params import config_from_levels

    levels = {name: rng.choice((-1, 1)) for name in PARAMETER_NAMES}
    config = config_from_levels(levels, base=DEFAULT_CONFIG)
    if rng.random() < 0.5:
        return config
    corners = {}
    if rng.random() < 0.4:
        corners["ras_entries"] = rng.choice((1, 2, 3))
    if rng.random() < 0.4:
        corners["ifq_entries"] = rng.choice((1, 2))
    if rng.random() < 0.4:
        rob = rng.choice((2, 4, 6))
        corners["rob_entries"] = rob
        corners["lsq_entries"] = max(1, rob // 2)
    if rng.random() < 0.4:
        corners["width"] = rng.choice((1, 2, 8))
    if rng.random() < 0.4:
        corners["branch_predictor"] = rng.choice(_PREDICTORS)
    if rng.random() < 0.3:
        corners["memory_ports"] = 1
    if rng.random() < 0.3:
        corners["replacement_policy"] = rng.choice(("lru", "random"))
    if rng.random() < 0.3:
        corners["speculative_update"] = rng.choice(("commit", "decode"))
    if not corners:
        return config
    return config.evolve(**corners)


# -- corner traces ------------------------------------------------------------


def _deep_call_chain(rng: random.Random) -> Trace:
    """Calls nested past any RAS depth, then the unwind — exercises
    RAS wraparound and underflow on every return."""
    depth = rng.randint(20, 80)
    instrs: List[Instruction] = []
    stack = []
    pc = 0x1000
    for level in range(depth):
        target = 0x8000 + 0x100 * level
        instrs.append(Instruction(
            pc=pc, op=OpClass.BRANCH, branch_kind=BranchKind.CALL,
            taken=True, target=target,
        ))
        stack.append(pc + 4)
        pc = target
        instrs.append(Instruction(pc=pc, op=OpClass.IALU,
                                  dst=1 + level % 8))
        pc += 4
    while stack:
        ret = stack.pop()
        instrs.append(Instruction(
            pc=pc, op=OpClass.BRANCH, branch_kind=BranchKind.RETURN,
            taken=True, target=ret,
        ))
        pc = ret
        instrs.append(Instruction(pc=pc, op=OpClass.IALU))
        pc += 4
    return Trace.from_instructions(instrs, name="corner-deep-calls")


def _misfetch_storm(rng: random.Random) -> Trace:
    """Taken branches over many distinct sites: cold-BTB misfetches,
    BTB conflict evictions, and misfetch bubbles back to back."""
    sites = rng.randint(8, 200)
    rounds = rng.randint(2, 5)
    instrs: List[Instruction] = []
    for _ in range(rounds):
        for s in range(sites):
            pc = 0x2000 + 0x40 * s
            instrs.append(Instruction(
                pc=pc, op=OpClass.BRANCH,
                branch_kind=BranchKind.CONDITIONAL,
                taken=True, target=pc + 0x20,
            ))
            instrs.append(Instruction(pc=pc + 0x20, op=OpClass.IALU,
                                      dst=1 + s % 8))
    return Trace.from_instructions(instrs, name="corner-misfetch-storm")


def _store_burst(rng: random.Random) -> Trace:
    """Stores and loads hammering a handful of addresses: store-load
    forwarding edges, same-address rewrites, commit-port pressure."""
    addrs = [0x10000 + 8 * k for k in range(rng.randint(1, 4))]
    instrs: List[Instruction] = []
    pc = 0x3000
    for i in range(rng.randint(60, 200)):
        addr = rng.choice(addrs)
        if rng.random() < 0.5:
            instrs.append(Instruction(pc=pc, op=OpClass.STORE,
                                      mem_addr=addr, src1=1 + i % 4))
        else:
            instrs.append(Instruction(pc=pc, op=OpClass.LOAD,
                                      mem_addr=addr, dst=1 + i % 8))
        pc += 4
    return Trace.from_instructions(instrs, name="corner-store-burst")


def _precompute_stream(rng: random.Random) -> Trace:
    """Compute ops with few distinct redundancy keys — saturates the
    precomputation table path when one is supplied."""
    keys = [100 + k for k in range(rng.randint(2, 6))]
    ops = (OpClass.IALU, OpClass.IMULT, OpClass.FALU, OpClass.FMULT)
    instrs = []
    pc = 0x4000
    for i in range(rng.randint(80, 240)):
        instrs.append(Instruction(
            pc=pc + 4 * (i % 16), op=rng.choice(ops),
            dst=1 + i % 8, src1=1 + (i + 1) % 8,
            redundancy_key=rng.choice(keys),
        ))
    return Trace.from_instructions(instrs, name="corner-precompute")


_CORNER_BUILDERS: Sequence[Callable[[random.Random], Trace]] = (
    _deep_call_chain, _misfetch_storm, _store_burst, _precompute_stream,
)


def random_trace(rng: random.Random) -> Trace:
    """A synthetic-benchmark trace (fresh seed, random length) or one
    of the hand-built corner shapes."""
    if rng.random() < 0.35:
        return rng.choice(_CORNER_BUILDERS)(rng)
    name = rng.choice(sorted(PROFILES))
    length = rng.randint(200, 1500)
    return generate_trace(PROFILES[name], length,
                          seed=rng.randrange(1 << 30))


# -- comparison ---------------------------------------------------------------


@dataclass
class Divergence:
    """One (config, trace) pair on which two cores disagreed."""

    seed: int
    trace_name: str
    config: MachineConfig
    fields: List[str]
    expected: CoreStats
    actual: CoreStats
    warmup: bool = True
    prefetch_lines: int = 0
    precompute_keys: Optional[List[int]] = None

    def describe(self) -> str:
        parts = [
            f"seed={self.seed}", f"trace={self.trace_name}",
            f"fields={','.join(self.fields)}",
            f"warmup={self.warmup}",
        ]
        if self.prefetch_lines:
            parts.append(f"prefetch={self.prefetch_lines}")
        if self.precompute_keys is not None:
            parts.append(f"precompute={len(self.precompute_keys)} keys")
        return " ".join(parts)


def compare_cores(
    config: MachineConfig,
    trace: Trace,
    *,
    core: str = "batched",
    oracle: str = "reference",
    warmup: bool = True,
    precompute_table=None,
    prefetch_lines: int = 0,
) -> List[str]:
    """Names of the :class:`CoreStats` fields on which ``core``
    disagrees with ``oracle`` for this pair (empty = equivalent)."""
    expected = simulate(
        config, trace, precompute_table=precompute_table,
        warmup=warmup, prefetch_lines=prefetch_lines, core=oracle,
    )
    actual = simulate(
        config, trace, precompute_table=precompute_table,
        warmup=warmup, prefetch_lines=prefetch_lines, core=core,
    )
    return differing_fields(expected, actual)


def differential_sweep(
    pairs: int = 25,
    seed: int = 0,
    *,
    core: str = "batched",
    oracle: str = "reference",
    progress: Optional[Callable[[int, int, Optional[Divergence]], None]]
        = None,
) -> List[Divergence]:
    """Run ``pairs`` randomized (config, trace) comparisons.

    Deterministic in ``seed``.  Returns every divergence found (an
    empty list is the pass verdict).  ``progress(done, total, div)``
    is called after each pair, ``div`` non-None when it diverged.
    """
    rng = random.Random(seed)
    found: List[Divergence] = []
    for k in range(pairs):
        pair_seed = rng.randrange(1 << 30)
        pair_rng = random.Random(pair_seed)
        config = random_machine(pair_rng)
        trace = random_trace(pair_rng)
        warmup = pair_rng.random() < 0.7
        prefetch = pair_rng.choice((0, 0, 0, 1, 2))
        table = None
        keys = None
        if pair_rng.random() < 0.3:
            counts = trace.redundancy_counts()
            if counts:
                universe = sorted(counts)
                keys = pair_rng.sample(
                    universe, min(len(universe), 32)
                )
                table = frozenset(keys)
        expected = simulate(
            config, trace, precompute_table=table, warmup=warmup,
            prefetch_lines=prefetch, core=oracle,
        )
        actual = simulate(
            config, trace, precompute_table=table, warmup=warmup,
            prefetch_lines=prefetch, core=core,
        )
        diff = differing_fields(expected, actual)
        div = None
        if diff:
            div = Divergence(
                seed=pair_seed, trace_name=trace.name, config=config,
                fields=diff, expected=expected, actual=actual,
                warmup=warmup, prefetch_lines=prefetch,
                precompute_keys=keys,
            )
            found.append(div)
        if progress is not None:
            progress(k + 1, pairs, div)
    return found
