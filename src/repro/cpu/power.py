"""An activity-based energy proxy.

The paper's introduction motivates statistical screening for "other
important design metrics, such as the power consumption"; this module
supplies a simple, monotone, structure-aware energy estimate so the
same Plackett-Burman machinery can rank parameters by their effect on
energy instead of (or alongside) execution time.

The model is a classic activity-count proxy, not a calibrated power
model: each microarchitectural event costs a fixed dynamic energy,
storage-structure access costs scale with capacity and associativity
(a CACTI-flavoured ``(size)^0.5 * (assoc)^0.3`` shape), and a static
term charges every cycle in proportion to the total state the
configuration carries.  Units are arbitrary ("energy units"); only
comparisons between configurations are meaningful — which is all a PB
effect needs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from math import sqrt
from typing import Dict

from .params import MachineConfig
from .stats import CoreStats


@dataclass(frozen=True)
class EnergyModel:
    """Per-event energy coefficients (arbitrary units)."""

    int_op: float = 1.0
    fp_op: float = 2.0
    mult_div_op: float = 4.0
    mem_port_op: float = 1.0
    cache_access_base: float = 2.0      # at the reference geometry
    cache_reference_size: int = 16 * 1024
    tlb_access: float = 0.4
    dram_access: float = 120.0
    branch_recovery: float = 12.0       # per misprediction flush
    static_per_cycle_base: float = 2.0  # at the reference machine
    leakage_per_kb: float = 0.005       # static adder per KB of storage

    def cache_access_energy(self, size: int, assoc: int) -> float:
        """Access energy scaling with capacity and associativity."""
        ways = assoc if assoc else max(1, size // 4096)
        return (self.cache_access_base
                * sqrt(size / self.cache_reference_size)
                * ways ** 0.3)


#: The default coefficients.
DEFAULT_ENERGY_MODEL = EnergyModel()


@dataclass(frozen=True)
class EnergyBreakdown:
    """Energy of one run, split by component."""

    components: Dict[str, float] = field(default_factory=dict)

    @property
    def total(self) -> float:
        return sum(self.components.values())

    def dominant(self) -> str:
        return max(self.components, key=self.components.get)

    def summary(self) -> str:
        total = self.total
        lines = [f"total energy: {total:.0f} units"]
        for name, value in sorted(self.components.items(),
                                  key=lambda kv: -kv[1]):
            lines.append(f"  {name:12s} {value:12.0f} "
                         f"({value / total:6.1%})")
        return "\n".join(lines)


def _storage_kb(config: MachineConfig) -> float:
    """Total stateful storage of a configuration, in KB."""
    caches = config.l1i_size + config.l1d_size + config.l2_size
    tlbs = 16 * (config.itlb_entries + config.dtlb_entries)
    core = 64 * (config.rob_entries + config.lsq_entries
                 + config.ifq_entries) + 8 * config.btb_entries \
        + 8 * config.ras_entries
    return (caches + tlbs + core) / 1024.0


def estimate_energy(
    stats: CoreStats,
    config: MachineConfig,
    model: EnergyModel = DEFAULT_ENERGY_MODEL,
) -> EnergyBreakdown:
    """Estimate the energy of a finished run from its statistics."""
    ops = stats.unit_operations or {}
    dynamic_core = (
        model.int_op * ops.get("IntALU", 0)
        + model.fp_op * ops.get("FPALU", 0)
        + model.mult_div_op * (ops.get("IntMultDiv", 0)
                               + ops.get("FPMultDiv", 0))
        + model.mem_port_op * ops.get("MemPort", 0)
    )
    caches = (
        stats.l1i.accesses
        * model.cache_access_energy(config.l1i_size, config.l1i_assoc)
        + stats.l1d.accesses
        * model.cache_access_energy(config.l1d_size, config.l1d_assoc)
        + stats.l2.accesses
        * model.cache_access_energy(config.l2_size, config.l2_assoc)
    )
    tlbs = model.tlb_access * (stats.itlb.accesses + stats.dtlb.accesses)
    dram = model.dram_access * stats.l2.misses
    recovery = model.branch_recovery * stats.mispredictions
    static = stats.cycles * (
        model.static_per_cycle_base
        + model.leakage_per_kb * _storage_kb(config)
    )
    return EnergyBreakdown(components={
        "core": dynamic_core,
        "caches": caches,
        "tlbs": tlbs,
        "dram": dram,
        "recovery": recovery,
        "static": static,
    })


def energy_response(stats: CoreStats, config: MachineConfig) -> float:
    """Response function for energy-based PB experiments."""
    return estimate_energy(stats, config).total


def energy_delay_response(stats: CoreStats,
                          config: MachineConfig) -> float:
    """Energy-delay product: the classic efficiency metric."""
    return estimate_energy(stats, config).total * stats.cycles
