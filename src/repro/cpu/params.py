"""Machine configuration and the paper's 41-factor parameter space.

Tables 6-8 of the paper define, for each user-configurable processor
parameter, a *low* value just below the range found in commercial
processors and a *high* value just above it.  This module captures:

* :class:`MachineConfig` — a concrete, fully-specified machine, with
  the paper's linked parameters derived automatically (following-block
  memory latency, divide/sqrt issue intervals, shared TLB page size and
  latency);
* :data:`PARAMETER_SPACE` — the 41 varied factors in Table 9 order of
  appearance in Tables 6-8, each with its name, low and high values;
* :func:`config_from_levels` — the bridge from a Plackett-Burman design
  row (a ``{factor: +-1}`` mapping) to a runnable machine, honouring the
  gray-shaded linkage rules of Section 3 (e.g. LSQ entries expressed as
  a fraction of the reorder buffer so an 8-entry ROB never carries a
  64-entry LSQ).
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields, replace
from typing import Dict, List, Mapping, Tuple, Union

#: Marker for fully-associative structures.
FULLY_ASSOCIATIVE = 0

Level = int  # +1 or -1
Value = Union[int, float, str]

KIB = 1024
MIB = 1024 * KIB


@dataclass(frozen=True)
class MachineConfig:
    """A complete superscalar machine configuration.

    Defaults model a plausible mid-range 4-way machine (between the
    paper's low and high values).  Derived fields may be passed
    explicitly; when left at ``None`` they are computed from their
    governing parameter exactly as Tables 7-8 specify.
    """

    # -- processor core (Table 6) -------------------------------------------
    width: int = 4                      # decode/issue/commit width (fixed)
    ifq_entries: int = 16
    branch_predictor: str = "2level"    # 2level|bimodal|taken|tournament|perfect
    mispredict_penalty: int = 4
    ras_entries: int = 16
    btb_entries: int = 128
    btb_assoc: int = 4                  # FULLY_ASSOCIATIVE (0) allowed
    speculative_update: str = "commit"  # commit | decode
    rob_entries: int = 32
    lsq_entries: int = 16
    memory_ports: int = 2

    # -- functional units (Table 7) ------------------------------------------
    int_alus: int = 2
    int_alu_latency: int = 1
    int_alu_interval: int = 1
    fp_alus: int = 2
    fp_alu_latency: int = 2
    fp_alu_interval: int = 1
    int_mult_div_units: int = 1
    int_mult_latency: int = 3
    int_mult_interval: int = 1
    int_div_latency: int = 20
    int_div_interval: int = None        # = int_div_latency
    fp_mult_div_units: int = 1
    fp_mult_latency: int = 4
    fp_mult_interval: int = None        # = fp_mult_latency
    fp_div_latency: int = 12
    fp_div_interval: int = None         # = fp_div_latency
    fp_sqrt_latency: int = 24
    fp_sqrt_interval: int = None        # = fp_sqrt_latency

    # -- memory hierarchy (Table 8) -------------------------------------------
    l1i_size: int = 16 * KIB
    l1i_assoc: int = 2
    l1i_block: int = 32
    l1i_latency: int = 1
    l1d_size: int = 16 * KIB
    l1d_assoc: int = 4
    l1d_block: int = 32
    l1d_latency: int = 2
    l2_size: int = 1 * MIB
    l2_assoc: int = 4
    l2_block: int = 64
    l2_latency: int = 12
    replacement_policy: str = "lru"     # lru | fifo | random
    mem_latency_first: int = 100
    mem_latency_following: int = None   # = max(1, round(0.02 * first))
    mem_bandwidth: int = 8              # bytes per following-chunk transfer
    itlb_entries: int = 64
    itlb_page_size: int = 4 * KIB
    itlb_assoc: int = 4
    itlb_latency: int = 40
    dtlb_entries: int = 64
    dtlb_page_size: int = None          # = itlb_page_size
    dtlb_assoc: int = 4
    dtlb_latency: int = None            # = itlb_latency

    def __post_init__(self):
        derive = {
            "int_div_interval": self.int_div_latency,
            "fp_mult_interval": self.fp_mult_latency,
            "fp_div_interval": self.fp_div_latency,
            "fp_sqrt_interval": self.fp_sqrt_latency,
            "mem_latency_following": max(
                1, round(0.02 * self.mem_latency_first)
            ),
            "dtlb_page_size": self.itlb_page_size,
            "dtlb_latency": self.itlb_latency,
        }
        for name, value in derive.items():
            if getattr(self, name) is None:
                object.__setattr__(self, name, value)
        self._validate()

    def _validate(self) -> None:
        if self.width < 1:
            raise ValueError("width must be positive")
        if self.lsq_entries > self.rob_entries:
            raise ValueError(
                "LSQ cannot be larger than the reorder buffer (Section 3): "
                f"lsq={self.lsq_entries} rob={self.rob_entries}"
            )
        if self.branch_predictor not in (
            "2level", "bimodal", "taken", "tournament", "perfect"
        ):
            raise ValueError(f"unknown predictor {self.branch_predictor!r}")
        if self.speculative_update not in ("commit", "decode"):
            raise ValueError(
                f"unknown speculative update point {self.speculative_update!r}"
            )
        if self.replacement_policy not in ("lru", "fifo", "random"):
            raise ValueError(
                f"unknown replacement policy {self.replacement_policy!r}"
            )
        for name in (
            "ifq_entries", "rob_entries", "lsq_entries", "memory_ports",
            "ras_entries", "btb_entries", "int_alus", "fp_alus",
            "int_mult_div_units", "fp_mult_div_units", "mem_bandwidth",
            "itlb_entries", "dtlb_entries",
        ):
            if getattr(self, name) < 1:
                raise ValueError(f"{name} must be at least 1")
        for prefix in ("l1i", "l1d", "l2"):
            size = getattr(self, f"{prefix}_size")
            block = getattr(self, f"{prefix}_block")
            assoc = getattr(self, f"{prefix}_assoc")
            if size % block:
                raise ValueError(f"{prefix} size not a multiple of block size")
            n_blocks = size // block
            if assoc != FULLY_ASSOCIATIVE and n_blocks % assoc:
                raise ValueError(f"{prefix} blocks not divisible by assoc")

    def evolve(self, **changes) -> "MachineConfig":
        """A copy with fields replaced (derived fields recomputed when
        their governing parameter changes and they are not overridden).
        """
        governed = {
            "int_div_latency": "int_div_interval",
            "fp_mult_latency": "fp_mult_interval",
            "fp_div_latency": "fp_div_interval",
            "fp_sqrt_latency": "fp_sqrt_interval",
            "mem_latency_first": "mem_latency_following",
            "itlb_page_size": "dtlb_page_size",
            "itlb_latency": "dtlb_latency",
        }
        for governor, derived in governed.items():
            if governor in changes and derived not in changes:
                changes[derived] = None  # force recomputation
        return replace(self, **changes)


#: The default baseline machine.
DEFAULT_CONFIG = MachineConfig()


@dataclass(frozen=True)
class ParameterSpec:
    """One varied factor: paper name, low/high values, config binding.

    ``field`` is either a :class:`MachineConfig` field name or one of
    the special keys handled by :func:`config_from_levels`
    (``"lsq_ratio"``).
    """

    name: str
    field: str
    low: Value
    high: Value

    def value(self, level: Level) -> Value:
        if level == 1:
            return self.high
        if level == -1:
            return self.low
        raise ValueError(f"level must be +1 or -1, got {level}")


#: The 41 varied parameters of Tables 6-8, in table order.  Names match
#: the paper's Table 9 rows.
PARAMETER_SPACE: Tuple[ParameterSpec, ...] = (
    # Table 6: processor core
    ParameterSpec("Instruction Fetch Queue Entries", "ifq_entries", 4, 32),
    ParameterSpec("BPred Type", "branch_predictor", "2level", "perfect"),
    ParameterSpec("BPred Misprediction Penalty", "mispredict_penalty", 10, 2),
    ParameterSpec("Return Address Stack Entries", "ras_entries", 4, 64),
    ParameterSpec("BTB Entries", "btb_entries", 16, 512),
    ParameterSpec("BTB Associativity", "btb_assoc", 2, FULLY_ASSOCIATIVE),
    ParameterSpec("Speculative Branch Update", "speculative_update",
                  "commit", "decode"),
    ParameterSpec("Reorder Buffer Entries", "rob_entries", 8, 64),
    ParameterSpec("LSQ Entries", "lsq_ratio", 0.25, 1.0),
    ParameterSpec("Memory Ports", "memory_ports", 1, 4),
    # Table 7: functional units
    ParameterSpec("Int ALUs", "int_alus", 1, 4),
    ParameterSpec("Int ALU Latencies", "int_alu_latency", 2, 1),
    ParameterSpec("FP ALUs", "fp_alus", 1, 4),
    ParameterSpec("FP ALU Latencies", "fp_alu_latency", 5, 1),
    ParameterSpec("Int Mult/Div", "int_mult_div_units", 1, 4),
    ParameterSpec("Int Multiply Latency", "int_mult_latency", 15, 2),
    ParameterSpec("Int Divide Latency", "int_div_latency", 80, 10),
    ParameterSpec("FP Mult/Div", "fp_mult_div_units", 1, 4),
    ParameterSpec("FP Multiply Latency", "fp_mult_latency", 5, 2),
    ParameterSpec("FP Divide Latency", "fp_div_latency", 35, 10),
    ParameterSpec("FP Square Root Latency", "fp_sqrt_latency", 35, 15),
    # Table 8: memory hierarchy
    ParameterSpec("L1 I-Cache Size", "l1i_size", 4 * KIB, 128 * KIB),
    ParameterSpec("L1 I-Cache Associativity", "l1i_assoc", 1, 8),
    ParameterSpec("L1 I-Cache Block Size", "l1i_block", 16, 64),
    ParameterSpec("L1 I-Cache Latency", "l1i_latency", 4, 1),
    ParameterSpec("L1 D-Cache Size", "l1d_size", 4 * KIB, 128 * KIB),
    ParameterSpec("L1 D-Cache Associativity", "l1d_assoc", 1, 8),
    ParameterSpec("L1 D-Cache Block Size", "l1d_block", 16, 64),
    ParameterSpec("L1 D-Cache Latency", "l1d_latency", 4, 1),
    ParameterSpec("L2 Cache Size", "l2_size", 256 * KIB, 8192 * KIB),
    ParameterSpec("L2 Cache Associativity", "l2_assoc", 1, 8),
    ParameterSpec("L2 Cache Block Size", "l2_block", 64, 256),
    ParameterSpec("L2 Cache Latency", "l2_latency", 20, 5),
    ParameterSpec("Memory Latency First", "mem_latency_first", 200, 50),
    ParameterSpec("Memory Bandwidth", "mem_bandwidth", 4, 32),
    ParameterSpec("I-TLB Size", "itlb_entries", 32, 256),
    ParameterSpec("I-TLB Page Size", "itlb_page_size", 4 * KIB, 4096 * KIB),
    ParameterSpec("I-TLB Associativity", "itlb_assoc", 2, FULLY_ASSOCIATIVE),
    ParameterSpec("I-TLB Latency", "itlb_latency", 80, 30),
    ParameterSpec("D-TLB Size", "dtlb_entries", 32, 256),
    ParameterSpec("D-TLB Associativity", "dtlb_assoc", 2, FULLY_ASSOCIATIVE),
)

#: Factor names in design-column order.
PARAMETER_NAMES: Tuple[str, ...] = tuple(p.name for p in PARAMETER_SPACE)

_SPEC_BY_NAME: Dict[str, ParameterSpec] = {p.name: p for p in PARAMETER_SPACE}


def parameter_spec(name: str) -> ParameterSpec:
    """Look up one factor by its paper (Table 9) name."""
    try:
        return _SPEC_BY_NAME[name]
    except KeyError:
        raise KeyError(f"unknown parameter {name!r}") from None


def config_from_levels(
    levels: Mapping[str, Level],
    base: MachineConfig = DEFAULT_CONFIG,
) -> MachineConfig:
    """Build a machine from a design row of ``{factor name: +-1}``.

    Unknown names (e.g. ``Dummy Factor #1``) are ignored — by
    construction dummy columns must not influence the machine.  Factors
    absent from ``levels`` keep the ``base`` value.  The linkage rules
    of Section 3 are applied: the LSQ factor is a fraction of whatever
    ROB size this row selects, and derived latencies/intervals follow
    their governing parameter.
    """
    changes: Dict[str, Value] = {}
    lsq_ratio = None
    for name, level in levels.items():
        spec = _SPEC_BY_NAME.get(name)
        if spec is None:
            continue  # dummy factor
        value = spec.value(level)
        if spec.field == "lsq_ratio":
            lsq_ratio = float(value)
        else:
            changes[spec.field] = value
    rob = changes.get("rob_entries", base.rob_entries)
    if lsq_ratio is not None:
        changes["lsq_entries"] = max(1, int(round(lsq_ratio * rob)))
    elif base.lsq_entries > rob:
        changes["lsq_entries"] = rob
    return base.evolve(**changes)


def config_field_names() -> List[str]:
    """All MachineConfig field names (for introspection/reporting)."""
    return [f.name for f in fields(MachineConfig)]
