"""The superscalar processor simulator substrate.

A cycle-level, trace-driven out-of-order machine exposing every
parameter the paper varies (Tables 6-8).  Public surface:

* :class:`MachineConfig` / :data:`PARAMETER_SPACE` /
  :func:`config_from_levels` — machine description and the bridge from
  Plackett-Burman levels to concrete machines;
* :func:`simulate` / :class:`Pipeline` / :class:`CoreStats` — running
  traces and reading results;
* :func:`build_precompute_table` — the instruction-precomputation
  enhancement of Section 4.3;
* component models (:mod:`~repro.cpu.branch`, :mod:`~repro.cpu.cache`,
  :mod:`~repro.cpu.memory`, :mod:`~repro.cpu.funits`) usable on their
  own in tests and teaching examples.
"""

from .isa import (
    COMPUTE_CLASSES,
    NO_REG,
    NO_VALUE,
    BranchKind,
    Instruction,
    OpClass,
)
from .params import (
    DEFAULT_CONFIG,
    FULLY_ASSOCIATIVE,
    KIB,
    MIB,
    MachineConfig,
    PARAMETER_NAMES,
    PARAMETER_SPACE,
    ParameterSpec,
    config_from_levels,
    parameter_spec,
)
from .pipeline import (
    HANG_CYCLES,
    SIMULATOR_CORES,
    SIMULATOR_VERSION,
    Pipeline,
    SimulationError,
    simulate,
)
from .power import (
    DEFAULT_ENERGY_MODEL,
    EnergyBreakdown,
    EnergyModel,
    energy_delay_response,
    energy_response,
    estimate_energy,
)
from .precompute import (
    PAPER_TABLE_ENTRIES,
    build_precompute_table,
    coverage,
)
from .stats import CacheSnapshot, CoreStats

__all__ = [
    "BranchKind",
    "CacheSnapshot",
    "COMPUTE_CLASSES",
    "CoreStats",
    "DEFAULT_CONFIG",
    "DEFAULT_ENERGY_MODEL",
    "EnergyBreakdown",
    "EnergyModel",
    "energy_delay_response",
    "energy_response",
    "estimate_energy",
    "FULLY_ASSOCIATIVE",
    "HANG_CYCLES",
    "Instruction",
    "KIB",
    "MIB",
    "MachineConfig",
    "NO_REG",
    "NO_VALUE",
    "OpClass",
    "PAPER_TABLE_ENTRIES",
    "PARAMETER_NAMES",
    "PARAMETER_SPACE",
    "ParameterSpec",
    "Pipeline",
    "SIMULATOR_CORES",
    "SIMULATOR_VERSION",
    "SimulationError",
    "build_precompute_table",
    "config_from_levels",
    "coverage",
    "parameter_spec",
    "simulate",
]
