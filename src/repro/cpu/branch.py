"""Branch prediction: direction predictors, BTB, and return-address stack.

Table 6 varies four things about the front end's control-flow
speculation, all modelled here:

* the direction predictor ("BPred Type": a 2-level adaptive predictor
  at the low setting, perfect prediction at the high setting — perfect
  is realized in the pipeline by never charging a misprediction);
* when the predictor's global history is updated ("Speculative Branch
  Update": at commit, i.e. delayed and possibly stale, or speculatively
  at decode with repair on misprediction);
* the branch target buffer size and associativity — a taken branch
  whose target misses in the BTB cannot redirect fetch and costs a
  misfetch penalty;
* the return address stack depth — returns predict their target by
  popping the RAS; a shallow stack is corrupted by deep call chains.
"""

from __future__ import annotations

from typing import List, Optional


class TwoBitCounterTable:
    """A table of saturating 2-bit counters (initialized weakly taken)."""

    def __init__(self, n_entries: int):
        if n_entries < 1:
            raise ValueError("counter table needs at least one entry")
        self._counters = bytearray([2] * n_entries)
        self._mask = n_entries - 1
        if n_entries & self._mask:
            raise ValueError("counter table size must be a power of two")

    def predict(self, index: int) -> bool:
        return self._counters[index & self._mask] >= 2

    def update(self, index: int, taken: bool) -> None:
        i = index & self._mask
        c = self._counters[i]
        if taken:
            if c < 3:
                self._counters[i] = c + 1
        elif c > 0:
            self._counters[i] = c - 1


class TwoLevelPredictor:
    """A gshare-style 2-level adaptive predictor.

    A global history register of ``history_bits`` outcomes is XORed
    with the branch PC to index a pattern history table of 2-bit
    counters.  ``speculative_update="decode"`` shifts the *predicted*
    outcome into the history immediately (with repair on
    misprediction); ``"commit"`` defers the history update until the
    branch commits, so closely-spaced branches see stale history.
    """

    def __init__(
        self,
        history_bits: int = 4,
        table_bits: int = 10,
        speculative_update: str = "commit",
    ):
        if speculative_update not in ("commit", "decode"):
            raise ValueError(f"bad update point {speculative_update!r}")
        self._table = TwoBitCounterTable(1 << table_bits)
        self._history_mask = (1 << history_bits) - 1
        self._history = 0
        self._speculative = speculative_update == "decode"

    def _index(self, pc: int) -> int:
        return (pc >> 2) ^ self._history

    def predict(self, pc: int) -> bool:
        """Predict the branch at ``pc``; speculatively shift history."""
        prediction = self._table.predict(self._index(pc))
        if self._speculative:
            self._push_history(prediction)
        return prediction

    def update(self, pc: int, taken: bool, history_at_predict: int) -> None:
        """Train with the actual outcome when the branch resolves.

        ``history_at_predict`` is the value of :attr:`history` captured
        when :meth:`predict` ran, so the counter trained is the one that
        produced the prediction.
        """
        self._table.update((pc >> 2) ^ history_at_predict, taken)
        if not self._speculative:
            self._push_history(taken)

    def repair(self, history_at_predict: int, taken: bool) -> None:
        """Rewind speculative history after a misprediction."""
        if self._speculative:
            self._history = ((history_at_predict << 1) | int(taken)) \
                & self._history_mask

    @property
    def history(self) -> int:
        return self._history

    def _push_history(self, taken: bool) -> None:
        self._history = ((self._history << 1) | int(taken)) \
            & self._history_mask


class BimodalPredictor:
    """PC-indexed 2-bit counters, no history (a simpler comparison point)."""

    def __init__(self, table_bits: int = 11):
        self._table = TwoBitCounterTable(1 << table_bits)

    def predict(self, pc: int) -> bool:
        return self._table.predict(pc >> 2)

    def update(self, pc: int, taken: bool, history_at_predict: int = 0) -> None:
        self._table.update(pc >> 2, taken)

    def repair(self, history_at_predict: int, taken: bool) -> None:
        pass

    @property
    def history(self) -> int:
        return 0


class StaticTakenPredictor:
    """Always predicts taken; the weakest non-trivial baseline."""

    def predict(self, pc: int) -> bool:
        return True

    def update(self, pc: int, taken: bool, history_at_predict: int = 0) -> None:
        pass

    def repair(self, history_at_predict: int, taken: bool) -> None:
        pass

    @property
    def history(self) -> int:
        return 0


class TournamentPredictor:
    """A McFarling-style tournament of bimodal and 2-level predictors.

    A chooser table of 2-bit counters picks, per branch, whichever
    component has been more accurate.  Not used by the paper's Table 6
    levels (low = 2-level, high = perfect) but provided for ablation
    studies of the "BPred Type" axis.
    """

    def __init__(
        self,
        history_bits: int = 4,
        table_bits: int = 10,
        speculative_update: str = "commit",
    ):
        self._gshare = TwoLevelPredictor(
            history_bits, table_bits, speculative_update
        )
        self._bimodal = BimodalPredictor(table_bits)
        self._chooser = TwoBitCounterTable(1 << table_bits)
        self._last_components = {}

    def predict(self, pc: int) -> bool:
        g = self._gshare.predict(pc)
        b = self._bimodal.predict(pc)
        use_gshare = self._chooser.predict(pc >> 2)
        self._last_components[pc] = (g, b)
        return g if use_gshare else b

    def update(self, pc: int, taken: bool, history_at_predict: int) -> None:
        g, b = self._last_components.pop(pc, (taken, taken))
        self._gshare.update(pc, taken, history_at_predict)
        self._bimodal.update(pc, taken)
        if g != b:
            # Train the chooser toward the component that was right.
            self._chooser.update(pc >> 2, taken == g)

    def repair(self, history_at_predict: int, taken: bool) -> None:
        self._gshare.repair(history_at_predict, taken)

    @property
    def history(self) -> int:
        return self._gshare.history


class BranchTargetBuffer:
    """Set-associative PC -> target cache with LRU replacement.

    ``assoc=0`` (FULLY_ASSOCIATIVE) makes the whole structure one set.
    """

    def __init__(self, n_entries: int, assoc: int):
        if n_entries < 1:
            raise ValueError("BTB needs at least one entry")
        if assoc == 0 or assoc >= n_entries:
            assoc = n_entries
        if n_entries % assoc:
            raise ValueError("BTB entries must be divisible by associativity")
        self._n_sets = n_entries // assoc
        self._assoc = assoc
        # Each set: list of (pc, target), most recently used first.
        self._sets: List[List[tuple]] = [[] for _ in range(self._n_sets)]

    def _set_for(self, pc: int) -> List[tuple]:
        return self._sets[(pc >> 2) % self._n_sets]

    def lookup(self, pc: int) -> Optional[int]:
        """Return the cached target for ``pc`` or None on a BTB miss."""
        entries = self._set_for(pc)
        for i, (tag, target) in enumerate(entries):
            if tag == pc:
                if i:
                    entries.insert(0, entries.pop(i))
                return target
        return None

    def insert(self, pc: int, target: int) -> None:
        entries = self._set_for(pc)
        for i, (tag, _) in enumerate(entries):
            if tag == pc:
                entries.pop(i)
                break
        entries.insert(0, (pc, target))
        if len(entries) > self._assoc:
            entries.pop()


class ReturnAddressStack:
    """A fixed-depth, circular return-address stack.

    Pushes beyond the capacity wrap around and overwrite the oldest
    entries — exactly the corruption that makes a 4-entry RAS worse
    than a 64-entry one on call-heavy code.  Pops always produce a
    prediction, like the hardware structure (SimpleScalar's
    ``retstack``): a pop past the live entries walks the ring into
    stale slots, predicting whatever address last occupied them (zero
    for never-written slots).  An underflowed RAS therefore degrades
    into stale-but-occasionally-right predictions rather than a
    guaranteed miss — the old always-``None`` behaviour silently
    mispredicted every deep return even when the wrapped slot still
    held the correct address.
    """

    def __init__(self, depth: int):
        if depth < 1:
            raise ValueError("RAS needs at least one entry")
        self._entries = [0] * depth
        self._depth = depth
        self._top = 0          # index of next push slot
        self._occupancy = 0    # how many live entries (<= depth)

    def push(self, address: int) -> None:
        self._entries[self._top] = address
        self._top = (self._top + 1) % self._depth
        self._occupancy = min(self._occupancy + 1, self._depth)

    def pop(self) -> int:
        """Pop the predicted return address (possibly a stale slot)."""
        self._top = (self._top - 1) % self._depth
        if self._occupancy:
            self._occupancy -= 1
        return self._entries[self._top]

    def __len__(self) -> int:
        return self._occupancy


def make_direction_predictor(kind: str, speculative_update: str):
    """Factory for the predictor kinds named in :class:`MachineConfig`.

    ``"perfect"`` returns None — the pipeline short-circuits prediction
    entirely for a perfect front end.
    """
    if kind == "perfect":
        return None
    if kind == "2level":
        return TwoLevelPredictor(speculative_update=speculative_update)
    if kind == "bimodal":
        return BimodalPredictor()
    if kind == "taken":
        return StaticTakenPredictor()
    if kind == "tournament":
        return TournamentPredictor(speculative_update=speculative_update)
    raise ValueError(f"unknown predictor kind {kind!r}")
