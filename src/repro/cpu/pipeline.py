"""The out-of-order superscalar pipeline.

A cycle-level model of a SimpleScalar-style machine with the five
classic stages, each bounded by the Table 6 resources:

* **fetch** — up to ``width`` instructions per cycle into the IFQ,
  breaking at taken branches; I-TLB + L1 I-cache timing on each new
  block; direction prediction, BTB target lookup and RAS push/pop
  happen here, and a mispredicted (or misfetched) branch stalls fetch
  until it resolves plus the misprediction penalty;
* **dispatch** — up to ``width`` per cycle from the IFQ into the
  reorder buffer (and LSQ for memory ops), building register and
  memory dependences;
* **issue** — up to ``width`` ready instructions per cycle to free
  functional units (Table 7 latencies/intervals), loads additionally
  needing a memory port and paying D-TLB + D-cache time;
* **writeback** — completed results wake dependents; branches resolve;
* **commit** — up to ``width`` per cycle in order; stores write the
  cache; the branch predictor trains.

Stages are evaluated oldest-first within a cycle (commit, writeback,
issue, dispatch, fetch) so information flows one stage per cycle.

The *instruction precomputation* enhancement (paper Section 4.3) hooks
in at issue: a compute instruction whose redundancy key is in the
precomputation table completes in one cycle without occupying a
functional unit.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional, Set

from repro.guard.errors import SimulationHang

from .branch import (
    BranchTargetBuffer,
    ReturnAddressStack,
    make_direction_predictor,
)
from .cache import MemoryHierarchy
from .funits import FunctionalUnitPool
from .isa import COMPUTE_CLASSES, NO_VALUE, BranchKind, OpClass
from .params import MachineConfig
from .stats import CacheSnapshot, CoreStats

#: Version tag for the timing model.  Bump whenever a change alters the
#: cycle counts produced for an identical (config, trace) pair — the
#: execution engine's result cache keys on it, so stale measurements
#: from an older model are never reused.
#:
#: * ``"2"`` — differential-equivalence bugfix sweep (see
#:   CHANGELOG.md): circular RAS pops instead of ``None`` on
#:   underflow, the BTB misfetch bubble stalls the documented
#:   ``_MISFETCH_BUBBLE`` cycles (was one short), committing stores
#:   acquire a memory port (commit stops when none is free), and
#:   predictor history is repaired after mispredictions during
#:   functional warm-up.  Stall *attribution* also changed (front-end
#:   stalls only count when the IFQ has room), which alters
#:   ``stall_cycles`` but not timing.
#: * ``"1"`` — original timing model.
SIMULATOR_VERSION = "2"

_WAITING = 0
_ISSUED = 1
_DONE = 2

_NEVER = 1 << 60  # sentinel for "stalled until further notice"

#: Default retirement-progress watchdog threshold: a simulation that
#: commits nothing for this many consecutive cycles is declared hung
#: (:class:`~repro.guard.errors.SimulationHang`).  The longest
#: *legitimate* commit gap is bounded by draining a full ROB through
#: the slowest dependence chain — memory latencies plus FU intervals,
#: a few thousand cycles on any Table 6-8 configuration — so fifty
#: thousand cycles of silence is diagnostic, not conservative.  The
#: cycle-budget guard (``max_cycles``) still backstops pathological
#: configurations that commit one instruction per epoch.
HANG_CYCLES = 50_000

#: Cycles lost when a predicted-taken branch misses the BTB and the
#: target must be recomputed at decode.
_MISFETCH_BUBBLE = 3

_LOAD = int(OpClass.LOAD)
_STORE = int(OpClass.STORE)
_BRANCH = int(OpClass.BRANCH)
_COMPUTE = frozenset(int(c) for c in COMPUTE_CLASSES)

_KIND_COND = int(BranchKind.CONDITIONAL)
_KIND_CALL = int(BranchKind.CALL)
_KIND_RETURN = int(BranchKind.RETURN)
_KIND_JUMP = int(BranchKind.JUMP)


class _RobEntry:
    """One in-flight instruction."""

    __slots__ = (
        "seq", "op", "state", "deps", "dependents", "dispatch_cycle",
        "mem_addr", "dst", "pc", "is_branch", "taken", "target",
        "kind", "mispredicted", "history_snapshot", "precomputed",
    )

    def __init__(self, seq: int, op: int):
        self.seq = seq
        self.op = op
        self.state = _WAITING
        self.deps = 0
        self.dependents: List["_RobEntry"] = []
        self.dispatch_cycle = 0
        self.mem_addr = NO_VALUE
        self.dst = -1
        self.pc = 0
        self.is_branch = False
        self.taken = False
        self.target = NO_VALUE
        self.kind = 0
        self.mispredicted = False
        self.history_snapshot = 0
        self.precomputed = False


class SimulationError(RuntimeError):
    """Raised when a run exceeds its cycle budget (a model deadlock)."""


class Pipeline:
    """One configured machine, ready to execute traces.

    Parameters
    ----------
    config:
        The machine to model.
    precompute_table:
        Optional set of redundancy keys pre-loaded into the
        instruction-precomputation table (see
        :mod:`repro.cpu.precompute` for building it).  ``None`` disables
        the enhancement entirely.
    prefetch_lines:
        Next-N-line data prefetching on L1D misses (0 = off), the
        second modelled enhancement.
    """

    def __init__(
        self,
        config: MachineConfig,
        precompute_table: Optional[Set[int]] = None,
        prefetch_lines: int = 0,
    ):
        self.config = config
        self.hierarchy = MemoryHierarchy(config, prefetch_lines)
        self.funits = FunctionalUnitPool(config)
        self.predictor = make_direction_predictor(
            config.branch_predictor, config.speculative_update
        )
        self.btb = BranchTargetBuffer(config.btb_entries, config.btb_assoc)
        self.ras = ReturnAddressStack(config.ras_entries)
        self.precompute_table = precompute_table
        self.stats = CoreStats()

    # -- public API -----------------------------------------------------------

    def warm(self, trace) -> None:
        """Functionally warm caches, TLBs, BTB and predictor on a trace.

        Runs the reference stream through the memory structures and the
        branch predictor with no timing, then clears all counters —
        the standard warm-start discipline that keeps short-trace
        measurements from being dominated by compulsory misses.
        """
        hierarchy = self.hierarchy
        predictor = self.predictor
        block_size = self.config.l1i_block
        op_arr = trace.op.tolist()
        pc_arr = trace.pc.tolist()
        addr_arr = trace.mem_addr.tolist()
        kind_arr = trace.branch_kind.tolist()
        taken_arr = trace.taken.tolist()
        target_arr = trace.target.tolist()
        last_block = -1
        for i in range(len(trace)):
            pc = int(pc_arr[i])
            block = pc // block_size
            if block != last_block:
                hierarchy.instruction_fetch(pc)
                last_block = block
            op = int(op_arr[i])
            if op == _LOAD:
                hierarchy.data_access(int(addr_arr[i]), write=False)
            elif op == _STORE:
                hierarchy.data_access(int(addr_arr[i]), write=True)
            elif op == _BRANCH and int(kind_arr[i]) == _KIND_COND:
                taken = bool(taken_arr[i])
                if predictor is not None:
                    history = predictor.history
                    predicted = predictor.predict(pc)
                    predictor.update(pc, taken, history)
                    if predicted != taken:
                        # Mirror the timed pipeline: a speculative
                        # history update is repaired on misprediction,
                        # otherwise warm-up leaves the history register
                        # corrupted under speculative_update="decode".
                        predictor.repair(history, taken)
                if taken:
                    self.btb.insert(pc, int(target_arr[i]))
        hierarchy.reset_stats()

    def run(
        self,
        trace,
        max_cycles: Optional[int] = None,
        *,
        hang_cycles: Optional[int] = HANG_CYCLES,
        max_instructions: Optional[int] = None,
    ) -> CoreStats:
        """Execute a trace to completion and return its statistics.

        Three watchdogs guard the run (all diagnostic only — they can
        raise, never alter a successful run's numbers):

        * ``max_instructions`` — refuse a trace longer than the
          caller budgeted for, *before* burning cycles on it;
        * ``hang_cycles`` — raise
          :class:`~repro.guard.errors.SimulationHang` (with a
          pipeline/ROB/LSQ state dump) when no instruction retires
          for that many consecutive cycles; ``None`` disables;
        * ``max_cycles`` — the overall cycle budget
          (:class:`SimulationError`), defaulting to
          ``400 * len(trace) + 100_000``.

        A finished run's statistics are integrity-checked
        (:meth:`~repro.cpu.stats.CoreStats.validate`) before being
        returned, so NaN or overflowed derivations fail loudly here
        instead of skewing downstream effect tables.
        """
        n = len(trace)
        if max_instructions is not None and n > max_instructions:
            raise SimulationError(
                f"{trace.name}: trace has {n} instructions, over the "
                f"{max_instructions}-instruction budget"
            )
        if max_cycles is None:
            max_cycles = 400 * n + 100_000
        config = self.config
        stats = self.stats
        hierarchy = self.hierarchy
        funits = self.funits
        predictor = self.predictor
        perfect = predictor is None and config.branch_predictor == "perfect"

        # Plain Python lists index an order of magnitude faster than
        # numpy scalars in this per-instruction loop.
        op_arr = trace.op.tolist()
        pc_arr = trace.pc.tolist()
        src1_arr = trace.src1.tolist()
        src2_arr = trace.src2.tolist()
        dst_arr = trace.dst.tolist()
        addr_arr = trace.mem_addr.tolist()
        kind_arr = trace.branch_kind.tolist()
        taken_arr = trace.taken.tolist()
        target_arr = trace.target.tolist()
        key_arr = trace.redundancy_key.tolist()

        width = config.width
        ifq_capacity = config.ifq_entries
        rob_capacity = config.rob_entries
        lsq_capacity = config.lsq_entries
        penalty = config.mispredict_penalty
        redirect_extra = config.l1i_latency - 1
        block_size = config.l1i_block
        table = self.precompute_table

        # Fetch state
        fetch_index = 0
        fetch_stall_until = 0
        last_fetch_block = -1
        #: True while the pending fetch stall is misprediction
        #: recovery, False while it is I-side latency (cache/TLB time
        #: or a BTB misfetch bubble) — drives stall attribution only.
        fetch_block_mispredict = False

        # Stall-cycle attribution (observational; see
        # CoreStats.stall_cycles).  Plain local ints in the hot loop,
        # folded into the stats dict once at the end.
        stall_fetch = 0
        stall_mispredict = 0
        stall_rob = 0
        stall_lsq = 0
        stall_fu = 0
        #: per fetched-branch info awaiting dispatch: index -> (mispredicted, history)
        fetch_info: Dict[int, tuple] = {}
        ifq: deque = deque()  # (trace index, fetch cycle)

        # Backend state
        rob: deque = deque()
        lsq_occupancy = 0
        ready: List[_RobEntry] = []
        reg_producer: Dict[int, _RobEntry] = {}
        store_for_addr: Dict[int, _RobEntry] = {}
        completions: Dict[int, List[_RobEntry]] = {}
        committed = 0
        seq = 0

        cycle = 0
        last_commit_cycle = 0
        while committed < n:
            cycle += 1
            if cycle > max_cycles:
                raise SimulationError(
                    f"{trace.name}: exceeded {max_cycles} cycles with "
                    f"{committed}/{n} committed — model deadlock?"
                )
            if hang_cycles is not None \
                    and cycle - last_commit_cycle > hang_cycles:
                raise SimulationHang(
                    f"{trace.name}: no instruction retired for "
                    f"{cycle - last_commit_cycle} cycles "
                    f"({committed}/{n} committed at cycle {cycle}) — "
                    "livelocked simulation",
                    dump=self._hang_dump(
                        trace, cycle, committed, n, fetch_index,
                        ifq, rob, lsq_occupancy, ready, completions,
                        fetch_stall_until, fetch_block_mispredict,
                    ),
                )

            # ---- commit ------------------------------------------------------
            budget = width
            while budget and rob and rob[0].state == _DONE:
                entry = rob[0]
                if entry.op == _STORE \
                        and not funits.can_issue(_STORE, cycle):
                    # The store's cache write needs a memory port at
                    # commit; none free means commit stops here this
                    # cycle (sim-outorder's ruu_commit discipline).
                    break
                rob.popleft()
                budget -= 1
                committed += 1
                last_commit_cycle = cycle
                if entry.op == _STORE:
                    funits.issue(_STORE, cycle, count=False)
                    hierarchy.data_access(entry.mem_addr, write=True)
                    if store_for_addr.get(entry.mem_addr) is entry:
                        del store_for_addr[entry.mem_addr]
                    lsq_occupancy -= 1
                elif entry.op == _LOAD:
                    lsq_occupancy -= 1
                if entry.is_branch and predictor is not None \
                        and entry.kind == _KIND_COND:
                    predictor.update(
                        entry.pc, entry.taken, entry.history_snapshot
                    )

            # ---- writeback ---------------------------------------------------
            done_now = completions.pop(cycle, None)
            if done_now:
                for entry in done_now:
                    entry.state = _DONE
                    for dependent in entry.dependents:
                        dependent.deps -= 1
                        if dependent.deps == 0 and dependent.state == _WAITING:
                            ready.append(dependent)
                    entry.dependents = []
                    if entry.is_branch:
                        if entry.mispredicted:
                            fetch_stall_until = cycle + penalty + redirect_extra
                            fetch_block_mispredict = True
                            if predictor is not None \
                                    and entry.kind == _KIND_COND:
                                predictor.repair(
                                    entry.history_snapshot, entry.taken
                                )
                        if entry.kind == _KIND_COND and entry.taken:
                            self.btb.insert(entry.pc, entry.target)

            # ---- issue -------------------------------------------------------
            if ready:
                ready.sort(key=lambda e: e.seq)
                budget = width
                issued_any: List[int] = []
                fu_blocked = False
                for pos, entry in enumerate(ready):
                    if budget == 0:
                        break
                    if entry.dispatch_cycle >= cycle:
                        continue
                    if entry.precomputed:
                        latency = 1
                        stats.precompute_hits += 1
                    elif funits.can_issue(entry.op, cycle):
                        latency = funits.issue(entry.op, cycle)
                        if entry.op == _LOAD:
                            latency = max(
                                latency,
                                hierarchy.data_access(
                                    entry.mem_addr, write=False
                                ),
                            )
                    else:
                        fu_blocked = True
                        continue
                    entry.state = _ISSUED
                    when = cycle + latency
                    completions.setdefault(when, []).append(entry)
                    issued_any.append(pos)
                    budget -= 1
                for pos in reversed(issued_any):
                    ready.pop(pos)
                if fu_blocked and not issued_any:
                    # Ready work existed but every candidate waited on
                    # a busy functional unit: a fully FU-bound cycle.
                    stall_fu += 1

            # ---- dispatch ----------------------------------------------------
            budget = width
            while budget and ifq:
                index, fetched_at = ifq[0]
                if fetched_at >= cycle:
                    break
                op = int(op_arr[index])
                is_mem = op == _LOAD or op == _STORE
                if len(rob) >= rob_capacity:
                    stats.dispatch_stall_rob += 1
                    stall_rob += 1
                    break
                if is_mem and lsq_occupancy >= lsq_capacity:
                    stats.dispatch_stall_lsq += 1
                    stall_lsq += 1
                    break
                ifq.popleft()
                budget -= 1
                entry = _RobEntry(seq, op)
                seq += 1
                entry.dispatch_cycle = cycle
                entry.pc = int(pc_arr[index])
                if table is not None and op in _COMPUTE:
                    key = int(key_arr[index])
                    if key != NO_VALUE and key in table:
                        entry.precomputed = True
                # Register dependences.
                for reg in (int(src1_arr[index]), int(src2_arr[index])):
                    if reg >= 0:
                        producer = reg_producer.get(reg)
                        if producer is not None and producer.state != _DONE:
                            entry.deps += 1
                            producer.dependents.append(entry)
                dst = int(dst_arr[index])
                if dst >= 0:
                    reg_producer[dst] = entry
                # Memory dependences and LSQ occupancy.
                if is_mem:
                    addr = int(addr_arr[index])
                    entry.mem_addr = addr
                    lsq_occupancy += 1
                    if op == _LOAD:
                        store = store_for_addr.get(addr)
                        if store is not None and store.state != _DONE:
                            entry.deps += 1
                            store.dependents.append(entry)
                    else:
                        store_for_addr[addr] = entry
                # Branch bookkeeping (prediction happened at fetch).
                if op == _BRANCH:
                    entry.is_branch = True
                    entry.taken = bool(taken_arr[index])
                    entry.target = int(target_arr[index])
                    entry.kind = int(kind_arr[index])
                    info = fetch_info.pop(index, None)
                    if info is not None:
                        entry.mispredicted, entry.history_snapshot = info
                rob.append(entry)
                if entry.deps == 0:
                    ready.append(entry)

            # ---- fetch -------------------------------------------------------
            if fetch_index < n and fetch_stall_until > cycle:
                # Front end stalled this whole cycle; attribute it —
                # but only when fetch could otherwise have progressed
                # (a full IFQ means the stall is hidden behind a
                # back-end bottleneck, not a front-end one).
                if len(ifq) < ifq_capacity:
                    if fetch_block_mispredict:
                        stall_mispredict += 1
                    else:
                        stall_fetch += 1
            elif fetch_index < n:
                budget = width
                while budget and len(ifq) < ifq_capacity and fetch_index < n:
                    index = fetch_index
                    pc = int(pc_arr[index])
                    block = pc // block_size
                    if block != last_fetch_block:
                        latency = hierarchy.instruction_fetch(pc)
                        last_fetch_block = block
                        extra = latency - config.l1i_latency
                        if extra > 0:
                            fetch_stall_until = cycle + extra
                            fetch_block_mispredict = False
                            break
                    ifq.append((index, cycle))
                    fetch_index += 1
                    budget -= 1
                    if op_arr[index] == _BRANCH:
                        stop = self._fetch_branch(
                            index, pc, int(kind_arr[index]),
                            bool(taken_arr[index]), int(target_arr[index]),
                            perfect, fetch_info, pc_arr, n,
                        )
                        if stop == 2:  # mispredicted: wait for resolution
                            fetch_stall_until = _NEVER
                            fetch_block_mispredict = True
                            break
                        if stop == 3:  # BTB misfetch: decode redirect
                            # Stall the *next* _MISFETCH_BUBBLE whole
                            # cycles (the stall test is strict, so the
                            # +1 is what makes the bubble full-width).
                            fetch_stall_until = \
                                cycle + _MISFETCH_BUBBLE + 1
                            fetch_block_mispredict = False
                            break
                        if stop == 1:  # predicted taken: fetch group ends
                            break

            stats.rob_occupancy_sum += len(rob)

        stats.cycles = cycle
        stats.instructions = committed
        stats.stall_cycles = {
            "fetch": stall_fetch,
            "fu_busy": stall_fu,
            "lsq_full": stall_lsq,
            "mispredict": stall_mispredict,
            "rob_full": stall_rob,
        }
        self._snapshot_memory(stats)
        stats.unit_operations = funits.utilization()
        return stats.validate(trace.name)

    # -- helpers ---------------------------------------------------------------

    def _hang_dump(self, trace, cycle, committed, n, fetch_index,
                   ifq, rob, lsq_occupancy, ready, completions,
                   fetch_stall_until, fetch_block_mispredict) -> dict:
        """Machine-state snapshot attached to a :class:`SimulationHang`.

        Everything a post-mortem needs to localize a livelock without
        re-running: where fetch stopped, what the buffers hold, and
        the instruction blocking the head of the ROB.
        """
        dump = {
            "trace": trace.name,
            "cycle": cycle,
            "committed": committed,
            "instructions": n,
            "fetch_index": fetch_index,
            "fetch_stall_until": fetch_stall_until,
            "fetch_block_mispredict": fetch_block_mispredict,
            "ifq_occupancy": len(ifq),
            "rob_occupancy": len(rob),
            "lsq_occupancy": lsq_occupancy,
            "ready_instructions": len(ready),
            "pending_completions": sum(
                len(batch) for batch in completions.values()
            ),
        }
        if rob:
            head = rob[0]
            dump["rob_head"] = {
                "seq": head.seq,
                "op": int(head.op),
                "state": head.state,
                "unresolved_deps": head.deps,
                "pc": head.pc,
                "is_branch": head.is_branch,
                "precomputed": head.precomputed,
            }
        return dump

    def _fetch_branch(
        self, index, pc, kind, taken, target, perfect, fetch_info,
        pc_arr, n,
    ) -> int:
        """Predict one fetched branch.

        Returns 0 to continue fetching inline, 1 to end this cycle's
        fetch group (predicted-taken), 2 on a misprediction (fetch must
        wait for resolution plus the penalty), 3 on a BTB misfetch (a
        short decode-redirect bubble).  Records (mispredicted, history
        snapshot) for dispatch in ``fetch_info``.
        """
        stats = self.stats
        stats.branches += 1
        if perfect:
            fetch_info[index] = (False, 0)
            return 1 if taken else 0
        if kind == _KIND_COND:
            history = self.predictor.history
            predicted_taken = self.predictor.predict(pc)
            if predicted_taken != taken:
                stats.mispredictions += 1
                fetch_info[index] = (True, history)
                return 2
            if not taken:
                fetch_info[index] = (False, history)
                return 0
            # Correctly predicted taken: need the target from the BTB.
            # A miss is a *misfetch*: the target is recomputed at decode,
            # costing a short fixed bubble rather than the full
            # misprediction penalty (the branch direction was right).
            cached = self.btb.lookup(pc)
            if cached is None or cached != target:
                stats.btb_misfetches += 1
                fetch_info[index] = (False, history)
                return 3
            fetch_info[index] = (False, history)
            return 1
        if kind == _KIND_CALL:
            # Target is decoded from the instruction; push the return
            # address for the matching return.
            self.ras.push(pc + 4)
            fetch_info[index] = (False, 0)
            return 1
        if kind == _KIND_RETURN:
            predicted = self.ras.pop()
            if predicted != target:
                stats.mispredictions += 1
                stats.ras_mispredictions += 1
                fetch_info[index] = (True, 0)
                return 2
            fetch_info[index] = (False, 0)
            return 1
        # Direct unconditional jump: target known at decode.
        fetch_info[index] = (False, 0)
        return 1

    def _snapshot_memory(self, stats: CoreStats) -> None:
        h = self.hierarchy
        for name, unit in (
            ("l1i", h.l1i), ("l1d", h.l1d), ("l2", h.l2),
            ("itlb", h.itlb), ("dtlb", h.dtlb),
        ):
            s = unit.stats
            setattr(stats, name, CacheSnapshot(
                accesses=s.accesses, misses=s.misses,
                writebacks=getattr(s, "writebacks", 0),
            ))


#: The selectable simulator cores.  ``"batched"`` (the default) is the
#: structure-of-arrays core of :mod:`repro.cpu.batched`, running the
#: compiled kernel (:mod:`repro.cpu.native`) when a C toolchain is
#: available and the portable batched Python loop otherwise;
#: ``"batched-native"`` / ``"batched-python"`` force one or the other;
#: ``"reference"`` is the interpreted per-instruction model above —
#: the equivalence oracle.  All cores produce bit-identical
#: :class:`CoreStats` (enforced by :mod:`repro.cpu.equivalence`), so
#: the choice never enters a result-cache key beyond the normalized
#: family (see :func:`repro.exec.cache.task_key`).
SIMULATOR_CORES = ("batched", "batched-native", "batched-python",
                   "reference")


def simulate(
    config: MachineConfig,
    trace,
    precompute_table: Optional[Set[int]] = None,
    max_cycles: Optional[int] = None,
    warmup: bool = False,
    prefetch_lines: int = 0,
    hang_cycles: Optional[int] = HANG_CYCLES,
    max_instructions: Optional[int] = None,
    core: str = "batched",
) -> CoreStats:
    """Run one trace on a freshly-built machine; the main entry point.

    Every call builds a fresh machine, so results are deterministic
    functions of ``(config, trace, warmup)``.  With ``warmup=True`` the
    trace is first replayed functionally through the caches, TLBs, BTB
    and predictor (no timing), so the measurement reflects steady-state
    behaviour rather than compulsory misses — the discipline the
    experiment layer uses for every Plackett-Burman run.

    ``core`` picks the implementation (:data:`SIMULATOR_CORES`); every
    core is required to produce identical statistics, so this is a
    speed knob, not a model knob.

    ``hang_cycles`` and ``max_instructions`` are the watchdog knobs of
    :meth:`Pipeline.run`: a run that stops retiring raises
    :class:`~repro.guard.errors.SimulationHang` with a state dump, an
    oversized trace is refused up front, and a numerically broken
    result raises :class:`~repro.guard.errors.StatsInvalid` instead of
    polluting downstream rank sums.
    """
    if core not in SIMULATOR_CORES:
        raise ValueError(
            f"unknown simulator core {core!r}; pick one of "
            f"{', '.join(SIMULATOR_CORES)}"
        )
    if core in ("batched", "batched-native"):
        from .native import simulate_native

        stats = simulate_native(
            config, trace, precompute_table, max_cycles, warmup,
            prefetch_lines, hang_cycles, max_instructions,
            required=core == "batched-native",
        )
        if stats is not None:
            return stats
        # No toolchain (or disabled): fall through to the batched
        # Python loop, which is exactly equivalent.
    pipeline = Pipeline(config, precompute_table, prefetch_lines)
    if warmup:
        pipeline.warm(trace)
    if core == "reference":
        return pipeline.run(
            trace, max_cycles,
            hang_cycles=hang_cycles, max_instructions=max_instructions,
        )
    from .batched import run_batched

    return run_batched(
        pipeline, trace, max_cycles,
        hang_cycles=hang_cycles, max_instructions=max_instructions,
    )
