"""Set-associative caches and the cache hierarchy.

Table 8 varies size, associativity, block size and hit latency of
three caches (L1 I, L1 D, unified L2).  The model is a classic
write-back, write-allocate, set-associative cache with selectable
replacement (the paper fixes LRU; FIFO and random are provided for
ablation studies).  Timing is additive: a miss pays this level's
latency plus whatever the next level reports, down to main memory.

Only timing and tag state are modelled — there is no data array, which
is all a trace-driven timing study requires.
"""

from __future__ import annotations

import random
from typing import List, Optional

from .memory import MainMemory


class CacheStats:
    """Hit/miss counters for one cache level."""

    __slots__ = ("accesses", "misses", "writebacks")

    def __init__(self):
        self.accesses = 0
        self.misses = 0
        self.writebacks = 0

    @property
    def hits(self) -> int:
        return self.accesses - self.misses

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0

    def reset(self) -> None:
        self.accesses = 0
        self.misses = 0
        self.writebacks = 0


class Cache:
    """One level of a set-associative cache.

    Parameters
    ----------
    size, assoc, block_size:
        Geometry in bytes / ways.  ``assoc=0`` means fully associative.
    latency:
        Cycles charged on every access at this level (the hit latency;
        a miss additionally pays the lower levels).
    next_level:
        The structure a miss falls through to: another :class:`Cache`
        or a :class:`MainMemory`.
    replacement:
        ``"lru"`` (paper default), ``"fifo"``, or ``"random"``.
    """

    def __init__(
        self,
        size: int,
        assoc: int,
        block_size: int,
        latency: int,
        next_level,
        *,
        replacement: str = "lru",
        name: str = "cache",
        rng_seed: int = 12345,
    ):
        if size < 1 or block_size < 1 or size % block_size:
            raise ValueError("cache size must be a positive multiple of block")
        n_blocks = size // block_size
        if assoc == 0 or assoc >= n_blocks:
            assoc = n_blocks
        if n_blocks % assoc:
            raise ValueError("block count must be divisible by associativity")
        if replacement not in ("lru", "fifo", "random"):
            raise ValueError(f"unknown replacement policy {replacement!r}")
        self.name = name
        self.size = size
        self.assoc = assoc
        self.block_size = block_size
        self.latency = latency
        self.next_level = next_level
        self.replacement = replacement
        self.n_sets = n_blocks // assoc
        # Per set: list of [tag, dirty]; position 0 = MRU (for LRU) or
        # oldest-first (for FIFO).
        self._sets: List[List[list]] = [[] for _ in range(self.n_sets)]
        self._rng = random.Random(rng_seed)
        self.stats = CacheStats()

    # -- lookup helpers -------------------------------------------------------

    def _locate(self, addr: int):
        block = addr // self.block_size
        return self._sets[block % self.n_sets], block

    def contains(self, addr: int) -> bool:
        """True if the block holding ``addr`` is resident (no side effects)."""
        entries, tag = self._locate(addr)
        return any(e[0] == tag for e in entries)

    # -- the access path ------------------------------------------------------

    def access(self, addr: int, write: bool = False) -> int:
        """Access one address; return the total latency in cycles.

        A hit costs :attr:`latency`.  A miss additionally costs the
        next level's access for this block, allocates the block here,
        and may evict (write-back of dirty victims is buffered and adds
        no latency, as in SimpleScalar's default configuration).
        """
        self.stats.accesses += 1
        entries, tag = self._locate(addr)
        for i, entry in enumerate(entries):
            if entry[0] == tag:
                if write:
                    entry[1] = True
                if self.replacement == "lru" and i:
                    entries.insert(0, entries.pop(i))
                return self.latency
        # Miss: fetch the block from below.
        self.stats.misses += 1
        below = self._fetch_below(addr)
        self._allocate(entries, tag, write)
        return self.latency + below

    def _fetch_below(self, addr: int) -> int:
        if isinstance(self.next_level, MainMemory):
            return self.next_level.access(self.block_size)
        return self.next_level.access(addr, write=False)

    def _allocate(self, entries: List[list], tag: int, write: bool) -> None:
        if len(entries) >= self.assoc:
            if self.replacement == "random":
                victim = entries.pop(self._rng.randrange(len(entries)))
            else:
                victim = entries.pop()  # LRU/FIFO evict the tail
            if victim[1]:
                self.stats.writebacks += 1
        # New blocks enter at the head for every policy; FIFO differs
        # from LRU only in never promoting on a hit (see access()).
        entries.insert(0, [tag, write])

    def reset_stats(self) -> None:
        self.stats.reset()


class TLB:
    """A translation lookaside buffer (a cache of page translations).

    A hit is free (translation overlaps the cache access); a miss
    charges ``miss_latency`` cycles for the page walk, per Table 8's
    I-TLB/D-TLB latency rows.
    """

    def __init__(
        self,
        n_entries: int,
        page_size: int,
        assoc: int,
        miss_latency: int,
        *,
        name: str = "tlb",
    ):
        if n_entries < 1 or page_size < 1:
            raise ValueError("TLB needs positive entries and page size")
        if assoc == 0 or assoc >= n_entries:
            assoc = n_entries
        if n_entries % assoc:
            raise ValueError("TLB entries must be divisible by associativity")
        self.name = name
        self.n_entries = n_entries
        self.page_size = page_size
        self.assoc = assoc
        self.miss_latency = miss_latency
        self.n_sets = n_entries // assoc
        self._sets: List[List[int]] = [[] for _ in range(self.n_sets)]
        self.stats = CacheStats()

    def access(self, addr: int) -> int:
        """Translate ``addr``; return 0 on a hit, miss latency otherwise."""
        page = addr // self.page_size
        entries = self._sets[page % self.n_sets]
        self.stats.accesses += 1
        for i, tag in enumerate(entries):
            if tag == page:
                if i:
                    entries.insert(0, entries.pop(i))
                return 0
        self.stats.misses += 1
        entries.insert(0, page)
        if len(entries) > self.assoc:
            entries.pop()
        return self.miss_latency

    def reset_stats(self) -> None:
        self.stats.reset()


class MemoryHierarchy:
    """The full memory system of one machine: L1I, L1D, L2, TLBs, DRAM.

    ``prefetch_lines`` enables a simple next-N-line data prefetcher:
    on every demand L1D miss the following N blocks are brought in as
    well (their fill latency is assumed hidden).  This is the second
    *enhancement* the library models — the paper's Section 4.3 uses
    data prefetching as its motivating example of an enhancement whose
    rank signature an architect would want to read.
    """

    def __init__(self, config, prefetch_lines: int = 0) -> None:
        if prefetch_lines < 0:
            raise ValueError("prefetch_lines cannot be negative")
        self.prefetch_lines = prefetch_lines
        self.prefetches = 0
        self.memory = MainMemory(
            first_latency=config.mem_latency_first,
            following_latency=config.mem_latency_following,
            bandwidth=config.mem_bandwidth,
        )
        self.l2 = Cache(
            config.l2_size, config.l2_assoc, config.l2_block,
            config.l2_latency, self.memory,
            replacement=config.replacement_policy, name="L2",
        )
        self.l1i = Cache(
            config.l1i_size, config.l1i_assoc, config.l1i_block,
            config.l1i_latency, self.l2,
            replacement=config.replacement_policy, name="L1I",
        )
        self.l1d = Cache(
            config.l1d_size, config.l1d_assoc, config.l1d_block,
            config.l1d_latency, self.l2,
            replacement=config.replacement_policy, name="L1D",
        )
        self.itlb = TLB(
            config.itlb_entries, config.itlb_page_size,
            config.itlb_assoc, config.itlb_latency, name="ITLB",
        )
        self.dtlb = TLB(
            config.dtlb_entries, config.dtlb_page_size,
            config.dtlb_assoc, config.dtlb_latency, name="DTLB",
        )

    def instruction_fetch(self, pc: int) -> int:
        """Latency of fetching the block at ``pc`` (I-TLB then L1I)."""
        return self.itlb.access(pc) + self.l1i.access(pc)

    def data_access(self, addr: int, write: bool) -> int:
        """Latency of a load/store to ``addr`` (D-TLB then L1D).

        With prefetching enabled, a demand miss also pulls the next
        ``prefetch_lines`` blocks into the L1D (latency hidden).
        """
        misses_before = self.l1d.stats.misses
        latency = self.dtlb.access(addr) + self.l1d.access(addr, write=write)
        if self.prefetch_lines and self.l1d.stats.misses > misses_before:
            block = self.l1d.block_size
            demand_accesses = self.l1d.stats.accesses
            demand_misses = self.l1d.stats.misses
            for k in range(1, self.prefetch_lines + 1):
                self.l1d.access(addr + k * block, write=False)
                self.prefetches += 1
            # Prefetches must not pollute the demand hit/miss counters.
            self.l1d.stats.accesses = demand_accesses
            self.l1d.stats.misses = demand_misses
        return latency

    def reset_stats(self) -> None:
        for unit in (self.l1i, self.l1d, self.l2, self.itlb, self.dtlb):
            unit.reset_stats()
        self.prefetches = 0
