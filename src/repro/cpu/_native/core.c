/* Compiled batched simulator core.
 *
 * A C transcription of the batched structure-of-arrays cycle loop
 * (src/repro/cpu/batched.py) together with every stateful component
 * it drives: the cache/TLB hierarchy, main memory, the direction
 * predictors, BTB and return-address stack, and the functional-unit
 * pool.  The contract is *field-exact* equivalence with the Python
 * model — identical CoreStats counters, identical watchdog trip
 * cycles and state dumps — enforced by repro.cpu.equivalence.  Every
 * function below therefore names the Python method it mirrors; when
 * editing one side, edit the other.
 *
 * Two details are easy to get wrong:
 *
 * 1. Random replacement must reproduce CPython's random.Random(12345)
 *    exactly: MT19937 seeded via init_by_array([seed]), with
 *    randrange(n) implemented as _randbelow (draw bit_length(n) bits,
 *    retry while >= n).  Each cache owns one generator.
 *
 * 2. Writeback order: completions scheduled for the same cycle retire
 *    in issue order (Python appends to a per-cycle list), and two
 *    branches resolving together must apply their fetch-redirect in
 *    that order (last writer wins).  The calendar queue below keeps
 *    per-bucket FIFO order for this reason.
 *
 * Built by repro.cpu.native with any C99 toolchain; no dependencies
 * beyond libc.
 */

#include <stdint.h>
#include <stdlib.h>
#include <string.h>

/* -- configuration vector indices (keep in sync with native.py) ---------- */

enum {
    CFG_WIDTH = 0,
    CFG_IFQ_ENTRIES,
    CFG_ROB_ENTRIES,
    CFG_LSQ_ENTRIES,
    CFG_MISPREDICT_PENALTY,
    CFG_PRED_KIND,          /* 0 2level, 1 bimodal, 2 taken, 3 tournament,
                               4 perfect */
    CFG_SPECULATIVE,        /* speculative_update == "decode" */
    CFG_RAS_ENTRIES,
    CFG_BTB_ENTRIES,
    CFG_BTB_ASSOC,
    CFG_L1I_SIZE, CFG_L1I_ASSOC, CFG_L1I_BLOCK, CFG_L1I_LAT,
    CFG_L1D_SIZE, CFG_L1D_ASSOC, CFG_L1D_BLOCK, CFG_L1D_LAT,
    CFG_L2_SIZE, CFG_L2_ASSOC, CFG_L2_BLOCK, CFG_L2_LAT,
    CFG_REPLACEMENT,        /* 0 lru, 1 fifo, 2 random */
    CFG_MEM_FIRST, CFG_MEM_FOLLOWING, CFG_MEM_BANDWIDTH,
    CFG_ITLB_ENTRIES, CFG_ITLB_PAGE, CFG_ITLB_ASSOC, CFG_ITLB_LAT,
    CFG_DTLB_ENTRIES, CFG_DTLB_PAGE, CFG_DTLB_ASSOC, CFG_DTLB_LAT,
    CFG_PREFETCH_LINES,
    CFG_WARMUP,
    CFG_MAX_CYCLES,
    CFG_HANG_CYCLES,        /* -1 disables the hang watchdog */
    CFG_INT_ALUS, CFG_FP_ALUS, CFG_INT_MULT_DIV, CFG_FP_MULT_DIV,
    CFG_MEM_PORTS,
    CFG_RNG_SEED,
    CFG_N_FIELDS,
};

/* -- output vector indices (keep in sync with native.py) ----------------- */

enum {
    OUT_STATUS = 0,         /* 0 ok, 1 cycle budget, 2 hang, <0 internal */
    OUT_CYCLES,
    OUT_INSTRUCTIONS,
    OUT_BRANCHES,
    OUT_MISPREDICTIONS,
    OUT_BTB_MISFETCHES,
    OUT_RAS_MISPREDICTIONS,
    OUT_L1I_ACC, OUT_L1I_MISS, OUT_L1I_WB,
    OUT_L1D_ACC, OUT_L1D_MISS, OUT_L1D_WB,
    OUT_L2_ACC, OUT_L2_MISS, OUT_L2_WB,
    OUT_ITLB_ACC, OUT_ITLB_MISS,
    OUT_DTLB_ACC, OUT_DTLB_MISS,
    OUT_OPS_INT_ALU, OUT_OPS_FP_ALU, OUT_OPS_INT_MULT_DIV,
    OUT_OPS_FP_MULT_DIV, OUT_OPS_MEM_PORT,
    OUT_DISPATCH_STALL_ROB,
    OUT_DISPATCH_STALL_LSQ,
    OUT_ROB_OCCUPANCY_SUM,
    OUT_STALL_FETCH, OUT_STALL_FU, OUT_STALL_LSQ,
    OUT_STALL_MISPREDICT, OUT_STALL_ROB,
    OUT_PRECOMPUTE_HITS,
    /* watchdog diagnostics, valid when status != 0 */
    OUT_ERR_CYCLE,
    OUT_ERR_COMMITTED,
    OUT_ERR_LAST_COMMIT,
    OUT_ERR_FETCH_INDEX,
    OUT_ERR_FETCH_STALL_UNTIL,
    OUT_ERR_FETCH_BLOCK_MISPREDICT,
    OUT_ERR_IFQ_OCC,
    OUT_ERR_ROB_OCC,
    OUT_ERR_LSQ_OCC,
    OUT_ERR_READY,
    OUT_ERR_PENDING,
    OUT_ERR_HAS_HEAD,
    OUT_ERR_HEAD_SEQ,
    OUT_ERR_HEAD_OP,
    OUT_ERR_HEAD_STATE,
    OUT_ERR_HEAD_DEPS,
    OUT_ERR_HEAD_PC,
    OUT_ERR_HEAD_IS_BRANCH,
    OUT_ERR_HEAD_PRECOMPUTED,
    OUT_N_FIELDS,
};

/* OpClass / BranchKind values (repro.cpu.isa; asserted by native.py). */
#define OP_LOAD 7
#define OP_STORE 8
#define OP_BRANCH 9
#define N_OP_CLASSES 10

#define KIND_COND 1
#define KIND_CALL 2
#define KIND_RETURN 3
#define KIND_JUMP 4

#define STATE_WAITING 0
#define STATE_ISSUED 1
#define STATE_DONE 2

#define POLICY_LRU 0
#define POLICY_FIFO 1
#define POLICY_RANDOM 2

#define PRED_2LEVEL 0
#define PRED_BIMODAL 1
#define PRED_TAKEN 2
#define PRED_TOURNAMENT 3
#define PRED_PERFECT 4

#define NEVER (1LL << 60)
#define MISFETCH_BUBBLE 3

/* gshare/bimodal geometry (repro.cpu.branch defaults). */
#define GSHARE_HISTORY_BITS 4
#define GSHARE_TABLE_BITS 10
#define BIMODAL_TABLE_BITS 11
#define TOURNAMENT_TABLE_BITS 10

/* ========================================================================
 * MT19937 with CPython seeding semantics (random.Random(seed))
 * ======================================================================== */

#define MT_N 624
#define MT_M 397

typedef struct {
    uint32_t mt[MT_N];
    int mti;
} MT19937;

static void mt_init_genrand(MT19937 *m, uint32_t s) {
    m->mt[0] = s;
    for (m->mti = 1; m->mti < MT_N; m->mti++) {
        m->mt[m->mti] = 1812433253u
            * (m->mt[m->mti - 1] ^ (m->mt[m->mti - 1] >> 30))
            + (uint32_t)m->mti;
    }
}

static void mt_init_by_array(MT19937 *m, const uint32_t *key, int len) {
    int i = 1, j = 0, k;
    mt_init_genrand(m, 19650218u);
    k = (MT_N > len) ? MT_N : len;
    for (; k; k--) {
        m->mt[i] = (m->mt[i]
            ^ ((m->mt[i - 1] ^ (m->mt[i - 1] >> 30)) * 1664525u))
            + key[j] + (uint32_t)j;
        i++; j++;
        if (i >= MT_N) { m->mt[0] = m->mt[MT_N - 1]; i = 1; }
        if (j >= len) j = 0;
    }
    for (k = MT_N - 1; k; k--) {
        m->mt[i] = (m->mt[i]
            ^ ((m->mt[i - 1] ^ (m->mt[i - 1] >> 30)) * 1566083941u))
            - (uint32_t)i;
        i++;
        if (i >= MT_N) { m->mt[0] = m->mt[MT_N - 1]; i = 1; }
    }
    m->mt[0] = 0x80000000u;
}

static uint32_t mt_genrand(MT19937 *m) {
    uint32_t y;
    static const uint32_t mag01[2] = {0u, 0x9908b0dfu};
    if (m->mti >= MT_N) {
        int kk;
        for (kk = 0; kk < MT_N - MT_M; kk++) {
            y = (m->mt[kk] & 0x80000000u) | (m->mt[kk + 1] & 0x7fffffffu);
            m->mt[kk] = m->mt[kk + MT_M] ^ (y >> 1) ^ mag01[y & 1u];
        }
        for (; kk < MT_N - 1; kk++) {
            y = (m->mt[kk] & 0x80000000u) | (m->mt[kk + 1] & 0x7fffffffu);
            m->mt[kk] = m->mt[kk + (MT_M - MT_N)] ^ (y >> 1) ^ mag01[y & 1u];
        }
        y = (m->mt[MT_N - 1] & 0x80000000u) | (m->mt[0] & 0x7fffffffu);
        m->mt[MT_N - 1] = m->mt[MT_M - 1] ^ (y >> 1) ^ mag01[y & 1u];
        m->mti = 0;
    }
    y = m->mt[m->mti++];
    y ^= (y >> 11);
    y ^= (y << 7) & 0x9d2c5680u;
    y ^= (y << 15) & 0xefc60000u;
    y ^= (y >> 18);
    return y;
}

static void mt_seed(MT19937 *m, uint32_t seed) {
    /* random.Random(seed) for a non-negative int < 2**32 seeds the
     * generator with init_by_array([seed]). */
    mt_init_by_array(m, &seed, 1);
}

static int64_t mt_randbelow(MT19937 *m, int64_t n) {
    /* CPython Random._randbelow_with_getrandbits: draw bit_length(n)
     * bits, retry while the draw >= n. */
    int k = 0;
    int64_t t = n;
    while (t) { k++; t >>= 1; }
    for (;;) {
        uint32_t r = mt_genrand(m) >> (32 - k);
        if ((int64_t)r < n) return (int64_t)r;
    }
}

/* ========================================================================
 * Main memory (repro.cpu.memory.MainMemory)
 * ======================================================================== */

typedef struct {
    int64_t first_latency;
    int64_t following_latency;
    int64_t bandwidth;
} MainMemory;

static int64_t mem_access(const MainMemory *mem, int64_t n_bytes) {
    int64_t chunks = (n_bytes + mem->bandwidth - 1) / mem->bandwidth;
    return mem->first_latency + (chunks - 1) * mem->following_latency;
}

/* ========================================================================
 * Set-associative cache (repro.cpu.cache.Cache)
 * ======================================================================== */

typedef struct CacheLevel {
    int64_t block_size;
    int64_t latency;
    int64_t n_sets;
    int32_t assoc;
    int policy;
    struct CacheLevel *next_cache;  /* NULL -> main memory */
    const MainMemory *memory;
    int64_t *tags;                  /* n_sets * assoc, MRU first */
    uint8_t *dirty;
    int32_t *cnt;
    MT19937 rng;
    int64_t acc, miss, wb;
} CacheLevel;

static int cache_init(CacheLevel *c, int64_t size, int64_t assoc,
                      int64_t block, int64_t latency, int policy,
                      uint32_t seed, CacheLevel *next,
                      const MainMemory *memory) {
    int64_t n_blocks = size / block;
    if (assoc == 0 || assoc >= n_blocks) assoc = n_blocks;
    c->block_size = block;
    c->latency = latency;
    c->assoc = (int32_t)assoc;
    c->n_sets = n_blocks / assoc;
    c->policy = policy;
    c->next_cache = next;
    c->memory = memory;
    c->acc = c->miss = c->wb = 0;
    c->tags = (int64_t *)malloc((size_t)n_blocks * sizeof(int64_t));
    c->dirty = (uint8_t *)malloc((size_t)n_blocks);
    c->cnt = (int32_t *)calloc((size_t)c->n_sets, sizeof(int32_t));
    mt_seed(&c->rng, seed);
    return c->tags && c->dirty && c->cnt;
}

static void cache_free(CacheLevel *c) {
    free(c->tags); free(c->dirty); free(c->cnt);
    c->tags = NULL; c->dirty = NULL; c->cnt = NULL;
}

static int64_t cache_access(CacheLevel *c, int64_t addr, int write) {
    c->acc++;
    int64_t block = addr / c->block_size;
    int64_t set = block % c->n_sets;
    int64_t *tags = c->tags + set * c->assoc;
    uint8_t *dirty = c->dirty + set * c->assoc;
    int32_t cnt = c->cnt[set];
    for (int32_t i = 0; i < cnt; i++) {
        if (tags[i] == block) {
            if (write) dirty[i] = 1;
            if (c->policy == POLICY_LRU && i) {
                uint8_t d = dirty[i];
                memmove(tags + 1, tags, (size_t)i * sizeof(int64_t));
                memmove(dirty + 1, dirty, (size_t)i);
                tags[0] = block;
                dirty[0] = d;
            }
            return c->latency;
        }
    }
    c->miss++;
    int64_t below = c->next_cache
        ? cache_access(c->next_cache, addr, 0)
        : mem_access(c->memory, c->block_size);
    /* allocate (Cache._allocate): evict first when full, insert MRU */
    if (cnt >= c->assoc) {
        int32_t victim = (c->policy == POLICY_RANDOM)
            ? (int32_t)mt_randbelow(&c->rng, cnt)
            : cnt - 1;
        if (dirty[victim]) c->wb++;
        memmove(tags + victim, tags + victim + 1,
                (size_t)(cnt - 1 - victim) * sizeof(int64_t));
        memmove(dirty + victim, dirty + victim + 1,
                (size_t)(cnt - 1 - victim));
        cnt--;
    }
    memmove(tags + 1, tags, (size_t)cnt * sizeof(int64_t));
    memmove(dirty + 1, dirty, (size_t)cnt);
    tags[0] = block;
    dirty[0] = (uint8_t)write;
    c->cnt[set] = cnt + 1;
    return c->latency + below;
}

/* ========================================================================
 * TLB (repro.cpu.cache.TLB) — always LRU, hit is free
 * ======================================================================== */

typedef struct {
    int64_t page_size;
    int64_t miss_latency;
    int64_t n_sets;
    int32_t assoc;
    int64_t *tags;
    int32_t *cnt;
    int64_t acc, miss;
} TLBLevel;

static int tlb_init(TLBLevel *t, int64_t n_entries, int64_t page_size,
                    int64_t assoc, int64_t miss_latency) {
    if (assoc == 0 || assoc >= n_entries) assoc = n_entries;
    t->page_size = page_size;
    t->miss_latency = miss_latency;
    t->assoc = (int32_t)assoc;
    t->n_sets = n_entries / assoc;
    t->acc = t->miss = 0;
    t->tags = (int64_t *)malloc((size_t)n_entries * sizeof(int64_t));
    t->cnt = (int32_t *)calloc((size_t)t->n_sets, sizeof(int32_t));
    return t->tags && t->cnt;
}

static void tlb_free(TLBLevel *t) {
    free(t->tags); free(t->cnt);
    t->tags = NULL; t->cnt = NULL;
}

static int64_t tlb_access(TLBLevel *t, int64_t addr) {
    t->acc++;
    int64_t page = addr / t->page_size;
    int64_t set = page % t->n_sets;
    int64_t *tags = t->tags + set * t->assoc;
    int32_t cnt = t->cnt[set];
    for (int32_t i = 0; i < cnt; i++) {
        if (tags[i] == page) {
            if (i) {
                memmove(tags + 1, tags, (size_t)i * sizeof(int64_t));
                tags[0] = page;
            }
            return 0;
        }
    }
    t->miss++;
    if (cnt < t->assoc) {
        memmove(tags + 1, tags, (size_t)cnt * sizeof(int64_t));
        t->cnt[set] = cnt + 1;
    } else {
        memmove(tags + 1, tags, (size_t)(cnt - 1) * sizeof(int64_t));
    }
    tags[0] = page;
    return t->miss_latency;
}

/* ========================================================================
 * Memory hierarchy (repro.cpu.cache.MemoryHierarchy)
 * ======================================================================== */

typedef struct {
    MainMemory memory;
    CacheLevel l2, l1i, l1d;
    TLBLevel itlb, dtlb;
    int64_t prefetch_lines;
} Hierarchy;

static int64_t instruction_fetch(Hierarchy *h, int64_t pc) {
    return tlb_access(&h->itlb, pc) + cache_access(&h->l1i, pc, 0);
}

static int64_t data_access(Hierarchy *h, int64_t addr, int write) {
    int64_t misses_before = h->l1d.miss;
    int64_t latency = tlb_access(&h->dtlb, addr)
        + cache_access(&h->l1d, addr, write);
    if (h->prefetch_lines && h->l1d.miss > misses_before) {
        /* Next-N-line prefetch: demand hit/miss counters restored,
         * L2 traffic and writebacks kept (MemoryHierarchy.data_access). */
        int64_t demand_acc = h->l1d.acc;
        int64_t demand_miss = h->l1d.miss;
        int64_t block = h->l1d.block_size;
        for (int64_t k = 1; k <= h->prefetch_lines; k++) {
            cache_access(&h->l1d, addr + k * block, 0);
        }
        h->l1d.acc = demand_acc;
        h->l1d.miss = demand_miss;
    }
    return latency;
}

static void hierarchy_reset_stats(Hierarchy *h) {
    h->l1i.acc = h->l1i.miss = h->l1i.wb = 0;
    h->l1d.acc = h->l1d.miss = h->l1d.wb = 0;
    h->l2.acc = h->l2.miss = h->l2.wb = 0;
    h->itlb.acc = h->itlb.miss = 0;
    h->dtlb.acc = h->dtlb.miss = 0;
}

/* ========================================================================
 * Direction predictors (repro.cpu.branch)
 * ======================================================================== */

typedef struct {
    uint8_t *counters;  /* saturating 2-bit, init weakly taken (2) */
    int64_t mask;
} CounterTable;

static int ct_init(CounterTable *t, int bits) {
    int64_t size = 1LL << bits;
    t->counters = (uint8_t *)malloc((size_t)size);
    t->mask = size - 1;
    if (!t->counters) return 0;
    memset(t->counters, 2, (size_t)size);
    return 1;
}

static void ct_free(CounterTable *t) {
    free(t->counters);
    t->counters = NULL;
}

static int ct_predict(const CounterTable *t, int64_t index) {
    return t->counters[index & t->mask] >= 2;
}

static void ct_update(CounterTable *t, int64_t index, int taken) {
    int64_t i = index & t->mask;
    uint8_t c = t->counters[i];
    if (taken) {
        if (c < 3) t->counters[i] = c + 1;
    } else if (c > 0) {
        t->counters[i] = c - 1;
    }
}

/* Tournament _last_components: dict semantics (keyed by pc, pop with
 * default) over a small linear table — occupancy is bounded by the
 * in-flight conditional branches (<= IFQ + ROB). */
typedef struct {
    int64_t *pc;
    uint8_t *g, *b;
    int32_t n, cap;
} LastComponents;

typedef struct {
    int kind;
    int speculative;
    CounterTable gtable;    /* 2level / tournament gshare PHT */
    int64_t history;
    int64_t history_mask;
    CounterTable btable;    /* bimodal PHT */
    CounterTable chooser;   /* tournament chooser */
    LastComponents lc;
} Predictor;

static int pred_init(Predictor *p, int kind, int speculative,
                     int32_t lc_capacity) {
    memset(p, 0, sizeof(*p));
    p->kind = kind;
    p->speculative = speculative;
    p->history = 0;
    p->history_mask = (1LL << GSHARE_HISTORY_BITS) - 1;
    if (kind == PRED_2LEVEL) {
        return ct_init(&p->gtable, GSHARE_TABLE_BITS);
    }
    if (kind == PRED_BIMODAL) {
        return ct_init(&p->btable, BIMODAL_TABLE_BITS);
    }
    if (kind == PRED_TOURNAMENT) {
        if (!ct_init(&p->gtable, GSHARE_TABLE_BITS)) return 0;
        if (!ct_init(&p->btable, TOURNAMENT_TABLE_BITS)) return 0;
        if (!ct_init(&p->chooser, TOURNAMENT_TABLE_BITS)) return 0;
        p->lc.cap = lc_capacity;
        p->lc.n = 0;
        p->lc.pc = (int64_t *)malloc((size_t)lc_capacity * sizeof(int64_t));
        p->lc.g = (uint8_t *)malloc((size_t)lc_capacity);
        p->lc.b = (uint8_t *)malloc((size_t)lc_capacity);
        return p->lc.pc && p->lc.g && p->lc.b;
    }
    return 1;  /* taken / perfect: no state */
}

static void pred_free(Predictor *p) {
    ct_free(&p->gtable);
    ct_free(&p->btable);
    ct_free(&p->chooser);
    free(p->lc.pc); free(p->lc.g); free(p->lc.b);
    p->lc.pc = NULL; p->lc.g = NULL; p->lc.b = NULL;
}

static void pred_push_history(Predictor *p, int taken) {
    p->history = ((p->history << 1) | (int64_t)taken) & p->history_mask;
}

static int64_t pred_history(const Predictor *p) {
    if (p->kind == PRED_2LEVEL || p->kind == PRED_TOURNAMENT) {
        return p->history;
    }
    return 0;
}

static int lc_put(LastComponents *lc, int64_t pc, int g, int b) {
    for (int32_t i = 0; i < lc->n; i++) {
        if (lc->pc[i] == pc) {
            lc->g[i] = (uint8_t)g;
            lc->b[i] = (uint8_t)b;
            return 1;
        }
    }
    if (lc->n >= lc->cap) return 0;
    lc->pc[lc->n] = pc;
    lc->g[lc->n] = (uint8_t)g;
    lc->b[lc->n] = (uint8_t)b;
    lc->n++;
    return 1;
}

static void lc_pop(LastComponents *lc, int64_t pc, int taken,
                   int *g, int *b) {
    for (int32_t i = 0; i < lc->n; i++) {
        if (lc->pc[i] == pc) {
            *g = lc->g[i];
            *b = lc->b[i];
            lc->n--;
            lc->pc[i] = lc->pc[lc->n];
            lc->g[i] = lc->g[lc->n];
            lc->b[i] = lc->b[lc->n];
            return;
        }
    }
    *g = taken;  /* dict .pop default: (taken, taken) */
    *b = taken;
}

/* Returns the prediction; *ok is cleared on last-components overflow
 * (cannot happen while in-flight branches fit the IFQ + ROB). */
static int pred_predict(Predictor *p, int64_t pc, int *ok) {
    switch (p->kind) {
    case PRED_2LEVEL: {
        int prediction = ct_predict(&p->gtable, (pc >> 2) ^ p->history);
        if (p->speculative) pred_push_history(p, prediction);
        return prediction;
    }
    case PRED_BIMODAL:
        return ct_predict(&p->btable, pc >> 2);
    case PRED_TAKEN:
        return 1;
    case PRED_TOURNAMENT: {
        int g = ct_predict(&p->gtable, (pc >> 2) ^ p->history);
        if (p->speculative) pred_push_history(p, g);
        int b = ct_predict(&p->btable, pc >> 2);
        int use_gshare = ct_predict(&p->chooser, pc >> 2);
        if (!lc_put(&p->lc, pc, g, b)) *ok = 0;
        return use_gshare ? g : b;
    }
    }
    return 1;
}

static void pred_update(Predictor *p, int64_t pc, int taken,
                        int64_t history_at_predict) {
    switch (p->kind) {
    case PRED_2LEVEL:
        ct_update(&p->gtable, (pc >> 2) ^ history_at_predict, taken);
        if (!p->speculative) pred_push_history(p, taken);
        break;
    case PRED_BIMODAL:
        ct_update(&p->btable, pc >> 2, taken);
        break;
    case PRED_TOURNAMENT: {
        int g, b;
        lc_pop(&p->lc, pc, taken, &g, &b);
        ct_update(&p->gtable, (pc >> 2) ^ history_at_predict, taken);
        if (!p->speculative) pred_push_history(p, taken);
        ct_update(&p->btable, pc >> 2, taken);
        if (g != b) ct_update(&p->chooser, pc >> 2, taken == g);
        break;
    }
    default:
        break;
    }
}

static void pred_repair(Predictor *p, int64_t history_at_predict,
                        int taken) {
    if ((p->kind == PRED_2LEVEL || p->kind == PRED_TOURNAMENT)
            && p->speculative) {
        p->history = ((history_at_predict << 1) | (int64_t)taken)
            & p->history_mask;
    }
}

/* ========================================================================
 * BTB (repro.cpu.branch.BranchTargetBuffer) — LRU sets of (pc, target)
 * ======================================================================== */

typedef struct {
    int64_t n_sets;
    int32_t assoc;
    int64_t *pcs;
    int64_t *targets;
    int32_t *cnt;
} BTB;

static int btb_init(BTB *b, int64_t n_entries, int64_t assoc) {
    if (assoc == 0 || assoc >= n_entries) assoc = n_entries;
    b->assoc = (int32_t)assoc;
    b->n_sets = n_entries / assoc;
    b->pcs = (int64_t *)malloc((size_t)n_entries * sizeof(int64_t));
    b->targets = (int64_t *)malloc((size_t)n_entries * sizeof(int64_t));
    b->cnt = (int32_t *)calloc((size_t)b->n_sets, sizeof(int32_t));
    return b->pcs && b->targets && b->cnt;
}

static void btb_free(BTB *b) {
    free(b->pcs); free(b->targets); free(b->cnt);
    b->pcs = NULL; b->targets = NULL; b->cnt = NULL;
}

static int btb_lookup(BTB *b, int64_t pc, int64_t *target) {
    int64_t set = (pc >> 2) % b->n_sets;
    int64_t *pcs = b->pcs + set * b->assoc;
    int64_t *tgts = b->targets + set * b->assoc;
    int32_t cnt = b->cnt[set];
    for (int32_t i = 0; i < cnt; i++) {
        if (pcs[i] == pc) {
            int64_t t = tgts[i];
            if (i) {
                memmove(pcs + 1, pcs, (size_t)i * sizeof(int64_t));
                memmove(tgts + 1, tgts, (size_t)i * sizeof(int64_t));
                pcs[0] = pc;
                tgts[0] = t;
            }
            *target = t;
            return 1;
        }
    }
    return 0;
}

static void btb_insert(BTB *b, int64_t pc, int64_t target) {
    int64_t set = (pc >> 2) % b->n_sets;
    int64_t *pcs = b->pcs + set * b->assoc;
    int64_t *tgts = b->targets + set * b->assoc;
    int32_t cnt = b->cnt[set];
    for (int32_t i = 0; i < cnt; i++) {
        if (pcs[i] == pc) {
            memmove(pcs + i, pcs + i + 1,
                    (size_t)(cnt - 1 - i) * sizeof(int64_t));
            memmove(tgts + i, tgts + i + 1,
                    (size_t)(cnt - 1 - i) * sizeof(int64_t));
            cnt--;
            break;
        }
    }
    int32_t keep = (cnt < b->assoc) ? cnt : b->assoc - 1;
    memmove(pcs + 1, pcs, (size_t)keep * sizeof(int64_t));
    memmove(tgts + 1, tgts, (size_t)keep * sizeof(int64_t));
    pcs[0] = pc;
    tgts[0] = target;
    b->cnt[set] = keep + 1;
}

/* ========================================================================
 * Return-address stack (repro.cpu.branch.ReturnAddressStack) — circular
 * ======================================================================== */

typedef struct {
    int64_t *entries;
    int64_t depth;
    int64_t top;
    int64_t occupancy;
} RAS;

static int ras_init(RAS *r, int64_t depth) {
    r->entries = (int64_t *)calloc((size_t)depth, sizeof(int64_t));
    r->depth = depth;
    r->top = 0;
    r->occupancy = 0;
    return r->entries != NULL;
}

static void ras_free(RAS *r) {
    free(r->entries);
    r->entries = NULL;
}

static void ras_push(RAS *r, int64_t address) {
    r->entries[r->top] = address;
    r->top = (r->top + 1) % r->depth;
    if (r->occupancy < r->depth) r->occupancy++;
}

static int64_t ras_pop(RAS *r) {
    r->top = (r->top - 1 + r->depth) % r->depth;
    if (r->occupancy) r->occupancy--;
    return r->entries[r->top];
}

/* ========================================================================
 * Functional units (repro.cpu.funits) — next-free slots per class
 * ======================================================================== */

enum { UNIT_INT_ALU, UNIT_FP_ALU, UNIT_INT_MULT_DIV, UNIT_FP_MULT_DIV,
       UNIT_MEM_PORT, N_UNIT_CLASSES };

typedef struct {
    int64_t *next_free[N_UNIT_CLASSES];
    int32_t count[N_UNIT_CLASSES];
    int64_t issued[N_UNIT_CLASSES];
    const int64_t *op_unit;      /* OpClass -> unit class */
    const int64_t *op_latency;
    const int64_t *op_interval;
} FunctionalUnits;

static int funits_init(FunctionalUnits *f, const int64_t *counts,
                       const int64_t *op_unit, const int64_t *op_latency,
                       const int64_t *op_interval) {
    f->op_unit = op_unit;
    f->op_latency = op_latency;
    f->op_interval = op_interval;
    for (int u = 0; u < N_UNIT_CLASSES; u++) {
        f->count[u] = (int32_t)counts[u];
        f->issued[u] = 0;
        f->next_free[u] =
            (int64_t *)calloc((size_t)counts[u], sizeof(int64_t));
        if (!f->next_free[u]) return 0;
    }
    return 1;
}

static void funits_free(FunctionalUnits *f) {
    for (int u = 0; u < N_UNIT_CLASSES; u++) {
        free(f->next_free[u]);
        f->next_free[u] = NULL;
    }
}

static int funits_can_issue(const FunctionalUnits *f, int op,
                            int64_t cycle) {
    int unit = (int)f->op_unit[op];
    const int64_t *free_at = f->next_free[unit];
    for (int32_t i = 0; i < f->count[unit]; i++) {
        if (free_at[i] <= cycle) return 1;
    }
    return 0;
}

/* Occupy the first free unit; returns the result latency.  count=0
 * busies the unit without tallying (a store's commit-time cache write
 * reuses the port its issue already counted). */
static int64_t funits_issue(FunctionalUnits *f, int op, int64_t cycle,
                            int count) {
    int unit = (int)f->op_unit[op];
    int64_t *free_at = f->next_free[unit];
    for (int32_t i = 0; i < f->count[unit]; i++) {
        if (free_at[i] <= cycle) {
            free_at[i] = cycle + f->op_interval[op];
            if (count) f->issued[unit]++;
            return f->op_latency[op];
        }
    }
    return -1;  /* unreachable when guarded by funits_can_issue */
}

/* ========================================================================
 * Ready set: binary min-heap over trace indices (== sequence numbers)
 * ======================================================================== */

static void heap_push(int32_t *heap, int32_t *size, int32_t value) {
    int32_t i = (*size)++;
    while (i) {
        int32_t parent = (i - 1) >> 1;
        if (heap[parent] <= value) break;
        heap[i] = heap[parent];
        i = parent;
    }
    heap[i] = value;
}

static int32_t heap_pop(int32_t *heap, int32_t *size) {
    int32_t top = heap[0];
    int32_t last = heap[--(*size)];
    int32_t i = 0;
    for (;;) {
        int32_t child = 2 * i + 1;
        if (child >= *size) break;
        if (child + 1 < *size && heap[child + 1] < heap[child]) child++;
        if (heap[child] >= last) break;
        heap[i] = heap[child];
        i = child;
    }
    heap[i] = last;
    return top;
}

/* ========================================================================
 * The simulator
 * ======================================================================== */

static int64_t next_pow2(int64_t v) {
    int64_t p = 1;
    while (p < v) p <<= 1;
    return p;
}

int64_t repro_simulate(
    const int64_t *cfg,
    int64_t n,
    const int64_t *pc_arr,
    const uint8_t *op_arr,
    const int64_t *addr_arr,
    const uint8_t *kind_arr,
    const uint8_t *taken_arr,
    const int64_t *target_arr,
    const int32_t *prod1,
    const int32_t *prod2,
    const int32_t *store_prod,
    const uint8_t *pre_flag,     /* NULL when precomputation is off */
    const int64_t *op_unit,      /* N_OP_CLASSES entries each */
    const int64_t *op_latency,
    const int64_t *op_interval,
    int64_t *out)
{
    int64_t status = -3;  /* allocation failure until proven otherwise */

    Hierarchy hier;
    memset(&hier, 0, sizeof(hier));
    hier.prefetch_lines = cfg[CFG_PREFETCH_LINES];
    hier.memory.first_latency = cfg[CFG_MEM_FIRST];
    hier.memory.following_latency = cfg[CFG_MEM_FOLLOWING];
    hier.memory.bandwidth = cfg[CFG_MEM_BANDWIDTH];
    uint32_t seed = (uint32_t)cfg[CFG_RNG_SEED];
    int policy = (int)cfg[CFG_REPLACEMENT];

    Predictor pred;
    memset(&pred, 0, sizeof(pred));
    BTB btb;
    memset(&btb, 0, sizeof(btb));
    RAS ras;
    memset(&ras, 0, sizeof(ras));
    FunctionalUnits funits;
    memset(&funits, 0, sizeof(funits));

    uint8_t *state = NULL;
    int32_t *deps = NULL;
    int64_t *dispatch_cycle = NULL;
    uint8_t *mispred = NULL;
    int64_t *history = NULL;
    int32_t *wake_head = NULL, *edge_to = NULL, *edge_next = NULL;
    int32_t *ifq_idx = NULL;
    int64_t *ifq_cycle = NULL;
    int32_t *rob = NULL;
    int32_t *ready = NULL, *stash = NULL;
    int32_t *bucket_head = NULL, *bucket_tail = NULL, *comp_next = NULL;

    if (!cache_init(&hier.l2, cfg[CFG_L2_SIZE], cfg[CFG_L2_ASSOC],
                    cfg[CFG_L2_BLOCK], cfg[CFG_L2_LAT], policy, seed,
                    NULL, &hier.memory)) goto done;
    if (!cache_init(&hier.l1i, cfg[CFG_L1I_SIZE], cfg[CFG_L1I_ASSOC],
                    cfg[CFG_L1I_BLOCK], cfg[CFG_L1I_LAT], policy, seed,
                    &hier.l2, NULL)) goto done;
    if (!cache_init(&hier.l1d, cfg[CFG_L1D_SIZE], cfg[CFG_L1D_ASSOC],
                    cfg[CFG_L1D_BLOCK], cfg[CFG_L1D_LAT], policy, seed,
                    &hier.l2, NULL)) goto done;
    if (!tlb_init(&hier.itlb, cfg[CFG_ITLB_ENTRIES], cfg[CFG_ITLB_PAGE],
                  cfg[CFG_ITLB_ASSOC], cfg[CFG_ITLB_LAT])) goto done;
    if (!tlb_init(&hier.dtlb, cfg[CFG_DTLB_ENTRIES], cfg[CFG_DTLB_PAGE],
                  cfg[CFG_DTLB_ASSOC], cfg[CFG_DTLB_LAT])) goto done;

    int pred_kind = (int)cfg[CFG_PRED_KIND];
    int perfect = pred_kind == PRED_PERFECT;
    int32_t lc_cap = (int32_t)(cfg[CFG_IFQ_ENTRIES] + cfg[CFG_ROB_ENTRIES]
                               + cfg[CFG_WIDTH] + 8);
    if (!pred_init(&pred, pred_kind, (int)cfg[CFG_SPECULATIVE], lc_cap)) {
        goto done;
    }
    if (!btb_init(&btb, cfg[CFG_BTB_ENTRIES], cfg[CFG_BTB_ASSOC])) {
        goto done;
    }
    if (!ras_init(&ras, cfg[CFG_RAS_ENTRIES])) goto done;

    int64_t unit_counts[N_UNIT_CLASSES] = {
        cfg[CFG_INT_ALUS], cfg[CFG_FP_ALUS], cfg[CFG_INT_MULT_DIV],
        cfg[CFG_FP_MULT_DIV], cfg[CFG_MEM_PORTS],
    };
    if (!funits_init(&funits, unit_counts, op_unit, op_latency,
                     op_interval)) goto done;

    /* Calendar queue for completions: ring of per-cycle FIFO buckets.
     * Sized past the longest possible result latency so distinct
     * in-flight cycles never share a bucket. */
    int64_t mem_block_latency = mem_access(&hier.memory,
                                           hier.l2.block_size);
    int64_t max_latency = 1;
    for (int op = 0; op < N_OP_CLASSES; op++) {
        if (op_latency[op] > max_latency) max_latency = op_latency[op];
    }
    int64_t data_path = cfg[CFG_DTLB_LAT] + cfg[CFG_L1D_LAT]
        + cfg[CFG_L2_LAT] + mem_block_latency;
    if (data_path > max_latency) max_latency = data_path;
    int64_t ring = next_pow2(max_latency + 2);
    int64_t ring_mask = ring - 1;

    size_t n_alloc = (size_t)(n > 0 ? n : 1);
    state = (uint8_t *)calloc(n_alloc, 1);
    deps = (int32_t *)calloc(n_alloc, sizeof(int32_t));
    dispatch_cycle = (int64_t *)calloc(n_alloc, sizeof(int64_t));
    mispred = (uint8_t *)calloc(n_alloc, 1);
    history = (int64_t *)calloc(n_alloc, sizeof(int64_t));
    wake_head = (int32_t *)malloc(n_alloc * sizeof(int32_t));
    edge_to = (int32_t *)malloc(3 * n_alloc * sizeof(int32_t));
    edge_next = (int32_t *)malloc(3 * n_alloc * sizeof(int32_t));
    ready = (int32_t *)malloc(n_alloc * sizeof(int32_t));
    stash = (int32_t *)malloc(n_alloc * sizeof(int32_t));
    comp_next = (int32_t *)malloc(n_alloc * sizeof(int32_t));
    bucket_head = (int32_t *)malloc((size_t)ring * sizeof(int32_t));
    bucket_tail = (int32_t *)malloc((size_t)ring * sizeof(int32_t));
    int64_t ifq_capacity = cfg[CFG_IFQ_ENTRIES];
    int64_t rob_capacity = cfg[CFG_ROB_ENTRIES];
    ifq_idx = (int32_t *)malloc((size_t)ifq_capacity * sizeof(int32_t));
    ifq_cycle = (int64_t *)malloc((size_t)ifq_capacity * sizeof(int64_t));
    rob = (int32_t *)malloc((size_t)rob_capacity * sizeof(int32_t));
    if (!state || !deps || !dispatch_cycle || !mispred || !history
            || !wake_head || !edge_to || !edge_next || !ready || !stash
            || !comp_next || !bucket_head || !bucket_tail || !ifq_idx
            || !ifq_cycle || !rob) goto done;
    for (int64_t i = 0; i < n; i++) wake_head[i] = -1;
    for (int64_t b = 0; b < ring; b++) bucket_head[b] = -1;

    /* -- functional warm-up (Pipeline.warm) ----------------------------- */
    int64_t l1i_block = cfg[CFG_L1I_BLOCK];
    if (cfg[CFG_WARMUP]) {
        int64_t last_block = -1;
        int ok = 1;
        for (int64_t i = 0; i < n; i++) {
            int64_t pc = pc_arr[i];
            int64_t block = pc / l1i_block;
            if (block != last_block) {
                instruction_fetch(&hier, pc);
                last_block = block;
            }
            int op = op_arr[i];
            if (op == OP_LOAD) {
                data_access(&hier, addr_arr[i], 0);
            } else if (op == OP_STORE) {
                data_access(&hier, addr_arr[i], 1);
            } else if (op == OP_BRANCH && kind_arr[i] == KIND_COND) {
                int taken = taken_arr[i];
                if (!perfect) {
                    int64_t hist = pred_history(&pred);
                    int predicted = pred_predict(&pred, pc, &ok);
                    pred_update(&pred, pc, taken, hist);
                    if (predicted != taken) {
                        pred_repair(&pred, hist, taken);
                    }
                }
                if (taken) btb_insert(&btb, pc, target_arr[i]);
            }
        }
        if (!ok) { status = -2; goto done; }
        hierarchy_reset_stats(&hier);
    }

    /* -- the cycle loop (batched.run_batched) --------------------------- */
    int64_t width = cfg[CFG_WIDTH];
    int64_t lsq_capacity = cfg[CFG_LSQ_ENTRIES];
    int64_t penalty = cfg[CFG_MISPREDICT_PENALTY];
    int64_t redirect_extra = cfg[CFG_L1I_LAT] - 1;
    int64_t max_cycles = cfg[CFG_MAX_CYCLES];
    int64_t hang_cycles = cfg[CFG_HANG_CYCLES];

    int64_t fetch_index = 0;
    int64_t fetch_stall_until = 0;
    int64_t last_fetch_block = -1;
    int fetch_block_mispredict = 0;
    int64_t stall_fetch = 0, stall_mispredict = 0, stall_rob = 0;
    int64_t stall_lsq = 0, stall_fu = 0;
    int64_t dispatch_stall_rob = 0, dispatch_stall_lsq = 0;
    int64_t rob_occupancy_sum = 0;
    int64_t precompute_hits = 0;
    int64_t branches = 0, mispredictions = 0;
    int64_t btb_misfetches = 0, ras_mispredictions = 0;

    int64_t ifq_head = 0, ifq_count = 0;
    int64_t rob_head = 0, rob_count = 0;
    int64_t lsq_occupancy = 0;
    int32_t ready_size = 0;
    int64_t pending = 0;
    int32_t edge_count = 0;
    int64_t committed = 0;
    int64_t cycle = 0;
    int64_t last_commit_cycle = 0;

    status = 0;
    while (committed < n) {
        cycle++;
        if (cycle > max_cycles) { status = 1; break; }
        if (hang_cycles >= 0 && cycle - last_commit_cycle > hang_cycles) {
            status = 2;
            break;
        }

        /* ---- commit ---------------------------------------------------- */
        int64_t budget = width;
        while (budget && rob_count && state[rob[rob_head]] == STATE_DONE) {
            int32_t index = rob[rob_head];
            int op = op_arr[index];
            if (op == OP_STORE
                    && !funits_can_issue(&funits, OP_STORE, cycle)) {
                break;
            }
            rob_head = (rob_head + 1) % rob_capacity;
            rob_count--;
            budget--;
            committed++;
            last_commit_cycle = cycle;
            if (op == OP_STORE) {
                funits_issue(&funits, OP_STORE, cycle, 0);
                data_access(&hier, addr_arr[index], 1);
                lsq_occupancy--;
            } else if (op == OP_LOAD) {
                lsq_occupancy--;
            } else if (op == OP_BRANCH && !perfect
                       && kind_arr[index] == KIND_COND) {
                pred_update(&pred, pc_arr[index], taken_arr[index],
                            history[index]);
            }
        }

        /* ---- writeback ------------------------------------------------- */
        int64_t bucket = cycle & ring_mask;
        int32_t done_index = bucket_head[bucket];
        bucket_head[bucket] = -1;
        while (done_index >= 0) {
            int32_t next_done = comp_next[done_index];
            pending--;
            state[done_index] = STATE_DONE;
            int32_t edge = wake_head[done_index];
            while (edge >= 0) {
                int32_t dep = edge_to[edge];
                if (--deps[dep] == 0 && state[dep] == STATE_WAITING) {
                    heap_push(ready, &ready_size, dep);
                }
                edge = edge_next[edge];
            }
            wake_head[done_index] = -1;
            if (op_arr[done_index] == OP_BRANCH) {
                int kind = kind_arr[done_index];
                if (mispred[done_index]) {
                    fetch_stall_until = cycle + penalty + redirect_extra;
                    fetch_block_mispredict = 1;
                    if (!perfect && kind == KIND_COND) {
                        pred_repair(&pred, history[done_index],
                                    taken_arr[done_index]);
                    }
                }
                if (kind == KIND_COND && taken_arr[done_index]) {
                    btb_insert(&btb, pc_arr[done_index],
                               target_arr[done_index]);
                }
            }
            done_index = next_done;
        }

        /* ---- issue ----------------------------------------------------- */
        if (ready_size) {
            budget = width;
            int64_t issued_any = 0;
            int fu_blocked = 0;
            int32_t stash_size = 0;
            while (ready_size && budget) {
                int32_t index = heap_pop(ready, &ready_size);
                if (dispatch_cycle[index] >= cycle) {
                    stash[stash_size++] = index;
                    continue;
                }
                int op = op_arr[index];
                int64_t latency;
                if (pre_flag && pre_flag[index]) {
                    latency = 1;
                    precompute_hits++;
                } else if (funits_can_issue(&funits, op, cycle)) {
                    latency = funits_issue(&funits, op, cycle, 1);
                    if (op == OP_LOAD) {
                        int64_t mem_latency =
                            data_access(&hier, addr_arr[index], 0);
                        if (mem_latency > latency) latency = mem_latency;
                    }
                } else {
                    fu_blocked = 1;
                    stash[stash_size++] = index;
                    continue;
                }
                state[index] = STATE_ISSUED;
                int64_t when = (cycle + latency) & ring_mask;
                if (bucket_head[when] < 0) {
                    bucket_head[when] = index;
                } else {
                    comp_next[bucket_tail[when]] = index;
                }
                bucket_tail[when] = index;
                comp_next[index] = -1;
                pending++;
                issued_any++;
                budget--;
            }
            for (int32_t s = 0; s < stash_size; s++) {
                heap_push(ready, &ready_size, stash[s]);
            }
            if (fu_blocked && !issued_any) stall_fu++;
        }

        /* ---- dispatch -------------------------------------------------- */
        budget = width;
        while (budget && ifq_count) {
            int32_t index = ifq_idx[ifq_head];
            if (ifq_cycle[ifq_head] >= cycle) break;
            int op = op_arr[index];
            int is_mem = op == OP_LOAD || op == OP_STORE;
            if (rob_count >= rob_capacity) {
                dispatch_stall_rob++;
                stall_rob++;
                break;
            }
            if (is_mem && lsq_occupancy >= lsq_capacity) {
                dispatch_stall_lsq++;
                stall_lsq++;
                break;
            }
            ifq_head = (ifq_head + 1) % ifq_capacity;
            ifq_count--;
            budget--;
            dispatch_cycle[index] = cycle;
            int32_t count = 0;
            int32_t producer = prod1[index];
            if (producer >= 0 && state[producer] != STATE_DONE) {
                count++;
                edge_to[edge_count] = index;
                edge_next[edge_count] = wake_head[producer];
                wake_head[producer] = edge_count++;
            }
            producer = prod2[index];
            if (producer >= 0 && state[producer] != STATE_DONE) {
                count++;
                edge_to[edge_count] = index;
                edge_next[edge_count] = wake_head[producer];
                wake_head[producer] = edge_count++;
            }
            if (is_mem) {
                lsq_occupancy++;
                if (op == OP_LOAD) {
                    producer = store_prod[index];
                    if (producer >= 0 && state[producer] != STATE_DONE) {
                        count++;
                        edge_to[edge_count] = index;
                        edge_next[edge_count] = wake_head[producer];
                        wake_head[producer] = edge_count++;
                    }
                }
            }
            deps[index] = count;
            rob[(rob_head + rob_count) % rob_capacity] = index;
            rob_count++;
            if (!count) heap_push(ready, &ready_size, index);
        }

        /* ---- fetch ----------------------------------------------------- */
        if (fetch_index < n && fetch_stall_until > cycle) {
            if (ifq_count < ifq_capacity) {
                if (fetch_block_mispredict) stall_mispredict++;
                else stall_fetch++;
            }
        } else if (fetch_index < n) {
            budget = width;
            while (budget && ifq_count < ifq_capacity && fetch_index < n) {
                int32_t index = (int32_t)fetch_index;
                int64_t pc = pc_arr[index];
                int64_t block = pc / l1i_block;
                if (block != last_fetch_block) {
                    int64_t latency = instruction_fetch(&hier, pc);
                    last_fetch_block = block;
                    int64_t extra = latency - cfg[CFG_L1I_LAT];
                    if (extra > 0) {
                        fetch_stall_until = cycle + extra;
                        fetch_block_mispredict = 0;
                        break;
                    }
                }
                ifq_idx[(ifq_head + ifq_count) % ifq_capacity] = index;
                ifq_cycle[(ifq_head + ifq_count) % ifq_capacity] = cycle;
                ifq_count++;
                fetch_index++;
                budget--;
                if (op_arr[index] == OP_BRANCH) {
                    /* Pipeline._fetch_branch */
                    int kind = kind_arr[index];
                    int taken = taken_arr[index];
                    int stop = 0;
                    branches++;
                    if (perfect) {
                        stop = taken ? 1 : 0;
                    } else if (kind == KIND_COND) {
                        int64_t hist = pred_history(&pred);
                        int lc_ok = 1;
                        int predicted_taken =
                            pred_predict(&pred, pc, &lc_ok);
                        if (!lc_ok) { status = -2; goto done; }
                        history[index] = hist;
                        if (predicted_taken != taken) {
                            mispredictions++;
                            mispred[index] = 1;
                            stop = 2;
                        } else if (!taken) {
                            stop = 0;
                        } else {
                            int64_t cached;
                            if (!btb_lookup(&btb, pc, &cached)
                                    || cached != target_arr[index]) {
                                btb_misfetches++;
                                stop = 3;
                            } else {
                                stop = 1;
                            }
                        }
                    } else if (kind == KIND_CALL) {
                        ras_push(&ras, pc + 4);
                        stop = 1;
                    } else if (kind == KIND_RETURN) {
                        int64_t predicted = ras_pop(&ras);
                        if (predicted != target_arr[index]) {
                            mispredictions++;
                            ras_mispredictions++;
                            mispred[index] = 1;
                            stop = 2;
                        } else {
                            stop = 1;
                        }
                    } else {
                        stop = 1;  /* direct unconditional jump */
                    }
                    if (stop == 2) {
                        fetch_stall_until = NEVER;
                        fetch_block_mispredict = 1;
                        break;
                    }
                    if (stop == 3) {
                        fetch_stall_until = cycle + MISFETCH_BUBBLE + 1;
                        fetch_block_mispredict = 0;
                        break;
                    }
                    if (stop == 1) break;
                }
            }
        }

        rob_occupancy_sum += rob_count;
    }

    /* -- results --------------------------------------------------------- */
    out[OUT_CYCLES] = cycle;
    out[OUT_INSTRUCTIONS] = committed;
    out[OUT_BRANCHES] = branches;
    out[OUT_MISPREDICTIONS] = mispredictions;
    out[OUT_BTB_MISFETCHES] = btb_misfetches;
    out[OUT_RAS_MISPREDICTIONS] = ras_mispredictions;
    out[OUT_L1I_ACC] = hier.l1i.acc;
    out[OUT_L1I_MISS] = hier.l1i.miss;
    out[OUT_L1I_WB] = hier.l1i.wb;
    out[OUT_L1D_ACC] = hier.l1d.acc;
    out[OUT_L1D_MISS] = hier.l1d.miss;
    out[OUT_L1D_WB] = hier.l1d.wb;
    out[OUT_L2_ACC] = hier.l2.acc;
    out[OUT_L2_MISS] = hier.l2.miss;
    out[OUT_L2_WB] = hier.l2.wb;
    out[OUT_ITLB_ACC] = hier.itlb.acc;
    out[OUT_ITLB_MISS] = hier.itlb.miss;
    out[OUT_DTLB_ACC] = hier.dtlb.acc;
    out[OUT_DTLB_MISS] = hier.dtlb.miss;
    out[OUT_OPS_INT_ALU] = funits.issued[UNIT_INT_ALU];
    out[OUT_OPS_FP_ALU] = funits.issued[UNIT_FP_ALU];
    out[OUT_OPS_INT_MULT_DIV] = funits.issued[UNIT_INT_MULT_DIV];
    out[OUT_OPS_FP_MULT_DIV] = funits.issued[UNIT_FP_MULT_DIV];
    out[OUT_OPS_MEM_PORT] = funits.issued[UNIT_MEM_PORT];
    out[OUT_DISPATCH_STALL_ROB] = dispatch_stall_rob;
    out[OUT_DISPATCH_STALL_LSQ] = dispatch_stall_lsq;
    out[OUT_ROB_OCCUPANCY_SUM] = rob_occupancy_sum;
    out[OUT_STALL_FETCH] = stall_fetch;
    out[OUT_STALL_FU] = stall_fu;
    out[OUT_STALL_LSQ] = stall_lsq;
    out[OUT_STALL_MISPREDICT] = stall_mispredict;
    out[OUT_STALL_ROB] = stall_rob;
    out[OUT_PRECOMPUTE_HITS] = precompute_hits;

    if (status > 0) {
        /* Watchdog diagnostics (batched._hang_dump). */
        out[OUT_ERR_CYCLE] = cycle;
        out[OUT_ERR_COMMITTED] = committed;
        out[OUT_ERR_LAST_COMMIT] = last_commit_cycle;
        out[OUT_ERR_FETCH_INDEX] = fetch_index;
        out[OUT_ERR_FETCH_STALL_UNTIL] = fetch_stall_until;
        out[OUT_ERR_FETCH_BLOCK_MISPREDICT] = fetch_block_mispredict;
        out[OUT_ERR_IFQ_OCC] = ifq_count;
        out[OUT_ERR_ROB_OCC] = rob_count;
        out[OUT_ERR_LSQ_OCC] = lsq_occupancy;
        out[OUT_ERR_READY] = ready_size;
        out[OUT_ERR_PENDING] = pending;
        out[OUT_ERR_HAS_HEAD] = rob_count > 0;
        if (rob_count > 0) {
            int32_t head = rob[rob_head];
            out[OUT_ERR_HEAD_SEQ] = head;
            out[OUT_ERR_HEAD_OP] = op_arr[head];
            out[OUT_ERR_HEAD_STATE] = state[head];
            out[OUT_ERR_HEAD_DEPS] = deps[head];
            out[OUT_ERR_HEAD_PC] = pc_arr[head];
            out[OUT_ERR_HEAD_IS_BRANCH] = op_arr[head] == OP_BRANCH;
            out[OUT_ERR_HEAD_PRECOMPUTED] =
                pre_flag ? pre_flag[head] : 0;
        }
    }

done:
    cache_free(&hier.l2);
    cache_free(&hier.l1i);
    cache_free(&hier.l1d);
    tlb_free(&hier.itlb);
    tlb_free(&hier.dtlb);
    pred_free(&pred);
    btb_free(&btb);
    ras_free(&ras);
    funits_free(&funits);
    free(state); free(deps); free(dispatch_cycle); free(mispred);
    free(history); free(wake_head); free(edge_to); free(edge_next);
    free(ifq_idx); free(ifq_cycle); free(rob); free(ready); free(stash);
    free(bucket_head); free(bucket_tail); free(comp_next);
    out[OUT_STATUS] = status;
    return status;
}
