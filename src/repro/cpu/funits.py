"""Functional-unit pool: counts, latencies, and issue intervals.

Table 7 varies, per unit class, the number of units and the operation
latencies; throughputs are either 1 (fully pipelined adders and the
integer multiplier) or equal to the latency (unpipelined dividers and
the FP multiplier/sqrt at their slow settings).  An operation occupies
a unit for its *issue interval* cycles and produces its result after
its *latency* cycles — the classic latency/initiation-interval model.

Memory ports (Table 6) are modelled as one more unit class limiting
how many loads/stores may begin per cycle.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from .isa import OpClass


class UnitClass:
    """A pool of identical units, each busy until a given cycle."""

    __slots__ = ("name", "_next_free", "issued")

    def __init__(self, name: str, count: int):
        if count < 1:
            raise ValueError(f"{name}: need at least one unit")
        self.name = name
        self._next_free: List[int] = [0] * count
        self.issued = 0

    def can_issue(self, cycle: int) -> bool:
        """True if some unit can accept an operation this cycle."""
        return any(free <= cycle for free in self._next_free)

    def issue(self, cycle: int, interval: int, count: bool = True) -> None:
        """Occupy one free unit for ``interval`` cycles.

        ``count=False`` busies the unit without tallying a new
        operation — used when one instruction occupies a unit twice
        (a store's commit-time cache write reuses the memory port its
        issue already counted).
        """
        free = self._next_free
        for i, t in enumerate(free):
            if t <= cycle:
                free[i] = cycle + interval
                if count:
                    self.issued += 1
                return
        raise RuntimeError(f"{self.name}: no free unit at cycle {cycle}")


class FunctionalUnitPool:
    """All execution resources of one machine configuration.

    Maps every :class:`OpClass` to the unit class it needs plus its
    (latency, issue-interval) pair derived from a
    :class:`~repro.cpu.params.MachineConfig`.
    """

    def __init__(self, config):
        self.int_alu = UnitClass("IntALU", config.int_alus)
        self.fp_alu = UnitClass("FPALU", config.fp_alus)
        self.int_mult_div = UnitClass("IntMultDiv", config.int_mult_div_units)
        self.fp_mult_div = UnitClass("FPMultDiv", config.fp_mult_div_units)
        self.mem_port = UnitClass("MemPort", config.memory_ports)
        #: op class -> (unit class, latency, issue interval)
        self._dispatch: Dict[int, Tuple[UnitClass, int, int]] = {
            OpClass.IALU: (
                self.int_alu, config.int_alu_latency, config.int_alu_interval),
            OpClass.IMULT: (
                self.int_mult_div, config.int_mult_latency,
                config.int_mult_interval),
            OpClass.IDIV: (
                self.int_mult_div, config.int_div_latency,
                config.int_div_interval),
            OpClass.FALU: (
                self.fp_alu, config.fp_alu_latency, config.fp_alu_interval),
            OpClass.FMULT: (
                self.fp_mult_div, config.fp_mult_latency,
                config.fp_mult_interval),
            OpClass.FDIV: (
                self.fp_mult_div, config.fp_div_latency,
                config.fp_div_interval),
            OpClass.FSQRT: (
                self.fp_mult_div, config.fp_sqrt_latency,
                config.fp_sqrt_interval),
            # Loads/stores consume a memory port; their completion time
            # additionally includes the cache access computed by the
            # pipeline.  Address generation itself takes one cycle.
            OpClass.LOAD: (self.mem_port, 1, 1),
            OpClass.STORE: (self.mem_port, 1, 1),
            # Branches resolve on an integer ALU.
            OpClass.BRANCH: (
                self.int_alu, config.int_alu_latency, config.int_alu_interval),
        }

    def requirements(self, op: int) -> Tuple[UnitClass, int, int]:
        """(unit class, result latency, issue interval) for an op class."""
        return self._dispatch[op]

    def can_issue(self, op: int, cycle: int) -> bool:
        unit, _, _ = self._dispatch[op]
        return unit.can_issue(cycle)

    def issue(self, op: int, cycle: int, count: bool = True) -> int:
        """Issue an op; returns its execution latency (cycles to result)."""
        unit, latency, interval = self._dispatch[op]
        unit.issue(cycle, interval, count)
        return latency

    def utilization(self) -> Dict[str, int]:
        """Operations issued per unit class (for analysis/reporting)."""
        return {
            u.name: u.issued
            for u in (self.int_alu, self.fp_alu, self.int_mult_div,
                      self.fp_mult_div, self.mem_port)
        }
