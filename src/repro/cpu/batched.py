"""The batched structure-of-arrays simulator core.

This is the same machine as :class:`~repro.cpu.pipeline.Pipeline` —
bit-identical statistics, enforced by the differential-equivalence
harness (:mod:`repro.cpu.equivalence`) — with the hot loop
restructured for speed:

* the trace is decoded **once** into typed dependence arrays
  (:meth:`~repro.workloads.trace.Trace.decoded`): register and store
  producers become static ``int32`` indices instead of dictionaries
  rebuilt per run;
* per-instruction ROB entries become parallel flat arrays (state,
  dependence counts, history snapshots) indexed by trace position —
  the sequence number *is* the index;
* per-configuration properties that are state-independent are
  precomputed as vectorized passes at run start (precomputation-table
  membership via ``np.isin``, instruction-block boundaries);
* the remaining cycle loop walks plain Python ints over those arrays
  — no per-instruction object allocation, no attribute dispatch.

State-*dependent* machinery (cache/TLB contents, predictor counters,
BTB/RAS, functional-unit occupancy) cannot be precomputed without
changing the model, so the batched core drives the **same** component
objects the reference core uses — one implementation of each
structure, shared by both cores, keeps the equivalence surface small.

When a C toolchain is available the cycle loop itself is replaced by
a compiled kernel (:mod:`repro.cpu.native`) over the same decoded
arrays; this module is the portable fallback and the structural
bridge the kernel's results are checked against.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional

import numpy as np

from repro.guard.errors import SimulationHang

from .isa import COMPUTE_CLASSES, NO_VALUE, BranchKind, OpClass
from .pipeline import (
    HANG_CYCLES,
    Pipeline,
    SimulationError,
    _DONE,
    _ISSUED,
    _MISFETCH_BUBBLE,
    _NEVER,
    _WAITING,
)
from .stats import CoreStats

_LOAD = int(OpClass.LOAD)
_STORE = int(OpClass.STORE)
_BRANCH = int(OpClass.BRANCH)
_KIND_COND = int(BranchKind.CONDITIONAL)
_COMPUTE_LIST = sorted(int(c) for c in COMPUTE_CLASSES)


def _precompute_flags(trace, table) -> Optional[List[bool]]:
    """Vectorized precomputation-table membership, one flag per
    instruction (None when the enhancement is off)."""
    if table is None:
        return None
    compute = np.isin(trace.op, _COMPUTE_LIST)
    keys = trace.redundancy_key
    hit = compute & (keys != NO_VALUE)
    if len(table):
        hit &= np.isin(keys, np.fromiter(table, np.int64, len(table)))
    else:
        hit &= False
    return hit.tolist()


def run_batched(
    pipeline: Pipeline,
    trace,
    max_cycles: Optional[int] = None,
    *,
    hang_cycles: Optional[int] = HANG_CYCLES,
    max_instructions: Optional[int] = None,
) -> CoreStats:
    """Execute ``trace`` on ``pipeline``'s components, batched.

    Mirrors :meth:`Pipeline.run` stage for stage — commit, writeback,
    issue, dispatch, fetch, oldest first — including every watchdog
    (same thresholds, same messages, same state dump).
    """
    n = len(trace)
    if max_instructions is not None and n > max_instructions:
        raise SimulationError(
            f"{trace.name}: trace has {n} instructions, over the "
            f"{max_instructions}-instruction budget"
        )
    if max_cycles is None:
        max_cycles = 400 * n + 100_000
    config = pipeline.config
    stats = pipeline.stats
    hierarchy = pipeline.hierarchy
    funits = pipeline.funits
    predictor = pipeline.predictor
    perfect = predictor is None and config.branch_predictor == "perfect"

    decoded = trace.decoded()
    op_arr = trace.op.tolist()
    pc_arr = trace.pc.tolist()
    addr_arr = trace.mem_addr.tolist()
    kind_arr = trace.branch_kind.tolist()
    taken_arr = trace.taken.tolist()
    target_arr = trace.target.tolist()
    prod1 = decoded.prod1.tolist()
    prod2 = decoded.prod2.tolist()
    store_prod = decoded.store_prod.tolist()
    pre_flags = _precompute_flags(trace, pipeline.precompute_table)

    width = config.width
    ifq_capacity = config.ifq_entries
    rob_capacity = config.rob_entries
    lsq_capacity = config.lsq_entries
    penalty = config.mispredict_penalty
    redirect_extra = config.l1i_latency - 1
    block_arr = (trace.pc // config.l1i_block).tolist()

    # Per-instruction flat state (sequence number == trace index).
    state = bytearray(n)            # _WAITING/_ISSUED/_DONE
    deps = [0] * n
    dependents: List[Optional[list]] = [None] * n
    dispatch_cycle = [0] * n
    mispred_flag = bytearray(n)
    history_arr = [0] * n
    precomputed = bytearray(n)

    # Fetch state
    fetch_index = 0
    fetch_stall_until = 0
    last_fetch_block = -1
    fetch_block_mispredict = False
    stall_fetch = 0
    stall_mispredict = 0
    stall_rob = 0
    stall_lsq = 0
    stall_fu = 0
    fetch_info: Dict[int, tuple] = {}
    ifq: deque = deque()            # (trace index, fetch cycle)

    # Backend state
    rob: deque = deque()            # trace indices, oldest first
    lsq_occupancy = 0
    ready: List[int] = []
    completions: Dict[int, List[int]] = {}
    committed = 0

    misfetch_resume = _MISFETCH_BUBBLE + 1
    fetch_branch = pipeline._fetch_branch

    cycle = 0
    last_commit_cycle = 0
    while committed < n:
        cycle += 1
        if cycle > max_cycles:
            raise SimulationError(
                f"{trace.name}: exceeded {max_cycles} cycles with "
                f"{committed}/{n} committed — model deadlock?"
            )
        if hang_cycles is not None \
                and cycle - last_commit_cycle > hang_cycles:
            raise SimulationHang(
                f"{trace.name}: no instruction retired for "
                f"{cycle - last_commit_cycle} cycles "
                f"({committed}/{n} committed at cycle {cycle}) — "
                "livelocked simulation",
                dump=_hang_dump(
                    trace, cycle, committed, n, fetch_index,
                    ifq, rob, lsq_occupancy, ready, completions,
                    fetch_stall_until, fetch_block_mispredict,
                    op_arr, pc_arr, state, deps, precomputed,
                ),
            )

        # ---- commit ----------------------------------------------------------
        budget = width
        while budget and rob and state[rob[0]] == _DONE:
            index = rob[0]
            op = op_arr[index]
            if op == _STORE and not funits.can_issue(_STORE, cycle):
                break
            rob.popleft()
            budget -= 1
            committed += 1
            last_commit_cycle = cycle
            if op == _STORE:
                funits.issue(_STORE, cycle, count=False)
                hierarchy.data_access(addr_arr[index], write=True)
                lsq_occupancy -= 1
            elif op == _LOAD:
                lsq_occupancy -= 1
            elif op == _BRANCH and predictor is not None \
                    and kind_arr[index] == _KIND_COND:
                predictor.update(
                    pc_arr[index], taken_arr[index], history_arr[index]
                )

        # ---- writeback -------------------------------------------------------
        done_now = completions.pop(cycle, None)
        if done_now:
            for index in done_now:
                state[index] = _DONE
                waiting = dependents[index]
                if waiting:
                    for dep in waiting:
                        deps[dep] -= 1
                        if deps[dep] == 0 and state[dep] == _WAITING:
                            ready.append(dep)
                    dependents[index] = None
                if op_arr[index] == _BRANCH:
                    kind = kind_arr[index]
                    if mispred_flag[index]:
                        fetch_stall_until = cycle + penalty + redirect_extra
                        fetch_block_mispredict = True
                        if predictor is not None and kind == _KIND_COND:
                            predictor.repair(
                                history_arr[index], taken_arr[index]
                            )
                    if kind == _KIND_COND and taken_arr[index]:
                        pipeline.btb.insert(
                            pc_arr[index], target_arr[index]
                        )

        # ---- issue -----------------------------------------------------------
        if ready:
            ready.sort()
            budget = width
            issued_any: List[int] = []
            fu_blocked = False
            for pos, index in enumerate(ready):
                if budget == 0:
                    break
                if dispatch_cycle[index] >= cycle:
                    continue
                op = op_arr[index]
                if precomputed[index]:
                    latency = 1
                    stats.precompute_hits += 1
                elif funits.can_issue(op, cycle):
                    latency = funits.issue(op, cycle)
                    if op == _LOAD:
                        latency = max(
                            latency,
                            hierarchy.data_access(
                                addr_arr[index], write=False
                            ),
                        )
                else:
                    fu_blocked = True
                    continue
                state[index] = _ISSUED
                when = cycle + latency
                batch = completions.get(when)
                if batch is None:
                    completions[when] = [index]
                else:
                    batch.append(index)
                issued_any.append(pos)
                budget -= 1
            for pos in reversed(issued_any):
                ready.pop(pos)
            if fu_blocked and not issued_any:
                stall_fu += 1

        # ---- dispatch --------------------------------------------------------
        budget = width
        while budget and ifq:
            index, fetched_at = ifq[0]
            if fetched_at >= cycle:
                break
            op = op_arr[index]
            is_mem = op == _LOAD or op == _STORE
            if len(rob) >= rob_capacity:
                stats.dispatch_stall_rob += 1
                stall_rob += 1
                break
            if is_mem and lsq_occupancy >= lsq_capacity:
                stats.dispatch_stall_lsq += 1
                stall_lsq += 1
                break
            ifq.popleft()
            budget -= 1
            dispatch_cycle[index] = cycle
            if pre_flags is not None and pre_flags[index]:
                precomputed[index] = 1
            count = 0
            producer = prod1[index]
            if producer >= 0 and state[producer] != _DONE:
                count += 1
                waiting = dependents[producer]
                if waiting is None:
                    dependents[producer] = [index]
                else:
                    waiting.append(index)
            producer = prod2[index]
            if producer >= 0 and state[producer] != _DONE:
                count += 1
                waiting = dependents[producer]
                if waiting is None:
                    dependents[producer] = [index]
                else:
                    waiting.append(index)
            if is_mem:
                lsq_occupancy += 1
                if op == _LOAD:
                    producer = store_prod[index]
                    if producer >= 0 and state[producer] != _DONE:
                        count += 1
                        waiting = dependents[producer]
                        if waiting is None:
                            dependents[producer] = [index]
                        else:
                            waiting.append(index)
            elif op == _BRANCH:
                info = fetch_info.pop(index, None)
                if info is not None:
                    mispred_flag[index] = info[0]
                    history_arr[index] = info[1]
            deps[index] = count
            rob.append(index)
            if count == 0:
                ready.append(index)

        # ---- fetch -----------------------------------------------------------
        if fetch_index < n and fetch_stall_until > cycle:
            if len(ifq) < ifq_capacity:
                if fetch_block_mispredict:
                    stall_mispredict += 1
                else:
                    stall_fetch += 1
        elif fetch_index < n:
            budget = width
            while budget and len(ifq) < ifq_capacity and fetch_index < n:
                index = fetch_index
                block = block_arr[index]
                if block != last_fetch_block:
                    latency = hierarchy.instruction_fetch(pc_arr[index])
                    last_fetch_block = block
                    extra = latency - config.l1i_latency
                    if extra > 0:
                        fetch_stall_until = cycle + extra
                        fetch_block_mispredict = False
                        break
                ifq.append((index, cycle))
                fetch_index += 1
                budget -= 1
                if op_arr[index] == _BRANCH:
                    stop = fetch_branch(
                        index, pc_arr[index], kind_arr[index],
                        taken_arr[index], target_arr[index],
                        perfect, fetch_info, pc_arr, n,
                    )
                    if stop == 2:
                        fetch_stall_until = _NEVER
                        fetch_block_mispredict = True
                        break
                    if stop == 3:
                        fetch_stall_until = cycle + misfetch_resume
                        fetch_block_mispredict = False
                        break
                    if stop == 1:
                        break

        stats.rob_occupancy_sum += len(rob)

    stats.cycles = cycle
    stats.instructions = committed
    stats.stall_cycles = {
        "fetch": stall_fetch,
        "fu_busy": stall_fu,
        "lsq_full": stall_lsq,
        "mispredict": stall_mispredict,
        "rob_full": stall_rob,
    }
    pipeline._snapshot_memory(stats)
    stats.unit_operations = funits.utilization()
    return stats.validate(trace.name)


def _hang_dump(trace, cycle, committed, n, fetch_index, ifq, rob,
               lsq_occupancy, ready, completions, fetch_stall_until,
               fetch_block_mispredict, op_arr, pc_arr, state, deps,
               precomputed) -> dict:
    """Same shape and content as ``Pipeline._hang_dump`` — watchdog
    diagnostics must not depend on which core tripped them."""
    dump = {
        "trace": trace.name,
        "cycle": cycle,
        "committed": committed,
        "instructions": n,
        "fetch_index": fetch_index,
        "fetch_stall_until": fetch_stall_until,
        "fetch_block_mispredict": fetch_block_mispredict,
        "ifq_occupancy": len(ifq),
        "rob_occupancy": len(rob),
        "lsq_occupancy": lsq_occupancy,
        "ready_instructions": len(ready),
        "pending_completions": sum(
            len(batch) for batch in completions.values()
        ),
    }
    if rob:
        head = rob[0]
        dump["rob_head"] = {
            "seq": head,
            "op": int(op_arr[head]),
            "state": state[head],
            "unresolved_deps": deps[head],
            "pc": pc_arr[head],
            "is_branch": op_arr[head] == _BRANCH,
            "precomputed": bool(precomputed[head]),
        }
    return dump
