"""Instruction model for the trace-driven simulator.

The simulator is *trace-driven*: a workload is a sequence of dynamic
instructions annotated with everything timing needs — operation class,
register dependences, memory address, branch behaviour, and (for the
instruction-precomputation enhancement) a redundancy key identifying
repeated computations.  Functional values are never computed; only
timing is modelled, which is all the Plackett-Burman methodology needs.

Two representations exist:

* :class:`Instruction` — a friendly per-instruction object for tests,
  examples and trace construction;
* :class:`~repro.workloads.trace.Trace` — a packed structure-of-arrays
  the pipeline actually executes (see ``repro.workloads``).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntEnum


class OpClass(IntEnum):
    """Operation classes, mirroring SimpleScalar's functional-unit classes."""

    IALU = 0        # integer add/sub/logic
    IMULT = 1       # integer multiply
    IDIV = 2        # integer divide
    FALU = 3        # floating-point add/sub/compare
    FMULT = 4       # floating-point multiply
    FDIV = 5        # floating-point divide
    FSQRT = 6       # floating-point square root
    LOAD = 7
    STORE = 8
    BRANCH = 9      # all control transfers (see BranchKind)


class BranchKind(IntEnum):
    """Sub-type of a BRANCH instruction (NONE for everything else)."""

    NONE = 0
    CONDITIONAL = 1
    CALL = 2
    RETURN = 3
    JUMP = 4  # unconditional direct jump


#: Operation classes eligible for instruction precomputation: the
#: mechanism removes redundant *computations*, not memory or control ops.
COMPUTE_CLASSES = frozenset(
    {
        OpClass.IALU,
        OpClass.IMULT,
        OpClass.IDIV,
        OpClass.FALU,
        OpClass.FMULT,
        OpClass.FDIV,
        OpClass.FSQRT,
    }
)

#: Register id meaning "no register".
NO_REG = -1
#: Address meaning "no memory access" / "no redundancy key".
NO_VALUE = -1


@dataclass(frozen=True)
class Instruction:
    """One dynamic instruction.

    Attributes
    ----------
    pc:
        Byte address of the instruction (drives I-cache/I-TLB behaviour).
    op:
        Operation class.
    src1, src2:
        Source register ids or ``NO_REG``.
    dst:
        Destination register id or ``NO_REG``.
    mem_addr:
        Effective byte address for LOAD/STORE, else ``NO_VALUE``.
    branch_kind:
        Control-transfer sub-type (``NONE`` for non-branches).
    taken:
        Actual branch outcome.
    target:
        Actual branch target address (``NO_VALUE`` for non-branches).
    redundancy_key:
        Identifier of the (opcode, operand-values) computation this
        instruction performs, shared by dynamically redundant
        executions; ``NO_VALUE`` when unique.  Used by the instruction
        precomputation enhancement (paper Section 4.3).
    """

    pc: int
    op: OpClass
    src1: int = NO_REG
    src2: int = NO_REG
    dst: int = NO_REG
    mem_addr: int = NO_VALUE
    branch_kind: BranchKind = BranchKind.NONE
    taken: bool = False
    target: int = NO_VALUE
    redundancy_key: int = NO_VALUE

    def __post_init__(self):
        if self.op is OpClass.BRANCH and self.branch_kind is BranchKind.NONE:
            raise ValueError("BRANCH instructions need a branch_kind")
        if self.op is not OpClass.BRANCH and self.branch_kind is not BranchKind.NONE:
            raise ValueError("only BRANCH instructions carry a branch_kind")
        if self.op in (OpClass.LOAD, OpClass.STORE) and self.mem_addr < 0:
            raise ValueError(f"{self.op.name} needs a memory address")

    @property
    def is_memory(self) -> bool:
        return self.op in (OpClass.LOAD, OpClass.STORE)

    @property
    def is_branch(self) -> bool:
        return self.op is OpClass.BRANCH

    @property
    def is_compute(self) -> bool:
        return self.op in COMPUTE_CLASSES
