"""Simulation result statistics.

:class:`CoreStats` is what one simulation run returns: the cycle count
(the response variable every Plackett-Burman experiment analyses) plus
the per-structure counters an architect uses to sanity-check behaviour
(miss rates, prediction accuracy, unit utilization, occupancy).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List


@dataclass
class CacheSnapshot:
    """Immutable copy of one cache/TLB's counters at end of run."""

    accesses: int = 0
    misses: int = 0
    writebacks: int = 0

    @property
    def hits(self) -> int:
        return self.accesses - self.misses

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0


@dataclass
class CoreStats:
    """Everything measured by one run of the superscalar core."""

    cycles: int = 0
    instructions: int = 0

    # Front end
    branches: int = 0
    mispredictions: int = 0
    btb_misfetches: int = 0
    ras_mispredictions: int = 0

    # Memory system
    l1i: CacheSnapshot = field(default_factory=CacheSnapshot)
    l1d: CacheSnapshot = field(default_factory=CacheSnapshot)
    l2: CacheSnapshot = field(default_factory=CacheSnapshot)
    itlb: CacheSnapshot = field(default_factory=CacheSnapshot)
    dtlb: CacheSnapshot = field(default_factory=CacheSnapshot)

    # Back end
    unit_operations: Dict[str, int] = field(default_factory=dict)
    dispatch_stall_rob: int = 0
    dispatch_stall_lsq: int = 0
    rob_occupancy_sum: int = 0

    #: Per-cycle stall attribution by cause, for telemetry
    #: (:mod:`repro.obs`).  Keys: ``fetch`` (I-cache/I-TLB latency and
    #: BTB misfetch bubbles), ``mispredict`` (recovery after a wrong
    #: direction/target), ``rob_full`` / ``lsq_full`` (dispatch
    #: blocked on a full buffer), ``fu_busy`` (ready work but no free
    #: functional unit issued anything).  Strictly observational:
    #: attribution never alters the cycle count, and a cycle can be
    #: attributed to more than one cause (front and back end stall
    #: independently).  Empty on :class:`CoreStats` objects restored
    #: from caches written before attribution existed — read it with
    #: ``getattr(stats, "stall_cycles", {})`` when provenance is
    #: unknown.
    stall_cycles: Dict[str, int] = field(default_factory=dict)

    # Enhancement
    precompute_hits: int = 0

    @property
    def ipc(self) -> float:
        """Committed instructions per cycle — the headline metric."""
        return self.instructions / self.cycles if self.cycles else 0.0

    @property
    def misprediction_rate(self) -> float:
        return self.mispredictions / self.branches if self.branches else 0.0

    @property
    def average_rob_occupancy(self) -> float:
        return self.rob_occupancy_sum / self.cycles if self.cycles else 0.0

    def integrity_failures(self) -> List[str]:
        """Every numerical-sanity check this object fails (none = ok).

        The checks cover what arithmetic bugs actually produce:
        negative counters (overflow of a narrower representation,
        sign errors), NaN/inf in the derived metrics, rates outside
        ``[0, 1]``, and counters that contradict each other
        (mispredictions without branches, misses without accesses).
        Strictly cheap — a few dozen comparisons — so the pipeline
        runs it on every finished simulation.
        """
        failures = []
        for name in ("cycles", "instructions", "branches",
                     "mispredictions", "btb_misfetches",
                     "ras_mispredictions", "dispatch_stall_rob",
                     "dispatch_stall_lsq", "rob_occupancy_sum",
                     "precompute_hits"):
            value = getattr(self, name)
            if not isinstance(value, (int, float)) or value < 0 \
                    or (isinstance(value, float)
                        and not math.isfinite(value)):
                failures.append(f"{name}={value!r} (negative or "
                                "non-finite)")
        if self.instructions and not self.cycles:
            failures.append(
                f"{self.instructions} instructions in 0 cycles"
            )
        if self.mispredictions > self.branches:
            failures.append(
                f"mispredictions={self.mispredictions} exceeds "
                f"branches={self.branches}"
            )
        for name in ("l1i", "l1d", "l2", "itlb", "dtlb"):
            snap = getattr(self, name)
            if snap.accesses < 0 or snap.misses < 0 \
                    or snap.writebacks < 0:
                failures.append(f"{name} carries a negative counter")
            elif snap.misses > snap.accesses:
                failures.append(
                    f"{name}: misses={snap.misses} exceeds "
                    f"accesses={snap.accesses}"
                )
        for mapping, label in ((self.unit_operations, "unit_operations"),
                               (self.stall_cycles, "stall_cycles")):
            for key, value in mapping.items():
                if not isinstance(value, int) or value < 0:
                    failures.append(
                        f"{label}[{key!r}]={value!r} (negative or "
                        "non-integral)"
                    )
        if self.stall_cycles:
            # Attribution invariants: each cause is a per-cycle flag,
            # so no bucket can exceed the run length, and the ROB-full
            # dispatch counter is the same event counted two ways.
            for key, value in self.stall_cycles.items():
                if isinstance(value, int) and value > self.cycles:
                    failures.append(
                        f"stall_cycles[{key!r}]={value} exceeds "
                        f"cycles={self.cycles}"
                    )
            rob_full = self.stall_cycles.get("rob_full")
            if rob_full is not None \
                    and rob_full != self.dispatch_stall_rob:
                failures.append(
                    f"stall_cycles['rob_full']={rob_full} disagrees "
                    f"with dispatch_stall_rob={self.dispatch_stall_rob}"
                )
        for name in ("ipc", "misprediction_rate",
                     "average_rob_occupancy"):
            value = getattr(self, name)
            if not math.isfinite(value) or value < 0:
                failures.append(f"{name}={value!r} (non-finite or "
                                "negative)")
        for name in ("misprediction_rate",):
            value = getattr(self, name)
            if math.isfinite(value) and value > 1.0:
                failures.append(f"{name}={value!r} exceeds 1")
        return failures

    def validate(self, context: str = "") -> "CoreStats":
        """Raise :class:`repro.guard.errors.StatsInvalid` on any
        integrity failure; returns ``self`` when clean.

        ``context`` names the run (typically the trace) in the error
        message.
        """
        failures = self.integrity_failures()
        if failures:
            from repro.guard.errors import StatsInvalid

            where = f"{context}: " if context else ""
            raise StatsInvalid(
                f"{where}simulation statistics failed "
                f"{len(failures)} integrity check(s): "
                + "; ".join(failures),
                failures=failures,
            )
        return self

    def summary(self) -> str:
        """A one-paragraph human-readable run summary."""
        lines = [
            f"cycles={self.cycles} instructions={self.instructions} "
            f"IPC={self.ipc:.3f}",
            f"branches={self.branches} "
            f"mispredict_rate={self.misprediction_rate:.3%} "
            f"btb_misfetches={self.btb_misfetches} "
            f"ras_mispredictions={self.ras_mispredictions}",
            f"L1I miss={self.l1i.miss_rate:.3%} "
            f"L1D miss={self.l1d.miss_rate:.3%} "
            f"L2 miss={self.l2.miss_rate:.3%}",
            f"ITLB miss={self.itlb.miss_rate:.3%} "
            f"DTLB miss={self.dtlb.miss_rate:.3%}",
            f"avg ROB occupancy={self.average_rob_occupancy:.1f} "
            f"precompute_hits={self.precompute_hits}",
        ]
        return "\n".join(lines)
