"""Main-memory (DRAM) timing model.

Table 8 gives three knobs: the latency of the *first* chunk of a block
transfer, the latency of each *following* chunk (fixed by the paper at
2% of the first-chunk latency), and the memory bus width ("Memory
Bandwidth", in bytes).  Fetching a cache block of B bytes therefore
costs::

    first + (ceil(B / bandwidth) - 1) * following

so a larger L2 block size interacts with bandwidth and the following
latency exactly as in the paper's machine.
"""

from __future__ import annotations


class MainMemory:
    """Flat DRAM with first/following-chunk latency and a fixed bus width."""

    def __init__(self, first_latency: int, following_latency: int, bandwidth: int):
        if first_latency < 1:
            raise ValueError("first-chunk latency must be at least 1 cycle")
        if following_latency < 0:
            raise ValueError("following-chunk latency cannot be negative")
        if bandwidth < 1:
            raise ValueError("memory bandwidth must be at least 1 byte")
        self.first_latency = first_latency
        self.following_latency = following_latency
        self.bandwidth = bandwidth
        self.accesses = 0

    def access(self, n_bytes: int) -> int:
        """Cycles to transfer ``n_bytes`` (one cache block) from DRAM."""
        if n_bytes < 1:
            raise ValueError("transfer size must be positive")
        self.accesses += 1
        chunks = -(-n_bytes // self.bandwidth)  # ceil division
        return self.first_latency + (chunks - 1) * self.following_latency

    def reset_stats(self) -> None:
        self.accesses = 0
