"""Instruction precomputation (Yi, Sendag, Lilja — Euro-Par 2002).

The enhancement the paper analyses in Section 4.3: the compiler
profiles the program, identifies the *highest-frequency redundant
computations* (same opcode, same operand values), and loads them into
an on-chip precomputation table before execution.  At issue, a compute
instruction whose (opcode, operands) tuple is present in the table
reads its result instead of executing — it bypasses the functional
units entirely.  Unlike value reuse (Sodani & Sohi 1997) the table is
never updated at run time.

In the trace model, every compute instruction carries a *redundancy
key* identifying its (opcode, operand-values) computation; this module
plays the compiler's role, selecting the top-``table_size`` keys by
dynamic execution count.
"""

from __future__ import annotations

from typing import FrozenSet, Optional, Set

from repro.cpu.isa import COMPUTE_CLASSES, NO_VALUE

#: The table size the paper evaluates (Section 4.3).
PAPER_TABLE_ENTRIES = 128


def build_precompute_table(
    trace, table_entries: int = PAPER_TABLE_ENTRIES
) -> FrozenSet[int]:
    """Select the highest-frequency redundant computations of a trace.

    Mirrors the paper's compiler pass: rank redundancy keys by dynamic
    execution count and keep the top ``table_entries``.  Keys executed
    only once are *not* redundant and are excluded — precomputing them
    could never remove a computation.
    """
    if table_entries < 1:
        raise ValueError("the precomputation table needs at least one entry")
    counts = trace.redundancy_counts()
    redundant = {k: c for k, c in counts.items() if c > 1 and k != NO_VALUE}
    chosen = sorted(redundant, key=lambda k: (-redundant[k], k))
    return frozenset(chosen[:table_entries])


def coverage(trace, table: Set[int]) -> float:
    """Fraction of dynamic compute instructions the table would satisfy."""
    compute_ops = frozenset(int(c) for c in COMPUTE_CLASSES)
    total = 0
    hits = 0
    op = trace.op
    key = trace.redundancy_key
    for i in range(len(trace)):
        if int(op[i]) in compute_ops:
            total += 1
            if int(key[i]) in table:
                hits += 1
    return hits / total if total else 0.0
