"""Loader for the compiled batched-core kernel.

The batched core's cycle loop has a C transcription
(``_native/core.c``) that runs one to two orders of magnitude faster
than the Python loop while producing **field-exact**
:class:`~repro.cpu.stats.CoreStats` — the same equivalence contract
the batched Python core honours against the reference model, enforced
by :mod:`repro.cpu.equivalence` over all three implementations.

This module owns the build-and-load machinery:

* the kernel is compiled on demand with whatever C compiler is on
  ``PATH`` (``cc``/``gcc``/``clang``) into a **content-addressed**
  shared object — the cache key hashes the source, the flags and the
  compiler, so editing ``core.c`` can never pick up a stale build;
* builds are atomic (temp file + ``os.replace``), so concurrent
  worker processes racing to build produce one good artifact;
* everything degrades gracefully: no toolchain, a failed build, or
  ``REPRO_NATIVE=0`` simply returns ``None`` and the caller falls
  back to the batched Python loop.  ``core="batched-native"`` makes
  the failure loud instead.

The compiled kernel is a pure function from (config vector, decoded
trace arrays) to a counter vector: no global state, no threads, no
callbacks into Python — safe under ``fork`` and trivially
deterministic.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import tempfile
from pathlib import Path
from typing import Optional, Set

import numpy as np

from repro.guard.errors import SimulationHang

from .isa import BranchKind, OpClass
from .params import MachineConfig
from .stats import CacheSnapshot, CoreStats

_SOURCE = Path(__file__).resolve().parent / "_native" / "core.c"
_CFLAGS = ("-O2", "-std=c99", "-fPIC", "-shared")


def _cflags() -> tuple:
    """The effective compiler flags, including any sanitizer extras.

    ``REPRO_NATIVE_CFLAGS`` appends flags to the defaults — the CI
    sanitizer job uses it to build the kernel with
    ``-fsanitize=address,undefined``.  The flags enter the build
    digest, so a sanitized artifact never shadows a production one.
    """
    extra = os.environ.get("REPRO_NATIVE_CFLAGS")  # repro: noqa[REP006] -- build-flag knob for the CI sanitizer job; flags enter the content address and every kernel build is bit-identical by contract
    if not extra:
        return _CFLAGS
    return _CFLAGS + tuple(extra.split())

#: Loaded kernel (ctypes CDLL), or False after a failed load attempt
#: so we never retry a broken toolchain on every simulation.
_lib = None
_failure: Optional[str] = None

# The C side hardcodes these ISA values; fail loudly if they drift.
assert int(OpClass.LOAD) == 7 and int(OpClass.STORE) == 8 \
    and int(OpClass.BRANCH) == 9 and len(OpClass) == 10
assert int(BranchKind.CONDITIONAL) == 1 and int(BranchKind.CALL) == 2 \
    and int(BranchKind.RETURN) == 3 and int(BranchKind.JUMP) == 4

_PREDICTOR_KINDS = {
    "2level": 0, "bimodal": 1, "taken": 2, "tournament": 3, "perfect": 4,
}
_REPLACEMENT = {"lru": 0, "fifo": 1, "random": 2}

#: Cache/TLB RNG seed (Cache.__init__ default rng_seed).
_RNG_SEED = 12345

_N_CFG = 44
_N_OUT = 53

# Output vector indices (core.c's OUT_* enum).
_O_STATUS = 0
_O_CYCLES = 1
_O_INSTRUCTIONS = 2
_O_BRANCHES = 3
_O_MISPREDICTIONS = 4
_O_BTB_MISFETCHES = 5
_O_RAS_MISPREDICTIONS = 6
_O_L1I = 7          # accesses, misses, writebacks
_O_L1D = 10
_O_L2 = 13
_O_ITLB = 16        # accesses, misses
_O_DTLB = 18
_O_OPS = 20         # IntALU, FPALU, IntMultDiv, FPMultDiv, MemPort
_O_DISPATCH_STALL_ROB = 25
_O_DISPATCH_STALL_LSQ = 26
_O_ROB_OCCUPANCY_SUM = 27
_O_STALL_FETCH = 28
_O_STALL_FU = 29
_O_STALL_LSQ = 30
_O_STALL_MISPREDICT = 31
_O_STALL_ROB = 32
_O_PRECOMPUTE_HITS = 33
_O_ERR_CYCLE = 34
_O_ERR_COMMITTED = 35
_O_ERR_LAST_COMMIT = 36
_O_ERR_FETCH_INDEX = 37
_O_ERR_FETCH_STALL_UNTIL = 38
_O_ERR_FETCH_BLOCK_MISPREDICT = 39
_O_ERR_IFQ_OCC = 40
_O_ERR_ROB_OCC = 41
_O_ERR_LSQ_OCC = 42
_O_ERR_READY = 43
_O_ERR_PENDING = 44
_O_ERR_HAS_HEAD = 45
_O_ERR_HEAD_SEQ = 46
_O_ERR_HEAD_OP = 47
_O_ERR_HEAD_STATE = 48
_O_ERR_HEAD_DEPS = 49
_O_ERR_HEAD_PC = 50
_O_ERR_HEAD_IS_BRANCH = 51
_O_ERR_HEAD_PRECOMPUTED = 52


def _toolchain() -> Optional[str]:
    for name in ("cc", "gcc", "clang"):
        path = shutil.which(name)
        if path:
            return path
    return None


def _cache_dir() -> Path:
    override = os.environ.get("REPRO_NATIVE_CACHE")  # repro: noqa[REP006] -- build-artifact location only; the artifact is content-addressed so the knob cannot change results
    if override:
        return Path(override)
    return Path.home() / ".cache" / "repro" / "native"


def _build(compiler: str) -> Path:
    """Compile the kernel into the content-addressed cache; idempotent."""
    source = _SOURCE.read_bytes()
    cflags = _cflags()
    digest = hashlib.sha256(
        source + b"\0" + " ".join(cflags).encode() + b"\0"
        + compiler.encode()
    ).hexdigest()[:20]
    cache = _cache_dir()
    artifact = cache / f"core-{digest}.so"
    if artifact.exists():
        return artifact
    cache.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=str(cache), suffix=".so.tmp")
    os.close(fd)
    try:
        result = subprocess.run(
            [compiler, *cflags, "-o", tmp, str(_SOURCE)],
            capture_output=True, text=True,
        )
        if result.returncode != 0:
            raise RuntimeError(
                f"kernel build failed ({compiler}): {result.stderr.strip()}"
            )
        os.replace(tmp, artifact)  # atomic under concurrent builders
    finally:
        if os.path.exists(tmp):
            os.unlink(tmp)
    return artifact


def _load():
    """The kernel library, building it if needed; None when unavailable."""
    global _lib, _failure  # repro: noqa[REP004] -- once-per-process memo of the build probe
    if _lib is not None:
        return _lib or None
    if os.environ.get("REPRO_NATIVE") == "0":  # repro: noqa[REP006] -- explicit opt-out knob; all cores are bit-identical so it cannot change results
        _lib = False
        _failure = "disabled via REPRO_NATIVE=0"
        return None
    try:
        compiler = _toolchain()
        if compiler is None:
            raise RuntimeError("no C compiler (cc/gcc/clang) on PATH")
        lib = ctypes.CDLL(str(_build(compiler)))
        lib.repro_simulate.restype = ctypes.c_int64
        lib.repro_simulate.argtypes = [
            ctypes.c_void_p,                      # cfg
            ctypes.c_int64,                       # n
            ctypes.c_void_p, ctypes.c_void_p,     # pc, op
            ctypes.c_void_p, ctypes.c_void_p,     # mem_addr, kind
            ctypes.c_void_p, ctypes.c_void_p,     # taken, target
            ctypes.c_void_p, ctypes.c_void_p,     # prod1, prod2
            ctypes.c_void_p,                      # store_prod
            ctypes.c_void_p,                      # pre_flag (nullable)
            ctypes.c_void_p, ctypes.c_void_p,     # op_unit, op_latency
            ctypes.c_void_p,                      # op_interval
            ctypes.c_void_p,                      # out
        ]
        _lib = lib
    except Exception as exc:
        _lib = False
        _failure = str(exc)
        return None
    return _lib


def _config_vector(config: MachineConfig, warmup: bool,
                   prefetch_lines: int, max_cycles: int,
                   hang_cycles: Optional[int]) -> np.ndarray:
    cfg = np.zeros(_N_CFG, np.int64)
    cfg[0:10] = (
        config.width, config.ifq_entries, config.rob_entries,
        config.lsq_entries, config.mispredict_penalty,
        _PREDICTOR_KINDS[config.branch_predictor],
        int(config.speculative_update == "decode"),
        config.ras_entries, config.btb_entries, config.btb_assoc,
    )
    cfg[10:14] = (config.l1i_size, config.l1i_assoc, config.l1i_block,
                  config.l1i_latency)
    cfg[14:18] = (config.l1d_size, config.l1d_assoc, config.l1d_block,
                  config.l1d_latency)
    cfg[18:22] = (config.l2_size, config.l2_assoc, config.l2_block,
                  config.l2_latency)
    cfg[22] = _REPLACEMENT[config.replacement_policy]
    cfg[23:26] = (config.mem_latency_first, config.mem_latency_following,
                  config.mem_bandwidth)
    cfg[26:30] = (config.itlb_entries, config.itlb_page_size,
                  config.itlb_assoc, config.itlb_latency)
    cfg[30:34] = (config.dtlb_entries, config.dtlb_page_size,
                  config.dtlb_assoc, config.dtlb_latency)
    cfg[34] = prefetch_lines
    cfg[35] = int(warmup)
    cfg[36] = max_cycles
    cfg[37] = -1 if hang_cycles is None else hang_cycles
    cfg[38:43] = (config.int_alus, config.fp_alus,
                  config.int_mult_div_units, config.fp_mult_div_units,
                  config.memory_ports)
    cfg[43] = _RNG_SEED
    return cfg


def _op_tables(config: MachineConfig):
    """OpClass-indexed (unit, latency, interval) tables — the same
    mapping FunctionalUnitPool builds (funits._dispatch)."""
    unit = np.array([0, 2, 2, 1, 3, 3, 3, 4, 4, 0], np.int64)
    latency = np.array([
        config.int_alu_latency, config.int_mult_latency,
        config.int_div_latency, config.fp_alu_latency,
        config.fp_mult_latency, config.fp_div_latency,
        config.fp_sqrt_latency, 1, 1, config.int_alu_latency,
    ], np.int64)
    interval = np.array([
        config.int_alu_interval, config.int_mult_interval,
        config.int_div_interval, config.fp_alu_interval,
        config.fp_mult_interval, config.fp_div_interval,
        config.fp_sqrt_interval, 1, 1, config.int_alu_interval,
    ], np.int64)
    return unit, latency, interval


def _stats_from(out: np.ndarray) -> CoreStats:
    stats = CoreStats()
    stats.cycles = int(out[_O_CYCLES])
    stats.instructions = int(out[_O_INSTRUCTIONS])
    stats.branches = int(out[_O_BRANCHES])
    stats.mispredictions = int(out[_O_MISPREDICTIONS])
    stats.btb_misfetches = int(out[_O_BTB_MISFETCHES])
    stats.ras_mispredictions = int(out[_O_RAS_MISPREDICTIONS])
    for name, base in (("l1i", _O_L1I), ("l1d", _O_L1D), ("l2", _O_L2)):
        setattr(stats, name, CacheSnapshot(
            accesses=int(out[base]), misses=int(out[base + 1]),
            writebacks=int(out[base + 2]),
        ))
    for name, base in (("itlb", _O_ITLB), ("dtlb", _O_DTLB)):
        setattr(stats, name, CacheSnapshot(
            accesses=int(out[base]), misses=int(out[base + 1]),
            writebacks=0,
        ))
    stats.unit_operations = {
        "IntALU": int(out[_O_OPS]),
        "FPALU": int(out[_O_OPS + 1]),
        "IntMultDiv": int(out[_O_OPS + 2]),
        "FPMultDiv": int(out[_O_OPS + 3]),
        "MemPort": int(out[_O_OPS + 4]),
    }
    stats.dispatch_stall_rob = int(out[_O_DISPATCH_STALL_ROB])
    stats.dispatch_stall_lsq = int(out[_O_DISPATCH_STALL_LSQ])
    stats.rob_occupancy_sum = int(out[_O_ROB_OCCUPANCY_SUM])
    stats.stall_cycles = {
        "fetch": int(out[_O_STALL_FETCH]),
        "fu_busy": int(out[_O_STALL_FU]),
        "lsq_full": int(out[_O_STALL_LSQ]),
        "mispredict": int(out[_O_STALL_MISPREDICT]),
        "rob_full": int(out[_O_STALL_ROB]),
    }
    stats.precompute_hits = int(out[_O_PRECOMPUTE_HITS])
    return stats


def _hang_dump_from(trace, n: int, out: np.ndarray,
                    pre_flags) -> dict:
    """Reassemble Pipeline._hang_dump from the kernel's error fields."""
    dump = {
        "trace": trace.name,
        "cycle": int(out[_O_ERR_CYCLE]),
        "committed": int(out[_O_ERR_COMMITTED]),
        "instructions": n,
        "fetch_index": int(out[_O_ERR_FETCH_INDEX]),
        "fetch_stall_until": int(out[_O_ERR_FETCH_STALL_UNTIL]),
        "fetch_block_mispredict":
            bool(out[_O_ERR_FETCH_BLOCK_MISPREDICT]),
        "ifq_occupancy": int(out[_O_ERR_IFQ_OCC]),
        "rob_occupancy": int(out[_O_ERR_ROB_OCC]),
        "lsq_occupancy": int(out[_O_ERR_LSQ_OCC]),
        "ready_instructions": int(out[_O_ERR_READY]),
        "pending_completions": int(out[_O_ERR_PENDING]),
    }
    if out[_O_ERR_HAS_HEAD]:
        dump["rob_head"] = {
            "seq": int(out[_O_ERR_HEAD_SEQ]),
            "op": int(out[_O_ERR_HEAD_OP]),
            "state": int(out[_O_ERR_HEAD_STATE]),
            "unresolved_deps": int(out[_O_ERR_HEAD_DEPS]),
            "pc": int(out[_O_ERR_HEAD_PC]),
            "is_branch": bool(out[_O_ERR_HEAD_IS_BRANCH]),
            "precomputed": bool(out[_O_ERR_HEAD_PRECOMPUTED]),
        }
    return dump


def simulate_native(
    config: MachineConfig,
    trace,
    precompute_table: Optional[Set[int]],
    max_cycles: Optional[int],
    warmup: bool,
    prefetch_lines: int,
    hang_cycles: Optional[int],
    max_instructions: Optional[int],
    *,
    required: bool = False,
) -> Optional[CoreStats]:
    """Run one trace on the compiled kernel.

    Returns ``None`` when the kernel is unavailable (no toolchain,
    failed build, or ``REPRO_NATIVE=0``) so the caller can fall back;
    with ``required=True`` that becomes a loud :class:`RuntimeError`.
    Raises exactly the exceptions the Python cores raise — same
    messages, same :class:`SimulationHang` dump.
    """
    from .batched import _precompute_flags
    from .pipeline import SimulationError

    lib = _load()
    if lib is None:
        if required:
            raise RuntimeError(
                f"native simulator kernel unavailable: {_failure}"
            )
        return None
    if prefetch_lines < 0:
        raise ValueError("prefetch_lines cannot be negative")
    n = len(trace)
    if max_instructions is not None and n > max_instructions:
        raise SimulationError(
            f"{trace.name}: trace has {n} instructions, over the "
            f"{max_instructions}-instruction budget"
        )
    if max_cycles is None:
        max_cycles = 400 * n + 100_000

    decoded = trace.decoded()
    flags = _precompute_flags(trace, precompute_table)
    pre = None if flags is None else np.asarray(flags, np.uint8)
    cfg = _config_vector(config, warmup, prefetch_lines, max_cycles,
                         hang_cycles)
    op_unit, op_latency, op_interval = _op_tables(config)
    out = np.zeros(_N_OUT, np.int64)
    taken_u8 = trace.taken.view(np.uint8)

    status = lib.repro_simulate(
        cfg.ctypes.data, n,
        trace.pc.ctypes.data, trace.op.ctypes.data,
        trace.mem_addr.ctypes.data, trace.branch_kind.ctypes.data,
        taken_u8.ctypes.data, trace.target.ctypes.data,
        decoded.prod1.ctypes.data, decoded.prod2.ctypes.data,
        decoded.store_prod.ctypes.data,
        None if pre is None else pre.ctypes.data,
        op_unit.ctypes.data, op_latency.ctypes.data,
        op_interval.ctypes.data,
        out.ctypes.data,
    )
    if status == 1:
        committed = int(out[_O_ERR_COMMITTED])
        raise SimulationError(
            f"{trace.name}: exceeded {max_cycles} cycles with "
            f"{committed}/{n} committed — model deadlock?"
        )
    if status == 2:
        cycle = int(out[_O_ERR_CYCLE])
        committed = int(out[_O_ERR_COMMITTED])
        gap = cycle - int(out[_O_ERR_LAST_COMMIT])
        raise SimulationHang(
            f"{trace.name}: no instruction retired for {gap} cycles "
            f"({committed}/{n} committed at cycle {cycle}) — "
            "livelocked simulation",
            dump=_hang_dump_from(trace, n, out, pre),
        )
    if status != 0:
        raise RuntimeError(
            f"native simulator kernel internal error {status} on "
            f"{trace.name}"
        )
    return _stats_from(out).validate(trace.name)
