"""Design-of-experiments substrate: Plackett-Burman, factorial, ANOVA.

This package is the statistical machinery of the reproduction.  The
public surface:

* :func:`pb_design` / :func:`pb_matrix` — Plackett-Burman designs of
  any constructible size, with foldover (paper Section 2.2).
* :class:`DesignMatrix` — named, validated +-1 design matrices.
* :func:`compute_effects` / :class:`EffectTable` / :func:`sum_of_ranks`
  — the paper's effect and rank computations (Table 4, Table 9).
* :func:`full_factorial_design` / :func:`anova` — the full
  multifactorial technique of Table 1 and workflow step 3.
* :func:`oat_design` — the one-at-a-time baseline the paper critiques.
* :class:`GaloisField` — finite fields backing the Paley construction.
"""

from .anova import AnovaResult, EffectVariation, anova
from .effects import (
    EffectTable,
    compute_effects,
    interaction_effect,
    rank_matrix,
    significance_gap,
    sum_of_ranks,
)
from .factorial import (
    contrast_column,
    effect_subsets,
    full_factorial_design,
    subset_label,
)
from .fractional import (
    FractionalFactorial,
    fractional_factorial,
    half_fraction,
)
from .galois import GaloisField, is_prime, prime_power_decomposition
from .lenth import (
    LenthResult,
    lenth_test,
    pseudo_standard_error,
    significant_by_lenth,
)
from .matrix import HIGH, LOW, DesignMatrix
from .oat import design_cost, oat_design, oat_effects
from .pb import (
    dummy_factor_names,
    next_multiple_of_four,
    pb_design,
    pb_design_size,
    pb_matrix,
    quadratic_residue_row,
)

__all__ = [
    "AnovaResult",
    "DesignMatrix",
    "EffectTable",
    "EffectVariation",
    "FractionalFactorial",
    "fractional_factorial",
    "half_fraction",
    "GaloisField",
    "HIGH",
    "LenthResult",
    "lenth_test",
    "pseudo_standard_error",
    "significant_by_lenth",
    "LOW",
    "anova",
    "compute_effects",
    "contrast_column",
    "design_cost",
    "dummy_factor_names",
    "effect_subsets",
    "full_factorial_design",
    "interaction_effect",
    "is_prime",
    "next_multiple_of_four",
    "oat_design",
    "oat_effects",
    "pb_design",
    "pb_design_size",
    "pb_matrix",
    "prime_power_decomposition",
    "quadratic_residue_row",
    "rank_matrix",
    "significance_gap",
    "subset_label",
    "sum_of_ranks",
]
