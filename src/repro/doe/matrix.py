"""Two-level design matrices.

A design matrix is the central object of this library: an ``R x C``
array of +1/-1 entries where each row is one *run* (a simulator
configuration) and each column is one *factor* (a processor parameter).
``DesignMatrix`` wraps the raw array with factor names, validation, and
the handful of structural operations the methodology needs (foldover,
column selection, run enumeration).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence

import numpy as np

HIGH = 1
LOW = -1


class DesignMatrix:
    """An ``R x C`` matrix of +-1 entries with named factor columns.

    Parameters
    ----------
    matrix:
        Array-like of shape (runs, factors) containing only +1 and -1.
    factor_names:
        Optional column names; defaults to ``F1 .. Fc``.  Names must be
        unique and match the column count.
    """

    def __init__(
        self,
        matrix: Sequence[Sequence[int]],
        factor_names: Optional[Sequence[str]] = None,
    ):
        arr = np.asarray(matrix, dtype=np.int8)
        if arr.ndim != 2:
            raise ValueError("design matrix must be two-dimensional")
        if not np.isin(arr, (HIGH, LOW)).all():
            raise ValueError("design matrix entries must be +1 or -1")
        self._matrix = arr
        if factor_names is None:
            factor_names = [f"F{i + 1}" for i in range(arr.shape[1])]
        factor_names = list(factor_names)
        if len(factor_names) != arr.shape[1]:
            raise ValueError(
                f"{len(factor_names)} factor names for {arr.shape[1]} columns"
            )
        if len(set(factor_names)) != len(factor_names):
            raise ValueError("factor names must be unique")
        self.factor_names = factor_names

    # -- basic accessors ----------------------------------------------------

    @property
    def matrix(self) -> np.ndarray:
        """The underlying +-1 array (do not mutate)."""
        return self._matrix

    @property
    def n_runs(self) -> int:
        return self._matrix.shape[0]

    @property
    def n_factors(self) -> int:
        return self._matrix.shape[1]

    def column(self, factor: str) -> np.ndarray:
        """The +-1 column for a named factor."""
        return self._matrix[:, self._index(factor)]

    def run(self, i: int) -> Dict[str, int]:
        """Run ``i`` as a ``{factor_name: +-1}`` mapping."""
        row = self._matrix[i]
        return dict(zip(self.factor_names, (int(v) for v in row)))

    def runs(self) -> Iterator[Dict[str, int]]:
        """Iterate over all runs as factor->level mappings."""
        for i in range(self.n_runs):
            yield self.run(i)

    def _index(self, factor: str) -> int:
        try:
            return self.factor_names.index(factor)
        except ValueError:
            raise KeyError(f"unknown factor {factor!r}") from None

    # -- structural properties ----------------------------------------------

    def is_balanced(self) -> bool:
        """True if every column has equally many +1s and -1s."""
        return bool((self._matrix.sum(axis=0) == 0).all())

    def is_orthogonal(self) -> bool:
        """True if all pairs of distinct columns are orthogonal."""
        gram = self._matrix.astype(np.int64).T @ self._matrix.astype(np.int64)
        off_diagonal = gram - np.diag(np.diag(gram))
        return bool((off_diagonal == 0).all())

    # -- derived designs ----------------------------------------------------

    def foldover(self) -> "DesignMatrix":
        """Return this design augmented with its sign-reversed mirror.

        The foldover doubles the run count and de-aliases main effects
        from two-factor interactions (Montgomery 1991); it is the form
        the paper uses for all its experiments (Table 3).
        """
        folded = np.vstack([self._matrix, -self._matrix])
        return DesignMatrix(folded, self.factor_names)

    def with_factor_names(self, names: Sequence[str]) -> "DesignMatrix":
        """A copy of this design with different column names.

        If fewer names than columns are given, the remaining columns are
        labelled as dummy factors — exactly how the paper handles
        ``N < X - 1`` (its Table 9 carries "Dummy Factor #1/#2").
        """
        names = list(names)
        if len(names) > self.n_factors:
            raise ValueError(
                f"{len(names)} names exceed {self.n_factors} design columns"
            )
        n_dummies = self.n_factors - len(names)
        full = names + [f"Dummy Factor #{i + 1}" for i in range(n_dummies)]
        return DesignMatrix(self._matrix, full)

    def interaction_column(self, factor_a: str, factor_b: str) -> np.ndarray:
        """Elementwise product column used to estimate an interaction."""
        return self.column(factor_a) * self.column(factor_b)

    # -- dunder -------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DesignMatrix):
            return NotImplemented
        return (
            self.factor_names == other.factor_names
            and np.array_equal(self._matrix, other._matrix)
        )

    def __repr__(self) -> str:
        return (
            f"DesignMatrix(runs={self.n_runs}, factors={self.n_factors})"
        )

    def to_lines(self) -> List[str]:
        """Render the matrix as the paper renders it: '+1'/'-1' cells."""
        return [
            " ".join(f"{v:+d}".replace("+1", "+1").rjust(2) for v in row)
            for row in self._matrix
        ]
