"""Plackett-Burman (PB) design construction.

A PB design studies ``N`` two-level factors in ``X`` runs, where ``X``
is the next multiple of four greater than ``N`` (Plackett & Burman
1946).  Section 2.2 of the paper describes the construction this module
implements:

* for most sizes the design is a *circulant*: a published first row of
  +-1 entries is circularly right-shifted ``X - 2`` times and a final
  row of all -1 entries is appended (the paper's Table 2 shows X = 8);
* the *foldover* variant (Montgomery 1991) appends the sign-reversed
  matrix, doubling the run count to ``2X`` and protecting main effects
  from two-factor interactions (the paper's Table 3, and the form used
  for every experiment in Section 4).

Rather than hard-coding every published row, the circulant first rows
for ``X = q + 1`` with ``q`` a prime ``= 3 (mod 4)`` are *derived* from
the quadratic residues of GF(q) — this reproduces the published rows
exactly (e.g. ``+ + + - + - -`` for X = 8) and extends to X = 44, the
size the paper uses for its 43-column experiments.  Sizes with
prime-power ``q`` (e.g. X = 28 via GF(27)) use the full Paley
construction, powers of two use Sylvester doubling, and X = 36 uses the
published Plackett-Burman row.  Every constructed design is verified to
be balanced and orthogonal before it is returned.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from .galois import GaloisField, is_prime, prime_power_decomposition
from .matrix import DesignMatrix

#: Published circulant generator rows (Plackett & Burman 1946) for sizes
#: not covered by the quadratic-residue derivation.  Keys are X.
_GENERATOR_ROWS = {
    36: "-+-+++---+++++-+++--+----+-+-++--+-",
}


def next_multiple_of_four(n: int) -> int:
    """The smallest multiple of 4 strictly greater than ``n``.

    >>> next_multiple_of_four(7)
    8
    >>> next_multiple_of_four(8)
    12
    >>> next_multiple_of_four(43)
    44
    """
    return 4 * (n // 4 + 1)


def pb_design_size(n_factors: int) -> int:
    """Number of runs of the base (non-foldover) PB design for ``n_factors``.

    The design matrix has ``X - 1`` columns, so ``X`` is the next
    multiple of four greater than ``n_factors``.
    """
    if n_factors < 1:
        raise ValueError("a design needs at least one factor")
    return next_multiple_of_four(n_factors)


def quadratic_residue_row(x: int) -> np.ndarray:
    """First row of the circulant PB design of size ``x`` from GF(x-1).

    Valid when ``q = x - 1`` is a prime congruent to 3 mod 4.  Entry 0
    is +1 and entry ``j`` is the quadratic character of ``j`` in GF(q);
    for X = 8 this yields the paper's Table 2 row ``+ + + - + - -``.
    """
    q = x - 1
    if not is_prime(q) or q % 4 != 3:
        raise ValueError(
            f"no quadratic-residue row for X={x}: {q} is not a prime = 3 mod 4"
        )
    field = GaloisField(q)
    row = np.empty(q, dtype=np.int8)
    row[0] = 1
    for j in range(1, q):
        row[j] = field.quadratic_character(j)
    return row


def _circulant_from_row(first_row: np.ndarray) -> np.ndarray:
    """Build the full X x (X-1) matrix from a circulant first row.

    The next ``X - 2`` rows are circular *right* shifts of the first
    row, and the last row is all -1 (Section 2.2 of the paper).
    """
    width = len(first_row)
    x = width + 1
    matrix = np.empty((x, width), dtype=np.int8)
    row = np.asarray(first_row, dtype=np.int8)
    for i in range(x - 1):
        matrix[i] = row
        row = np.roll(row, 1)
    matrix[x - 1] = -1
    return matrix


def _paley_matrix(q: int) -> np.ndarray:
    """PB design of size ``q + 1`` by the Paley-I construction over GF(q).

    Used for prime-power ``q = 3 (mod 4)`` where the simple circulant
    derivation does not apply (e.g. q = 27 for the 28-run design).
    """
    field = GaloisField(q)
    x = q + 1
    # Jacobsthal matrix: Q[i][j] = chi(a_i - a_j).
    jacobsthal = np.empty((q, q), dtype=np.int64)
    for i in range(q):
        for j in range(q):
            jacobsthal[i, j] = field.quadratic_character(field.sub(i, j))
    hadamard = np.empty((x, x), dtype=np.int64)
    hadamard[0, 0] = 1
    hadamard[0, 1:] = 1
    hadamard[1:, 0] = -1
    hadamard[1:, 1:] = jacobsthal
    hadamard[np.arange(1, x), np.arange(1, x)] = 1  # S + I on the diagonal
    return _design_from_hadamard(hadamard)


def _design_from_hadamard(hadamard: np.ndarray) -> np.ndarray:
    """Normalize a Hadamard matrix into PB design form.

    Rows are sign-flipped so the first column is all +1, the first
    column is dropped, the whole matrix is negated so the distinguished
    constant row is all -1 (the paper's convention), and that row is
    moved to the bottom.
    """
    h = hadamard.copy()
    flip = h[:, 0] < 0
    h[flip] *= -1
    design = -h[:, 1:]
    all_minus = np.where((design == -1).all(axis=1))[0]
    if len(all_minus) == 1 and all_minus[0] != design.shape[0] - 1:
        order = [i for i in range(design.shape[0]) if i != all_minus[0]]
        order.append(int(all_minus[0]))
        design = design[order]
    return design.astype(np.int8)


def _sylvester_hadamard(x: int) -> np.ndarray:
    """Sylvester Hadamard matrix for ``x`` a power of two."""
    h = np.array([[1]], dtype=np.int64)
    while h.shape[0] < x:
        h = np.block([[h, h], [h, -h]])
    return h


def _double_design(design: np.ndarray) -> np.ndarray:
    """Build a design of size 2X from one of size X via Hadamard doubling."""
    x = design.shape[0]
    hadamard = np.empty((x, x), dtype=np.int64)
    hadamard[:, 0] = 1
    hadamard[:, 1:] = design
    doubled = np.block([[hadamard, hadamard], [hadamard, -hadamard]])
    return _design_from_hadamard(doubled)


def pb_matrix(x: int) -> np.ndarray:
    """The raw ``X x (X-1)`` Plackett-Burman matrix for run count ``x``.

    Tries, in order: the quadratic-residue circulant (prime ``q``), a
    published generator row, the Paley construction (prime-power ``q``),
    Sylvester doubling (powers of two), and recursive doubling of the
    half-size design.  Raises ``ValueError`` when no construction
    applies (a genuinely rare size at the scales architects use).
    """
    if x < 4 or x % 4 != 0:
        raise ValueError(f"PB designs exist only for multiples of 4, not {x}")
    q = x - 1
    if is_prime(q) and q % 4 == 3:
        design = _circulant_from_row(quadratic_residue_row(x))
    elif x in _GENERATOR_ROWS:
        row = np.array(
            [1 if c == "+" else -1 for c in _GENERATOR_ROWS[x]], dtype=np.int8
        )
        design = _circulant_from_row(row)
    elif prime_power_decomposition(q) is not None and q % 4 == 3:
        design = _paley_matrix(q)
    elif x & (x - 1) == 0:  # power of two
        design = _design_from_hadamard(_sylvester_hadamard(x))
    elif x % 8 == 0 and _constructible(x // 2):
        design = _double_design(pb_matrix(x // 2))
    else:
        raise ValueError(f"no known Plackett-Burman construction for X={x}")
    _validate(design, x)
    return design


def _constructible(x: int) -> bool:
    if x < 4 or x % 4 != 0:
        return False
    q = x - 1
    if prime_power_decomposition(q) is not None and q % 4 == 3:
        return True
    if x in _GENERATOR_ROWS or x & (x - 1) == 0:
        return True
    return x % 8 == 0 and _constructible(x // 2)


def _validate(design: np.ndarray, x: int) -> None:
    """Assert the structural invariants of a PB design matrix."""
    if design.shape != (x, x - 1):
        raise AssertionError(f"bad design shape {design.shape} for X={x}")
    if (design.sum(axis=0) != 0).any():
        raise AssertionError("PB design columns must be balanced")
    gram = design.astype(np.int64).T @ design.astype(np.int64)
    if (gram - np.diag(np.diag(gram)) != 0).any():
        raise AssertionError("PB design columns must be orthogonal")


def pb_design(
    n_factors: Optional[int] = None,
    *,
    factor_names: Optional[Sequence[str]] = None,
    runs: Optional[int] = None,
    foldover: bool = False,
) -> DesignMatrix:
    """Construct a Plackett-Burman :class:`DesignMatrix`.

    Parameters
    ----------
    n_factors:
        Number of real factors; the run count is chosen automatically
        as the next multiple of four.  May be omitted when
        ``factor_names`` or ``runs`` is given.
    factor_names:
        Names for the real factors.  Surplus design columns are labelled
        ``Dummy Factor #k``, mirroring the paper's Table 9.
    runs:
        Explicit run count ``X`` (must be a multiple of 4 and large
        enough for the requested factors).
    foldover:
        When True, return the ``2X``-run foldover design (Table 3).

    >>> design = pb_design(7)
    >>> design.n_runs, design.n_factors
    (8, 7)
    >>> pb_design(43, foldover=True).n_runs
    88
    """
    if factor_names is not None:
        names = list(factor_names)
        if n_factors is None:
            n_factors = len(names)
        elif n_factors != len(names):
            raise ValueError("n_factors disagrees with factor_names length")
    else:
        names = None
    if n_factors is None:
        if runs is None:
            raise ValueError("give n_factors, factor_names, or runs")
        n_factors = runs - 1
    x = pb_design_size(n_factors) if runs is None else runs
    if x - 1 < n_factors:
        raise ValueError(f"{x} runs support at most {x - 1} factors")
    design = DesignMatrix(pb_matrix(x))
    if names is not None:
        design = design.with_factor_names(names)
    if foldover:
        design = design.foldover()
    return design


def dummy_factor_names(design: DesignMatrix) -> List[str]:
    """Names of the design's dummy (unassigned) columns."""
    return [n for n in design.factor_names if n.startswith("Dummy Factor #")]
