"""Lenth's method: significance testing for unreplicated designs.

The paper identifies the "significant" parameters by eyeballing the
jump in the sum-of-ranks column.  The statistics literature has a
formal tool for exactly this situation — an unreplicated two-level
design with no error degrees of freedom — in Lenth (1989):

1. estimate the effect scale robustly:
   ``s0 = 1.5 * median(|effect|)``;
2. re-estimate using only effects plausibly null:
   ``PSE = 1.5 * median(|effect| : |effect| < 2.5 * s0)``
   (the *pseudo standard error*);
3. an effect is significant when ``|effect| / PSE`` exceeds the margin
   of error ``t(0.975, d) `` with ``d = m / 3`` degrees of freedom for
   ``m`` effects.

This module implements the method on :class:`EffectTable` objects, so
a PB screen can report statistically-backed significance per benchmark
in addition to the paper's cross-benchmark rank heuristic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from .effects import EffectTable


def pseudo_standard_error(effects: Sequence[float]) -> float:
    """Lenth's PSE: a robust scale estimate from the effects alone."""
    magnitudes = np.abs(np.asarray(effects, dtype=np.float64))
    if len(magnitudes) < 3:
        raise ValueError("Lenth's method needs at least 3 effects")
    s0 = 1.5 * float(np.median(magnitudes))
    if s0 == 0.0:
        return 0.0
    trimmed = magnitudes[magnitudes < 2.5 * s0]
    if len(trimmed) == 0:
        return s0
    return 1.5 * float(np.median(trimmed))


def _t_quantile(p: float, dof: float) -> float:
    """Student-t quantile via scipy when available, else a Cornish-
    Fisher style normal correction (adequate for dof >= 3)."""
    try:
        from scipy.stats import t

        return float(t.ppf(p, dof))
    except ImportError:  # pragma: no cover - scipy is a soft dep
        from math import sqrt

        # Abramowitz & Stegun 26.7.5 expansion around the normal.
        z = _normal_quantile(p)
        g1 = (z ** 3 + z) / 4.0
        g2 = (5 * z ** 5 + 16 * z ** 3 + 3 * z) / 96.0
        return z + g1 / dof + g2 / dof ** 2


def _normal_quantile(p: float) -> float:
    """Standard normal quantile (Acklam's rational approximation)."""
    # Only used in the scipy-free fallback path.
    from math import sqrt, log

    if not 0.0 < p < 1.0:
        raise ValueError("p must be in (0, 1)")
    # Symmetry
    if p < 0.5:
        return -_normal_quantile(1.0 - p)
    q = sqrt(-2.0 * log(1.0 - p))
    return q - (2.515517 + 0.802853 * q + 0.010328 * q * q) / (
        1.0 + 1.432788 * q + 0.189269 * q * q + 0.001308 * q ** 3
    )


@dataclass(frozen=True)
class LenthResult:
    """Outcome of Lenth's test on one effect table."""

    pse: float
    margin_of_error: float            # PSE * t(0.975, m/3)
    t_ratios: Tuple[float, ...]       # effect / PSE, per factor
    factor_names: Tuple[str, ...]

    def significant_factors(self) -> List[str]:
        """Factors whose |t-ratio| exceeds the margin threshold."""
        if self.pse == 0.0:
            return []
        threshold = self.margin_of_error / self.pse
        return [
            name
            for name, ratio in zip(self.factor_names, self.t_ratios)
            if abs(ratio) > threshold
        ]

    def t_ratio(self, factor: str) -> float:
        return self.t_ratios[self.factor_names.index(factor)]


def lenth_test(table: EffectTable, alpha: float = 0.05) -> LenthResult:
    """Apply Lenth's method to one benchmark's effect table.

    Returns the PSE, the margin of error at level ``alpha`` and the
    per-factor t-like ratios; dummy-factor effects participate exactly
    like real factors (they *should* land below the margin — a useful
    self-check of the whole experiment).
    """
    effects = np.asarray(table.effects, dtype=np.float64)
    pse = pseudo_standard_error(effects)
    m = len(effects)
    dof = max(1.0, m / 3.0)
    t_crit = _t_quantile(1.0 - alpha / 2.0, dof)
    margin = pse * t_crit
    ratios = tuple(
        float(e / pse) if pse else 0.0 for e in effects
    )
    return LenthResult(pse, margin, ratios, table.factor_names)


def significant_by_lenth(
    tables: Dict[str, EffectTable],
    alpha: float = 0.05,
    min_benchmarks: int = 1,
) -> List[str]:
    """Factors Lenth-significant on at least ``min_benchmarks`` tables.

    A cross-benchmark complement to the paper's sum-of-ranks rule: a
    parameter counts if its effect clears the statistical bar on
    enough individual benchmarks.
    """
    counts: Dict[str, int] = {}
    for table in tables.values():
        for factor in lenth_test(table, alpha).significant_factors():
            counts[factor] = counts.get(factor, 0) + 1
    return sorted(
        (f for f, c in counts.items() if c >= min_benchmarks),
        key=lambda f: -counts[f],
    )
