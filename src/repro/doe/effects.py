"""Effect computation and ranking for two-level designs.

The paper computes a factor's *effect* by multiplying each run's
response by that factor's +-1 entry for the run and summing (Section
2.2, Table 4).  Only the magnitude of an effect is meaningful — the
sign depends on the arbitrary orientation of "high" and "low" — so
factors are *ranked* by ``|effect|`` with rank 1 for the largest.

These ranks are the raw material of everything in Section 4: summed
across benchmarks they identify key parameters (Table 9), collected
into vectors they classify benchmarks (Table 10), and compared
before/after an enhancement they explain its impact (Table 12).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Sequence, Tuple

import numpy as np

from .matrix import DesignMatrix


@dataclass(frozen=True)
class EffectTable:
    """Effects of every factor of one design on one response.

    Attributes
    ----------
    factor_names:
        Column names in design order.
    effects:
        Signed effect per factor, in the paper's un-normalized
        convention (sum of ``entry * response`` over runs).
    """

    factor_names: Tuple[str, ...]
    effects: Tuple[float, ...]
    _by_name: Dict[str, float] = field(init=False, repr=False, compare=False)

    def __post_init__(self):
        if not self.factor_names:
            raise ValueError(
                "an EffectTable needs at least one factor: every query "
                "(ranks, relative magnitudes) is meaningless on an "
                "empty table"
            )
        if len(self.factor_names) != len(self.effects):
            raise ValueError(
                f"{len(self.factor_names)} factor names but "
                f"{len(self.effects)} effects"
            )
        object.__setattr__(
            self, "_by_name", dict(zip(self.factor_names, self.effects))
        )

    def effect(self, factor: str) -> float:
        """Signed effect of one factor."""
        return self._by_name[factor]

    def magnitude(self, factor: str) -> float:
        """Absolute effect of one factor (the quantity that matters)."""
        return abs(self._by_name[factor])

    def relative_magnitude(self, factor: str) -> float:
        """|effect| as a fraction of the largest |effect| in the table.

        The paper's Section 4.1 warns that "the rank alone cannot be
        used to measure the significance of a parameter's impact":
        its example is art's FP square-root latency at rank 5 yet
        "completely overshadowed" by ranks 1-4.  This quantity is the
        overshadowing made visible: rank 5 with relative magnitude
        0.02 is noise; rank 5 at 0.6 is a real contender.
        """
        largest = max(abs(e) for e in self.effects)
        if largest == 0:
            return 0.0
        return abs(self._by_name[factor]) / largest

    def ranks(self) -> Dict[str, int]:
        """Competition-free ranks by |effect|: 1 = most significant.

        Ties are broken by design column order so that every factor
        receives a distinct rank, as in the paper's tables.
        """
        order = sorted(
            range(len(self.effects)),
            key=lambda i: (-abs(self.effects[i]), i),
        )
        ranks = {}
        for rank, idx in enumerate(order, start=1):
            ranks[self.factor_names[idx]] = rank
        return ranks

    def sorted_by_magnitude(self) -> List[Tuple[str, float]]:
        """(factor, effect) pairs, most significant first."""
        pairs = list(zip(self.factor_names, self.effects))
        pairs.sort(key=lambda item: -abs(item[1]))
        return pairs

    def top(self, k: int) -> List[str]:
        """The ``k`` most significant factor names."""
        return [name for name, _ in self.sorted_by_magnitude()[:k]]


def compute_effects(
    design: DesignMatrix,
    responses: Sequence[float],
    *,
    normalize: bool = False,
) -> EffectTable:
    """Compute every factor's effect from a design and its run responses.

    Parameters
    ----------
    design:
        The design matrix whose rows produced ``responses``.
    responses:
        One response value (e.g. simulated cycle count) per run, in row
        order.
    normalize:
        If True, divide each effect by half the run count, turning the
        paper's raw sums into the classical "average response at high
        minus average response at low" effect estimate.  Ranks are
        unaffected.

    >>> from repro.doe import pb_design
    >>> design = pb_design(7)
    >>> table = compute_effects(design, [1, 9, 74, 28, 3, 6, 112, 84])
    >>> round(table.effect("F1"))
    -23
    """
    y = np.asarray(responses, dtype=np.float64)
    if y.shape != (design.n_runs,):
        raise ValueError(
            f"expected {design.n_runs} responses, got {y.shape}"
        )
    raw = design.matrix.astype(np.float64).T @ y
    if normalize:
        raw = raw / (design.n_runs / 2.0)
    return EffectTable(tuple(design.factor_names), tuple(float(v) for v in raw))


def interaction_effect(
    design: DesignMatrix,
    responses: Sequence[float],
    factor_a: str,
    factor_b: str,
    *,
    normalize: bool = False,
) -> float:
    """Estimate a two-factor interaction from a (foldover) design.

    The estimate is the dot product of the elementwise product column
    with the responses.  In a non-foldover PB design this column is
    aliased with main effects; the foldover design de-aliases it, which
    is why the paper recommends foldover for its experiments.
    """
    y = np.asarray(responses, dtype=np.float64)
    if y.shape != (design.n_runs,):
        raise ValueError(
            f"expected {design.n_runs} responses, got {y.shape}"
        )
    column = design.interaction_column(factor_a, factor_b).astype(np.float64)
    value = float(column @ y)
    if normalize:
        value /= design.n_runs / 2.0
    return value


def sum_of_ranks(
    tables: Mapping[str, EffectTable],
) -> Dict[str, int]:
    """Sum each factor's rank across several responses (benchmarks).

    ``tables`` maps a benchmark name to its :class:`EffectTable`.  The
    result maps each factor to the sum of its per-benchmark ranks —
    low sums mark the parameters that matter across the whole suite
    (the paper's Table 9 "Sum" column).
    """
    if not tables:
        raise ValueError("need at least one effect table")
    names = None
    totals: Dict[str, int] = {}
    for bench, table in tables.items():
        if names is None:
            names = table.factor_names
        elif table.factor_names != names:
            raise ValueError(
                f"effect table for {bench!r} has mismatched factors"
            )
        for factor, rank in table.ranks().items():
            totals[factor] = totals.get(factor, 0) + rank
    return totals


def rank_matrix(
    tables: Mapping[str, EffectTable],
) -> Tuple[List[str], List[str], np.ndarray]:
    """Per-benchmark rank matrix in Table 9 layout.

    Returns ``(factor_names, benchmark_names, ranks)`` where ``ranks``
    has shape (factors, benchmarks) and rows are sorted by ascending
    sum of ranks — exactly the presentation of the paper's Tables 9
    and 12.
    """
    totals = sum_of_ranks(tables)
    benchmarks = list(tables.keys())
    factors = sorted(totals, key=lambda f: (totals[f], f))
    per_bench_ranks = {b: tables[b].ranks() for b in benchmarks}
    grid = np.empty((len(factors), len(benchmarks)), dtype=np.int64)
    for i, factor in enumerate(factors):
        for j, bench in enumerate(benchmarks):
            grid[i, j] = per_bench_ranks[bench][factor]
    return factors, benchmarks, grid


def significance_gap(totals: Mapping[str, int]) -> Tuple[List[str], int]:
    """Split factors into significant/rest at the largest sum-of-ranks gap.

    The paper identifies the key parameters by eye: "the large
    difference between the sum of the ranks of the tenth parameter and
    the ... eleventh".  This helper formalizes that: factors are sorted
    by ascending sum and the cut is placed at the largest consecutive
    gap in the first half of the list (a gap deep in the insignificant
    tail is noise, not a boundary).

    Returns ``(significant_factors, cut_index)``.
    """
    ordered = sorted(totals, key=lambda f: (totals[f], f))
    if len(ordered) < 2:
        return list(ordered), len(ordered)
    sums = [totals[f] for f in ordered]
    search_end = max(1, len(ordered) // 2)
    best_gap, best_cut = -1, 1
    for i in range(search_end):
        gap = sums[i + 1] - sums[i]
        if gap > best_gap:
            best_gap, best_cut = gap, i + 1
    return ordered[:best_cut], best_cut
