"""Analysis of variance for replicated 2^k full-factorial experiments.

This is the "full multifactorial" technique of the paper's Table 1 (the
paper cites Lilja, *Measuring Computer Performance*, for it) and step 3
of the recommended workflow in Section 4.1: after the PB screening pass
finds the critical parameters, an ANOVA over just those parameters
quantifies each main effect, each interaction, and — with replicated
measurements — the statistical significance of each via an F-test.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .factorial import contrast_column, effect_subsets, subset_label
from .matrix import DesignMatrix


@dataclass(frozen=True)
class EffectVariation:
    """One row of an ANOVA table."""

    label: str
    subset: Tuple[str, ...]
    effect: float  # classical effect estimate (high mean - low mean)
    sum_of_squares: float
    variation_fraction: float  # share of total variation explained
    f_statistic: Optional[float]  # None without replication
    p_value: Optional[float]


@dataclass(frozen=True)
class AnovaResult:
    """Complete allocation-of-variation breakdown of a 2^k experiment."""

    rows: Tuple[EffectVariation, ...]
    total_sum_of_squares: float
    error_sum_of_squares: float
    error_degrees_of_freedom: int

    def row(self, *subset: str) -> EffectVariation:
        """Look up one effect by its factor subset (order-insensitive)."""
        wanted = tuple(sorted(subset))
        for row in self.rows:
            if tuple(sorted(row.subset)) == wanted:
                return row
        raise KeyError(f"no effect for subset {subset}")

    def variation_explained(self) -> Dict[str, float]:
        """Mapping of effect label to fraction of variation explained."""
        return {r.label: r.variation_fraction for r in self.rows}

    def sorted_by_variation(self) -> List[EffectVariation]:
        """Rows ordered by descending share of variation."""
        return sorted(self.rows, key=lambda r: -r.variation_fraction)

    def significant(self, alpha: float = 0.05) -> List[EffectVariation]:
        """Rows whose F-test rejects at level ``alpha`` (needs replication)."""
        out = []
        for row in self.rows:
            if row.p_value is not None and row.p_value < alpha:
                out.append(row)
        return out


def _f_survival(f: float, dfn: int, dfd: int) -> float:
    """P(F >= f) for the F distribution, via the regularized beta function."""
    from scipy.special import betainc

    if f <= 0:
        return 1.0
    x = dfd / (dfd + dfn * f)
    return float(betainc(dfd / 2.0, dfn / 2.0, x))


def anova(
    design: DesignMatrix,
    responses: Sequence[Sequence[float]],
    *,
    max_order: Optional[int] = None,
) -> AnovaResult:
    """Allocate the variation of a replicated 2^k experiment.

    Parameters
    ----------
    design:
        A full factorial design from :func:`full_factorial_design`.
    responses:
        Shape ``(runs, replications)`` — or ``(runs,)`` for a single
        unreplicated measurement per run, in which case no F-tests are
        possible and rows carry ``None`` for the statistic and p-value.
    max_order:
        Highest interaction order to report (all orders by default).
        Variation of unreported higher-order interactions is left out
        of the rows but still counted in the total, so fractions remain
        comparable across calls.

    Notes
    -----
    With the design orthogonal, ``SST = sum(SS_effect) + SSE`` exactly
    (up to float rounding) when all orders are reported.
    """
    y = np.asarray(responses, dtype=np.float64)
    if y.ndim == 1:
        y = y[:, None]
    if y.shape[0] != design.n_runs:
        raise ValueError(f"expected {design.n_runs} response rows")
    runs, reps = y.shape
    if runs & (runs - 1):
        raise ValueError("ANOVA here requires a full 2^k design")
    cell_means = y.mean(axis=1)
    grand_mean = float(y.mean())

    sse = float(((y - cell_means[:, None]) ** 2).sum())
    sst = float(((y - grand_mean) ** 2).sum())
    error_df = runs * (reps - 1)

    rows: List[EffectVariation] = []
    mse = sse / error_df if error_df > 0 else None
    for subset in effect_subsets(design.factor_names, max_order):
        column = contrast_column(design, subset).astype(np.float64)
        coefficient = float(column @ cell_means) / runs
        effect = 2.0 * coefficient  # high-level mean minus low-level mean
        ss = runs * reps * coefficient * coefficient
        if mse is not None and mse > 0:
            f_stat = ss / mse
            p = _f_survival(f_stat, 1, error_df)
        else:
            f_stat, p = None, None
        rows.append(
            EffectVariation(
                label=subset_label(subset),
                subset=tuple(subset),
                effect=effect,
                sum_of_squares=ss,
                variation_fraction=ss / sst if sst > 0 else 0.0,
                f_statistic=f_stat,
                p_value=p,
            )
        )
    return AnovaResult(
        rows=tuple(rows),
        total_sum_of_squares=sst,
        error_sum_of_squares=sse,
        error_degrees_of_freedom=error_df,
    )
