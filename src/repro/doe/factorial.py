"""Full multifactorial (2^k) designs.

The full factorial is the gold standard the paper positions at the
expensive end of Table 1: ``2^N`` runs quantify every main effect *and*
every interaction.  The paper's recommended workflow (Section 4.1,
step 3) uses it — via ANOVA — on the small set of critical parameters
that the PB screening pass identifies first.
"""

from __future__ import annotations

from itertools import combinations
from typing import Iterator, List, Optional, Sequence, Tuple

import numpy as np

from .matrix import DesignMatrix


def full_factorial_design(
    n_factors: Optional[int] = None,
    *,
    factor_names: Optional[Sequence[str]] = None,
) -> DesignMatrix:
    """All ``2^k`` level combinations of ``k`` two-level factors.

    Runs are ordered in standard (Yates) order: the first factor varies
    fastest.

    >>> full_factorial_design(2).matrix.tolist()
    [[-1, -1], [1, -1], [-1, 1], [1, 1]]
    """
    if factor_names is not None:
        factor_names = list(factor_names)
        if n_factors is None:
            n_factors = len(factor_names)
        elif n_factors != len(factor_names):
            raise ValueError("n_factors disagrees with factor_names length")
    if n_factors is None or n_factors < 1:
        raise ValueError("a design needs at least one factor")
    if n_factors > 20:
        raise ValueError(
            f"2^{n_factors} runs is exactly the cost explosion the paper "
            "warns about; use a Plackett-Burman screening design first"
        )
    runs = 1 << n_factors
    matrix = np.empty((runs, n_factors), dtype=np.int8)
    for j in range(n_factors):
        period = 1 << j
        column = np.tile(
            np.concatenate(
                [np.full(period, -1, np.int8), np.full(period, 1, np.int8)]
            ),
            runs // (2 * period),
        )
        matrix[:, j] = column
    return DesignMatrix(matrix, factor_names)


def effect_subsets(
    factor_names: Sequence[str], max_order: Optional[int] = None
) -> Iterator[Tuple[str, ...]]:
    """All non-empty factor subsets (main effects and interactions).

    ``max_order`` limits the interaction order (2 = main effects plus
    pairwise interactions).
    """
    names = list(factor_names)
    top = len(names) if max_order is None else min(max_order, len(names))
    for order in range(1, top + 1):
        yield from combinations(names, order)


def contrast_column(
    design: DesignMatrix, subset: Sequence[str]
) -> np.ndarray:
    """The +-1 contrast column for a main effect or interaction.

    The column is the elementwise product of the subset's factor
    columns; in a full factorial all such columns are mutually
    orthogonal, which is what lets ANOVA cleanly split the variation.
    """
    if not subset:
        raise ValueError("a contrast needs at least one factor")
    column = np.ones(design.n_runs, dtype=np.int64)
    for name in subset:
        column = column * design.column(name)
    return column


def subset_label(subset: Sequence[str]) -> str:
    """Canonical display name for an effect subset, e.g. ``A:B``."""
    return ":".join(subset)
