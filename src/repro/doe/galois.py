"""Finite (Galois) field arithmetic for experimental-design construction.

The Paley construction of Hadamard matrices — and therefore of
Plackett-Burman designs of size ``X = q + 1`` — needs the quadratic
character of a finite field GF(q).  For prime ``q`` this is the ordinary
Legendre symbol; for prime powers (e.g. ``q = 27``, which yields the
28-run design) full polynomial-basis field arithmetic is required.

This module implements GF(p^n) from scratch:

* elements are represented as integers ``0 .. q-1`` whose base-``p``
  digits are the coefficients of a polynomial over GF(p);
* multiplication reduces modulo a monic irreducible polynomial found by
  exhaustive search (cheap at the sizes used for designs);
* the quadratic character is computed as ``x^((q-1)/2)``.

Only a handful of small fields are ever needed, so clarity is preferred
over asymptotic cleverness throughout.
"""

from __future__ import annotations

from typing import List, Optional, Tuple


def is_prime(n: int) -> bool:
    """Return True if ``n`` is a prime number (deterministic trial division)."""
    if n < 2:
        return False
    if n < 4:
        return True
    if n % 2 == 0:
        return False
    d = 3
    while d * d <= n:
        if n % d == 0:
            return False
        d += 2
    return True


def prime_power_decomposition(q: int) -> Optional[Tuple[int, int]]:
    """Decompose ``q`` as ``p ** n`` with ``p`` prime, or return None.

    >>> prime_power_decomposition(27)
    (3, 3)
    >>> prime_power_decomposition(43)
    (43, 1)
    >>> prime_power_decomposition(12) is None
    True
    """
    if q < 2:
        return None
    p = 2
    while p * p <= q:
        if q % p == 0:
            n = 0
            m = q
            while m % p == 0:
                m //= p
                n += 1
            if m == 1:
                return (p, n)
            return None
        p += 1
    return (q, 1)  # q itself is prime


def _poly_trim(coeffs: List[int]) -> List[int]:
    """Strip trailing zero coefficients (highest-degree terms)."""
    out = list(coeffs)
    while out and out[-1] == 0:
        out.pop()
    return out


def _poly_mul(a: List[int], b: List[int], p: int) -> List[int]:
    """Multiply two polynomials with coefficients in GF(p)."""
    if not a or not b:
        return []
    out = [0] * (len(a) + len(b) - 1)
    for i, ai in enumerate(a):
        if ai == 0:
            continue
        for j, bj in enumerate(b):
            out[i + j] = (out[i + j] + ai * bj) % p
    return _poly_trim(out)


def _poly_mod(a: List[int], m: List[int], p: int) -> List[int]:
    """Reduce polynomial ``a`` modulo monic polynomial ``m`` over GF(p)."""
    a = _poly_trim(a)
    deg_m = len(m) - 1
    while len(a) - 1 >= deg_m and a:
        shift = len(a) - 1 - deg_m
        factor = a[-1]
        for i, mi in enumerate(m):
            a[shift + i] = (a[shift + i] - factor * mi) % p
        a = _poly_trim(a)
    return a


def _int_to_poly(x: int, p: int) -> List[int]:
    """Base-``p`` digits of ``x``, least significant first."""
    out = []
    while x:
        out.append(x % p)
        x //= p
    return out


def _poly_to_int(coeffs: List[int], p: int) -> int:
    out = 0
    for c in reversed(_poly_trim(coeffs)):
        out = out * p + c
    return out


def _find_irreducible(p: int, n: int) -> List[int]:
    """Find a monic irreducible polynomial of degree ``n`` over GF(p).

    Exhaustive search with trial division by every monic polynomial of
    degree 1..n//2; fine for the tiny fields used by design construction.
    """
    if n == 1:
        return [0, 1]  # x, any degree-1 monic is irreducible
    # Candidate: x^n + (lower-degree part encoded by k).
    for k in range(p ** n):
        cand = _int_to_poly(k, p)
        cand = cand + [0] * (n - len(cand)) + [1]  # make monic of degree n
        if _is_irreducible(cand, p):
            return cand
    raise ArithmeticError(
        f"no monic irreducible polynomial of degree {n} over GF({p})"
    )


def _is_irreducible(poly: List[int], p: int) -> bool:
    """True if monic ``poly`` has no monic divisor of degree 1..deg//2."""
    deg = len(poly) - 1
    for d in range(1, deg // 2 + 1):
        for k in range(p ** d):
            div = _int_to_poly(k, p)
            div = div + [0] * (d - len(div)) + [1]
            if not _poly_mod(list(poly), div, p):
                return False
    return True


class GaloisField:
    """The finite field GF(q) for a prime power ``q``.

    Elements are the integers ``0 .. q-1``.  For ``q = p**n`` with
    ``n > 1``, an integer's base-``p`` digits are the coefficients of
    its polynomial representation.

    >>> f = GaloisField(7)
    >>> f.mul(3, 5)
    1
    >>> f.quadratic_character(2)
    1
    >>> f.quadratic_character(3)
    -1
    """

    def __init__(self, q: int):
        decomp = prime_power_decomposition(q)
        if decomp is None:
            raise ValueError(f"{q} is not a prime power")
        self.q = q
        self.p, self.n = decomp
        if self.n == 1:
            self._modulus: Optional[List[int]] = None
        else:
            self._modulus = _find_irreducible(self.p, self.n)
        self._squares: Optional[frozenset] = None

    # -- element arithmetic -------------------------------------------------

    def add(self, a: int, b: int) -> int:
        """Field addition."""
        self._check(a)
        self._check(b)
        if self.n == 1:
            return (a + b) % self.p
        pa, pb = _int_to_poly(a, self.p), _int_to_poly(b, self.p)
        length = max(len(pa), len(pb))
        pa += [0] * (length - len(pa))
        pb += [0] * (length - len(pb))
        return _poly_to_int([(x + y) % self.p for x, y in zip(pa, pb)], self.p)

    def neg(self, a: int) -> int:
        """Additive inverse."""
        self._check(a)
        if self.n == 1:
            return (-a) % self.p
        pa = _int_to_poly(a, self.p)
        return _poly_to_int([(-x) % self.p for x in pa], self.p)

    def sub(self, a: int, b: int) -> int:
        """Field subtraction ``a - b``."""
        return self.add(a, self.neg(b))

    def mul(self, a: int, b: int) -> int:
        """Field multiplication."""
        self._check(a)
        self._check(b)
        if self.n == 1:
            return (a * b) % self.p
        prod = _poly_mul(
            _int_to_poly(a, self.p), _int_to_poly(b, self.p), self.p
        )
        assert self._modulus is not None
        return _poly_to_int(_poly_mod(prod, self._modulus, self.p), self.p)

    def pow(self, a: int, e: int) -> int:
        """Field exponentiation by square-and-multiply."""
        if e < 0:
            return self.pow(self.inverse(a), -e)
        result = 1
        base = a
        while e:
            if e & 1:
                result = self.mul(result, base)
            base = self.mul(base, base)
            e >>= 1
        return result

    def inverse(self, a: int) -> int:
        """Multiplicative inverse via ``a^(q-2)``."""
        if a == 0:
            raise ZeroDivisionError("0 has no multiplicative inverse")
        return self.pow(a, self.q - 2)

    # -- structure ----------------------------------------------------------

    def elements(self) -> range:
        """All field elements as integers."""
        return range(self.q)

    def squares(self) -> frozenset:
        """The set of nonzero quadratic residues."""
        if self._squares is None:
            self._squares = frozenset(
                self.mul(x, x) for x in range(1, self.q)
            )
        return self._squares

    def quadratic_character(self, a: int) -> int:
        """Return +1 for a nonzero square, -1 for a nonsquare, 0 for 0."""
        self._check(a)
        if a == 0:
            return 0
        return 1 if a in self.squares() else -1

    def _check(self, a: int) -> None:
        if not 0 <= a < self.q:
            raise ValueError(f"{a} is not an element of GF({self.q})")

    def __repr__(self) -> str:
        return f"GaloisField({self.q})"
