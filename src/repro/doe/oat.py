"""One-at-a-time experimental designs.

This is the ad-hoc "simple sensitivity analysis" the paper argues
*against* (Section 2.1, Table 1): hold every factor at a baseline level
and flip a single factor per run, for ``N + 1`` total runs.  It is
implemented here as the baseline the methodology is compared with —
the Table 1 bench contrasts its run count and blindness to interactions
against the PB and full-factorial designs.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from .matrix import DesignMatrix


def oat_design(
    n_factors: Optional[int] = None,
    *,
    factor_names: Optional[Sequence[str]] = None,
    baseline: int = -1,
) -> DesignMatrix:
    """Build a one-at-a-time design: baseline run + one flip per factor.

    Parameters
    ----------
    n_factors:
        Number of factors (or pass ``factor_names``).
    baseline:
        Level (+1 or -1) every factor takes in the baseline run; each
        subsequent run flips exactly one factor to the other level.

    >>> oat_design(3).n_runs
    4
    """
    if factor_names is not None:
        factor_names = list(factor_names)
        if n_factors is None:
            n_factors = len(factor_names)
        elif n_factors != len(factor_names):
            raise ValueError("n_factors disagrees with factor_names length")
    if n_factors is None or n_factors < 1:
        raise ValueError("a design needs at least one factor")
    if baseline not in (-1, 1):
        raise ValueError("baseline level must be +1 or -1")
    matrix = np.full((n_factors + 1, n_factors), baseline, dtype=np.int8)
    for i in range(n_factors):
        matrix[i + 1, i] = -baseline
    return DesignMatrix(matrix, factor_names)


def oat_effects(
    design: DesignMatrix, responses: Sequence[float]
) -> Dict[str, float]:
    """Single-difference effect estimates from a one-at-a-time design.

    Each factor's effect is ``response(flip run) - response(baseline)``
    — one observation per factor, at one fixed level of everything
    else, which is precisely the weakness Section 2.1 describes.
    """
    y = np.asarray(responses, dtype=np.float64)
    if y.shape != (design.n_runs,):
        raise ValueError(f"expected {design.n_runs} responses")
    baseline_row = design.matrix[0]
    effects: Dict[str, float] = {}
    for j, name in enumerate(design.factor_names):
        flip_rows = np.where(design.matrix[:, j] != baseline_row[j])[0]
        if len(flip_rows) != 1:
            raise ValueError("not a one-at-a-time design")
        effects[name] = float(y[flip_rows[0]] - y[0])
    return effects


def design_cost(kind: str, n_factors: int, levels: int = 2) -> int:
    """Run count of each design family for Table 1's comparison.

    ``kind`` is one of ``"one-at-a-time"``, ``"plackett-burman"``,
    ``"plackett-burman-foldover"``, or ``"full-factorial"``.
    """
    from .pb import pb_design_size

    if n_factors < 1:
        raise ValueError("need at least one factor")
    if kind == "one-at-a-time":
        return n_factors + 1
    if kind == "plackett-burman":
        return pb_design_size(n_factors)
    if kind == "plackett-burman-foldover":
        return 2 * pb_design_size(n_factors)
    if kind == "full-factorial":
        return levels ** n_factors
    raise ValueError(f"unknown design kind {kind!r}")
