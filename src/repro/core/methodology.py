"""The paper's recommended end-to-end workflow (§4.1, steps 1-4).

    1. Determine the critical processor parameters with a
       Plackett-Burman design (choose just-outside-normal low/high
       values, run, rank).
    2. Choose reasonable values for the non-critical parameters from
       commercial processors (here: the library defaults).
    3. Perform a full-factorial ANOVA sensitivity analysis over
       reasonable ranges of the critical parameters.
    4. Choose final values for the critical parameters from the
       sensitivity results.

This module wires those steps into one callable pipeline so the
"methodology" is itself a tested, runnable artifact rather than prose.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.cpu import MachineConfig, config_from_levels
from repro.cpu.params import parameter_spec
from repro.doe import AnovaResult, anova, full_factorial_design
from repro.exec import grid_tasks, run_grid
from repro.obs.telemetry import phase_of
from repro.workloads import Trace

from .experiment import PBExperiment
from .parameter_selection import ParameterRanking, rank_parameters_from_result


@dataclass(frozen=True)
class SensitivityStudy:
    """Step 3's output: a per-benchmark ANOVA over the critical set."""

    factors: Tuple[str, ...]
    anovas: Dict[str, AnovaResult]

    def mean_variation(self) -> Dict[str, float]:
        """Average share of variation each effect explains across
        benchmarks — the quantity used to pick final values."""
        totals: Dict[str, float] = {}
        for result in self.anovas.values():
            for row in result.rows:
                totals[row.label] = totals.get(row.label, 0.0) \
                    + row.variation_fraction
        n = len(self.anovas)
        return {k: v / n for k, v in totals.items()}


@dataclass(frozen=True)
class WorkflowResult:
    """Everything the four-step workflow produced."""

    ranking: ParameterRanking
    critical: Tuple[str, ...]
    sensitivity: SensitivityStudy
    final_config: MachineConfig


def sensitivity_analysis(
    traces: Mapping[str, Trace],
    factors: Sequence[str],
    base_config: MachineConfig = MachineConfig(),
    *,
    jobs: int = 1,
    cache=None,
    retry=None,
    timeout=None,
    on_error: str = "raise",
    journal=None,
    telemetry=None,
) -> SensitivityStudy:
    """Full-factorial ANOVA (step 3) over a small set of factors.

    Each factor's low/high values are its Plackett-Burman values; the
    2^k design quantifies all their interactions (which the PB screen
    could not), per Table 1's "Full Multifactorial" row.  The 2^k x
    benchmarks grid runs through :func:`repro.exec.run_grid`
    (``jobs``/``cache``/``retry``/``timeout``/``on_error``/``journal``
    as everywhere else).  ANOVA needs the complete 2^k column, so
    under ``on_error="skip"`` a benchmark with a permanently failed
    cell is dropped from the study (all benchmarks failing raises).
    """
    factors = list(factors)
    if len(factors) > 6:
        raise ValueError(
            "a full factorial over more than 6 parameters is the cost "
            "explosion Table 1 warns about; screen with PB first"
        )
    design = full_factorial_design(factor_names=factors)
    configs = [
        config_from_levels(levels, base_config)
        for levels in design.runs()
    ]
    with phase_of(telemetry, "sensitivity", factors=len(factors)):
        grid = run_grid(
            grid_tasks(configs, traces), jobs=jobs, cache=cache,
            retry=retry, timeout=timeout, on_error=on_error,
            journal=journal, telemetry=telemetry,
        )
    benchmarks = list(traces)
    anovas: Dict[str, AnovaResult] = {}
    for j, bench in enumerate(benchmarks):
        cells = [
            grid[i * len(benchmarks) + j] for i in range(len(configs))
        ]
        if any(stats is None for stats in cells):
            continue
        responses = [[float(stats.cycles)] for stats in cells]
        anovas[bench] = anova(design, responses)
    if not anovas:
        raise ValueError(
            "every benchmark had a permanently failed cell; "
            "no complete 2^k column to analyse"
        )
    return SensitivityStudy(tuple(factors), anovas)


def choose_final_values(
    ranking: ParameterRanking,
    sensitivity: SensitivityStudy,
    base_config: MachineConfig = MachineConfig(),
    variation_threshold: float = 0.05,
) -> MachineConfig:
    """Step 4: pick final values for the critical parameters.

    The decision rule encoded here: a critical parameter whose main
    effect explains at least ``variation_threshold`` of the variation
    is set to its *high* (generous) value so it cannot bottleneck later
    studies; the rest keep the base (commercial-range) defaults — the
    paper's "the others can be chosen with less caution".
    """
    variation = sensitivity.mean_variation()
    levels: Dict[str, int] = {}
    for factor in sensitivity.factors:
        if variation.get(factor, 0.0) >= variation_threshold:
            levels[factor] = 1
    return config_from_levels(levels, base_config)


def recommended_workflow(
    traces: Mapping[str, Trace],
    *,
    base_config: MachineConfig = MachineConfig(),
    max_critical: int = 4,
    progress=None,
    jobs: int = 1,
    cache=None,
    retry=None,
    timeout=None,
    on_error: str = "raise",
    journal=None,
    telemetry=None,
) -> WorkflowResult:
    """Run the paper's full four-step parameter-selection workflow.

    ``max_critical`` caps how many of the PB-critical parameters enter
    the full-factorial step (2^k cost); the paper's own gap rule picks
    the candidates, the cap keeps the factorial tractable.  The
    fault-tolerance controls (``retry``/``timeout``/``on_error``/
    ``journal``) apply to both the screen and the factorial; one
    journal file checkpoints the whole workflow since entries are
    content-keyed.
    """
    experiment = PBExperiment(
        traces, base_config=base_config, progress=progress
    )
    ranking = rank_parameters_from_result(
        experiment.run(
            jobs=jobs, cache=cache, retry=retry, timeout=timeout,
            on_error=on_error, journal=journal, telemetry=telemetry,
        )
    )
    critical = ranking.significant_factors()[:max_critical]
    # Only real machine parameters can enter the factorial (a dummy
    # factor in the critical set would indicate a broken experiment).
    critical = [f for f in critical if _is_real_parameter(f)]
    sensitivity = sensitivity_analysis(
        traces, critical, base_config, jobs=jobs, cache=cache,
        retry=retry, timeout=timeout, on_error=on_error,
        journal=journal, telemetry=telemetry,
    )
    final_config = choose_final_values(ranking, sensitivity, base_config)
    return WorkflowResult(
        ranking, tuple(critical), sensitivity, final_config
    )


def _is_real_parameter(name: str) -> bool:
    try:
        parameter_spec(name)
        return True
    except KeyError:
        return False
