"""One-call replication: run everything, compare to the paper, report.

:func:`replicate` executes the paper's §4.1-§4.3 pipeline end to end
on the simulator (base PB screen, classification, precomputation
before/after), quantifies agreement against the bundled published
tables, and returns both the raw artifacts and a markdown report —
the programmatic backbone of EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional

import numpy as np

from repro.cpu import build_precompute_table
from repro.workloads import (
    BENCHMARK_NAMES,
    Trace,
    benchmark_trace,
    default_length,
)

from .classification import distance_matrix, group_benchmarks
from .comparison import RankingComparison, compare_rankings
from .enhancement import EnhancementAnalysis
from .experiment import PBExperiment, PBExperimentResult
from .paper_data import paper_table9_ranking, paper_table12_ranking
from .parameter_selection import ParameterRanking, rank_parameters_from_result


@dataclass
class ReplicationOutcome:
    """Everything :func:`replicate` produced."""

    table9: ParameterRanking
    table12: ParameterRanking
    enhancement: EnhancementAnalysis
    base_experiment: PBExperimentResult
    enhanced_experiment: PBExperimentResult
    table9_vs_paper: RankingComparison
    table12_vs_paper: RankingComparison

    def headline_checks(self) -> Dict[str, bool]:
        """The paper's headline conclusions, as booleans on our data."""
        factors = list(self.table9.factors)
        shifts = {s.factor: s.shift for s in self.enhancement.shifts()}
        speedup_ok = all(
            sum(self.enhanced_experiment.responses[b])
            < sum(self.base_experiment.responses[b])
            for b in self.base_experiment.benchmarks
        )
        return {
            "rob_in_top3": factors.index("Reorder Buffer Entries") <= 2,
            "l2_latency_in_top3": factors.index("L2 Cache Latency") <= 2,
            "dummies_insignificant": (
                factors.index("Dummy Factor #1") >= 21
                and factors.index("Dummy Factor #2") >= 21
            ),
            "int_alus_relieved_by_precomputation":
                shifts["Int ALUs"] > 0,
            "precomputation_speeds_up_every_benchmark": speedup_ok,
            "top_of_table_stable_under_enhancement": (
                set(self.table9.top(5)) <= set(self.table12.top(8))
            ),
        }

    def report(self) -> str:
        """A markdown summary of the replication."""
        from repro.reporting import enhancement_markdown, ranking_markdown

        checks = self.headline_checks()
        lines = [
            "# Replication report",
            "",
            "## Headline conclusions",
            "",
        ]
        for name, ok in checks.items():
            mark = "PASS" if ok else "FAIL"
            lines.append(f"- `{name}`: **{mark}**")
        lines += [
            "",
            "## Agreement with the paper",
            "",
            "Table 9 analogue vs published Table 9:",
            "",
            "```",
            self.table9_vs_paper.summary(),
            "```",
            "",
            "Table 12 analogue vs published Table 12:",
            "",
            "```",
            self.table12_vs_paper.summary(),
            "```",
            "",
            "## Measured Table 9 analogue (top 12)",
            "",
            ranking_markdown(self.table9, top=12),
            "",
            "## Enhancement shifts (top 10)",
            "",
            enhancement_markdown(self.enhancement, top=10),
            "",
        ]
        return "\n".join(lines)


def replicate(
    traces: Optional[Mapping[str, Trace]] = None,
    *,
    scale: float = 5.0,
    table_entries: int = 128,
    progress=None,
    jobs: int = 1,
    cache=None,
) -> ReplicationOutcome:
    """Run the full replication pipeline.

    Parameters
    ----------
    traces:
        benchmark -> trace; defaults to the full 13-benchmark suite at
        Table 5-proportional lengths (``scale`` instructions per paper
        million).
    table_entries:
        Precomputation-table size for the §4.3 study.
    """
    if traces is None:
        traces = {
            name: benchmark_trace(name, default_length(name, scale))
            for name in BENCHMARK_NAMES
        }
    base = PBExperiment(traces, progress=progress).run(
        jobs=jobs, cache=cache
    )
    tables = {
        name: build_precompute_table(trace, table_entries)
        for name, trace in traces.items()
    }
    enhanced = PBExperiment(
        traces, precompute_tables=tables, progress=progress
    ).run(jobs=jobs, cache=cache)
    table9 = rank_parameters_from_result(base)
    table12 = rank_parameters_from_result(enhanced)
    return ReplicationOutcome(
        table9=table9,
        table12=table12,
        enhancement=EnhancementAnalysis(table9, table12),
        base_experiment=base,
        enhanced_experiment=enhanced,
        table9_vs_paper=compare_rankings(table9, paper_table9_ranking()),
        table12_vs_paper=compare_rankings(
            table12, paper_table12_ranking()
        ),
    )
