"""Replicated Plackett-Burman experiments: effects with error bars.

The paper's experiment measures each configuration once, so effect
significance rests on cross-factor comparisons (ranks, Lenth's PSE).
A deterministic simulator offers another route the paper could not
use: *workload replication*.  Re-generating each benchmark's trace
from different seeds gives independent realizations of the same
statistical workload; running the design on each replicate yields R
independent estimates of every effect, and with them honest standard
errors, t-statistics and p-values per factor.

This answers the reviewer question the rank tables cannot: "is that
effect real, or trace noise?"
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.cpu import MachineConfig
from repro.doe import compute_effects
from repro.workloads import SyntheticProgram, Trace, profile

from .experiment import PBExperiment, PBExperimentResult


def replicated_suite(
    names: Sequence[str],
    length: int,
    replications: int,
    *,
    base_seed: int = 20030208,   # the paper's conference date
) -> Dict[str, List[Trace]]:
    """Generate ``replications`` independent traces per benchmark.

    Replicates share the benchmark's *static program* (same code
    layout, same slots) but draw independent dynamic randomness, like
    re-running a program on input variations.
    """
    if replications < 2:
        raise ValueError("replication needs at least 2 replicates")
    out: Dict[str, List[Trace]] = {}
    for name in names:
        program = SyntheticProgram(profile(name))
        out[name] = [
            program.emit(length, seed=base_seed + 7919 * r,
                         name=f"{name}#r{r}")
            for r in range(replications)
        ]
    return out


@dataclass(frozen=True)
class FactorInference:
    """Replication-based inference for one factor on one benchmark."""

    factor: str
    benchmark: str
    mean_effect: float
    std_error: float
    t_statistic: float
    p_value: float

    @property
    def significant(self) -> bool:
        return self.p_value < 0.05


@dataclass
class ReplicatedResult:
    """Everything a replicated PB experiment produced."""

    replicates: Tuple[PBExperimentResult, ...]
    inference: Dict[str, Dict[str, FactorInference]]  # bench -> factor

    @property
    def mean_result(self) -> PBExperimentResult:
        """A result whose responses are the replicate means (usable by
        every downstream rank/classification tool)."""
        first = self.replicates[0]
        responses = {
            bench: list(np.mean(
                [r.responses[bench] for r in self.replicates], axis=0
            ))
            for bench in first.responses
        }
        return PBExperimentResult(first.design, responses)

    def significant_factors(self, benchmark: str,
                            alpha: float = 0.05) -> List[str]:
        """Factors with p < alpha on one benchmark, most significant
        first."""
        rows = [
            inf for inf in self.inference[benchmark].values()
            if inf.p_value < alpha
        ]
        rows.sort(key=lambda inf: inf.p_value)
        return [inf.factor for inf in rows]

    def table(self, benchmark: str, top: int = 10) -> str:
        """A readable effect +- stderr table for one benchmark."""
        rows = sorted(self.inference[benchmark].values(),
                      key=lambda inf: -abs(inf.t_statistic))[:top]
        lines = [f"{benchmark}: replicated effect estimates "
                 f"(R = {len(self.replicates)})"]
        for inf in rows:
            stars = "***" if inf.p_value < 0.001 else \
                "**" if inf.p_value < 0.01 else \
                "*" if inf.p_value < 0.05 else ""
            lines.append(
                f"  {inf.factor:35s} {inf.mean_effect:+12.0f} "
                f"+- {inf.std_error:10.0f}  t={inf.t_statistic:+7.2f} "
                f"p={inf.p_value:.4f} {stars}"
            )
        return "\n".join(lines)


def _t_sf(t: float, dof: int) -> float:
    """Two-sided p-value for a t statistic."""
    from scipy.special import betainc

    x = dof / (dof + t * t)
    return float(betainc(dof / 2.0, 0.5, x))


def run_replicated(
    traces: Mapping[str, Sequence[Trace]],
    *,
    base_config: MachineConfig = MachineConfig(),
    parameter_names=None,
    progress=None,
    jobs: int = 1,
    cache=None,
) -> ReplicatedResult:
    """Run the PB design once per replicate and infer per-factor stats.

    Each factor's R effect estimates are treated as an i.i.d. sample;
    the returned inference carries mean, standard error, t-statistic
    (against zero effect) and two-sided p-value with R-1 degrees of
    freedom.  ``jobs``/``cache`` are forwarded to every replicate's
    :meth:`PBExperiment.run` (replicate traces differ by seed, so only
    repeated *studies* hit the cache, not replicates of one study).
    """
    benchmarks = list(traces.keys())
    reps = {b: list(ts) for b, ts in traces.items()}
    counts = {len(ts) for ts in reps.values()}
    if len(counts) != 1:
        raise ValueError("every benchmark needs the same replicate count")
    (n_reps,) = counts
    if n_reps < 2:
        raise ValueError("replication needs at least 2 replicates")

    results: List[PBExperimentResult] = []
    for r in range(n_reps):
        kwargs = {}
        if parameter_names is not None:
            kwargs["parameter_names"] = parameter_names
        experiment = PBExperiment(
            {b: reps[b][r] for b in benchmarks},
            base_config=base_config,
            progress=progress,
            **kwargs,
        )
        results.append(experiment.run(jobs=jobs, cache=cache))

    inference: Dict[str, Dict[str, FactorInference]] = {}
    factor_names = results[0].design.factor_names
    for bench in benchmarks:
        per_factor: Dict[str, FactorInference] = {}
        effect_samples = np.stack([
            np.asarray(r.effects[bench].effects) for r in results
        ])  # (R, factors)
        means = effect_samples.mean(axis=0)
        stds = effect_samples.std(axis=0, ddof=1)
        for j, factor in enumerate(factor_names):
            se = float(stds[j] / np.sqrt(n_reps))
            if se == 0.0:
                t = float("inf") if means[j] else 0.0
                p = 0.0 if means[j] else 1.0
            else:
                t = float(means[j] / se)
                p = _t_sf(abs(t), n_reps - 1)
            per_factor[factor] = FactorInference(
                factor=factor, benchmark=bench,
                mean_effect=float(means[j]), std_error=se,
                t_statistic=t, p_value=p,
            )
        inference[bench] = per_factor
    return ReplicatedResult(tuple(results), inference)
