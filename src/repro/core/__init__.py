"""The paper's methodology: PB experiments over the simulator.

Public surface, mapped to the paper's sections:

* §4.1 parameter selection — :class:`PBExperiment`,
  :func:`rank_parameters_from_result`, :class:`ParameterRanking`,
  :func:`recommended_workflow` (the full 4-step procedure);
* §4.2 benchmark classification — :func:`distance_matrix`,
  :func:`group_benchmarks`, :func:`single_linkage`,
  :data:`PAPER_SIMILARITY_THRESHOLD`;
* §4.3 enhancement analysis — :func:`analyze_enhancement`,
  :class:`EnhancementAnalysis`;
* reference data — :mod:`repro.core.paper_data` bundles the published
  Tables 9/10/11/12 for exact validation.
"""

from .comparison import RankingComparison, compare_rankings, spearman
from .interactions import (
    InteractionEstimate,
    estimate_interactions,
    interaction_summary,
    interactions_smaller_than_mains,
)
from .classification import (
    PAPER_SIMILARITY_THRESHOLD,
    LinkageStep,
    benchmark_distance,
    distance_matrix,
    group_benchmarks,
    rank_vectors,
    representatives,
    single_linkage,
)
from .enhancement import (
    EnhancementAnalysis,
    FactorShift,
    analyze_enhancement,
)
from .experiment import (
    CellFailure,
    PBExperiment,
    PBExperimentResult,
    build_design,
)
from .methodology import (
    SensitivityStudy,
    WorkflowResult,
    choose_final_values,
    recommended_workflow,
    sensitivity_analysis,
)
from .replication import (
    FactorInference,
    ReplicatedResult,
    replicated_suite,
    run_replicated,
)
from .sweep import (
    RefinementResult,
    RefinementStep,
    SweepResult,
    iterative_refinement,
    sweep,
)
from .validation import ReplicationOutcome, replicate
from .parameter_selection import (
    ParameterRanking,
    rank_parameters,
    rank_parameters_from_result,
    ranking_from_dict,
    ranking_from_rank_table,
)

__all__ = [
    "CellFailure",
    "EnhancementAnalysis",
    "InteractionEstimate",
    "RankingComparison",
    "estimate_interactions",
    "interaction_summary",
    "interactions_smaller_than_mains",
    "compare_rankings",
    "spearman",
    "FactorShift",
    "LinkageStep",
    "PAPER_SIMILARITY_THRESHOLD",
    "PBExperiment",
    "PBExperimentResult",
    "ParameterRanking",
    "SensitivityStudy",
    "WorkflowResult",
    "analyze_enhancement",
    "benchmark_distance",
    "build_design",
    "choose_final_values",
    "distance_matrix",
    "group_benchmarks",
    "rank_parameters",
    "rank_parameters_from_result",
    "rank_vectors",
    "ranking_from_dict",
    "ranking_from_rank_table",
    "recommended_workflow",
    "replicate",
    "ReplicationOutcome",
    "FactorInference",
    "ReplicatedResult",
    "replicated_suite",
    "run_replicated",
    "RefinementResult",
    "RefinementStep",
    "SweepResult",
    "iterative_refinement",
    "sweep",
    "representatives",
    "sensitivity_analysis",
    "single_linkage",
]
