"""Pre-simulation methodology: processor parameter selection (§4.1).

The paper's first recommendation: before any sensitivity study, run a
Plackett-Burman design over *all* parameters to find the critical ones,
then spend care (and full-factorial ANOVA) only on those.  This module
turns a :class:`~repro.core.experiment.PBExperimentResult` into the
paper's Table 9: per-benchmark significance ranks, the cross-benchmark
sum of ranks, and the significance cut.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Tuple

import numpy as np

from repro.doe import EffectTable, significance_gap, sum_of_ranks

from .experiment import PBExperimentResult


@dataclass(frozen=True)
class ParameterRanking:
    """Table 9 in object form.

    Attributes
    ----------
    factors:
        Factor names sorted by ascending sum of ranks (most significant
        first) — the row order of Table 9.
    benchmarks:
        Benchmark names, the column order.
    ranks:
        Array of shape (factors, benchmarks); ``ranks[i, j]`` is the
        rank of ``factors[i]`` on ``benchmarks[j]`` (1 = largest
        effect magnitude).
    sums:
        Sum of ranks across benchmarks, aligned with ``factors``.
    """

    factors: Tuple[str, ...]
    benchmarks: Tuple[str, ...]
    ranks: np.ndarray
    sums: Tuple[int, ...]

    def rank_of(self, factor: str, benchmark: str) -> int:
        i = self.factors.index(factor)
        j = self.benchmarks.index(benchmark)
        return int(self.ranks[i, j])

    def sum_of(self, factor: str) -> int:
        return self.sums[self.factors.index(factor)]

    def rank_vector(self, benchmark: str) -> Dict[str, int]:
        """{factor: rank} for one benchmark — the classification vector."""
        j = self.benchmarks.index(benchmark)
        return {f: int(self.ranks[i, j]) for i, f in enumerate(self.factors)}

    def significant_factors(self) -> List[str]:
        """Factors before the largest gap in the sum-of-ranks sequence.

        This is the paper's "only the first ten parameters are
        significant" argument made algorithmic.
        """
        totals = dict(zip(self.factors, self.sums))
        significant, _ = significance_gap(totals)
        return significant

    def top(self, k: int) -> List[str]:
        return list(self.factors[:k])

    def to_dict(self) -> Dict[str, object]:
        """The ranking as a JSON-ready dict (Table 9 serialized).

        The shape ``repro verify`` re-derives from a run's journal and
        compares against the ``results.json`` a screen wrote: factor
        order, per-benchmark rank columns, and the sum-of-ranks
        totals.  Round-trips through :func:`ranking_from_dict`.
        """
        return {
            "factors": list(self.factors),
            "benchmarks": list(self.benchmarks),
            "ranks": self.ranks.tolist(),
            "sums": list(self.sums),
            "significant": self.significant_factors(),
        }


def rank_parameters(
    effects: Mapping[str, EffectTable]
) -> ParameterRanking:
    """Build the Table 9 structure from per-benchmark effect tables."""
    if not effects:
        raise ValueError("need at least one benchmark's effects")
    totals = sum_of_ranks(effects)
    benchmarks = tuple(effects.keys())
    factors = tuple(sorted(totals, key=lambda f: (totals[f], f)))
    grid = np.empty((len(factors), len(benchmarks)), dtype=np.int64)
    per_bench = {b: effects[b].ranks() for b in benchmarks}
    for i, factor in enumerate(factors):
        for j, bench in enumerate(benchmarks):
            grid[i, j] = per_bench[bench][factor]
    sums = tuple(int(totals[f]) for f in factors)
    return ParameterRanking(factors, benchmarks, grid, sums)


def rank_parameters_from_result(
    result: PBExperimentResult,
) -> ParameterRanking:
    """Convenience: Table 9 directly from a finished PB experiment."""
    return rank_parameters(result.effects)


def ranking_from_dict(payload: Mapping) -> ParameterRanking:
    """Rebuild a :class:`ParameterRanking` serialized by
    :meth:`ParameterRanking.to_dict`."""
    return ParameterRanking(
        tuple(payload["factors"]),
        tuple(payload["benchmarks"]),
        np.asarray(payload["ranks"], dtype=np.int64),
        tuple(int(s) for s in payload["sums"]),
    )


def ranking_from_rank_table(
    factors: List[str],
    benchmarks: List[str],
    ranks: np.ndarray,
) -> ParameterRanking:
    """Build a :class:`ParameterRanking` from published rank data.

    Used with :mod:`repro.core.paper_data` to run the classification
    and enhancement analyses on the paper's own Table 9/12 numbers.
    """
    ranks = np.asarray(ranks, dtype=np.int64)
    if ranks.shape != (len(factors), len(benchmarks)):
        raise ValueError("rank table shape mismatch")
    sums = ranks.sum(axis=1)
    order = np.lexsort((np.arange(len(factors)), sums))
    factors_sorted = tuple(factors[i] for i in order)
    return ParameterRanking(
        factors_sorted,
        tuple(benchmarks),
        ranks[order],
        tuple(int(sums[i]) for i in order),
    )
