"""Two-factor interaction analysis on a foldover PB experiment (§2.2).

The paper argues a foldover PB design "determines the effect of all of
the main parameters and selected interactions", and cites [Yi02-2] for
the observation that *significant interactions only arise between
significant individual parameters* and are small next to the mains.
This module makes those statements checkable on any experiment: given
a foldover result, estimate the interaction columns for chosen factor
pairs and compare their magnitudes to the main effects.

Caveat inherited from the design: in a foldover PB design the product
column of a pair is orthogonal to every main effect but generally
*aliased with other two-factor interactions*, so an estimate is a sum
over an alias chain — exactly the "selected interactions" caveat of
Table 1.  Estimates are therefore indicative, which is all the paper
uses them for.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.doe import interaction_effect

from .experiment import PBExperimentResult


@dataclass(frozen=True)
class InteractionEstimate:
    """One pair's estimated interaction on one benchmark."""

    factor_a: str
    factor_b: str
    benchmark: str
    effect: float              # aliased-chain estimate (sign arbitrary)
    largest_main: float        # max |main effect| of the pair

    @property
    def relative_magnitude(self) -> float:
        """|interaction| / max(|main_a|, |main_b|)."""
        if self.largest_main == 0:
            return float("inf") if self.effect else 0.0
        return abs(self.effect) / self.largest_main


def estimate_interactions(
    result: PBExperimentResult,
    factors: Sequence[str],
    benchmarks: Sequence[str] = (),
) -> List[InteractionEstimate]:
    """Estimate all pairwise interactions among ``factors``.

    ``factors`` is typically the significant set from the screening
    pass; ``benchmarks`` defaults to all of them.
    """
    names = list(benchmarks) or result.benchmarks
    out: List[InteractionEstimate] = []
    for a, b in combinations(factors, 2):
        for bench in names:
            y = result.responses[bench]
            effect = interaction_effect(result.design, y, a, b)
            table = result.effects[bench]
            largest = max(table.magnitude(a), table.magnitude(b))
            out.append(InteractionEstimate(a, b, bench, effect, largest))
    out.sort(key=lambda e: -abs(e.effect))
    return out


def interactions_smaller_than_mains(
    result: PBExperimentResult,
    factors: Sequence[str],
    tolerance: float = 1.0,
) -> bool:
    """Check the paper's §2.2 claim on this experiment.

    True if every estimated pairwise interaction among ``factors`` has
    magnitude at most ``tolerance`` times the larger of its two main
    effects, for every benchmark.
    """
    return all(
        e.relative_magnitude <= tolerance
        for e in estimate_interactions(result, factors)
    )


def interaction_summary(
    result: PBExperimentResult, factors: Sequence[str], top: int = 10
) -> str:
    """Human-readable table of the largest interaction estimates."""
    rows = estimate_interactions(result, factors)[:top]
    lines = ["Largest two-factor interaction estimates:"]
    for e in rows:
        lines.append(
            f"  {e.factor_a} x {e.factor_b} [{e.benchmark}]: "
            f"effect {e.effect:+.3g} "
            f"({e.relative_magnitude:.0%} of its largest main)"
        )
    return "\n".join(lines)
