"""Comparing two parameter rankings (e.g. reproduction vs paper).

The reproduction cannot match the paper's absolute ranks — the
substrate differs — so agreement is quantified the way replication
studies do: rank correlation of the overall ordering, overlap of the
significant sets, and per-benchmark fingerprint correlation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from .parameter_selection import ParameterRanking


def spearman(x, y) -> float:
    """Spearman rank correlation of two equal-length sequences.

    Implemented directly (Pearson correlation of the rank transforms)
    to keep scipy optional.
    """
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if x.shape != y.shape or x.ndim != 1 or len(x) < 2:
        raise ValueError("need two equal-length 1-D sequences")
    rx = np.argsort(np.argsort(x)).astype(np.float64)
    ry = np.argsort(np.argsort(y)).astype(np.float64)
    rx -= rx.mean()
    ry -= ry.mean()
    denom = np.sqrt((rx * rx).sum() * (ry * ry).sum())
    if denom == 0:
        return 0.0
    return float((rx * ry).sum() / denom)


@dataclass(frozen=True)
class RankingComparison:
    """Agreement metrics between two rankings over the same factors."""

    overall_spearman: float          # of the sum-of-ranks orderings
    top10_overlap: int               # shared members of the two top-10s
    significant_overlap: float       # Jaccard of the significant sets
    per_benchmark_spearman: Dict[str, float]

    def summary(self) -> str:
        lines = [
            f"overall rank correlation (Spearman): "
            f"{self.overall_spearman:+.3f}",
            f"top-10 overlap: {self.top10_overlap}/10",
            f"significant-set Jaccard: {self.significant_overlap:.2f}",
        ]
        if self.per_benchmark_spearman:
            mean = np.mean(list(self.per_benchmark_spearman.values()))
            lines.append(
                f"mean per-benchmark fingerprint correlation: {mean:+.3f}"
            )
        return "\n".join(lines)


def compare_rankings(
    ours: ParameterRanking, reference: ParameterRanking
) -> RankingComparison:
    """Quantify agreement between two rankings.

    Factors must coincide as sets; benchmarks are compared where both
    rankings carry them (per-benchmark fingerprints are skipped for
    benchmarks present in only one).
    """
    factors = list(ours.factors)
    if set(factors) != set(reference.factors):
        raise ValueError("rankings cover different factor sets")

    our_sums = [ours.sum_of(f) for f in factors]
    ref_sums = [reference.sum_of(f) for f in factors]
    overall = spearman(our_sums, ref_sums)

    top10 = len(set(ours.top(10)) & set(reference.top(10)))

    ours_sig = set(ours.significant_factors())
    ref_sig = set(reference.significant_factors())
    union = ours_sig | ref_sig
    jaccard = len(ours_sig & ref_sig) / len(union) if union else 1.0

    per_bench: Dict[str, float] = {}
    shared = set(ours.benchmarks) & set(reference.benchmarks)
    for bench in shared:
        ours_vec = ours.rank_vector(bench)
        ref_vec = reference.rank_vector(bench)
        per_bench[bench] = spearman(
            [ours_vec[f] for f in factors],
            [ref_vec[f] for f in factors],
        )
    return RankingComparison(overall, top10, jaccard, per_bench)
