"""Running a Plackett-Burman experiment against the simulator.

This is the glue of the whole methodology: build the foldover PB design
over the 41 processor parameters (+ dummy columns), translate every
design row into a concrete :class:`~repro.cpu.params.MachineConfig`,
simulate every (configuration, benchmark) pair, and hand the cycle
counts to the effect/ranking machinery of :mod:`repro.doe`.

The response variable is the execution time in cycles, as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Set, Tuple

from repro.cpu import MachineConfig, config_from_levels
from repro.cpu.params import PARAMETER_NAMES
from repro.doe import DesignMatrix, EffectTable, compute_effects, pb_design
from repro.exec import (
    FailureRecord,
    ResultCache,
    RetryPolicy,
    grid_tasks,
    run_grid,
)
from repro.obs.telemetry import phase_of
from repro.workloads import Trace


def build_design(
    parameter_names: Sequence[str] = PARAMETER_NAMES,
    *,
    foldover: bool = True,
) -> DesignMatrix:
    """The experiment design for a set of parameters.

    With the paper's 41 parameters this is the X = 44 design with two
    dummy columns; ``foldover=True`` (the paper's choice) doubles it to
    88 runs.
    """
    return pb_design(factor_names=list(parameter_names), foldover=foldover)


@dataclass(frozen=True)
class CellFailure:
    """One permanently failed (design row, benchmark) cell.

    Names the cell in experiment terms — which configuration row of
    the design, which benchmark — and carries the engine's structured
    :class:`~repro.exec.FailureRecord` post-mortem.
    """

    row: int
    benchmark: str
    record: FailureRecord

    def describe(self) -> str:
        return (
            f"design row {self.row} on {self.benchmark}: "
            f"{self.record.describe()}"
        )


@dataclass
class PBExperimentResult:
    """Everything one PB experiment produced.

    Attributes
    ----------
    design:
        The design that was run.
    responses:
        benchmark -> list of cycle counts, one per design row.  Under
        ``on_error="skip"`` a permanently failed cell is ``None``.
    effects:
        benchmark -> :class:`EffectTable` over all design columns
        (including dummy factors).  Only benchmarks with a complete
        response column get a table: effects over a column with holes
        would be silently wrong, so incomplete benchmarks are listed
        in :attr:`failures` instead.
    failures:
        Permanently failed cells (empty unless the experiment ran
        with ``on_error="skip"`` and a cell exhausted its retries).
    """

    design: DesignMatrix
    responses: Dict[str, List[Optional[float]]]
    effects: Dict[str, EffectTable] = field(default_factory=dict)
    failures: List[CellFailure] = field(default_factory=list)

    def __post_init__(self):
        if not self.effects:
            self.effects = {
                bench: compute_effects(self.design, rows)
                for bench, rows in self.responses.items()
                if all(value is not None for value in rows)
            }

    @property
    def benchmarks(self) -> List[str]:
        return list(self.responses.keys())

    @property
    def complete(self) -> bool:
        """True when every cell of the grid produced a response."""
        return not self.failures

    def failed_cells(self) -> List[Tuple[int, str]]:
        """(design row, benchmark) of every permanently failed cell."""
        return [(f.row, f.benchmark) for f in self.failures]

    def ranks(self) -> Dict[str, Dict[str, int]]:
        """benchmark -> {factor: rank} (1 = most significant)."""
        return {b: t.ranks() for b, t in self.effects.items()}


class PBExperiment:
    """A configured Plackett-Burman screening experiment.

    Parameters
    ----------
    traces:
        benchmark name -> :class:`Trace` to simulate.
    base_config:
        Values for everything the design does not vary.
    parameter_names:
        The factors to vary (defaults to the paper's 41).
    foldover:
        Use the foldover design (the paper always does).
    precompute_tables:
        Optional benchmark -> redundancy-key set enabling the
        instruction-precomputation enhancement for the "after" run of
        an enhancement analysis.
    prefetch_lines:
        Next-N-line data prefetching (0 = off) — the second modelled
        enhancement, usable for §4.3-style analyses.
    response:
        Optional ``(stats, config) -> float`` turning a finished run
        into the response value; defaults to the cycle count (the
        paper's choice).  ``repro.cpu.power.energy_response`` screens
        on energy instead — the extension the paper's introduction
        motivates.
    core:
        Simulator core to run every cell on
        (:data:`repro.cpu.SIMULATOR_CORES`; default ``"batched"``).
        All cores are field-exact equivalent, so this changes wall
        time, never ranks.
    progress:
        Optional callback ``(done, total)`` for long runs.
    """

    def __init__(
        self,
        traces: Mapping[str, Trace],
        *,
        base_config: MachineConfig = MachineConfig(),
        parameter_names: Sequence[str] = PARAMETER_NAMES,
        foldover: bool = True,
        precompute_tables: Optional[Mapping[str, Set[int]]] = None,
        prefetch_lines: int = 0,
        response: Optional[Callable[..., float]] = None,
        core: str = "batched",
        progress: Optional[Callable[[int, int], None]] = None,
    ):
        if not traces:
            raise ValueError("need at least one benchmark trace")
        self.traces = dict(traces)
        self.base_config = base_config
        self.design = build_design(parameter_names, foldover=foldover)
        self.precompute_tables = dict(precompute_tables or {})
        self.prefetch_lines = prefetch_lines
        self.response = response
        self.core = core
        self.progress = progress

    def configs(self) -> List[MachineConfig]:
        """The concrete machine for every design row."""
        return [
            config_from_levels(levels, self.base_config)
            for levels in self.design.runs()
        ]

    def run(
        self,
        *,
        jobs: int = 1,
        cache: Optional[ResultCache] = None,
        retry: Optional[RetryPolicy] = None,
        timeout: Optional[float] = None,
        on_error: str = "raise",
        journal=None,
        telemetry=None,
        audit=None,
        dist=None,
    ) -> PBExperimentResult:
        """Simulate every (row, benchmark) pair; return all results.

        The grid goes through :func:`repro.exec.run_grid`: ``jobs >= 2``
        fans the simulations out over a supervised worker pool and
        ``cache`` reuses previously measured configurations.  Results
        are ordered by design row regardless of completion order, so
        responses, effects and ranks are identical to a serial run.
        The response function is applied in the calling process, so it
        may be any callable (closures included).

        ``retry``/``timeout``/``on_error``/``journal`` are the
        engine's fault-tolerance controls (see
        :func:`repro.exec.run_grid`).  Under ``on_error="skip"`` a
        permanently failed cell leaves ``None`` in its response column
        and a :class:`CellFailure` in the result's ``failures``;
        effects are computed only for benchmarks whose column is
        complete.  With ``journal=`` an interrupted screen resumes
        from its completed cells on the next run.

        ``telemetry`` (a :class:`repro.obs.Telemetry`, optional) adds
        coarse phase spans — ``pb-design`` around task construction,
        ``pb-analyze`` around response extraction and effect
        computation — and flows into :func:`repro.exec.run_grid` for
        the task-level lifecycle.  Strictly observational: results are
        bit-identical with it on or off.

        ``audit`` (an :class:`~repro.guard.audit.AuditPolicy` or a
        fraction) re-executes a deterministic sample of cache/journal
        hits and compares bit-exact; see :func:`repro.exec.run_grid`.

        ``dist`` (a :class:`repro.dist.DistOptions` or a spool
        directory) runs the grid through the distributed
        broker/worker runtime instead of a local pool; see
        :func:`repro.exec.run_grid` and :mod:`repro.dist`.
        """
        with phase_of(telemetry, "pb-design",
                      rows=self.design.n_runs,
                      benchmarks=len(self.traces)):
            configs = self.configs()
            tasks = grid_tasks(
                configs, self.traces,
                precompute_tables=self.precompute_tables,
                prefetch_lines=self.prefetch_lines,
                core=self.core,
            )
        grid = run_grid(
            tasks, jobs=jobs, cache=cache,
            # run_grid invokes progress callbacks in the calling
            # process only; the bound method never travels to workers.
            progress=self.progress,  # repro: noqa[REP004] -- parent-side callback
            retry=retry, timeout=timeout, on_error=on_error,
            journal=journal, telemetry=telemetry, audit=audit,
            dist=dist,
        )
        with phase_of(telemetry, "pb-analyze"):
            benches = list(self.traces)
            responses: Dict[str, List[Optional[float]]] = \
                {b: [] for b in benches}
            index = 0
            for config in configs:
                for bench in benches:
                    stats = grid[index]
                    index += 1
                    if stats is None:
                        responses[bench].append(None)
                    elif self.response is None:
                        responses[bench].append(float(stats.cycles))
                    else:
                        responses[bench].append(
                            float(self.response(stats, config))
                        )
            failures = [
                CellFailure(
                    row=record.index // len(benches),
                    benchmark=benches[record.index % len(benches)],
                    record=record,
                )
                for record in grid.failures
            ]
            return PBExperimentResult(
                self.design, responses, failures=failures
            )
