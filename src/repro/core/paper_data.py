"""The paper's published rank data (Tables 9 and 12), transcribed.

Bundling the original numbers lets the classification (§4.2) and
enhancement-analysis (§4.3) pipelines be validated *exactly* against
the paper — Table 10's distance matrix, Table 11's groups, the worked
gzip/vpr-Place distance of 89.8, and the Int-ALU sum-of-ranks shift —
independently of our simulator substrate.

Layout: ``TABLE9_RANKS[factor] = [rank per benchmark]`` with benchmarks
in :data:`BENCHMARKS` order.  The published "Sum" column is kept
separately so transcription can be checked against it.

Table 12 names its first row "RUU Entries" (SimpleScalar's name for the
reorder buffer); it is normalized to "Reorder Buffer Entries" here so
the two tables share factor keys.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

#: Benchmark column order of Tables 9, 10 and 12.
BENCHMARKS: Tuple[str, ...] = (
    "gzip", "vpr-Place", "vpr-Route", "gcc", "mesa", "art", "mcf",
    "equake", "ammp", "parser", "vortex", "bzip2", "twolf",
)

#: Table 9: ranks for the base processor.  {factor: 13 ranks}.
TABLE9_RANKS: Dict[str, List[int]] = {
    "Reorder Buffer Entries":          [1, 4, 1, 4, 3, 2, 2, 3, 6, 1, 4, 1, 4],
    "L2 Cache Latency":                [4, 2, 4, 2, 2, 4, 4, 2, 13, 3, 2, 8, 2],
    "BPred Type":                      [2, 5, 3, 5, 5, 27, 11, 6, 4, 4, 16, 7, 5],
    "Int ALUs":                        [3, 7, 5, 8, 4, 29, 8, 9, 19, 6, 9, 2, 9],
    "L1 D-Cache Latency":              [7, 6, 7, 7, 12, 8, 14, 5, 40, 7, 5, 6, 6],
    "L1 I-Cache Size":                 [6, 1, 12, 1, 1, 12, 37, 1, 36, 8, 1, 16, 1],
    "L2 Cache Size":                   [9, 35, 2, 6, 21, 1, 1, 7, 2, 2, 6, 3, 43],
    "L1 I-Cache Block Size":           [16, 3, 20, 3, 16, 10, 32, 4, 10, 11, 3, 22, 3],
    "Memory Latency First":            [36, 25, 6, 9, 23, 3, 3, 8, 1, 5, 8, 5, 28],
    "LSQ Entries":                     [12, 14, 9, 10, 13, 39, 10, 10, 17, 9, 7, 4, 10],
    "Speculative Branch Update":       [8, 17, 23, 28, 7, 16, 39, 12, 8, 20, 22, 20, 17],
    "D-TLB Size":                      [20, 28, 11, 23, 29, 13, 12, 11, 25, 14, 25, 11, 24],
    "L1 D-Cache Size":                 [18, 8, 10, 12, 39, 18, 9, 36, 32, 21, 12, 31, 7],
    "L1 I-Cache Associativity":        [5, 40, 15, 29, 8, 34, 23, 28, 16, 17, 15, 9, 21],
    "FP Multiply Latency":             [31, 12, 22, 11, 19, 24, 15, 23, 24, 29, 14, 23, 19],
    "Memory Bandwidth":                [37, 36, 13, 14, 43, 6, 6, 29, 3, 12, 19, 12, 38],
    "Int ALU Latencies":               [15, 15, 18, 13, 41, 22, 33, 14, 30, 16, 41, 10, 16],
    "BTB Entries":                     [10, 24, 19, 20, 9, 42, 31, 20, 22, 19, 20, 17, 34],
    "L1 D-Cache Block Size":           [17, 29, 34, 22, 15, 9, 24, 19, 28, 13, 32, 28, 26],
    "Int Divide Latency":              [29, 10, 26, 16, 24, 32, 41, 32, 20, 10, 10, 43, 8],
    "Int Mult/Div":                    [14, 20, 29, 31, 10, 23, 27, 24, 33, 36, 18, 26, 15],
    "L2 Cache Associativity":          [23, 19, 14, 19, 32, 28, 5, 39, 37, 18, 42, 21, 12],
    "I-TLB Latency":                   [33, 18, 24, 18, 37, 30, 30, 16, 21, 32, 11, 29, 18],
    "Instruction Fetch Queue Entries": [43, 13, 27, 30, 26, 20, 18, 37, 9, 25, 23, 34, 14],
    "BPred Misprediction Penalty":     [11, 23, 42, 21, 6, 43, 20, 34, 11, 22, 39, 37, 23],
    "FP ALUs":                         [34, 11, 31, 15, 34, 17, 40, 22, 26, 37, 13, 42, 13],
    "FP Divide Latency":               [22, 9, 35, 17, 30, 21, 38, 15, 43, 38, 17, 39, 11],
    "I-TLB Page Size":                 [42, 39, 8, 37, 36, 40, 7, 17, 12, 26, 28, 14, 39],
    "L1 D-Cache Associativity":        [13, 38, 17, 34, 18, 41, 34, 33, 14, 15, 35, 15, 42],
    "I-TLB Associativity":             [24, 27, 37, 25, 17, 31, 42, 13, 29, 30, 21, 33, 22],
    "L2 Cache Block Size":             [25, 43, 16, 38, 31, 7, 35, 27, 7, 35, 38, 13, 40],
    "BTB Associativity":               [21, 21, 36, 32, 11, 33, 17, 31, 34, 43, 27, 35, 25],
    "D-TLB Associativity":             [40, 32, 25, 26, 22, 35, 26, 26, 18, 33, 26, 30, 35],
    "FP ALU Latencies":                [32, 16, 38, 41, 38, 11, 22, 30, 23, 27, 30, 40, 29],
    "Memory Ports":                    [39, 31, 41, 24, 27, 15, 16, 41, 5, 42, 29, 41, 27],
    "I-TLB Size":                      [35, 34, 28, 35, 20, 37, 19, 18, 31, 34, 34, 27, 31],
    "Dummy Factor #2":                 [27, 42, 21, 39, 35, 14, 13, 35, 41, 28, 43, 18, 30],
    "FP Mult/Div":                     [41, 22, 43, 40, 40, 19, 28, 38, 27, 31, 31, 19, 20],
    "Int Multiply Latency":            [30, 41, 39, 36, 14, 26, 29, 21, 15, 41, 37, 32, 41],
    "FP Square Root Latency":          [38, 30, 40, 33, 33, 5, 25, 42, 42, 24, 24, 38, 37],
    "L1 I-Cache Latency":              [26, 26, 32, 42, 28, 38, 21, 40, 38, 40, 36, 25, 33],
    "Return Address Stack Entries":    [28, 33, 33, 27, 42, 25, 36, 25, 39, 39, 33, 36, 32],
    "Dummy Factor #1":                 [19, 37, 30, 43, 25, 36, 43, 43, 35, 23, 40, 24, 36],
}

#: The published Sum column of Table 9 (for transcription checking).
TABLE9_PUBLISHED_SUMS: Dict[str, int] = {
    "Reorder Buffer Entries": 36, "L2 Cache Latency": 52, "BPred Type": 100,
    "Int ALUs": 118, "L1 D-Cache Latency": 130, "L1 I-Cache Size": 133,
    "L2 Cache Size": 138, "L1 I-Cache Block Size": 153,
    "Memory Latency First": 160, "LSQ Entries": 164,
    "Speculative Branch Update": 237, "D-TLB Size": 246,
    "L1 D-Cache Size": 253, "L1 I-Cache Associativity": 260,
    "FP Multiply Latency": 266, "Memory Bandwidth": 268,
    "Int ALU Latencies": 284, "BTB Entries": 287,
    "L1 D-Cache Block Size": 296, "Int Divide Latency": 301,
    "Int Mult/Div": 306, "L2 Cache Associativity": 309,
    "I-TLB Latency": 317, "Instruction Fetch Queue Entries": 319,
    "BPred Misprediction Penalty": 332, "FP ALUs": 335,
    "FP Divide Latency": 335, "I-TLB Page Size": 345,
    "L1 D-Cache Associativity": 349, "I-TLB Associativity": 351,
    "L2 Cache Block Size": 355, "BTB Associativity": 366,
    "D-TLB Associativity": 374, "FP ALU Latencies": 377,
    "Memory Ports": 378, "I-TLB Size": 383, "Dummy Factor #2": 386,
    "FP Mult/Div": 399, "Int Multiply Latency": 402,
    "FP Square Root Latency": 411, "L1 I-Cache Latency": 425,
    "Return Address Stack Entries": 428, "Dummy Factor #1": 434,
}

#: Table 12: ranks with instruction precomputation (128-entry table).
TABLE12_RANKS: Dict[str, List[int]] = {
    "Reorder Buffer Entries":          [1, 4, 1, 4, 3, 2, 2, 3, 6, 1, 4, 1, 4],
    "L2 Cache Latency":                [4, 2, 4, 2, 2, 4, 4, 2, 13, 3, 2, 8, 2],
    "BPred Type":                      [2, 5, 3, 5, 5, 28, 11, 8, 4, 4, 16, 7, 5],
    "L1 D-Cache Latency":              [7, 6, 5, 7, 11, 8, 14, 5, 40, 7, 5, 4, 6],
    "L1 I-Cache Size":                 [5, 1, 12, 1, 1, 12, 38, 1, 36, 8, 1, 15, 1],
    "Int ALUs":                        [6, 8, 8, 9, 8, 29, 9, 13, 20, 6, 9, 3, 9],
    "L2 Cache Size":                   [9, 35, 2, 6, 22, 1, 1, 6, 2, 2, 6, 2, 43],
    "L1 I-Cache Block Size":           [15, 3, 20, 3, 14, 10, 32, 4, 10, 11, 3, 20, 3],
    "Memory Latency First":            [35, 25, 6, 8, 18, 3, 3, 7, 1, 5, 7, 6, 27],
    "LSQ Entries":                     [13, 14, 9, 10, 15, 40, 10, 9, 17, 9, 8, 5, 10],
    "D-TLB Size":                      [21, 28, 11, 24, 25, 13, 12, 10, 25, 14, 25, 10, 24],
    "Speculative Branch Update":       [8, 20, 25, 29, 7, 16, 39, 11, 8, 20, 21, 22, 19],
    "L1 I-Cache Associativity":        [3, 41, 15, 28, 6, 34, 23, 28, 16, 17, 11, 9, 21],
    "L1 D-Cache Size":                 [18, 7, 10, 12, 42, 19, 8, 35, 32, 21, 13, 32, 7],
    "FP Multiply Latency":             [31, 12, 22, 11, 19, 24, 15, 22, 24, 28, 14, 24, 18],
    "Memory Bandwidth":                [33, 36, 13, 14, 43, 6, 6, 31, 3, 12, 20, 11, 38],
    "BTB Entries":                     [10, 23, 19, 20, 9, 41, 31, 20, 22, 19, 19, 16, 34],
    "Int ALU Latencies":               [16, 15, 18, 13, 40, 22, 33, 14, 31, 16, 41, 12, 16],
    "L1 D-Cache Block Size":           [17, 30, 34, 22, 16, 9, 24, 19, 26, 13, 33, 25, 26],
    "Int Divide Latency":              [30, 10, 26, 17, 24, 33, 40, 33, 19, 10, 10, 41, 8],
    "L2 Cache Associativity":          [23, 19, 14, 19, 33, 27, 5, 39, 37, 18, 42, 21, 12],
    "Int Mult/Div":                    [14, 21, 30, 31, 12, 23, 27, 23, 33, 37, 18, 27, 15],
    "I-TLB Latency":                   [32, 17, 24, 18, 34, 30, 30, 16, 21, 33, 12, 29, 17],
    "Instruction Fetch Queue Entries": [43, 13, 27, 30, 23, 20, 19, 37, 9, 25, 23, 34, 14],
    "BPred Misprediction Penalty":     [11, 24, 41, 21, 4, 43, 20, 32, 11, 22, 39, 35, 23],
    "FP Divide Latency":               [20, 9, 36, 16, 28, 21, 37, 15, 43, 38, 17, 38, 11],
    "FP ALUs":                         [34, 11, 31, 15, 38, 17, 41, 24, 27, 36, 15, 43, 13],
    "I-TLB Page Size":                 [42, 38, 7, 38, 39, 39, 7, 17, 12, 26, 28, 14, 39],
    "L1 D-Cache Associativity":        [12, 39, 17, 35, 17, 42, 34, 34, 14, 15, 36, 17, 42],
    "L2 Cache Block Size":             [25, 43, 16, 37, 31, 7, 35, 27, 7, 35, 38, 13, 40],
    "I-TLB Associativity":             [26, 27, 38, 25, 20, 31, 42, 12, 29, 30, 22, 33, 22],
    "BTB Associativity":               [22, 18, 35, 32, 10, 32, 17, 30, 34, 43, 27, 36, 25],
    "D-TLB Associativity":             [40, 32, 23, 26, 27, 35, 25, 26, 18, 32, 26, 28, 35],
    "Memory Ports":                    [39, 31, 39, 23, 26, 15, 16, 40, 5, 42, 30, 40, 29],
    "FP ALU Latencies":                [37, 16, 37, 41, 37, 11, 21, 29, 23, 27, 29, 42, 28],
    "I-TLB Size":                      [36, 34, 28, 34, 21, 37, 18, 18, 30, 34, 34, 30, 32],
    "Dummy Factor #2":                 [28, 42, 21, 39, 32, 14, 13, 36, 42, 29, 43, 18, 30],
    "Int Multiply Latency":            [29, 40, 42, 36, 13, 26, 29, 21, 15, 41, 35, 31, 41],
    "FP Mult/Div":                     [41, 22, 43, 40, 41, 18, 28, 38, 28, 31, 31, 19, 20],
    "FP Square Root Latency":          [38, 29, 40, 33, 35, 5, 26, 43, 41, 24, 24, 39, 37],
    "Return Address Stack Entries":    [27, 33, 33, 27, 36, 25, 36, 25, 39, 40, 32, 37, 31],
    "L1 I-Cache Latency":              [24, 26, 32, 42, 29, 38, 22, 41, 38, 39, 37, 26, 33],
    "Dummy Factor #1":                 [19, 37, 29, 43, 30, 36, 43, 42, 35, 23, 40, 23, 36],
}

#: The published Sum column of Table 12.
TABLE12_PUBLISHED_SUMS: Dict[str, int] = {
    "Reorder Buffer Entries": 36, "L2 Cache Latency": 52, "BPred Type": 103,
    "L1 D-Cache Latency": 125, "L1 I-Cache Size": 132, "Int ALUs": 137,
    "L2 Cache Size": 137, "L1 I-Cache Block Size": 148,
    "Memory Latency First": 151, "LSQ Entries": 169, "D-TLB Size": 242,
    "Speculative Branch Update": 245, "L1 I-Cache Associativity": 252,
    "L1 D-Cache Size": 256, "FP Multiply Latency": 264,
    "Memory Bandwidth": 266, "BTB Entries": 283, "Int ALU Latencies": 287,
    "L1 D-Cache Block Size": 294, "Int Divide Latency": 301,
    "L2 Cache Associativity": 309, "Int Mult/Div": 311,
    "I-TLB Latency": 313, "Instruction Fetch Queue Entries": 317,
    "BPred Misprediction Penalty": 326, "FP Divide Latency": 329,
    "FP ALUs": 345, "I-TLB Page Size": 346,
    "L1 D-Cache Associativity": 354, "L2 Cache Block Size": 354,
    "I-TLB Associativity": 357, "BTB Associativity": 361,
    "D-TLB Associativity": 373, "Memory Ports": 375,
    "FP ALU Latencies": 378, "I-TLB Size": 386, "Dummy Factor #2": 387,
    "Int Multiply Latency": 399, "FP Mult/Div": 400,
    "FP Square Root Latency": 414, "Return Address Stack Entries": 421,
    "L1 I-Cache Latency": 427, "Dummy Factor #1": 436,
}

#: Table 10, row/column order = BENCHMARKS: the paper's published
#: distance matrix (one decimal place).
TABLE10_DISTANCES: Tuple[Tuple[float, ...], ...] = (
    (0.0, 89.8, 81.1, 81.9, 62.0, 113.5, 109.6, 79.5, 111.7, 73.6, 92.0, 78.1, 85.5),
    (89.8, 0.0, 98.9, 63.7, 94.0, 102.8, 110.9, 84.7, 118.1, 89.7, 68.5, 111.4, 35.2),
    (81.1, 98.9, 0.0, 71.7, 98.5, 100.4, 75.5, 73.3, 91.7, 56.4, 79.2, 45.7, 96.6),
    (81.9, 63.7, 71.7, 0.0, 90.9, 92.6, 94.5, 63.6, 98.5, 65.0, 54.6, 88.8, 67.3),
    (62.0, 94.0, 98.5, 90.9, 0.0, 120.9, 109.9, 81.8, 100.2, 88.9, 87.8, 94.1, 91.7),
    (113.5, 102.8, 100.4, 92.6, 120.9, 0.0, 98.6, 96.3, 105.2, 94.4, 92.7, 102.5, 105.2),
    (109.6, 110.9, 75.5, 94.5, 109.9, 98.6, 0.0, 104.9, 94.8, 87.6, 101.3, 80.0, 111.1),
    (79.5, 84.7, 73.3, 63.6, 81.8, 96.3, 104.9, 0.0, 98.4, 77.1, 67.8, 76.1, 86.5),
    (111.7, 118.1, 91.7, 98.5, 100.2, 105.2, 94.8, 98.4, 0.0, 91.1, 98.8, 92.7, 120.0),
    (73.6, 89.7, 56.4, 65.0, 88.9, 94.4, 87.6, 77.1, 91.1, 0.0, 77.4, 62.9, 89.7),
    (92.0, 68.5, 79.2, 54.6, 87.8, 92.7, 101.3, 67.8, 98.8, 77.4, 0.0, 94.8, 73.1),
    (78.1, 111.4, 45.7, 88.8, 94.1, 102.5, 80.0, 76.1, 92.7, 62.9, 94.8, 0.0, 107.9),
    (85.5, 35.2, 96.6, 67.3, 91.7, 105.2, 111.1, 86.5, 120.0, 89.7, 73.1, 107.9, 0.0),
)

#: Table 11: the paper's benchmark groups at threshold sqrt(4000).
TABLE11_GROUPS: Tuple[Tuple[str, ...], ...] = (
    ("gzip", "mesa"),
    ("vpr-Place", "twolf"),
    ("vpr-Route", "parser", "bzip2"),
    ("gcc", "vortex"),
    ("art",),
    ("mcf",),
    ("equake",),
    ("ammp",),
)


def _table_to_ranking(ranks: Dict[str, List[int]]):
    """Build a :class:`ParameterRanking` from one of the tables above."""
    from .parameter_selection import ranking_from_rank_table

    factors = list(ranks.keys())
    grid = np.array([ranks[f] for f in factors], dtype=np.int64)
    return ranking_from_rank_table(factors, list(BENCHMARKS), grid)


def paper_table9_ranking():
    """The paper's Table 9 as a :class:`ParameterRanking`."""
    return _table_to_ranking(TABLE9_RANKS)


def paper_table12_ranking():
    """The paper's Table 12 as a :class:`ParameterRanking`."""
    return _table_to_ranking(TABLE12_RANKS)
