"""Pre-simulation methodology: benchmark classification (§4.2).

Each benchmark's per-parameter rank vector is a point in R^n; the
Euclidean distance between two benchmarks' vectors measures how
differently they stress the machine.  Pairs closer than a threshold
(the paper uses sqrt(4000) ~ 63.2) are "similar", and the connected
components of the similarity relation form the groups of Table 11 —
an architect can then simulate one representative per group.

A single-linkage dendrogram builder is included as well so a user can
choose the threshold by inspection instead of by fiat.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import sqrt
from typing import Dict, List, Mapping, Sequence, Tuple

import numpy as np

from .parameter_selection import ParameterRanking

#: The threshold the paper uses for Table 11 (sqrt of 4000).
PAPER_SIMILARITY_THRESHOLD = sqrt(4000.0)


def rank_vectors(ranking: ParameterRanking) -> Dict[str, np.ndarray]:
    """benchmark -> vector of parameter ranks (in ``ranking.factors`` order)."""
    return {
        bench: ranking.ranks[:, j].astype(np.float64)
        for j, bench in enumerate(ranking.benchmarks)
    }


def distance_matrix(
    ranking: ParameterRanking,
) -> Tuple[List[str], np.ndarray]:
    """The full benchmark-by-benchmark Euclidean distance matrix (Table 10)."""
    vectors = rank_vectors(ranking)
    names = list(ranking.benchmarks)
    n = len(names)
    out = np.zeros((n, n), dtype=np.float64)
    for i in range(n):
        for j in range(i + 1, n):
            d = float(np.linalg.norm(vectors[names[i]] - vectors[names[j]]))
            out[i, j] = out[j, i] = d
    return names, out


def benchmark_distance(
    ranking: ParameterRanking, a: str, b: str
) -> float:
    """Distance between two benchmarks (the paper's gzip/vpr-Place 89.8)."""
    vectors = rank_vectors(ranking)
    return float(np.linalg.norm(vectors[a] - vectors[b]))


class _UnionFind:
    def __init__(self, n: int):
        self._parent = list(range(n))

    def find(self, x: int) -> int:
        while self._parent[x] != x:
            self._parent[x] = self._parent[self._parent[x]]
            x = self._parent[x]
        return x

    def union(self, a: int, b: int) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            self._parent[rb] = ra


def group_benchmarks(
    ranking: ParameterRanking,
    threshold: float = PAPER_SIMILARITY_THRESHOLD,
) -> List[List[str]]:
    """Table 11: groups of benchmarks with similar machine fingerprints.

    Groups are the connected components of the "distance < threshold"
    relation, ordered by first appearance (which reproduces the paper's
    row order when fed the paper's own rank data).
    """
    names, dist = distance_matrix(ranking)
    uf = _UnionFind(len(names))
    for i in range(len(names)):
        for j in range(i + 1, len(names)):
            if dist[i, j] < threshold:
                uf.union(i, j)
    groups: Dict[int, List[str]] = {}
    for i, name in enumerate(names):
        groups.setdefault(uf.find(i), []).append(name)
    ordered = sorted(groups.values(), key=lambda g: names.index(g[0]))
    return ordered


@dataclass(frozen=True)
class LinkageStep:
    """One merge of the single-linkage hierarchy."""

    distance: float
    merged: Tuple[str, ...]   # members of the newly-formed cluster


def single_linkage(ranking: ParameterRanking) -> List[LinkageStep]:
    """The full single-linkage merge sequence over all benchmarks.

    Cutting this dendrogram at distance ``t`` yields exactly
    ``group_benchmarks(ranking, t)`` — useful for choosing a threshold
    by looking at where the merge distances jump.
    """
    names, dist = distance_matrix(ranking)
    clusters: List[List[int]] = [[i] for i in range(len(names))]
    steps: List[LinkageStep] = []
    while len(clusters) > 1:
        best = None
        for a in range(len(clusters)):
            for b in range(a + 1, len(clusters)):
                d = min(
                    dist[i, j] for i in clusters[a] for j in clusters[b]
                )
                if best is None or d < best[0]:
                    best = (d, a, b)
        d, a, b = best
        merged = clusters[a] + clusters[b]
        steps.append(
            LinkageStep(d, tuple(names[i] for i in sorted(merged)))
        )
        clusters = [
            c for k, c in enumerate(clusters) if k not in (a, b)
        ] + [merged]
    return steps


def representatives(
    groups: Sequence[Sequence[str]],
    weights: Mapping[str, float] = None,
) -> List[str]:
    """Pick one benchmark per group (the simulation-time saving of §4.2).

    With ``weights`` (e.g. dynamic instruction counts), the cheapest
    member of each group is chosen; otherwise the first member.
    """
    out = []
    for group in groups:
        if not group:
            continue
        if weights:
            out.append(min(group, key=lambda b: weights.get(b, 0.0)))
        else:
            out.append(group[0])
    return out
