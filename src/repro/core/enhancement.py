"""Post-simulation methodology: analysing a processor enhancement (§4.3).

Run the same Plackett-Burman design twice — once on the base machine
(Table 9), once with the enhancement enabled (Table 12) — and compare
each parameter's sum of ranks.  A parameter whose sum *rises* has been
relieved by the enhancement (its resource matters less); a falling sum
marks new pressure.  The paper's example: instruction precomputation
raises the Int ALUs sum from 118 to 137, the largest move among the
significant parameters, because precomputed instructions skip the ALUs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Set, Tuple

from repro.cpu import MachineConfig, build_precompute_table
from repro.obs.telemetry import phase_of
from repro.workloads import Trace

from .experiment import PBExperiment, PBExperimentResult
from .parameter_selection import (
    ParameterRanking,
    rank_parameters_from_result,
)


@dataclass(frozen=True)
class FactorShift:
    """How one parameter's significance moved under the enhancement."""

    factor: str
    sum_before: int
    sum_after: int

    @property
    def shift(self) -> int:
        """Positive = the parameter became *less* significant."""
        return self.sum_after - self.sum_before


@dataclass(frozen=True)
class EnhancementAnalysis:
    """The before/after comparison of §4.3 in object form."""

    before: ParameterRanking
    after: ParameterRanking

    def shifts(self) -> List[FactorShift]:
        """Per-factor sum-of-ranks movement, largest |shift| first."""
        out = [
            FactorShift(
                factor,
                self.before.sum_of(factor),
                self.after.sum_of(factor),
            )
            for factor in self.before.factors
        ]
        out.sort(key=lambda s: (-abs(s.shift), s.factor))
        return out

    def biggest_shift_among_significant(self) -> FactorShift:
        """The paper's headline observation, computed.

        Restricting to the significant set (per the before-ranking's
        gap) mirrors the paper's reading of Table 12: among parameters
        that matter, which did the enhancement move the most?
        """
        significant = set(self.before.significant_factors())
        candidates = [s for s in self.shifts() if s.factor in significant]
        if not candidates:
            raise ValueError("no significant factors to compare")
        return candidates[0]

    def significant_set_stable(self) -> bool:
        """True if the enhancement left the *set* of significant
        parameters unchanged (the paper's first conclusion).

        The comparison is set-wise over the same number of parameters:
        the paper notes ordering changes but membership stability.
        """
        k = len(self.before.significant_factors())
        return set(self.before.top(k)) == set(self.after.top(k))


def analyze_enhancement(
    traces: Mapping[str, Trace],
    *,
    base_config: MachineConfig = MachineConfig(),
    table_entries: int = 128,
    precompute_tables: Optional[Mapping[str, Set[int]]] = None,
    parameter_names=None,
    progress=None,
    jobs: int = 1,
    cache=None,
    retry=None,
    timeout=None,
    on_error: str = "raise",
    journal=None,
    telemetry=None,
) -> Tuple[EnhancementAnalysis, PBExperimentResult, PBExperimentResult]:
    """Run the full §4.3 study: PB before and after precomputation.

    ``precompute_tables`` may be supplied directly (for enhancements
    other than instruction precomputation, any benchmark -> key-set
    mapping); by default the tables are built from each trace's
    redundancy profile with ``table_entries`` entries, as in the paper.

    ``jobs``/``cache`` go to both underlying experiment runs via
    :func:`repro.exec.run_grid`.  With a persistent cache, the "before"
    half of the study shares keys with any previous base-machine screen
    of the same traces and is not re-simulated.

    ``retry``/``timeout``/``on_error``/``journal`` are forwarded to
    both runs as well; a single journal file checkpoints the whole
    2 x 88-run study, because entries are content-keyed (the "before"
    and "after" grids never collide).  Note that rank comparison
    requires complete effect tables, so a benchmark with skipped cells
    drops out of both rankings.

    ``telemetry`` wraps the halves in ``enhance-before`` /
    ``enhance-after`` phase spans (plus ``precompute-tables`` around
    profile building) and flows into both experiment runs.

    Returns the analysis plus both raw experiment results.
    """
    if precompute_tables is None:
        with phase_of(telemetry, "precompute-tables",
                      entries=table_entries):
            precompute_tables = {
                name: build_precompute_table(trace, table_entries)
                for name, trace in traces.items()
            }
    kwargs = {}
    if parameter_names is not None:
        kwargs["parameter_names"] = parameter_names
    exec_kwargs = dict(
        jobs=jobs, cache=cache, retry=retry, timeout=timeout,
        on_error=on_error, journal=journal, telemetry=telemetry,
    )
    with phase_of(telemetry, "enhance-before"):
        before = PBExperiment(
            traces, base_config=base_config, progress=progress,
            **kwargs
        ).run(**exec_kwargs)
    with phase_of(telemetry, "enhance-after"):
        after = PBExperiment(
            traces,
            base_config=base_config,
            precompute_tables=precompute_tables,
            progress=progress,
            **kwargs,
        ).run(**exec_kwargs)
    analysis = EnhancementAnalysis(
        rank_parameters_from_result(before),
        rank_parameters_from_result(after),
    )
    return analysis, before, after
