"""Parameter sweeps and iterative value refinement (§4.1, steps 3-4).

After the PB screen names the critical parameters, the paper
recommends "iterative sets of sensitivity analyses so that the exact
interaction between key parameters can be accounted for when choosing
the final parameter values".  This module provides:

* :func:`sweep` — the classical one-parameter sensitivity curve
  (cycles vs value, per benchmark), run at an explicit base
  configuration so the operating point is a conscious choice rather
  than an accident;
* :func:`iterative_refinement` — the paper's loop: sweep each critical
  parameter in turn, fix it at the best measured value, and repeat
  with the updated base until no parameter moves (a coordinate-descent
  over the design space, with every step's evidence retained).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.cpu import MachineConfig
from repro.exec import (
    FailureRecord,
    ResultCache,
    RetryPolicy,
    grid_tasks,
    run_grid,
)
from repro.obs.telemetry import phase_of
from repro.workloads import Trace


@dataclass(frozen=True)
class SweepResult:
    """Cycles for each swept value, per benchmark.

    Under ``on_error="skip"`` a permanently failed cell holds ``None``
    and is described in :attr:`failures`; aggregate methods then skip
    the affected swept values rather than inventing numbers for them.
    """

    field_name: str
    values: Tuple[object, ...]
    cycles: Dict[str, Tuple[Optional[int], ...]]  # benchmark -> cycles
    failures: Tuple[FailureRecord, ...] = ()

    def total_cycles(self) -> List[Optional[int]]:
        """Suite-total cycles per swept value.

        A value with any failed cell totals to ``None`` — a partial
        sum would make broken configurations look artificially cheap.
        """
        totals: List[Optional[int]] = []
        for i in range(len(self.values)):
            column = [rows[i] for rows in self.cycles.values()]
            totals.append(
                None if any(c is None for c in column) else sum(column)
            )
        return totals

    def best_value(self):
        """The swept value with the lowest suite-total cycle count.

        Values with failed cells are out of the running; if *every*
        value failed somewhere there is no defensible choice and this
        raises ``ValueError``.
        """
        totals = self.total_cycles()
        measured = [t for t in totals if t is not None]
        if not measured:
            raise ValueError(
                f"every swept value of {self.field_name} has a failed "
                "cell; nothing to choose from"
            )
        return self.values[totals.index(min(measured))]

    def table(self) -> str:
        width = max(
            [len("value")] + [len(str(v)) for v in self.values]
        )
        lines = [f"sweep of {self.field_name}"]
        header = f"  {'value':<{width}s}  " + "  ".join(
            f"{b:>10s}" for b in self.cycles
        )
        lines.append(header)
        for i, value in enumerate(self.values):
            row = f"  {str(value):<{width}s}  " + "  ".join(
                f"{self.cycles[b][i]:10d}"
                if self.cycles[b][i] is not None else f"{'failed':>10s}"
                for b in self.cycles
            )
            lines.append(row)
        return "\n".join(lines)


def sweep(
    traces: Mapping[str, Trace],
    field_name: str,
    values: Sequence[object],
    base_config: MachineConfig = MachineConfig(),
    *,
    linked: Optional[Mapping[object, Mapping[str, object]]] = None,
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
    retry: Optional[RetryPolicy] = None,
    timeout: Optional[float] = None,
    on_error: str = "raise",
    journal=None,
    telemetry=None,
) -> SweepResult:
    """Measure cycles across values of one ``MachineConfig`` field.

    ``linked`` optionally maps a swept value to extra field overrides
    applied together with it (e.g. shrinking the LSQ along with the
    ROB to keep configurations legal).  ``jobs``/``cache`` go to
    :func:`repro.exec.run_grid`: the grid of (value, benchmark) cells
    runs on a worker pool and previously measured configurations are
    reused from the cache.  ``retry``/``timeout``/``on_error``/
    ``journal`` are the engine's fault-tolerance controls; under
    ``on_error="skip"`` a failed cell becomes ``None`` in the result
    and the affected value drops out of ``best_value()``.
    ``telemetry`` adds a ``sweep`` phase span naming the swept field
    and flows into the engine (see :class:`repro.obs.Telemetry`).
    """
    if not values:
        raise ValueError("need at least one value to sweep")
    configs = []
    for value in values:
        changes = {field_name: value}
        if linked and value in linked:
            changes.update(linked[value])
        configs.append(base_config.evolve(**changes))
    with phase_of(telemetry, "sweep", field=field_name,
                  values=len(values)):
        grid = run_grid(
            grid_tasks(configs, traces), jobs=jobs, cache=cache,
            retry=retry, timeout=timeout, on_error=on_error,
            journal=journal, telemetry=telemetry,
        )
    cycles: Dict[str, List[Optional[int]]] = {b: [] for b in traces}
    index = 0
    for _ in configs:
        for bench in traces:
            stats = grid[index]
            cycles[bench].append(
                stats.cycles if stats is not None else None
            )
            index += 1
    return SweepResult(
        field_name=field_name,
        values=tuple(values),
        cycles={b: tuple(v) for b, v in cycles.items()},
        failures=tuple(grid.failures),
    )


@dataclass
class RefinementStep:
    """One coordinate step of the iterative refinement."""

    field_name: str
    sweep: SweepResult
    chosen: object


@dataclass
class RefinementResult:
    """Outcome of :func:`iterative_refinement`."""

    final_config: MachineConfig
    steps: List[RefinementStep] = field(default_factory=list)
    rounds: int = 0

    def chosen_values(self) -> Dict[str, object]:
        out: Dict[str, object] = {}
        for step in self.steps:
            out[step.field_name] = step.chosen
        return out


def iterative_refinement(
    traces: Mapping[str, Trace],
    sweeps: Mapping[str, Sequence[object]],
    base_config: MachineConfig = MachineConfig(),
    *,
    max_rounds: int = 4,
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
    retry: Optional[RetryPolicy] = None,
    timeout: Optional[float] = None,
    on_error: str = "raise",
    journal=None,
    telemetry=None,
) -> RefinementResult:
    """Fix each parameter at its best value, iterating to a fixed point.

    ``sweeps`` maps MachineConfig field names to candidate value lists.
    Each round sweeps every parameter against the *current* base (so
    interactions between the chosen values are honoured, per the
    paper's step 3) and pins it at its best value; rounds repeat until
    no choice changes or ``max_rounds`` is hit.

    Coordinate descent revisits configurations constantly (every round
    re-measures the incumbent value of every parameter), so the loop
    always runs against a result cache: the supplied ``cache``, or a
    process-local in-memory one when ``None``.

    ``retry``/``timeout``/``on_error``/``journal`` go to every
    underlying sweep; with ``on_error="skip"`` a value whose cell
    failed permanently simply cannot be chosen (see
    :meth:`SweepResult.best_value`), so one broken configuration
    cannot sink a whole refinement.  ``telemetry`` wraps each round in
    a ``refinement-round`` phase span and flows into every sweep.
    """
    if not sweeps:
        raise ValueError("need at least one parameter to refine")
    if cache is None:
        cache = ResultCache()
    config = base_config
    result = RefinementResult(final_config=config)
    previous: Dict[str, object] = {}
    for round_index in range(max_rounds):
        result.rounds = round_index + 1
        changed = False
        with phase_of(telemetry, "refinement-round",
                      round=round_index + 1):
            for field_name, values in sweeps.items():
                outcome = sweep(
                    traces, field_name, values, config,
                    jobs=jobs, cache=cache, retry=retry,
                    timeout=timeout, on_error=on_error,
                    journal=journal, telemetry=telemetry,
                )
                chosen = outcome.best_value()
                result.steps.append(
                    RefinementStep(field_name, outcome, chosen)
                )
                if previous.get(field_name) != chosen:
                    changed = True
                previous[field_name] = chosen
                config = config.evolve(**{field_name: chosen})
        if not changed:
            break
    result.final_config = config
    return result
