"""Package-level call-graph index: the graph half of the flow core.

Built once per ``analyze_paths`` run (and per file for standalone
``analyze_source``), :class:`PackageIndex` gives checkers three
interprocedural powers the per-file walk cannot provide:

* **reachability** — "does this helper transitively call
  ``repro.guard.seal.check`` / a fork primitive?", so a wrapper like
  ``Spool._decode`` sanctions its callers and a helper that forks is
  as hazardous as the fork itself;
* **return inlining** — "what does ``self.result_path(key)`` actually
  evaluate to?", so a path factory's ``f"{key}.result"`` suffix is
  visible at the read site that consumes it;
* **caller-argument propagation** — "what do callers pass for this
  parameter?", so a value's origin can be traced one level up when a
  function only sees a bare name.

Resolution is intentionally modest: one level of import-alias
expansion (absolute and relative ``from`` imports), ``self.method``
binding within the defining class, and bare-name binding to
module-level functions.  Dynamic dispatch (``self.attr.method``,
dict-of-callables) stays unresolved and is treated as external — the
rules that consume the graph are written so unresolved means
"no sanction", never "no hazard".
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from .dataflow import FunctionFlow, _attr_chain

__all__ = ["FunctionInfo", "ModuleInfo", "PackageIndex",
           "module_name_for"]


def module_name_for(path: Path) -> str:
    """The dotted module name of ``path``, found by climbing parents
    while they contain ``__init__.py`` — so the index works no matter
    which directory the analyzer was pointed at."""
    path = Path(path)
    parts = [path.stem]
    parent = path.parent
    while (parent / "__init__.py").exists():
        parts.append(parent.name)
        parent = parent.parent
    if parts[0] == "__init__":
        parts = parts[1:] or [path.parent.name]
    return ".".join(reversed(parts))


@dataclass
class FunctionInfo:
    """One function or method in the index."""

    qual: str                       #: ``module.func`` / ``module.Cls.func``
    module: str
    name: str
    cls: Optional[str]
    node: ast.AST                   #: the FunctionDef/AsyncFunctionDef
    #: every call in the body with its resolved dotted name.
    calls: List[Tuple[ast.Call, str]] = field(default_factory=list)
    #: return-statement expressions (for inlining at call sites).
    returns: List[ast.expr] = field(default_factory=list)


@dataclass
class ModuleInfo:
    """One parsed module in the index."""

    name: str
    path: Optional[Path]
    tree: ast.AST
    imports: Dict[str, str] = field(default_factory=dict)
    #: local qualifier (``func`` / ``Cls.func``) -> info.
    functions: Dict[str, FunctionInfo] = field(default_factory=dict)
    #: class name -> its method names.
    classes: Dict[str, Set[str]] = field(default_factory=dict)


class PackageIndex:
    """Cross-module function table + resolved call edges."""

    def __init__(self) -> None:
        self.modules: Dict[str, ModuleInfo] = {}
        self.functions: Dict[str, FunctionInfo] = {}
        self._flows: Dict[str, FunctionFlow] = {}
        self._module_flows: Dict[str, FunctionFlow] = {}
        self._callers: Optional[Dict[str, List[Tuple[FunctionInfo,
                                                     ast.Call]]]] = None

    # -- construction ----------------------------------------------

    @classmethod
    def from_trees(cls, trees: Iterable[Tuple[str, ast.AST,
                                              Optional[Path]]]
                   ) -> "PackageIndex":
        """Build from ``(module_name, tree, path)`` triples."""
        index = cls()
        for name, tree, path in trees:
            index._add_module(name, tree, path)
        for mod in index.modules.values():
            index._resolve_module(mod)
        return index

    @classmethod
    def from_paths(cls, files: Sequence[Path]) -> "PackageIndex":
        """Parse ``files`` and build the index; unparsable files are
        skipped (the per-file walk reports them as REP000)."""
        trees = []
        for file in files:
            try:
                source = Path(file).read_text(encoding="utf-8")
                tree = ast.parse(source)
            except (OSError, UnicodeDecodeError, SyntaxError):
                continue
            trees.append((module_name_for(Path(file)), tree,
                          Path(file)))
        return cls.from_trees(trees)

    def _add_module(self, name: str, tree: ast.AST,
                    path: Optional[Path]) -> None:
        mod = ModuleInfo(name=name, path=path, tree=tree)
        self.modules[name] = mod
        self._index_imports(mod)
        for node in tree.body if isinstance(tree, ast.Module) else []:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._add_function(mod, node, cls=None)
            elif isinstance(node, ast.ClassDef):
                methods = mod.classes.setdefault(node.name, set())
                for item in node.body:
                    if isinstance(item, (ast.FunctionDef,
                                         ast.AsyncFunctionDef)):
                        methods.add(item.name)
                        self._add_function(mod, item, cls=node.name)

    def _add_function(self, mod: ModuleInfo, node: ast.AST,
                      cls: Optional[str]) -> None:
        local = f"{cls}.{node.name}" if cls else node.name
        info = FunctionInfo(
            qual=f"{mod.name}.{local}", module=mod.name,
            name=node.name, cls=cls, node=node,
        )
        mod.functions[local] = info
        self.functions[info.qual] = info

    def _index_imports(self, mod: ModuleInfo) -> None:
        is_package = bool(mod.path and mod.path.name == "__init__.py")
        parts = mod.name.split(".")
        pkg_parts = parts if is_package else parts[:-1]
        for node in ast.walk(mod.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.asname:
                        mod.imports[alias.asname] = alias.name
                    else:
                        head = alias.name.split(".")[0]
                        mod.imports[head] = head
            elif isinstance(node, ast.ImportFrom):
                if node.level:
                    base = pkg_parts[:len(pkg_parts)
                                     - (node.level - 1)]
                    target = ".".join(
                        base + ([node.module] if node.module else [])
                    )
                else:
                    target = node.module or ""
                if not target:
                    continue
                for alias in node.names:
                    bound = alias.asname or alias.name
                    mod.imports[bound] = f"{target}.{alias.name}"

    def _resolve_module(self, mod: ModuleInfo) -> None:
        for info in mod.functions.values():
            flow = self.flow(info)
            for call in flow.calls:
                resolved = self.resolve_in(mod, call, cls=info.cls)
                if resolved:
                    info.calls.append((call, resolved))
            for node in ast.walk(info.node):
                if isinstance(node, ast.Return) and node.value \
                        is not None:
                    info.returns.append(node.value)

    # -- resolution ------------------------------------------------

    def resolve_in(self, mod: ModuleInfo, call: ast.Call,
                   cls: Optional[str] = None) -> Optional[str]:
        """The dotted name ``call`` resolves to inside ``mod``.

        ``self.method()`` binds within ``cls``; bare names bind to
        module-level functions; import aliases expand one level
        (including relative imports).  Unresolvable chains are
        rendered leniently (``self.spool.heartbeat``) so suffix-based
        predicates still see them.
        """
        name = _attr_chain(call.func)
        if name is None:
            return None
        if cls and name.startswith("self."):
            rest = name[len("self."):]
            if "." not in rest and rest in mod.classes.get(cls, ()):
                return f"{mod.name}.{cls}.{rest}"
            return name
        head, _, rest = name.partition(".")
        target = mod.imports.get(head)
        if target is not None:
            return f"{target}.{rest}" if rest else target
        if not rest and head in mod.functions:
            return f"{mod.name}.{head}"
        return name

    def lookup(self, dotted: Optional[str]) -> Optional[FunctionInfo]:
        """The indexed function a resolved name refers to, if any."""
        if not dotted:
            return None
        info = self.functions.get(dotted)
        if info is not None:
            return info
        # ``from pkg import module`` then ``module.func(...)`` resolves
        # to ``pkg.module.func`` already; handle ``pkg.Cls`` ctor vs
        # method chains by trying the longest module prefix.
        head, _, last = dotted.rpartition(".")
        mod = self.modules.get(head)
        if mod is not None:
            local = mod.functions.get(last)
            if local is not None:
                return local
        return None

    # -- flows -----------------------------------------------------

    def module_flow(self, mod: ModuleInfo) -> FunctionFlow:
        flow = self._module_flows.get(mod.name)
        if flow is None:
            flow = FunctionFlow(
                mod.tree,
                resolve=lambda c, _m=mod: self.resolve_in(_m, c),
            )
            self._module_flows[mod.name] = flow
        return flow

    def flow(self, info: FunctionInfo) -> FunctionFlow:
        """The (cached) def-use flow of ``info``'s body, chained to
        its module scope."""
        flow = self._flows.get(info.qual)
        if flow is None:
            mod = self.modules[info.module]
            flow = FunctionFlow(
                info.node,
                resolve=lambda c, _m=mod, _c=info.cls:
                    self.resolve_in(_m, c, cls=_c),
                parent=self.module_flow(mod),
            )
            self._flows[info.qual] = flow
        return flow

    # -- interprocedural queries -----------------------------------

    def reaches(self, start: FunctionInfo,
                pred: Callable[[str], bool],
                cache: Optional[Dict[str, bool]] = None,
                max_depth: int = 8) -> bool:
        """True when ``start`` (or anything it transitively calls
        through resolvable internal edges) makes a call whose resolved
        name satisfies ``pred``.  ``cache`` memoizes across queries
        that share a predicate."""
        if cache is None:
            cache = {}
        return self._reaches(start, pred, cache, max_depth, set())

    def _reaches(self, info: FunctionInfo, pred, cache, depth,
                 visiting: Set[str]) -> bool:
        if info.qual in cache:
            return cache[info.qual]
        if depth <= 0 or info.qual in visiting:
            return False
        visiting.add(info.qual)
        hit = False
        for _, resolved in info.calls:
            if pred(resolved):
                hit = True
                break
            callee = self.lookup(resolved)
            if callee is not None and self._reaches(
                    callee, pred, cache, depth - 1, visiting):
                hit = True
                break
        visiting.discard(info.qual)
        cache[info.qual] = hit
        return hit

    def inlined_returns(self, resolved: Optional[str],
                        depth: int = 2,
                        _seen: Optional[Set[str]] = None
                        ) -> List[ast.AST]:
        """The origin closure of every return expression of the
        function ``resolved`` names — empty when it is external.  One
        extra level of internal calls found inside those returns is
        followed, so ``task_path`` -> ``self.pending_dir / f"..."``
        surfaces both the root attribute and the suffix literal."""
        info = self.lookup(resolved)
        if info is None or depth <= 0:
            return []
        seen = _seen if _seen is not None else set()
        if info.qual in seen:
            return []
        seen.add(info.qual)
        flow = self.flow(info)
        nodes: List[ast.AST] = []
        for ret in info.returns:
            nodes.extend(flow.origin_nodes(ret))
        for node in list(nodes):
            if isinstance(node, ast.Call):
                inner = self.resolve_in(
                    self.modules[info.module], node, cls=info.cls)
                nodes.extend(self.inlined_returns(
                    inner, depth - 1, seen))
        return nodes

    def callers_of(self, qual: str) -> List[Tuple[FunctionInfo,
                                                  ast.Call]]:
        """Every ``(caller, call_node)`` whose resolved callee is
        ``qual``."""
        if self._callers is None:
            table: Dict[str, List[Tuple[FunctionInfo, ast.Call]]] = {}
            for info in self.functions.values():
                for call, resolved in info.calls:
                    target = self.lookup(resolved)
                    if target is not None:
                        table.setdefault(target.qual, []) \
                            .append((info, call))
            self._callers = table
        return self._callers.get(qual, [])

    def param_arg_exprs(self, info: FunctionInfo, param: str
                        ) -> List[Tuple[FunctionInfo, ast.expr]]:
        """What callers pass for ``param`` of ``info`` — the one-level
        caller-side origin of a parameter."""
        node = info.node
        params = [a.arg for a in
                  list(node.args.posonlyargs) + list(node.args.args)]
        if info.cls and params and params[0] == "self":
            params = params[1:]
        out: List[Tuple[FunctionInfo, ast.expr]] = []
        for caller, call in self.callers_of(info.qual):
            for kw in call.keywords:
                if kw.arg == param:
                    out.append((caller, kw.value))
            try:
                pos = params.index(param)
            except ValueError:
                continue
            if pos < len(call.args):
                out.append((caller, call.args[pos]))
        return out
