"""Visitor core: one AST walk per file, shared by every checker.

The framework half of :mod:`repro.analysis`.  A :class:`Checker`
declares the node types it cares about (:attr:`Checker.interests`);
the :class:`Analyzer` parses each file once, builds a
:class:`FileContext` (source lines, import aliases, nested-function
names), walks the tree once, and dispatches each node to every
subscribed checker.  Checkers call :meth:`FileContext.report` to emit
findings; the analyzer then applies ``# repro: noqa[...]``
suppressions and rule selection, and returns an
:class:`AnalysisResult` with deterministic ordering.

Adding a rule means subclassing :class:`Checker` and listing it in
:data:`repro.analysis.checkers.ALL_CHECKERS` — the core never needs
to change.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from .callgraph import ModuleInfo, PackageIndex, module_name_for
from .config import AnalysisConfig
from .dataflow import FunctionFlow
from .findings import Finding, Severity

#: Rule code reserved for files the analyzer cannot parse.
PARSE_ERROR_RULE = "REP000"

#: Rule code for suppression comments whose rule no longer fires.
UNUSED_NOQA_RULE = "REP008"

#: ``# repro: noqa`` / ``# repro: noqa[REP001,REP004]`` with an
#: optional ``-- reason`` tail.  Matched against the comment on the
#: physical source line a finding points at.
_NOQA_RE = re.compile(
    r"#\s*repro:\s*noqa(?:\[(?P<rules>[A-Z0-9,\s]+)\])?"
    r"(?:\s*--\s*(?P<reason>.*))?",
)


def _noqa_match(comment: str) -> Optional["re.Match"]:
    """The suppression directive in ``comment``, or ``None``.

    A directive must run to the end of the comment: bare, bracketed,
    or trailed by a ``-- reason``.  Prose that merely *mentions* the
    syntax (followed by more words) is not a directive — it neither
    suppresses nor registers as stale.
    """
    match = _NOQA_RE.search(comment)
    if match is None or comment[match.end():].strip():
        return None
    return match


def dotted_name(node: ast.AST) -> Optional[str]:
    """The ``a.b.c`` form of a Name/Attribute chain, or ``None``.

    Anything that is not a pure attribute chain (calls, subscripts)
    yields ``None`` — checkers only match statically-resolvable
    names.
    """
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


class FileContext:
    """Everything checkers may need about the file being analyzed.

    Attributes
    ----------
    path:
        Path reported in findings (relative to the analysis root when
        possible, so reports and baselines are machine-independent).
    lines:
        The file's physical source lines (1-indexed via ``line(n)``).
    imports:
        Alias -> canonical dotted module name, from ``import`` /
        ``from .. import`` statements (``import numpy.random as npr``
        maps ``npr`` to ``numpy.random``; ``from time import time``
        maps ``time`` to ``time.time``).
    nested_functions:
        Names of functions defined inside other functions — closure
        candidates for the fork-safety checker.
    """

    def __init__(self, path: str, source: str, tree: ast.AST,
                 config: AnalysisConfig,
                 index: Optional[PackageIndex] = None,
                 module_name: Optional[str] = None):
        self.path = path
        self.source = source
        self.lines = source.splitlines()
        self.tree = tree
        self.config = config
        self._comments: Optional[Dict[int, Tuple[int, str]]] = None
        self.findings: List[Finding] = []
        self.imports: Dict[str, str] = {}
        self.nested_functions: Set[str] = set()
        #: Package-wide call-graph index (always present: a
        #: single-file index is built for standalone sources).
        self.index = index
        self.module_name = module_name
        self._index_imports(tree)
        self._index_nested_functions(tree)
        self._parents: Dict[ast.AST, ast.AST] = {}
        for parent in ast.walk(tree):
            for child in ast.iter_child_nodes(parent):
                self._parents[child] = parent
        self._flows: Dict[ast.AST, FunctionFlow] = {}

    # -- prepass indexes -------------------------------------------

    def _index_imports(self, tree: ast.AST) -> None:
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.asname:
                        self.imports[alias.asname] = alias.name
                    else:
                        head = alias.name.split(".")[0]
                        self.imports[head] = head
            elif isinstance(node, ast.ImportFrom) and node.module:
                for alias in node.names:
                    bound = alias.asname or alias.name
                    self.imports[bound] = f"{node.module}.{alias.name}"

    def _index_nested_functions(self, tree: ast.AST) -> None:
        for node in ast.walk(tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                for child in ast.walk(node):
                    if child is node:
                        continue
                    if isinstance(child, (ast.FunctionDef,
                                          ast.AsyncFunctionDef)):
                        self.nested_functions.add(child.name)

    # -- checker services ------------------------------------------

    def line(self, lineno: int) -> str:
        """The physical source line ``lineno`` (1-indexed), or ``""``."""
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1]
        return ""

    @property
    def comments(self) -> Dict[int, Tuple[int, str]]:
        """lineno -> (column, text) of every actual ``#`` comment.

        Tokenized, not regexed: a docstring *describing* a noqa
        comment must neither suppress findings nor register as a
        stale suppression.  Falls back to raw lines if the file does
        not tokenize (it already parsed, so this is near-impossible).
        """
        if self._comments is None:
            table: Dict[int, Tuple[int, str]] = {}
            try:
                for tok in tokenize.generate_tokens(
                        io.StringIO(self.source).readline):
                    if tok.type == tokenize.COMMENT:
                        table[tok.start[0]] = (tok.start[1],
                                               tok.string)
            except (tokenize.TokenError, IndentationError,
                    SyntaxError):  # pragma: no cover - file parsed
                table = {n: (0, line)
                         for n, line in enumerate(self.lines, 1)}
            self._comments = table
        return self._comments

    def resolve_call(self, node: ast.Call) -> Optional[str]:
        """The canonical dotted name a call resolves to, or ``None``.

        Import aliases are expanded through one level: with
        ``import numpy as np``, ``np.random.default_rng(...)``
        resolves to ``numpy.random.default_rng``; with
        ``from time import time``, ``time()`` resolves to
        ``time.time``.
        """
        name = dotted_name(node.func)
        if name is None:
            return None
        head, _, rest = name.partition(".")
        target = self.imports.get(head)
        if target is not None:
            return f"{target}.{rest}" if rest else target
        return name

    # -- flow services (protocol checkers) -------------------------

    @property
    def module_info(self) -> Optional[ModuleInfo]:
        """This file's entry in the package index, when indexed."""
        if self.index is None or self.module_name is None:
            return None
        return self.index.modules.get(self.module_name)

    def enclosing_scope(self, node: ast.AST) -> ast.AST:
        """The nearest enclosing function scope of ``node`` (or the
        module)."""
        current = self._parents.get(node)
        while current is not None:
            if isinstance(current, (ast.FunctionDef,
                                    ast.AsyncFunctionDef, ast.Module)):
                return current
            current = self._parents.get(current)
        return self.tree

    def enclosing_class(self, scope: ast.AST) -> Optional[str]:
        """The class a function scope is a method of, if any."""
        current = self._parents.get(scope)
        while current is not None:
            if isinstance(current, ast.ClassDef):
                return current.name
            if isinstance(current, (ast.FunctionDef,
                                    ast.AsyncFunctionDef)):
                return None
            current = self._parents.get(current)
        return None

    def flow_for(self, node: ast.AST) -> FunctionFlow:
        """The def-use flow of the scope containing ``node`` (cached;
        function scopes chain to the module scope)."""
        scope = node if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Module)
        ) else self.enclosing_scope(node)
        flow = self._flows.get(scope)
        if flow is None:
            parent = None
            if scope is not self.tree:
                parent = self.flow_for(self.enclosing_scope(scope))
            flow = FunctionFlow(scope, resolve=self._resolver(scope),
                                parent=parent)
            self._flows[scope] = flow
        return flow

    def _resolver(self, scope: ast.AST):
        mod = self.module_info
        if mod is not None and self.index is not None:
            cls = self.enclosing_class(scope)
            index = self.index
            return lambda call: index.resolve_in(mod, call, cls=cls)
        return self.resolve_call

    def report(self, node: ast.AST, rule: str, severity: Severity,
               message: str) -> None:
        """Emit one finding anchored at ``node``."""
        lineno = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0) + 1
        self.findings.append(Finding(
            path=self.path, line=lineno, column=col, rule=rule,
            severity=severity, message=message,
            source=self.line(lineno),
        ))


class Checker:
    """Base class for one REP0xx rule.

    Subclasses set :attr:`rule`, :attr:`name`, :attr:`description`,
    :attr:`severity` and :attr:`interests` (the AST node classes to
    receive), and implement :meth:`visit`.  :meth:`begin_file` runs
    once per file before the walk, for per-file state.
    """

    rule: str = ""
    name: str = ""
    description: str = ""
    severity: Severity = Severity.ERROR
    interests: Tuple[type, ...] = ()

    def begin_file(self, ctx: FileContext) -> None:
        """Reset any per-file state (default: nothing)."""

    def visit(self, node: ast.AST, ctx: FileContext) -> None:
        raise NotImplementedError


@dataclass(frozen=True)
class UnusedNoqa:
    """One ``# repro: noqa`` comment that silences nothing.

    ``codes`` are the listed rule codes that never fired on the line
    (or are unknown); ``kept`` the listed codes that still earn their
    keep.  A bare (unbracketed) stale suppression has both empty.
    ``--fix-unused-noqa`` uses these to rewrite or drop the comment.
    ``path`` is the display path (relative to the analysis root);
    ``file``, when set, is the real filesystem path the rewriter
    opens.
    """

    path: str
    line: int
    column: int
    codes: Tuple[str, ...]
    kept: Tuple[str, ...]
    file: Optional[str] = None


@dataclass
class AnalysisResult:
    """Outcome of one analysis run.

    ``findings`` are the live (unsuppressed, selected, unbaselined)
    violations in deterministic order; ``suppressed`` counts findings
    silenced by ``noqa`` comments, ``baselined`` those absorbed by a
    baseline file.
    """

    findings: List[Finding] = field(default_factory=list)
    files: int = 0
    suppressed: int = 0
    baselined: int = 0
    #: The findings silenced by noqa comments (audit trail: this
    #: repo's own tests assert every one carries a reason).
    suppressions: List[Finding] = field(default_factory=list)
    #: Stale suppression comments (REP008), for ``--fix-unused-noqa``.
    unused_noqa: List[UnusedNoqa] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.findings


class Analyzer:
    """Runs a checker suite over files, one AST walk per file."""

    def __init__(self, checkers: Sequence[Checker],
                 config: Optional[AnalysisConfig] = None):
        self.config = config or AnalysisConfig()
        all_codes = [c.rule for c in checkers]
        selected = self.config.selected_rules(all_codes)
        self.checkers = [c for c in checkers if c.rule in selected]
        self._known_rules = set(all_codes) | {PARSE_ERROR_RULE}
        self._armed_rules = {c.rule for c in self.checkers}
        #: Bare ``# repro: noqa`` staleness is only decidable when
        #: every rule is armed (a disarmed rule might be what it
        #: silences).
        self._all_armed = self._armed_rules >= set(all_codes)
        self._by_interest: Dict[type, List[Checker]] = {}
        for checker in self.checkers:
            for node_type in checker.interests:
                self._by_interest.setdefault(node_type, []) \
                    .append(checker)
        self._last_suppressions: List[Finding] = []
        self._last_unused: List[UnusedNoqa] = []

    # -- single file -----------------------------------------------

    def analyze_source(self, source: str, path: str = "<memory>",
                       index: Optional[PackageIndex] = None,
                       module_name: Optional[str] = None
                       ) -> List[Finding]:
        """All live findings for one source text (noqa applied).

        Without an ``index`` a single-file call-graph index is built,
        so same-module interprocedural reasoning (``self._decode``
        sanctioning a read) works on standalone sources too.
        """
        self._last_suppressions = []
        self._last_unused = []
        try:
            tree = ast.parse(source)
        except SyntaxError as exc:
            return [Finding(
                path=path, line=exc.lineno or 1,
                column=(exc.offset or 0) + 1 or 1,
                rule=PARSE_ERROR_RULE, severity=Severity.ERROR,
                message=f"file does not parse: {exc.msg}",
            )]
        if module_name is None:
            module_name = Path(path).stem or "<memory>"
        if index is None:
            index = PackageIndex.from_trees(
                [(module_name, tree, None)]
            )
        ctx = FileContext(path, source, tree, self.config,
                          index=index, module_name=module_name)
        for checker in self.checkers:
            checker.begin_file(ctx)
        for node in ast.walk(tree):
            for checker in self._by_interest.get(type(node), ()):
                checker.visit(node, ctx)
        live, suppressed = _apply_suppressions(ctx)
        if UNUSED_NOQA_RULE in self._armed_rules:
            unused = _find_unused_noqa(
                ctx, suppressed, self._armed_rules,
                self._known_rules, self._all_armed,
            )
            self._last_unused = unused
            live.extend(_unused_noqa_findings(ctx, unused))
        self._last_suppressions = sorted(
            suppressed, key=lambda f: f.sort_key
        )
        return sorted(live, key=lambda f: f.sort_key)

    # -- trees of files --------------------------------------------

    def analyze_paths(self, paths: Iterable[Path],
                      root: Optional[Path] = None) -> AnalysisResult:
        """Analyze files and directories; returns the merged result.

        Directories are walked recursively for ``*.py`` in sorted
        order.  Paths are reported relative to ``root`` (default: the
        current directory) when possible.
        """
        result = AnalysisResult()
        root = Path(root) if root is not None else Path(".")
        files = _collect_files(paths, self.config)
        # One package-wide index: cross-module edges (a spool helper
        # wrapping seal.check, a path factory in another class) are
        # visible from every file's walk.
        index = PackageIndex.from_paths(files)
        for file in files:
            try:
                source = file.read_text(encoding="utf-8")
            except (OSError, UnicodeDecodeError) as exc:
                result.findings.append(Finding(
                    path=_display(file, root), line=1, column=1,
                    rule=PARSE_ERROR_RULE, severity=Severity.ERROR,
                    message=f"cannot read file: {exc}",
                ))
                result.files += 1
                continue
            findings = self.analyze_source(
                source, _display(file, root), index=index,
                module_name=module_name_for(file),
            )
            result.files += 1
            result.suppressed += len(self._last_suppressions)
            result.suppressions.extend(self._last_suppressions)
            result.unused_noqa.extend(
                replace(entry, file=str(file))
                for entry in self._last_unused
            )
            result.findings.extend(findings)
        result.findings.sort(key=lambda f: f.sort_key)
        return result


def _display(file: Path, root: Path) -> str:
    """``file`` relative to ``root`` when possible, POSIX-style."""
    try:
        return file.resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        return file.as_posix()


def _collect_files(paths: Iterable[Path],
                   config: AnalysisConfig) -> List[Path]:
    """The sorted, deduplicated, exclusion-filtered file list.

    Sorted traversal is load-bearing: the report (and therefore the
    JSON output and baseline) must not depend on directory-entry
    order.
    """
    files: List[Path] = []
    for path in paths:
        path = Path(path)
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        else:
            files.append(path)
    seen: Set[Path] = set()
    unique: List[Path] = []
    for file in files:
        key = file.resolve()
        if key in seen or config.excludes(file):
            continue
        seen.add(key)
        unique.append(file)
    return unique


def _apply_suppressions(ctx: FileContext):
    """Split raw findings into (live, suppressed) per noqa comments.

    A suppression comment on the finding's anchor line silences it:
    ``# repro: noqa`` silences every rule, ``# repro: noqa[REP001]``
    only the listed ones.  An optional ``-- reason`` tail documents
    why; it is encouraged (and asserted on in this repo's own tree)
    but not enforced here.
    """
    live: List[Finding] = []
    suppressed: List[Finding] = []
    for finding in ctx.findings:
        _, comment = ctx.comments.get(finding.line, (0, ""))
        match = _noqa_match(comment)
        if match and _covers(match, finding.rule):
            suppressed.append(finding)
        else:
            live.append(finding)
    return live, suppressed


def _covers(match: "re.Match", rule: str) -> bool:
    rules = match.group("rules")
    if rules is None:
        return True
    wanted = {r.strip() for r in rules.split(",") if r.strip()}
    return rule in wanted


def _find_unused_noqa(ctx: FileContext, suppressed: List[Finding],
                      armed: Set[str], known: Set[str],
                      all_armed: bool) -> List[UnusedNoqa]:
    """Suppression comments in ``ctx`` that silence nothing.

    A listed code is stale when it is unknown (typo'd), or armed this
    run yet suppressed no finding on its line.  Codes that are known
    but disarmed are left alone — this run cannot tell.  A bare
    ``# repro: noqa`` is only judged when every rule is armed, for
    the same reason.
    """
    by_line: Dict[int, Set[str]] = {}
    for finding in suppressed:
        by_line.setdefault(finding.line, set()).add(finding.rule)
    out: List[UnusedNoqa] = []
    for lineno in sorted(ctx.comments):
        col, comment = ctx.comments[lineno]
        match = _noqa_match(comment)
        if match is None:
            continue
        fired = by_line.get(lineno, set())
        listed_raw = match.group("rules")
        column = col + match.start() + 1
        if listed_raw is None:
            if not fired and all_armed:
                out.append(UnusedNoqa(
                    path=ctx.path, line=lineno, column=column,
                    codes=(), kept=(),
                ))
            continue
        listed = [r.strip() for r in listed_raw.split(",")
                  if r.strip()]
        stale = tuple(
            code for code in listed
            if code not in known
            or (code in armed and code not in fired)
        )
        if stale:
            kept = tuple(c for c in listed if c not in stale)
            out.append(UnusedNoqa(
                path=ctx.path, line=lineno, column=column,
                codes=stale, kept=kept,
            ))
    return out


def _unused_noqa_findings(ctx: FileContext,
                          unused: List[UnusedNoqa]) -> List[Finding]:
    """REP008 findings for stale suppressions.  These are emitted
    *after* the suppression pass and deliberately cannot themselves
    be noqa'd — a stale comment must be removed, not silenced."""
    findings = []
    for entry in unused:
        if entry.codes:
            what = ", ".join(entry.codes)
            message = (f"suppression for {what} no longer fires on "
                       "this line; remove it (or run "
                       "--fix-unused-noqa)")
        else:
            message = ("bare 'repro: noqa' suppresses nothing on "
                       "this line; remove it (or run "
                       "--fix-unused-noqa)")
        findings.append(Finding(
            path=entry.path, line=entry.line, column=entry.column,
            rule=UNUSED_NOQA_RULE, severity=Severity.WARNING,
            message=message, source=ctx.line(entry.line),
        ))
    return findings


def fix_unused_noqa(entries: Iterable[UnusedNoqa]) -> Tuple[int, int]:
    """Rewrite files in place to drop or trim stale suppressions.

    ``entries`` come from :attr:`AnalysisResult.unused_noqa`.  A
    fully stale directive (nothing kept) is cut from its line; a
    partially stale one is rebuilt around the surviving codes, with
    any ``-- reason`` tail preserved.  Line numbers never shift — a
    comment-only line is left blank, not deleted — so every entry's
    anchor stays valid throughout.  Returns ``(comments rewritten,
    files touched)``; entries whose file has drifted since analysis
    (the directive is no longer at the recorded column) are skipped.
    """
    by_path: Dict[str, List[UnusedNoqa]] = {}
    for entry in entries:
        by_path.setdefault(entry.file or entry.path, []).append(entry)
    rewritten = 0
    touched = 0
    for path in sorted(by_path):
        try:
            text = Path(path).read_text(encoding="utf-8")
        except OSError:
            continue
        lines = text.splitlines(keepends=True)
        changed = False
        for entry in by_path[path]:
            i = entry.line - 1
            if i >= len(lines):
                continue
            line = lines[i]
            start = entry.column - 1
            match = _NOQA_RE.search(line[start:])
            if match is None or match.start() != 0:
                continue
            body = line.rstrip("\r\n")
            eol = line[len(body):]
            if entry.kept:
                rebuilt = f"# repro: noqa[{','.join(entry.kept)}]"
                reason = match.group("reason")
                if reason and reason.strip():
                    rebuilt += f" -- {reason.strip()}"
                lines[i] = body[:start] + rebuilt + eol
            else:
                lines[i] = body[:start].rstrip() + eol
            changed = True
            rewritten += 1
        if changed:
            Path(path).write_text("".join(lines), encoding="utf-8")
            touched += 1
    return rewritten, touched
