"""Visitor core: one AST walk per file, shared by every checker.

The framework half of :mod:`repro.analysis`.  A :class:`Checker`
declares the node types it cares about (:attr:`Checker.interests`);
the :class:`Analyzer` parses each file once, builds a
:class:`FileContext` (source lines, import aliases, nested-function
names), walks the tree once, and dispatches each node to every
subscribed checker.  Checkers call :meth:`FileContext.report` to emit
findings; the analyzer then applies ``# repro: noqa[...]``
suppressions and rule selection, and returns an
:class:`AnalysisResult` with deterministic ordering.

Adding a rule means subclassing :class:`Checker` and listing it in
:data:`repro.analysis.checkers.ALL_CHECKERS` — the core never needs
to change.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from .config import AnalysisConfig
from .findings import Finding, Severity

#: Rule code reserved for files the analyzer cannot parse.
PARSE_ERROR_RULE = "REP000"

#: ``# repro: noqa`` / ``# repro: noqa[REP001,REP004]`` with an
#: optional ``-- reason`` tail.  Matched against the physical source
#: line a finding points at.
_NOQA_RE = re.compile(
    r"#\s*repro:\s*noqa(?:\[(?P<rules>[A-Z0-9,\s]+)\])?"
    r"(?:\s*--\s*(?P<reason>.*))?",
)


def dotted_name(node: ast.AST) -> Optional[str]:
    """The ``a.b.c`` form of a Name/Attribute chain, or ``None``.

    Anything that is not a pure attribute chain (calls, subscripts)
    yields ``None`` — checkers only match statically-resolvable
    names.
    """
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


class FileContext:
    """Everything checkers may need about the file being analyzed.

    Attributes
    ----------
    path:
        Path reported in findings (relative to the analysis root when
        possible, so reports and baselines are machine-independent).
    lines:
        The file's physical source lines (1-indexed via ``line(n)``).
    imports:
        Alias -> canonical dotted module name, from ``import`` /
        ``from .. import`` statements (``import numpy.random as npr``
        maps ``npr`` to ``numpy.random``; ``from time import time``
        maps ``time`` to ``time.time``).
    nested_functions:
        Names of functions defined inside other functions — closure
        candidates for the fork-safety checker.
    """

    def __init__(self, path: str, source: str, tree: ast.AST,
                 config: AnalysisConfig):
        self.path = path
        self.lines = source.splitlines()
        self.tree = tree
        self.config = config
        self.findings: List[Finding] = []
        self.imports: Dict[str, str] = {}
        self.nested_functions: Set[str] = set()
        self._index_imports(tree)
        self._index_nested_functions(tree)

    # -- prepass indexes -------------------------------------------

    def _index_imports(self, tree: ast.AST) -> None:
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.asname:
                        self.imports[alias.asname] = alias.name
                    else:
                        head = alias.name.split(".")[0]
                        self.imports[head] = head
            elif isinstance(node, ast.ImportFrom) and node.module:
                for alias in node.names:
                    bound = alias.asname or alias.name
                    self.imports[bound] = f"{node.module}.{alias.name}"

    def _index_nested_functions(self, tree: ast.AST) -> None:
        for node in ast.walk(tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                for child in ast.walk(node):
                    if child is node:
                        continue
                    if isinstance(child, (ast.FunctionDef,
                                          ast.AsyncFunctionDef)):
                        self.nested_functions.add(child.name)

    # -- checker services ------------------------------------------

    def line(self, lineno: int) -> str:
        """The physical source line ``lineno`` (1-indexed), or ``""``."""
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1]
        return ""

    def resolve_call(self, node: ast.Call) -> Optional[str]:
        """The canonical dotted name a call resolves to, or ``None``.

        Import aliases are expanded through one level: with
        ``import numpy as np``, ``np.random.default_rng(...)``
        resolves to ``numpy.random.default_rng``; with
        ``from time import time``, ``time()`` resolves to
        ``time.time``.
        """
        name = dotted_name(node.func)
        if name is None:
            return None
        head, _, rest = name.partition(".")
        target = self.imports.get(head)
        if target is not None:
            return f"{target}.{rest}" if rest else target
        return name

    def report(self, node: ast.AST, rule: str, severity: Severity,
               message: str) -> None:
        """Emit one finding anchored at ``node``."""
        lineno = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0) + 1
        self.findings.append(Finding(
            path=self.path, line=lineno, column=col, rule=rule,
            severity=severity, message=message,
            source=self.line(lineno),
        ))


class Checker:
    """Base class for one REP0xx rule.

    Subclasses set :attr:`rule`, :attr:`name`, :attr:`description`,
    :attr:`severity` and :attr:`interests` (the AST node classes to
    receive), and implement :meth:`visit`.  :meth:`begin_file` runs
    once per file before the walk, for per-file state.
    """

    rule: str = ""
    name: str = ""
    description: str = ""
    severity: Severity = Severity.ERROR
    interests: Tuple[type, ...] = ()

    def begin_file(self, ctx: FileContext) -> None:
        """Reset any per-file state (default: nothing)."""

    def visit(self, node: ast.AST, ctx: FileContext) -> None:
        raise NotImplementedError


@dataclass
class AnalysisResult:
    """Outcome of one analysis run.

    ``findings`` are the live (unsuppressed, selected, unbaselined)
    violations in deterministic order; ``suppressed`` counts findings
    silenced by ``noqa`` comments, ``baselined`` those absorbed by a
    baseline file.
    """

    findings: List[Finding] = field(default_factory=list)
    files: int = 0
    suppressed: int = 0
    baselined: int = 0
    #: The findings silenced by noqa comments (audit trail: this
    #: repo's own tests assert every one carries a reason).
    suppressions: List[Finding] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.findings


class Analyzer:
    """Runs a checker suite over files, one AST walk per file."""

    def __init__(self, checkers: Sequence[Checker],
                 config: Optional[AnalysisConfig] = None):
        self.config = config or AnalysisConfig()
        selected = self.config.selected_rules(
            [c.rule for c in checkers]
        )
        self.checkers = [c for c in checkers if c.rule in selected]
        self._by_interest: Dict[type, List[Checker]] = {}
        for checker in self.checkers:
            for node_type in checker.interests:
                self._by_interest.setdefault(node_type, []) \
                    .append(checker)
        self._last_suppressions: List[Finding] = []

    # -- single file -----------------------------------------------

    def analyze_source(self, source: str,
                       path: str = "<memory>") -> List[Finding]:
        """All live findings for one source text (noqa applied)."""
        try:
            tree = ast.parse(source)
        except SyntaxError as exc:
            return [Finding(
                path=path, line=exc.lineno or 1,
                column=(exc.offset or 0) + 1 or 1,
                rule=PARSE_ERROR_RULE, severity=Severity.ERROR,
                message=f"file does not parse: {exc.msg}",
            )]
        ctx = FileContext(path, source, tree, self.config)
        for checker in self.checkers:
            checker.begin_file(ctx)
        for node in ast.walk(tree):
            for checker in self._by_interest.get(type(node), ()):
                checker.visit(node, ctx)
        live, suppressed = _apply_suppressions(ctx)
        self._last_suppressions = sorted(
            suppressed, key=lambda f: f.sort_key
        )
        return sorted(live, key=lambda f: f.sort_key)

    # -- trees of files --------------------------------------------

    def analyze_paths(self, paths: Iterable[Path],
                      root: Optional[Path] = None) -> AnalysisResult:
        """Analyze files and directories; returns the merged result.

        Directories are walked recursively for ``*.py`` in sorted
        order.  Paths are reported relative to ``root`` (default: the
        current directory) when possible.
        """
        result = AnalysisResult()
        root = Path(root) if root is not None else Path(".")
        for file in _collect_files(paths, self.config):
            try:
                source = file.read_text(encoding="utf-8")
            except (OSError, UnicodeDecodeError) as exc:
                result.findings.append(Finding(
                    path=_display(file, root), line=1, column=1,
                    rule=PARSE_ERROR_RULE, severity=Severity.ERROR,
                    message=f"cannot read file: {exc}",
                ))
                result.files += 1
                continue
            findings = self.analyze_source(source, _display(file, root))
            result.files += 1
            result.suppressed += len(self._last_suppressions)
            result.suppressions.extend(self._last_suppressions)
            result.findings.extend(findings)
        result.findings.sort(key=lambda f: f.sort_key)
        return result


def _display(file: Path, root: Path) -> str:
    """``file`` relative to ``root`` when possible, POSIX-style."""
    try:
        return file.resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        return file.as_posix()


def _collect_files(paths: Iterable[Path],
                   config: AnalysisConfig) -> List[Path]:
    """The sorted, deduplicated, exclusion-filtered file list.

    Sorted traversal is load-bearing: the report (and therefore the
    JSON output and baseline) must not depend on directory-entry
    order.
    """
    files: List[Path] = []
    for path in paths:
        path = Path(path)
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        else:
            files.append(path)
    seen: Set[Path] = set()
    unique: List[Path] = []
    for file in files:
        key = file.resolve()
        if key in seen or config.excludes(file):
            continue
        seen.add(key)
        unique.append(file)
    return unique


def _apply_suppressions(ctx: FileContext):
    """Split raw findings into (live, suppressed) per noqa comments.

    A suppression comment on the finding's anchor line silences it:
    ``# repro: noqa`` silences every rule, ``# repro: noqa[REP001]``
    only the listed ones.  An optional ``-- reason`` tail documents
    why; it is encouraged (and asserted on in this repo's own tree)
    but not enforced here.
    """
    live: List[Finding] = []
    suppressed: List[Finding] = []
    for finding in ctx.findings:
        match = _NOQA_RE.search(ctx.line(finding.line))
        if match and _covers(match, finding.rule):
            suppressed.append(finding)
        else:
            live.append(finding)
    return live, suppressed


def _covers(match: "re.Match", rule: str) -> bool:
    rules = match.group("rules")
    if rules is None:
        return True
    wanted = {r.strip() for r in rules.split(",") if r.strip()}
    return rule in wanted
