"""Command-line front end: ``python -m repro.analysis`` / ``repro lint``.

Exit status contract (relied on by CI and the CLI tests):

* ``0`` — analysis ran and found nothing (clean tree);
* ``1`` — analysis ran and reported at least one live finding;
* ``2`` — usage error: unknown rule code, unreadable config or
  baseline, or a path that does not exist.

Both entry points share :func:`add_arguments` / :func:`run`, so the
flag surface cannot drift between ``repro lint`` and
``python -m repro.analysis``.
"""

from __future__ import annotations

import argparse
import subprocess
import sys
from pathlib import Path
from typing import List, Optional

from .checkers import ALL_CHECKERS, default_checkers
from .config import (
    AnalysisConfig,
    ConfigError,
    load_baseline,
    load_config,
    write_baseline,
)
from .core import Analyzer, fix_unused_noqa
from .reporters import render_json, render_sarif, render_text

#: Exit statuses (module-level so tests assert against names).
EXIT_CLEAN = 0
EXIT_FINDINGS = 1
EXIT_USAGE = 2


def add_arguments(parser: argparse.ArgumentParser) -> None:
    """Install the shared flag surface on ``parser``."""
    parser.add_argument(
        "paths", nargs="*", default=["src/repro"], metavar="PATH",
        help="files or directories to analyze "
             "(default: %(default)s)",
    )
    parser.add_argument(
        "--format", choices=["text", "json", "sarif"], default="text",
        help="report format (default %(default)s)",
    )
    parser.add_argument(
        "--diff", default=None, metavar="REF",
        help="only analyze .py files changed relative to the git "
             "ref (still restricted to PATH arguments)",
    )
    parser.add_argument(
        "--fix-unused-noqa", action="store_true",
        help="rewrite files in place to drop stale suppression "
             "comments (REP008), then exit",
    )
    parser.add_argument(
        "--select", default=None, metavar="RULES",
        help="comma-separated rule codes to run (default: all)",
    )
    parser.add_argument(
        "--ignore", default=None, metavar="RULES",
        help="comma-separated rule codes to skip",
    )
    parser.add_argument(
        "--config", default=None, metavar="FILE",
        help="TOML config file (default: discover pyproject.toml "
             "[tool.repro.analysis])",
    )
    parser.add_argument(
        "--baseline", default=None, metavar="FILE",
        help="JSON baseline; findings fingerprinted in it are "
             "absorbed rather than reported",
    )
    parser.add_argument(
        "--write-baseline", default=None, metavar="FILE",
        help="write the current findings as a baseline and exit 0",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalogue and exit",
    )


def _list_rules() -> str:
    lines = []
    for cls in ALL_CHECKERS:
        lines.append(f"{cls.rule}  {cls.name:<22} {cls.description}")
    return "\n".join(lines)


def run(args: argparse.Namespace,
        stdout=None, stderr=None) -> int:
    """Execute one analysis per parsed ``args``; returns exit status."""
    stdout = stdout if stdout is not None else sys.stdout
    stderr = stderr if stderr is not None else sys.stderr
    if args.list_rules:
        print(_list_rules(), file=stdout)
        return EXIT_CLEAN

    paths = [Path(p) for p in args.paths]
    missing = [p for p in paths if not p.exists()]
    if missing:
        print(f"repro lint: no such path: "
              f"{', '.join(map(str, missing))}", file=stderr)
        return EXIT_USAGE

    if args.diff is not None:
        try:
            paths = _changed_paths(args.diff, paths)
        except ConfigError as exc:
            print(f"repro lint: {exc}", file=stderr)
            return EXIT_USAGE

    try:
        config = load_config(
            Path(args.config) if args.config else None,
            start=paths[0] if paths else None,
        )
        _merge_cli_rules(config, args)
        analyzer = Analyzer(default_checkers(), config)
        result = analyzer.analyze_paths(paths)
        if args.baseline:
            known = load_baseline(Path(args.baseline))
            live = [f for f in result.findings
                    if f.fingerprint() not in known]
            result.baselined = len(result.findings) - len(live)
            result.findings = live
    except ConfigError as exc:
        print(f"repro lint: {exc}", file=stderr)
        return EXIT_USAGE

    if args.fix_unused_noqa:
        rewritten, touched = fix_unused_noqa(result.unused_noqa)
        print(f"rewrote {rewritten} stale suppression(s) in "
              f"{touched} file(s)", file=stderr)
        return EXIT_CLEAN

    if args.write_baseline:
        count = write_baseline(
            result.findings, Path(args.write_baseline)
        )
        print(f"wrote {count} fingerprint(s) to "
              f"{args.write_baseline}", file=stderr)
        return EXIT_CLEAN

    render = {"json": render_json, "sarif": render_sarif}.get(
        args.format, render_text
    )
    print(render(result), file=stdout)
    return EXIT_CLEAN if result.clean else EXIT_FINDINGS


def _changed_paths(ref: str, requested: List[Path]) -> List[Path]:
    """The ``.py`` files changed since ``ref``, within ``requested``.

    Asks git for names changed relative to ``ref`` (three-dot-free:
    exactly ``git diff --name-only REF``, resolved from the repo
    toplevel), keeps those that still exist — deletions lint nothing
    — and intersects with the requested paths.  Any git failure is a
    usage error (exit 2): an incremental gate that silently linted
    nothing would pass every PR.
    """
    def _git(*argv: str) -> str:
        try:
            proc = subprocess.run(
                ["git", *argv], capture_output=True, text=True,
            )
        except OSError as exc:
            raise ConfigError(f"--diff: cannot run git: {exc}")
        if proc.returncode != 0:
            detail = proc.stderr.strip() or f"exit {proc.returncode}"
            raise ConfigError(f"--diff {ref}: git failed: {detail}")
        return proc.stdout

    top = Path(_git("rev-parse", "--show-toplevel").strip())
    names = _git("diff", "--name-only", "-z", ref, "--").split("\0")
    roots = [p.resolve() for p in requested]
    changed: List[Path] = []
    for name in names:
        if not name.endswith(".py"):
            continue
        candidate = top / name
        if not candidate.is_file():
            continue
        resolved = candidate.resolve()
        for root in roots:
            if resolved == root or root in resolved.parents:
                changed.append(candidate)
                break
    return sorted(set(changed))


def _merge_cli_rules(config: AnalysisConfig,
                     args: argparse.Namespace) -> None:
    """--select/--ignore override/extend the TOML lists."""
    if args.select:
        config.select = [r.strip() for r in args.select.split(",")
                         if r.strip()]
    if args.ignore:
        config.ignore = list(config.ignore) + [
            r.strip() for r in args.ignore.split(",") if r.strip()
        ]


def main(argv: Optional[List[str]] = None) -> int:
    """``python -m repro.analysis`` entry point."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description=__doc__.splitlines()[0],
    )
    add_arguments(parser)
    return run(parser.parse_args(argv))
