"""The REP001–REP007 checker suite: this repository's invariants.

Each checker encodes one way a simulation campaign has actually been
corrupted in the wild (see the rule docstrings).  The common thread
is the engine's core guarantee — the 88-run Plackett-Burman screen is
bit-identical across serial, parallel, cached, fault-injected and
resumed execution — which only holds if no code path consults hidden
per-process state: the global RNG, the wall clock, hash/directory
iteration order, or fork-inherited mutable globals.

The suite is deliberately small and opinionated: these are *this
repo's* rules, not a general linter.  ``docs/analysis.md`` documents
each rule with examples and the sanctioned escapes.
"""

from __future__ import annotations

import ast
from typing import Optional, Tuple

from .core import Checker, FileContext, dotted_name
from .findings import Severity

# ---------------------------------------------------------------------------
# REP001 — unseeded randomness
# ---------------------------------------------------------------------------

#: Constructors that are fine when given a seed argument.
_SEEDABLE = {
    "random.Random": "random.Random",
    "numpy.random.RandomState": "numpy.random.RandomState",
}

#: Call names (resolved) whose bare form means "the unseeded default".
_DEFAULT_RNG = "default_rng"


class UnseededRandomness(Checker):
    """REP001: randomness drawn from unseeded or global-state RNGs.

    ``random.random()``-style module-level calls share one hidden
    global generator whose state depends on import order and every
    other caller in the process — two runs of the same experiment
    diverge as soon as anything else consumes entropy.  The same goes
    for NumPy's legacy global (``np.random.rand`` & co.) and for
    ``default_rng()`` / ``Random()`` / ``RandomState()`` constructed
    without a seed, which seed themselves from OS entropy.  The
    sanctioned pattern is an explicitly seeded generator object
    (``random.Random(seed)``, ``np.random.default_rng(seed)``)
    plumbed to where it is used.
    """

    rule = "REP001"
    name = "unseeded-randomness"
    description = ("module-level RNG calls and unseeded generator "
                   "constructors")
    severity = Severity.ERROR
    interests = (ast.Call,)

    def visit(self, node: ast.Call, ctx: FileContext) -> None:
        resolved = ctx.resolve_call(node)
        if resolved is None:
            return
        seedable = _SEEDABLE.get(resolved)
        if seedable is not None:
            if not node.args and not node.keywords:
                ctx.report(
                    node, self.rule, self.severity,
                    f"{seedable}() without a seed draws OS entropy; "
                    "pass an explicit seed",
                )
            return
        if resolved.split(".")[-1] == _DEFAULT_RNG:
            if not node.args and not node.keywords:
                ctx.report(
                    node, self.rule, self.severity,
                    "default_rng() without a seed is nondeterministic; "
                    "pass an explicit seed",
                )
            return
        for prefix in ("random.", "numpy.random."):
            if resolved.startswith(prefix):
                ctx.report(
                    node, self.rule, self.severity,
                    f"{resolved}() uses the hidden process-global RNG; "
                    "use an explicitly seeded generator object",
                )
                return


# ---------------------------------------------------------------------------
# REP002 — wall-clock / entropy sources
# ---------------------------------------------------------------------------

#: Canonical names whose return value differs between identical runs.
_ENTROPY_CALLS = {
    "time.time": "wall-clock time",
    "time.time_ns": "wall-clock time",
    "datetime.datetime.now": "wall-clock time",
    "datetime.datetime.utcnow": "wall-clock time",
    "datetime.datetime.today": "wall-clock time",
    "datetime.date.today": "wall-clock time",
    "uuid.uuid1": "host/clock-derived identifiers",
    "uuid.uuid4": "OS entropy",
    "os.urandom": "OS entropy",
    "os.getrandom": "OS entropy",
    "random.SystemRandom": "OS entropy",
}


class EntropySource(Checker):
    """REP002: wall-clock and OS-entropy reads.

    Anything derived from ``time.time()``, ``uuid4()`` or
    ``os.urandom()`` is different on every run by construction; if it
    flows into a simulator decision, an effect computation, or a
    cache/journal key, replay and warm-cache reruns silently stop
    being comparable.  Monotonic clocks for *deadlines*
    (``time.monotonic``) are fine — they never enter results — and
    further sanctioned calls can be listed under ``allow_calls`` in
    the TOML config.
    """

    rule = "REP002"
    name = "entropy-source"
    description = "wall-clock / entropy reads that vary across runs"
    severity = Severity.ERROR
    interests = (ast.Call,)

    def visit(self, node: ast.Call, ctx: FileContext) -> None:
        resolved = ctx.resolve_call(node)
        if resolved is None or resolved in ctx.config.allow_calls:
            return
        why = _ENTROPY_CALLS.get(resolved)
        if why is None and resolved.startswith("secrets."):
            why = "OS entropy"
        if why is not None:
            ctx.report(
                node, self.rule, self.severity,
                f"{resolved}() injects {why} into the run; results "
                "and cache keys must not depend on it",
            )


# ---------------------------------------------------------------------------
# REP003 — iteration over unordered collections
# ---------------------------------------------------------------------------

#: Filesystem enumerations whose order is directory-state dependent.
_FS_ENUM = {"glob.glob", "glob.iglob", "os.listdir", "os.scandir"}
_FS_METHODS = {"glob", "rglob", "iterdir"}

#: Order-sensitive consumers: materialize or fold their argument in
#: iteration order.  (min/max/len/set/sorted are order-insensitive
#: and deliberately absent; float ``sum`` is NOT associative.)
_ORDERED_SINKS = {"sum", "list", "tuple", "enumerate",
                  "math.fsum", "itertools.accumulate"}


def _unordered_reason(node: ast.AST,
                      ctx: FileContext) -> Optional[str]:
    """Why ``node`` produces values in nondeterministic order."""
    if isinstance(node, ast.Set):
        return "a set literal has no stable iteration order"
    if isinstance(node, ast.SetComp):
        return "a set comprehension has no stable iteration order"
    if isinstance(node, ast.Call):
        resolved = ctx.resolve_call(node)
        if resolved in ("set", "frozenset"):
            return f"{resolved}() has no stable iteration order"
        if resolved in _FS_ENUM:
            return (f"{resolved}() enumerates in directory order, "
                    "which varies across filesystems")
        name = dotted_name(node.func)
        if isinstance(node.func, ast.Attribute) and \
                node.func.attr in _FS_METHODS:
            label = name or f"...{node.func.attr}"
            return (f"{label}() enumerates in directory order, "
                    "which varies across filesystems")
    return None


class UnorderedIteration(Checker):
    """REP003: iteration order taken from an unordered source.

    A ``for`` loop, comprehension, or order-sensitive fold
    (``sum``, ``list``, ``tuple``, ``str.join``, ...) over a set or a
    raw directory listing visits elements in hash/filesystem order.
    When the values feed an effect sum, a serialized report, or a
    ``task_key`` hash, two identical runs produce different bits —
    float addition is not associative and JSON arrays are ordered.
    Wrap the source in ``sorted(...)`` (the fix in all sanctioned
    cases in this tree) or consume it with an order-insensitive
    reduction (``len``/``min``/``max``/``set``).
    """

    rule = "REP003"
    name = "unordered-iteration"
    description = ("for/comprehension/fold over sets or directory "
                   "listings")
    severity = Severity.ERROR
    interests = (ast.For, ast.AsyncFor, ast.ListComp, ast.DictComp,
                 ast.GeneratorExp, ast.Call)

    def visit(self, node: ast.AST, ctx: FileContext) -> None:
        if isinstance(node, (ast.For, ast.AsyncFor)):
            self._check_iterable(node.iter, ctx, "for loop iterates")
        elif isinstance(node, (ast.ListComp, ast.DictComp,
                               ast.GeneratorExp)):
            what = {
                ast.ListComp: "list comprehension iterates",
                ast.DictComp: "dict comprehension iterates",
                ast.GeneratorExp: "generator expression iterates",
            }[type(node)]
            for generator in node.generators:
                self._check_iterable(generator.iter, ctx, what)
        elif isinstance(node, ast.Call):
            sink = ctx.resolve_call(node)
            is_join = (isinstance(node.func, ast.Attribute)
                       and node.func.attr == "join")
            if sink in _ORDERED_SINKS or is_join:
                label = "str.join folds" if is_join \
                    else f"{sink}() materializes"
                for arg in node.args:
                    self._check_iterable(arg, ctx, label)

    def _check_iterable(self, iterable: ast.AST, ctx: FileContext,
                        what: str) -> None:
        reason = _unordered_reason(iterable, ctx)
        if reason is not None:
            ctx.report(
                iterable, self.rule, self.severity,
                f"{what} in nondeterministic order: {reason}; "
                "wrap in sorted(...)",
            )


# ---------------------------------------------------------------------------
# REP004 — fork/pickle safety
# ---------------------------------------------------------------------------

#: Callable names (last dotted segment) that ship work to workers.
_EXECUTORS = {
    "run_grid", "Process", "Pool", "submit", "apply_async",
    "map_async", "imap", "imap_unordered", "starmap",
    "starmap_async",
}


class ForkSafety(Checker):
    """REP004: state that does not survive the trip to a worker.

    Two hazards.  (1) Lambdas, closures over local state, and bound
    methods handed to ``run_grid``-style executors: they either fail
    to pickle (spawn) or silently capture a *copy* of enclosing state
    (fork), so the worker computes against stale data.  Ship
    module-level functions and explicit arguments instead.  (2)
    ``global`` rebinding inside functions: after ``fork`` each worker
    owns a private copy of module state, so the rebinding is
    invisible to the parent and every sibling — mutation intended to
    coordinate work coordinates nothing.  Per-process flags are the
    one sanctioned use and carry an explicit suppression in this
    tree.
    """

    rule = "REP004"
    name = "fork-safety"
    description = ("closures/lambdas/bound methods sent to executors; "
                   "global rebinding")
    severity = Severity.ERROR
    interests = (ast.Call, ast.Global)

    def visit(self, node: ast.AST, ctx: FileContext) -> None:
        if isinstance(node, ast.Global):
            ctx.report(
                node, self.rule, Severity.WARNING,
                f"'global {', '.join(node.names)}' rebinds module "
                "state inside a function; invisible to other "
                "processes after fork",
            )
            return
        assert isinstance(node, ast.Call)
        name = ctx.resolve_call(node) or dotted_name(node.func)
        if name is None:
            return
        executors = _EXECUTORS | ctx.config.executors
        if name.split(".")[-1] not in executors:
            return
        values = list(node.args) + [kw.value for kw in node.keywords]
        for value in values:
            if isinstance(value, ast.Lambda):
                ctx.report(
                    value, self.rule, self.severity,
                    f"lambda passed to {name}(); lambdas cannot be "
                    "pickled and capture enclosing state — use a "
                    "module-level function",
                )
            elif isinstance(value, ast.Name) and \
                    value.id in ctx.nested_functions:
                ctx.report(
                    value, self.rule, self.severity,
                    f"closure '{value.id}' passed to {name}(); nested "
                    "functions capture enclosing state that does not "
                    "travel to workers — use a module-level function",
                )
            elif isinstance(value, ast.Attribute) and \
                    isinstance(value.value, ast.Name) and \
                    value.value.id == "self":
                ctx.report(
                    value, self.rule, self.severity,
                    f"bound method self.{value.attr} passed to "
                    f"{name}(); the instance is dragged across the "
                    "process boundary — use a module-level function",
                )


# ---------------------------------------------------------------------------
# REP005 — mutable default arguments
# ---------------------------------------------------------------------------

_MUTABLE_LITERALS = (ast.List, ast.Dict, ast.Set, ast.ListComp,
                     ast.DictComp, ast.SetComp)
_MUTABLE_CALLS = {"list", "dict", "set", "bytearray",
                  "collections.defaultdict", "collections.Counter",
                  "collections.OrderedDict", "collections.deque"}


class MutableDefault(Checker):
    """REP005: mutable default argument values.

    A default is evaluated once at ``def`` time and shared by every
    call; state accumulated in one experiment leaks into the next,
    which is exactly the cross-run contamination the cache and
    journal layers are built to rule out.  Use ``None`` plus an
    in-body default.
    """

    rule = "REP005"
    name = "mutable-default"
    description = "list/dict/set default argument values"
    severity = Severity.WARNING
    interests = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)

    def visit(self, node: ast.AST, ctx: FileContext) -> None:
        args = node.args
        defaults = list(args.defaults) + \
            [d for d in args.kw_defaults if d is not None]
        for default in defaults:
            mutable = isinstance(default, _MUTABLE_LITERALS)
            if isinstance(default, ast.Call):
                mutable = ctx.resolve_call(default) in _MUTABLE_CALLS
            if mutable:
                ctx.report(
                    default, self.rule, self.severity,
                    "mutable default argument is shared across calls; "
                    "use None and default inside the body",
                )


# ---------------------------------------------------------------------------
# REP006 — environment reads outside sanctioned entry points
# ---------------------------------------------------------------------------

class EnvironRead(Checker):
    """REP006: ``os.environ`` / ``os.getenv`` reads.

    An environment read is an undeclared input: it does not enter
    ``task_key``, so two runs with different environments share cache
    entries they must not, and a replayed journal cannot know what
    the original run saw.  Configuration must arrive through
    arguments.  The sanctioned entry points — the CLI and the fault
    injector's ``REPRO_FAULT_SPEC`` hook — carry explicit
    suppressions with reasons.
    """

    rule = "REP006"
    name = "environ-read"
    description = "os.environ / os.getenv access"
    severity = Severity.ERROR
    interests = (ast.Attribute, ast.Name, ast.Call)

    def visit(self, node: ast.AST, ctx: FileContext) -> None:
        if isinstance(node, ast.Call):
            if ctx.resolve_call(node) == "os.getenv":
                ctx.report(
                    node, self.rule, self.severity,
                    "os.getenv() is an undeclared input; pass "
                    "configuration explicitly",
                )
            return
        if isinstance(node, ast.Attribute):
            if dotted_name(node) == "os.environ":
                ctx.report(
                    node, self.rule, self.severity,
                    "os.environ is an undeclared input; pass "
                    "configuration explicitly",
                )
            return
        if isinstance(node, ast.Name) and \
                ctx.imports.get(node.id) == "os.environ":
            ctx.report(
                node, self.rule, self.severity,
                "os.environ is an undeclared input; pass "
                "configuration explicitly",
            )


# ---------------------------------------------------------------------------
# REP007 — overbroad exception handling
# ---------------------------------------------------------------------------

def _handler_reraises(handler: ast.ExceptHandler) -> bool:
    return any(isinstance(n, ast.Raise) for n in ast.walk(handler))


def _only_passes(handler: ast.ExceptHandler) -> bool:
    return all(
        isinstance(stmt, ast.Pass) or
        (isinstance(stmt, ast.Expr) and
         isinstance(stmt.value, ast.Constant) and
         stmt.value.value is Ellipsis)
        for stmt in handler.body
    )


def _caught_names(handler: ast.ExceptHandler) -> Tuple[str, ...]:
    node = handler.type
    if node is None:
        return ()
    elts = node.elts if isinstance(node, ast.Tuple) else [node]
    return tuple(filter(None, (dotted_name(e) for e in elts)))


class ExceptionSwallow(Checker):
    """REP007: handlers broad enough to eat control-flow exceptions.

    A bare ``except:`` or ``except BaseException`` that does not
    re-raise swallows ``KeyboardInterrupt`` and ``SystemExit`` — the
    Ctrl-C/resume contract of the engine depends on those
    propagating — and can mask a ``GridError`` as a success.  An
    ``except Exception: pass`` hides every failure including
    corrupted results.  Catch the narrowest type that the handler
    can actually handle, and never silently.
    """

    rule = "REP007"
    name = "exception-swallow"
    description = "bare/BaseException handlers and silent swallows"
    severity = Severity.ERROR
    interests = (ast.ExceptHandler,)

    def visit(self, node: ast.ExceptHandler, ctx: FileContext) -> None:
        caught = _caught_names(node)
        if node.type is None:
            if not _handler_reraises(node):
                ctx.report(
                    node, self.rule, self.severity,
                    "bare except swallows KeyboardInterrupt/"
                    "SystemExit; catch a concrete exception type",
                )
            return
        if "BaseException" in caught and not _handler_reraises(node):
            ctx.report(
                node, self.rule, self.severity,
                "except BaseException without re-raise swallows "
                "KeyboardInterrupt/SystemExit; narrow it or re-raise",
            )
            return
        if "Exception" in caught and _only_passes(node):
            ctx.report(
                node, self.rule, Severity.WARNING,
                "except Exception: pass silently swallows every "
                "failure (including GridError); handle or log it",
            )


# ---------------------------------------------------------------------------
# REP008 — unused suppressions
# ---------------------------------------------------------------------------

class UnusedSuppression(Checker):
    """REP008: ``# repro: noqa`` comments that silence nothing.

    A suppression is a standing claim — "this line violates a rule,
    deliberately, for this reason".  When the code under it changes
    (or the code listed a typo'd rule from day one), the claim goes
    stale: the next reader inherits an exemption with no violation
    behind it, and a *real* future violation on that line sails
    through pre-silenced.  The detection itself runs in the analyzer
    core after the suppression pass (this class exists so the rule is
    selectable and catalogued); findings cannot be noqa'd — stale
    suppressions are removed (``--fix-unused-noqa``), not suppressed.
    """

    rule = "REP008"
    name = "unused-suppression"
    description = "noqa comments whose rule no longer fires"
    severity = Severity.WARNING
    interests = ()

    def visit(self, node: ast.AST, ctx: FileContext) -> None:
        """Never called (no interests) — see the core's noqa pass."""


from .protocol import PROTOCOL_CHECKERS  # noqa: E402 - after base rules

#: The shipped suite, in rule order.  ``Analyzer`` filters it through
#: the config's select/ignore lists.
ALL_CHECKERS = (
    UnseededRandomness,
    EntropySource,
    UnorderedIteration,
    ForkSafety,
    MutableDefault,
    EnvironRead,
    ExceptionSwallow,
    UnusedSuppression,
    *PROTOCOL_CHECKERS,
)


def default_checkers():
    """Fresh instances of every shipped checker, in rule order."""
    return [cls() for cls in ALL_CHECKERS]
