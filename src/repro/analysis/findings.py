"""The finding and severity model shared by every checker.

A :class:`Finding` is one reported hazard: a rule code (``REP0xx``),
a severity, a location, a one-line message, and the source line it
points at.  Findings order deterministically by ``(path, line,
column, rule)`` so reports are bit-identical run to run — the
analyzer that polices determinism must itself be deterministic.

:meth:`Finding.fingerprint` is the baseline identity: a hash of the
*relative* path, the rule, and the stripped source text of the
flagged line.  Line numbers deliberately do not enter it, so a
baselined finding survives unrelated edits above it in the file.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from enum import Enum
from typing import Dict


class Severity(Enum):
    """How strongly a rule's violation threatens reproducibility.

    ``ERROR`` marks a direct determinism or fork-safety hazard;
    ``WARNING`` marks a fragility that becomes a hazard under edits
    (mutable defaults, swallowed exceptions).  Both fail the gate —
    the split exists for reading reports, not for triage by exit
    code.
    """

    ERROR = "error"
    WARNING = "warning"

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class Finding:
    """One reported violation of a REP0xx rule."""

    path: str
    line: int
    column: int
    rule: str
    severity: Severity
    message: str
    source: str = ""
    #: Reason text of the suppression that silenced this finding, if
    #: any (set by the suppression pass; suppressed findings are kept
    #: for the ``--show-suppressed`` accounting, not reported).
    suppressed: bool = field(default=False, compare=False)

    @property
    def sort_key(self):
        return (self.path, self.line, self.column, self.rule)

    def fingerprint(self) -> str:
        """Stable identity for baselines: path + rule + source text.

        Uses the stripped source line rather than the line number so
        the fingerprint survives the file shifting around it.
        """
        blob = "::".join((self.path, self.rule, self.source.strip()))
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]

    def to_dict(self) -> Dict:
        """JSON-ready representation (used by the JSON reporter)."""
        return {
            "path": self.path,
            "line": self.line,
            "column": self.column,
            "rule": self.rule,
            "severity": str(self.severity),
            "message": self.message,
            "source": self.source,
            "fingerprint": self.fingerprint(),
        }

    def render(self) -> str:
        """The one-line text form: ``path:line:col: RULE message``."""
        return (f"{self.path}:{self.line}:{self.column}: "
                f"{self.rule} [{self.severity}] {self.message}")
