"""Configuration and baseline support for the analysis pass.

Configuration lives in TOML under ``[tool.repro.analysis]`` —
normally in the project's ``pyproject.toml``, discovered by walking
up from the analyzed tree, or in an explicit ``--config`` file (where
both the tool table and top-level keys are accepted).  Keys:

``select`` / ``ignore``
    Rule codes to run / to drop (``select`` empty means "all").
``exclude``
    Glob patterns of paths to skip entirely.
``allow_calls``
    Dotted call names exempted from the entropy-source rule (REP002)
    — the sanctioned-call allowlist, e.g. ``"time.monotonic"``.
``executors``
    Extra callable names treated as worker-executing entry points by
    the fork-safety rule (REP004), on top of the built-ins
    (``run_grid``, ``Process``, ``submit``, ...).
``artifact_roots``
    Extra identifier patterns (fnmatch) naming artifact-root
    directories for the atomic-publish rule (REP101), on top of the
    built-ins (``pending_dir``, ``results_dir``, ...).
``sealed_names``
    Extra filename fragments marking sealed artifacts for the
    checked-read rule (REP102), on top of the built-ins (``.task``,
    ``.result``, ``.pkl``, ...).

A **baseline** is a JSON file of finding fingerprints (see
:meth:`~repro.analysis.findings.Finding.fingerprint`).  Findings
whose fingerprint appears in the baseline are reported as absorbed,
not live — the standard adoption path for a legacy tree: write a
baseline once, gate on *new* findings immediately, burn the baseline
down over time.  This repository's own tree ships with no baseline:
it is clean by construction.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from fnmatch import fnmatch
from pathlib import Path
from typing import Iterable, List, Optional, Sequence, Set

try:  # Python >= 3.11
    import tomllib
except ImportError:  # pragma: no cover - exercised only on <=3.10
    tomllib = None

from .findings import Finding

#: Name of the TOML table holding analysis settings.
CONFIG_TABLE = ("tool", "repro", "analysis")


class ConfigError(ValueError):
    """Unreadable or ill-typed configuration (CLI exit status 2)."""


@dataclass
class AnalysisConfig:
    """Parsed analysis settings with sane defaults."""

    select: List[str] = field(default_factory=list)
    ignore: List[str] = field(default_factory=list)
    exclude: List[str] = field(default_factory=list)
    allow_calls: Set[str] = field(default_factory=set)
    executors: Set[str] = field(default_factory=set)
    artifact_roots: List[str] = field(default_factory=list)
    sealed_names: List[str] = field(default_factory=list)

    def selected_rules(self, known: Sequence[str]) -> Set[str]:
        """The rule codes to run, validating against ``known``."""
        unknown = (set(self.select) | set(self.ignore)) - set(known)
        if unknown:
            raise ConfigError(
                f"unknown rule code(s): {', '.join(sorted(unknown))}"
            )
        rules = set(self.select) if self.select else set(known)
        return rules - set(self.ignore)

    def excludes(self, path: Path) -> bool:
        """True if ``path`` matches any exclusion glob."""
        text = path.as_posix()
        return any(
            fnmatch(text, pattern) or fnmatch(path.name, pattern)
            for pattern in self.exclude
        )


def _coerce(table: dict) -> AnalysisConfig:
    config = AnalysisConfig()
    for key in ("select", "ignore", "exclude", "artifact_roots",
                "sealed_names"):
        value = table.get(key, [])
        if not isinstance(value, list) or \
                not all(isinstance(v, str) for v in value):
            raise ConfigError(f"'{key}' must be a list of strings")
        setattr(config, key, list(value))
    for key in ("allow_calls", "executors"):
        value = table.get(key, [])
        if not isinstance(value, list) or \
                not all(isinstance(v, str) for v in value):
            raise ConfigError(f"'{key}' must be a list of strings")
        setattr(config, key, set(value))
    known = {"select", "ignore", "exclude", "allow_calls", "executors",
             "artifact_roots", "sealed_names"}
    unknown = set(table) - known
    if unknown:
        raise ConfigError(
            f"unknown config key(s): {', '.join(sorted(unknown))}"
        )
    return config


def _tool_table(data: dict) -> Optional[dict]:
    """The ``[tool.repro.analysis]`` table of a parsed document."""
    node = data
    for part in CONFIG_TABLE:
        if not isinstance(node, dict) or part not in node:
            return None
        node = node[part]
    return node if isinstance(node, dict) else None


def load_config(explicit: Optional[Path] = None,
                start: Optional[Path] = None) -> AnalysisConfig:
    """Load settings from ``explicit`` or by pyproject discovery.

    With ``explicit``, the file must parse; its ``[tool.repro.analysis]``
    table is used if present, else its top-level keys.  Otherwise the
    ancestors of ``start`` (default: cwd) are searched for a
    ``pyproject.toml`` carrying the table; absence of both yields
    defaults.
    """
    if tomllib is None:  # pragma: no cover - exercised only on <=3.10
        return AnalysisConfig()
    if explicit is not None:
        try:
            data = tomllib.loads(
                Path(explicit).read_text(encoding="utf-8")
            )
        except (OSError, tomllib.TOMLDecodeError) as exc:
            raise ConfigError(f"cannot load config {explicit}: {exc}")
        table = _tool_table(data)
        return _coerce(table if table is not None else data)
    probe = (Path(start) if start is not None else Path(".")).resolve()
    for directory in (probe, *probe.parents):
        pyproject = directory / "pyproject.toml"
        if not pyproject.is_file():
            continue
        try:
            data = tomllib.loads(pyproject.read_text(encoding="utf-8"))
        except (OSError, tomllib.TOMLDecodeError):
            return AnalysisConfig()
        table = _tool_table(data)
        if table is not None:
            return _coerce(table)
        return AnalysisConfig()
    return AnalysisConfig()


# -- baselines ------------------------------------------------------

BASELINE_VERSION = 1


def write_baseline(findings: Iterable[Finding], path: Path) -> int:
    """Write the findings' fingerprints as a baseline; returns count."""
    prints = sorted({f.fingerprint() for f in findings})
    payload = {"version": BASELINE_VERSION, "fingerprints": prints}
    Path(path).write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    return len(prints)


def load_baseline(path: Path) -> Set[str]:
    """The fingerprint set of a baseline file (strict about shape)."""
    try:
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise ConfigError(f"cannot load baseline {path}: {exc}")
    if not isinstance(payload, dict) or \
            payload.get("version") != BASELINE_VERSION or \
            not isinstance(payload.get("fingerprints"), list):
        raise ConfigError(
            f"baseline {path} is not a version-{BASELINE_VERSION} "
            "repro.analysis baseline"
        )
    return set(payload["fingerprints"])
