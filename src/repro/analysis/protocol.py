"""REP1xx/REP2xx: the protocol rules of the guard and dist layers.

Where REP001–REP007 police *determinism* (hidden per-process state),
these rules police the *runtime protocols* PRs 5–7 introduced — the
disciplines that make artifacts trustworthy and the distributed grid
crash-safe.  Each rule is flow-aware: it asks where a value came from
(:class:`~repro.analysis.dataflow.FunctionFlow` origin closures) and
what the surrounding scope does with it (publish, lock, fork), with
the package call-graph index resolving helpers like ``seal`` wrappers
and path factories across modules.

Artifact integrity (REP1xx)
    * **REP101** — a sealed payload (or any write under an artifact
      root) must be published atomically: end-suffixed temp name +
      ``os.replace``, or an exclusive ``flock`` around an append.
    * **REP102** — bytes read from a sealed artifact must pass
      through ``repro.guard.seal.check`` (or a wrapper that calls
      it) before being parsed or unpickled.
    * **REP103** — cache-key-style hashes must be built from
      ``canonicalize``/``canonical_blob``, never from unsorted
      ``json.dumps``, ``repr``, or ``str`` of unordered containers.
    * **REP105** — artifact-root / sealed-payload writes must route
      through the sanctioned write seam
      (:mod:`repro.guard.fsfault`); even a correct open-coded
      temp+replace dance is invisible to fault injection and the
      degradation contracts.

Concurrency / distribution (REP2xx)
    * **REP201** — lease/heartbeat/deadline arithmetic must use the
      monotonic clock; wall-clock instants jump under NTP.
    * **REP202** — no blocking calls while holding an exclusive
      ``flock``.
    * **REP203** — no thread running before the engine forks.
    * **REP204** — ``os._exit`` / signal manipulation only at the
      sanctioned chaos hooks (suppressed there with reasons).

Every sanction test errs toward *reporting*: an unresolvable call is
never assumed to seal, check, or canonicalize anything.
"""

from __future__ import annotations

import ast
from fnmatch import fnmatch
from typing import Dict, Iterable, List, Optional, Set, Tuple

from .core import Checker, FileContext
from .dataflow import FunctionFlow, _attr_chain, walk_scope
from .findings import Severity

# -- shared vocabulary ----------------------------------------------

#: Calls that atomically publish a temp file onto its final name.
_PUBLISH_CALLS = {"os.replace", "os.rename", "shutil.move"}

#: Calls that create a collision-safe temp target.
_TMP_CALLS = {"tempfile.mkstemp", "tempfile.mkdtemp",
              "tempfile.NamedTemporaryFile", "tempfile.TemporaryFile"}

#: Identifier patterns naming artifact-root directories (extendable
#: via the ``artifact_roots`` config key).
_ARTIFACT_ROOTS = ("pending_dir", "leased_dir", "results_dir",
                   "hb_dir", "quarantine_dir", "spool_dir",
                   "journal_dir", "trace_dir")

#: Filename fragments of seal-wrapped artifacts (extendable via the
#: ``sealed_names`` config key).  Heartbeats (``.hb``) are the one
#: deliberately unsealed record and journal lines carry their own
#: per-line sha — neither appears here.
_SEALED_NAMES = (".task", ".result", ".lease", ".pkl",
                 "results.json", "spool.json")

_LOADERS = {"pickle.loads", "pickle.load", "json.loads", "json.load",
            "marshal.loads", "marshal.load"}

_HASH_CTORS = {"hashlib.sha256", "hashlib.sha384", "hashlib.sha512",
               "hashlib.sha1", "hashlib.md5", "hashlib.blake2b",
               "hashlib.blake2s", "hashlib.sha3_256", "hashlib.new"}

_WALL_CLOCK = {"time.time", "time.time_ns",
               "datetime.datetime.now", "datetime.datetime.utcnow",
               "repro.obs.clock.wall_time"}
_MONO_CLOCK = {"time.monotonic", "time.monotonic_ns",
               "time.perf_counter", "time.perf_counter_ns"}

#: Identifier patterns that mark a value as protocol-deadline math.
_LEASE_IDENTS = ("*deadline*", "*lease*", "*expire*", "*expiry*",
                 "*ttl*", "*heartbeat*", "*hb*")

_BLOCKING_CALLS = {
    "time.sleep", "subprocess.run", "subprocess.call",
    "subprocess.check_call", "subprocess.check_output",
    "subprocess.Popen", "os.system", "os.wait", "os.waitpid",
    "select.select", "input", "socket.create_connection",
    "urllib.request.urlopen",
}

#: Last-segment names of primitives that start a child process.
_FORK_LAST = {"fork", "Process", "Pool", "ProcessPoolExecutor",
              "run_grid"}

_PROCESS_CONTROL = {
    "os._exit", "os.abort", "os.kill", "os.killpg",
    "signal.signal", "signal.raise_signal", "signal.setitimer",
    "signal.alarm", "signal.pthread_kill",
}


def _last(name: str) -> str:
    return name.rsplit(".", 1)[-1]


def _pred_seal(resolved: str) -> bool:
    return _last(resolved) in ("seal", "make_seal")


def _pred_check(resolved: str) -> bool:
    return _last(resolved) in ("check", "check_seal")


def _pred_canonical(resolved: str) -> bool:
    return _last(resolved) in ("canonicalize", "canonical_blob",
                               "task_key")


#: The sanctioned write-seam helpers of :mod:`repro.guard.fsfault`.
_SEAM_CALLS = ("publish_bytes", "publish_text", "vfs_write",
               "vfs_fsync", "vfs_replace")


def _pred_seam(resolved: str) -> bool:
    return _last(resolved) in _SEAM_CALLS


def _pred_wall(resolved: str) -> bool:
    return resolved in _WALL_CLOCK


def _pred_mono(resolved: str) -> bool:
    return resolved in _MONO_CLOCK


def _pred_fork(resolved: str) -> bool:
    return _last(resolved) in _FORK_LAST


def _pred_blocking(resolved: str) -> bool:
    return resolved in _BLOCKING_CALLS


class ProtocolChecker(Checker):
    """Shared flow/call-graph plumbing for the REP1xx/REP2xx rules."""

    #: Per-index memo tables for call-graph reachability, keyed by
    #: (index identity, predicate name) — valid as long as the index
    #: object lives, shared across every file of one run.
    def __init__(self) -> None:
        self._reach_caches: Dict[Tuple[int, str],
                                 Dict[str, bool]] = {}

    def _reaches(self, ctx: FileContext, resolved: str,
                 pred, pred_name: str) -> bool:
        """True when ``resolved`` names an indexed function that
        transitively makes a call satisfying ``pred``."""
        if ctx.index is None:
            return False
        info = ctx.index.lookup(resolved)
        if info is None:
            return False
        cache = self._reach_caches.setdefault(
            (id(ctx.index), pred_name), {}
        )
        return ctx.index.reaches(info, pred, cache)

    def _satisfies(self, ctx: FileContext, resolved: str,
                   pred, pred_name: str) -> bool:
        return pred(resolved) or self._reaches(ctx, resolved, pred,
                                               pred_name)

    def _extended_nodes(self, ctx: FileContext, flow: FunctionFlow,
                        expr: ast.AST) -> List[ast.AST]:
        """Origin closure of ``expr`` widened by return-inlining: the
        bodies path factories evaluate to become visible here."""
        nodes = flow.origin_nodes(expr)
        if ctx.index is not None:
            for node in list(nodes):
                if isinstance(node, ast.Call):
                    resolved = flow.resolve(node)
                    if resolved and ctx.index.lookup(resolved):
                        nodes.extend(
                            ctx.index.inlined_returns(resolved)
                        )
        return nodes

    def _origin_calls(self, flow: FunctionFlow,
                      nodes: Iterable[ast.AST]) \
            -> List[Tuple[ast.Call, str]]:
        out = []
        for node in nodes:
            if isinstance(node, ast.Call):
                resolved = flow.resolve(node) \
                    or _attr_chain(node.func)
                if resolved:
                    out.append((node, resolved))
        return out

    def _scope_info(self, ctx: FileContext, scope: ast.AST):
        """The index entry of the function scope being analyzed (for
        caller-argument propagation), or ``None``."""
        mod = ctx.module_info
        if mod is None or not isinstance(
                scope, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return None
        cls = ctx.enclosing_class(scope)
        local = f"{cls}.{scope.name}" if cls else scope.name
        return mod.functions.get(local)


# -- helpers shared by REP101/REP102 --------------------------------


def _open_mode(call: ast.Call) -> str:
    mode = "r"
    if len(call.args) > 1 and isinstance(call.args[1], ast.Constant) \
            and isinstance(call.args[1].value, str):
        mode = call.args[1].value
    for kw in call.keywords:
        if kw.arg == "mode" and isinstance(kw.value, ast.Constant) \
                and isinstance(kw.value.value, str):
            mode = kw.value.value
    return mode


_OPENERS = {"open", "os.fdopen", "io.open", "gzip.open", "bz2.open",
            "lzma.open"}


def _classify_write(call: ast.Call, flow: FunctionFlow) \
        -> Optional[Tuple[Optional[ast.AST], ast.AST]]:
    """``(target, payload)`` when ``call`` writes bytes somewhere.

    ``target`` is the expression naming the destination (a path, an
    fd, or the first argument of the ``open`` that produced the
    handle); ``None`` when the handle cannot be traced (attribute-held
    handles — those writes are judged by their lock discipline, not
    their name).
    """
    func = call.func
    if isinstance(func, ast.Attribute):
        if func.attr in ("write_bytes", "write_text") and call.args:
            return func.value, call.args[0]
        if func.attr == "write" and call.args:
            for opener, resolved in flow.origin_calls(func.value):
                if resolved in _OPENERS:
                    mode = _open_mode(opener)
                    if any(ch in mode for ch in "wax+"):
                        target = opener.args[0] if opener.args \
                            else None
                        return target, call.args[0]
            return None
    resolved = flow.resolve(call)
    if resolved == "os.write" and len(call.args) >= 2:
        return call.args[0], call.args[1]
    if resolved in ("json.dump", "pickle.dump") \
            and len(call.args) >= 2:
        file_arg = call.args[1]
        for opener, name in flow.origin_calls(file_arg):
            if name in _OPENERS:
                target = opener.args[0] if opener.args else None
                return target, call.args[0]
        return file_arg, call.args[0]
    return None


class SealedWriteNotAtomic(ProtocolChecker):
    """REP101: sealed/artifact-root writes that readers can tear.

    The spool's whole crash model (docs/distributed.md) rests on one
    rule: a file a reader can *see* is a file a writer finished.  A
    direct ``path.write_bytes(sealed_blob)`` breaks it — a process
    dying mid-write publishes a torn artifact under its final name,
    and the seal layer can only quarantine it after the fact.  PR 8's
    self-run caught exactly this in ``guard/verify.write_results``:
    the results document — the artifact ``repro verify`` exists to
    defend — was the one sealed write in the tree that skipped the
    temp+replace dance.  Sanctioned shapes: write to a temp name
    (``tempfile`` or an end-suffixed ``.tmp-*`` sibling) followed by
    ``os.replace``, or an append under an exclusive ``flock``.
    """

    rule = "REP101"
    name = "unpublished-artifact-write"
    description = ("sealed payloads / artifact-root writes without "
                   "atomic temp+replace publish")
    severity = Severity.ERROR
    interests = (ast.Call,)

    def visit(self, node: ast.Call, ctx: FileContext) -> None:
        flow = ctx.flow_for(node)
        classified = _classify_write(node, flow)
        if classified is None:
            return
        target, payload = classified
        sealed = self._sealed_payload(ctx, flow, payload)
        rooted = target is not None and self._rooted(
            ctx, flow, target)
        if not sealed and not rooted:
            return
        if self._sanctioned(ctx, flow, target):
            return
        what = "sealed payload" if sealed else "artifact-root write"
        ctx.report(
            node, self.rule, self.severity,
            f"{what} written in place; a crash mid-write publishes "
            "a torn artifact — write to an end-suffixed temp name "
            "and os.replace() it onto the final path",
        )

    def _sealed_payload(self, ctx: FileContext, flow: FunctionFlow,
                        payload: ast.AST) -> bool:
        for _, resolved in flow.origin_calls(payload):
            if self._satisfies(ctx, resolved, _pred_seal, "seal"):
                return True
        # One level of caller propagation: a raw-write helper taking
        # the blob as a parameter is judged by what callers pass.
        info = self._scope_info(ctx, flow.scope)
        if info is None or ctx.index is None:
            return False
        for param in flow.origin_params(payload):
            for caller, expr in ctx.index.param_arg_exprs(info,
                                                          param):
                caller_flow = ctx.index.flow(caller)
                for _, resolved in caller_flow.origin_calls(expr):
                    if self._satisfies(ctx, resolved, _pred_seal,
                                       "seal"):
                        return True
        return False

    def _rooted(self, ctx: FileContext, flow: FunctionFlow,
                target: ast.AST) -> bool:
        roots = _ARTIFACT_ROOTS + tuple(
            getattr(ctx.config, "artifact_roots", ())
        )
        nodes = self._extended_nodes(ctx, flow, target)
        for node in nodes:
            ident = None
            if isinstance(node, ast.Name):
                ident = node.id
            elif isinstance(node, ast.Attribute):
                ident = node.attr
            if ident and any(fnmatch(ident, p) for p in roots):
                return True
        return False

    def _sanctioned(self, ctx: FileContext, flow: FunctionFlow,
                    target: Optional[ast.AST]) -> bool:
        if flow.calls_resolving_to({"fcntl.flock"}):
            return True  # append-under-lock (the journal discipline)
        if not flow.calls_resolving_to(_PUBLISH_CALLS):
            return False
        if target is None:
            return True  # untraceable handle, but the scope publishes
        if flow.publishes(flow.origin_names(target)):
            return True
        # Temp-named target plus a publish anywhere in the scope.
        for _, resolved in flow.origin_calls(target):
            if resolved in _TMP_CALLS:
                return True
        return any("tmp" in s for s in flow.origin_strings(target))


class ArtifactWriteOutsideSeam(SealedWriteNotAtomic):
    """REP105: artifact writes that bypass the sanctioned write seam.

    REP101 asks "is this write atomic?"; REP105 asks the stricter
    question this PR's fault model requires: "does this write go
    through :mod:`repro.guard.fsfault`?"  An open-coded
    ``mkstemp``+``os.replace`` dance can be perfectly atomic and
    still be a hole in the robustness story — the injector cannot
    schedule ENOSPC/EIO/torn-write faults on it, so its degradation
    behaviour is never exercised, and ``docs/robustness.md``'s
    per-writer contract table silently stops being exhaustive.  Every
    write whose destination is an artifact root (or whose payload is
    sealed) must reach the disk via ``publish_bytes`` /
    ``publish_text`` or the ``vfs_*`` primitives; the seam's own
    implementation is the one sanctioned exception (suppressed there
    with a reason).
    """

    rule = "REP105"
    name = "artifact-write-outside-seam"
    description = ("sealed/artifact-root writes bypassing the "
                   "repro.guard.fsfault seam")
    severity = Severity.ERROR
    interests = (ast.Call,)

    def visit(self, node: ast.Call, ctx: FileContext) -> None:
        flow = ctx.flow_for(node)
        classified = _classify_write(node, flow)
        if classified is None:
            return
        target, payload = classified
        sealed = self._sealed_payload(ctx, flow, payload)
        rooted = target is not None and self._rooted(
            ctx, flow, target)
        if not sealed and not rooted:
            return
        if self._sanctioned(ctx, flow, target):
            return
        what = "sealed payload" if sealed else "artifact-root write"
        ctx.report(
            node, self.rule, self.severity,
            f"{what} bypasses the sanctioned write seam; fault "
            "injection cannot reach it and its degradation contract "
            "is unexercised — route it through repro.guard.fsfault "
            "(publish_bytes/publish_text or the vfs_* primitives)",
        )

    def _sanctioned(self, ctx: FileContext, flow: FunctionFlow,
                    target: Optional[ast.AST]) -> bool:
        for call in flow.calls:
            resolved = flow.resolve(call) or _attr_chain(call.func)
            if resolved and self._satisfies(ctx, resolved,
                                            _pred_seam, "seam"):
                return True
        return False


class UncheckedSealedRead(ProtocolChecker):
    """REP102: sealed artifacts parsed without passing ``check``.

    Quarantine-never-trust (docs/robustness.md) only works if every
    sealed read goes through :func:`repro.guard.seal.check`: a loader
    that unpickles ``.task``/``.result``/``.pkl`` bytes directly will
    happily parse a torn or hand-edited file and feed garbage into
    effect computations — precisely the corruption class PR 5's
    sealing exists to catch (a truncated cache entry once parsed as a
    valid pickle carrying zeroed stats).  Wrappers count: a reader
    calling ``Spool._decode`` (which calls ``check``) is sanctioned
    through the call-graph index.
    """

    rule = "REP102"
    name = "unchecked-sealed-read"
    description = ("pickle/json loads of sealed artifact bytes "
                   "without seal.check")
    severity = Severity.ERROR
    interests = (ast.Call,)

    def visit(self, node: ast.Call, ctx: FileContext) -> None:
        flow = ctx.flow_for(node)
        resolved = flow.resolve(node)
        if resolved not in _LOADERS or not node.args:
            return
        nodes = self._extended_nodes(ctx, flow, node.args[0])
        for _, origin in self._origin_calls(flow, nodes):
            if self._satisfies(ctx, origin, _pred_check, "check"):
                return
        if not self._reads_sealed(ctx, flow, nodes):
            return
        ctx.report(
            node, self.rule, self.severity,
            f"{resolved}() parses sealed artifact bytes that never "
            "passed repro.guard.seal.check; a torn or tampered file "
            "would be trusted — check (and quarantine on failure) "
            "before parsing",
        )

    def _reads_sealed(self, ctx: FileContext, flow: FunctionFlow,
                      nodes: List[ast.AST]) -> bool:
        has_read = any(
            isinstance(n, ast.Call)
            and isinstance(n.func, ast.Attribute)
            and n.func.attr in ("read_bytes", "read_text", "read")
            for n in nodes
        )
        if not has_read:
            return False
        names = _SEALED_NAMES + tuple(
            getattr(ctx.config, "sealed_names", ())
        )
        for n in nodes:
            if isinstance(n, ast.Constant) \
                    and isinstance(n.value, str):
                if any(tag in n.value for tag in names):
                    return True
        return False


class NoncanonicalKeyHash(ProtocolChecker):
    """REP103: content hashes built from unstable serializations.

    A cache key must be a pure function of configuration *content*.
    ``json.dumps`` without ``sort_keys=True`` hashes dict insertion
    order; ``repr``/``str`` of dicts and sets hash memory layout and
    hash-seed order.  Either way two identical configurations stop
    sharing a cache entry — or worse, two different ones collide.
    This is the exact bug class PR 3 fixed in ``task_key`` (it once
    hashed ``json.dumps(default=str)`` output, so a reordered config
    dict re-simulated 88 cells).  Sanctioned: anything flowing
    through ``canonicalize``/``canonical_blob``/``task_key``, or
    hashes of raw bytes (seals, file digests).
    """

    rule = "REP103"
    name = "noncanonical-key-hash"
    description = ("hashing unsorted json.dumps / repr / str of "
                   "unordered containers")
    severity = Severity.ERROR
    interests = (ast.Call,)

    def visit(self, node: ast.Call, ctx: FileContext) -> None:
        flow = ctx.flow_for(node)
        payload = self._hashed_payload(node, flow)
        if payload is None:
            return
        nodes = self._extended_nodes(ctx, flow, payload)
        for _, resolved in self._origin_calls(flow, nodes):
            if self._satisfies(ctx, resolved, _pred_canonical,
                               "canonical"):
                return
        reason = self._unstable_reason(flow, nodes)
        if reason is None:
            return
        ctx.report(
            node, self.rule, self.severity,
            f"content hash over {reason}; identical inputs can hash "
            "differently (and differing ones collide) — build keys "
            "through canonicalize()/canonical_blob()",
        )

    def _hashed_payload(self, node: ast.Call,
                        flow: FunctionFlow) -> Optional[ast.AST]:
        resolved = flow.resolve(node)
        if resolved in _HASH_CTORS and node.args:
            return node.args[0]
        if isinstance(node.func, ast.Attribute) \
                and node.func.attr == "update" and node.args:
            for _, origin in flow.origin_calls(node.func.value):
                if origin in _HASH_CTORS:
                    return node.args[0]
        return None

    def _unstable_reason(self, flow: FunctionFlow,
                         nodes: List[ast.AST]) -> Optional[str]:
        for n in nodes:
            if not isinstance(n, ast.Call):
                continue
            resolved = flow.resolve(n)
            if resolved == "json.dumps":
                if not any(kw.arg == "sort_keys" and
                           isinstance(kw.value, ast.Constant) and
                           kw.value.value
                           for kw in n.keywords):
                    return "json.dumps(...) without sort_keys=True"
            elif resolved == "repr" and n.args and \
                    not isinstance(n.args[0], ast.Constant):
                return "repr(...) of a runtime object"
            elif resolved == "str" and n.args:
                if self._unordered_origin(flow, n.args[0]):
                    return "str(...) of an unordered container"
        return None

    def _unordered_origin(self, flow: FunctionFlow,
                          expr: ast.AST) -> bool:
        for n in flow.origin_nodes(expr):
            if isinstance(n, (ast.Dict, ast.Set, ast.DictComp,
                              ast.SetComp)):
                return True
            if isinstance(n, ast.Call) and \
                    flow.resolve(n) in ("dict", "set", "frozenset"):
                return True
        return False


# -- REP2xx ----------------------------------------------------------


class WallClockLeaseMath(ProtocolChecker):
    """REP201: wall-clock instants in lease/heartbeat arithmetic.

    The dist protocol's liveness story (docs/distributed.md "Clocks")
    is monotonic-only: lease deadlines and heartbeat instants written
    by one process are compared against another's clock, and
    ``CLOCK_MONOTONIC`` is the only clock that is shared, monotone,
    and NTP-immune on one host.  A single ``time.time()`` in that
    math means an NTP step can expire every lease at once (mass
    reclaim of live work — the classic distributed-lock postmortem)
    or keep a dead worker's lease alive indefinitely.  The rule
    flags wall-clock values assigned to deadline-ish names, stored
    under deadline-ish dict keys, passed as ttl/deadline keywords, or
    compared against monotonic values.
    """

    rule = "REP201"
    name = "wall-clock-lease-math"
    description = ("time.time() flowing into lease/deadline/"
                   "heartbeat math")
    severity = Severity.ERROR
    interests = (ast.Module, ast.FunctionDef, ast.AsyncFunctionDef)

    def visit(self, node: ast.AST, ctx: FileContext) -> None:
        flow = ctx.flow_for(node)
        for stmt in walk_scope(node):
            if isinstance(stmt, ast.Compare):
                self._check_compare(stmt, ctx, flow)
            elif isinstance(stmt, (ast.Assign, ast.AnnAssign,
                                   ast.AugAssign)):
                self._check_assign(stmt, ctx, flow)
            elif isinstance(stmt, ast.Dict):
                self._check_dict(stmt, ctx, flow)
            elif isinstance(stmt, ast.Call):
                self._check_keywords(stmt, ctx, flow)

    def _domain(self, ctx: FileContext, flow: FunctionFlow,
                expr: ast.AST) -> Tuple[bool, bool]:
        wall = mono = False
        for _, resolved in flow.origin_calls(expr):
            if self._satisfies(ctx, resolved, _pred_wall, "wall"):
                wall = True
            if self._satisfies(ctx, resolved, _pred_mono, "mono"):
                mono = True
        return wall, mono

    def _leaseish(self, flow: FunctionFlow, expr: ast.AST) -> bool:
        if flow.mentions_identifier(expr, _LEASE_IDENTS):
            return True
        return any(
            any(fnmatch(s, p) for p in _LEASE_IDENTS)
            for s in flow.origin_strings(expr)
        )

    def _check_compare(self, node: ast.Compare, ctx: FileContext,
                       flow: FunctionFlow) -> None:
        sides = [node.left, *node.comparators]
        domains = [self._domain(ctx, flow, s) for s in sides]
        any_wall = any(w for w, _ in domains)
        any_mono = any(m for _, m in domains)
        if any_wall and any_mono:
            ctx.report(
                node, self.rule, self.severity,
                "comparison mixes wall-clock and monotonic instants; "
                "the two clocks share no epoch — use time.monotonic()"
                " on both sides",
            )
            return
        if any_wall and any(
                self._leaseish(flow, s) for s, (w, _) in
                zip(sides, domains) if not w):
            ctx.report(
                node, self.rule, self.severity,
                "lease/deadline comparison against wall-clock time; "
                "an NTP step would expire or immortalize leases — "
                "use time.monotonic()",
            )

    def _check_assign(self, node: ast.AST, ctx: FileContext,
                      flow: FunctionFlow) -> None:
        value = getattr(node, "value", None)
        if value is None:
            return
        targets = node.targets if isinstance(node, ast.Assign) \
            else [node.target]
        named = []
        for target in targets:
            ident = None
            if isinstance(target, ast.Name):
                ident = target.id
            elif isinstance(target, ast.Attribute):
                ident = target.attr
            if ident is not None:
                named.append(ident)
        if not any(fnmatch(i, p) for i in named
                   for p in _LEASE_IDENTS):
            return
        wall, _ = self._domain(ctx, flow, value)
        if wall:
            ctx.report(
                node, self.rule, self.severity,
                f"deadline-like value '{named[0]}' computed from the "
                "wall clock; lease math must use time.monotonic()",
            )

    def _check_dict(self, node: ast.Dict, ctx: FileContext,
                    flow: FunctionFlow) -> None:
        for key, value in zip(node.keys, node.values):
            if key is None or not isinstance(key, ast.Constant) \
                    or not isinstance(key.value, str):
                continue
            if not any(fnmatch(key.value, p)
                       for p in _LEASE_IDENTS):
                continue
            wall, _ = self._domain(ctx, flow, value)
            if wall:
                ctx.report(
                    value, self.rule, self.severity,
                    f"protocol field '{key.value}' carries a "
                    "wall-clock instant; readers compare it against "
                    "time.monotonic() — write a monotonic value",
                )

    def _check_keywords(self, node: ast.Call, ctx: FileContext,
                        flow: FunctionFlow) -> None:
        for kw in node.keywords:
            if kw.arg is None or not any(
                    fnmatch(kw.arg, p) for p in _LEASE_IDENTS):
                continue
            wall, _ = self._domain(ctx, flow, kw.value)
            if wall:
                ctx.report(
                    kw.value, self.rule, self.severity,
                    f"keyword '{kw.arg}' receives a wall-clock "
                    "value; lease/deadline parameters are monotonic "
                    "instants",
                )


class BlockingUnderFlock(ProtocolChecker):
    """REP202: blocking calls inside an exclusive ``flock`` window.

    The journal's append lock (``exec/journal.py``) is held by every
    writer sharing a run directory — broker, workers, resumed runs.
    The window is write+flush, microseconds.  One ``time.sleep`` or
    subprocess wait inside it serializes every concurrent writer
    behind the sleeper, and a worker killed by the fault injector
    while sleeping under the lock leaves everyone else blocked until
    the kernel reaps it.  Lexical analysis: acquire/release are
    matched in source order within one scope, which is exactly how
    the sanctioned pattern (``flock``/``try``/``finally unlock``) is
    written.
    """

    rule = "REP202"
    name = "blocking-under-flock"
    description = "sleep/subprocess/IO waits while holding flock"
    severity = Severity.ERROR
    interests = (ast.Module, ast.FunctionDef, ast.AsyncFunctionDef)

    def visit(self, node: ast.AST, ctx: FileContext) -> None:
        flow = ctx.flow_for(node)
        events = []  # (pos, kind, call)
        for call in flow.calls:
            resolved = flow.resolve(call) or _attr_chain(call.func)
            if resolved is None:
                continue
            pos = (call.lineno, call.col_offset)
            if resolved == "fcntl.flock" and len(call.args) >= 2:
                flags = {
                    n.attr if isinstance(n, ast.Attribute) else n.id
                    for n in ast.walk(call.args[1])
                    if isinstance(n, (ast.Attribute, ast.Name))
                }
                if "LOCK_UN" in flags:
                    events.append((pos, "release", call))
                elif "LOCK_EX" in flags or "LOCK_SH" in flags:
                    events.append((pos, "acquire", call))
            elif self._satisfies(ctx, resolved, _pred_blocking,
                                 "blocking"):
                events.append((pos, "blocking", (call, resolved)))
        events.sort(key=lambda e: e[0])
        depth = 0
        for _, kind, payload in events:
            if kind == "acquire":
                depth += 1
            elif kind == "release":
                depth = max(0, depth - 1)
            elif depth > 0:
                call, resolved = payload
                ctx.report(
                    call, self.rule, self.severity,
                    f"{resolved}() blocks while holding an exclusive "
                    "flock; every concurrent journal writer stalls "
                    "behind this call — move it outside the lock "
                    "window",
                )


class ThreadBeforeFork(ProtocolChecker):
    """REP203: a thread running when the engine forks.

    The engine uses the ``fork`` start method (``exec/engine.py``):
    children inherit the parent's memory but only the calling thread.
    Any other thread's locks are frozen mid-state in the child — the
    canonical deadlock is a thread holding a logging or allocator
    lock at fork time, and the child hanging on its first log line.
    CPython documents the combination as unsafe; the worker runtime
    (``dist/worker.py``) is careful to start its heartbeat thread
    only in processes that never fork.  The rule flags any scope that
    starts a thread and *then* reaches a fork primitive
    (``os.fork``, ``Process``, ``Pool``, ``run_grid``), directly or
    through indexed helpers.
    """

    rule = "REP203"
    name = "thread-before-fork"
    description = "threading.Thread started before a fork primitive"
    severity = Severity.ERROR
    interests = (ast.Module, ast.FunctionDef, ast.AsyncFunctionDef)

    def visit(self, node: ast.AST, ctx: FileContext) -> None:
        flow = ctx.flow_for(node)
        start_pos = None
        for call in flow.calls:
            if not (isinstance(call.func, ast.Attribute)
                    and call.func.attr == "start"):
                continue
            for _, resolved in flow.origin_calls(call.func.value):
                if resolved == "threading.Thread":
                    pos = (call.lineno, call.col_offset)
                    if start_pos is None or pos < start_pos:
                        start_pos = pos
                    break
        if start_pos is None:
            return
        for call in flow.calls:
            if (call.lineno, call.col_offset) <= start_pos:
                continue
            resolved = flow.resolve(call) or _attr_chain(call.func)
            forks = resolved is not None and self._satisfies(
                ctx, resolved, _pred_fork, "fork")
            if not forks:
                # A callable fetched from a container (a lambda in a
                # dispatch dict, say): judge what its origin closure
                # actually calls.
                for _, origin in flow.origin_calls(call.func):
                    if self._satisfies(ctx, origin, _pred_fork,
                                       "fork"):
                        resolved = origin
                        forks = True
                        break
            if forks:
                ctx.report(
                    call, self.rule, self.severity,
                    f"{resolved}() forks after a thread was started "
                    "in this scope; the child inherits the thread's "
                    "locks frozen mid-state — fork first, or keep "
                    "this process thread-free",
                )


class UnsanctionedProcessControl(ProtocolChecker):
    """REP204: ``os._exit`` / signal manipulation outside chaos hooks.

    ``os._exit`` skips ``finally`` blocks, ``atexit``, and buffered
    flushes — which is exactly why the crash-safety layers *use* it
    to simulate real SIGKILL-grade deaths (the fault injector's kill
    mode, the broker's chaos hook, the worker's broken-pipe bailout).
    Anywhere else it is a hole in the cleanup contract: a "normal"
    path exiting via ``_exit`` loses journal flushes and leaves
    leases to expire rather than be released.  Every sanctioned site
    carries a ``noqa`` with its reason; new ones must too.
    """

    rule = "REP204"
    name = "unsanctioned-process-control"
    description = "os._exit/os.kill/signal use outside chaos hooks"
    severity = Severity.ERROR
    interests = (ast.Call,)

    def visit(self, node: ast.Call, ctx: FileContext) -> None:
        resolved = ctx.resolve_call(node)
        if resolved in _PROCESS_CONTROL:
            ctx.report(
                node, self.rule, self.severity,
                f"{resolved}() bypasses cleanup (finally/atexit/"
                "flush); only the sanctioned chaos hooks may "
                "hard-kill — suppress with a reason if this is one",
            )


#: The REP1xx/REP2xx suite, in rule order (registered into
#: ``repro.analysis.checkers.ALL_CHECKERS``).
PROTOCOL_CHECKERS = (
    SealedWriteNotAtomic,
    ArtifactWriteOutsideSeam,
    UncheckedSealedRead,
    NoncanonicalKeyHash,
    WallClockLeaseMath,
    BlockingUnderFlock,
    ThreadBeforeFork,
    UnsanctionedProcessControl,
)
