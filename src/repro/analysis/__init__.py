"""Determinism & protocol static analysis for this repository.

The execution engine (:mod:`repro.exec`) promises bit-identical
results across serial, parallel, cached, fault-injected and resumed
runs.  Runtime acceptance tests *demonstrate* that property;
``repro.analysis`` makes it *reviewable*: an AST-based pass that
flags the code patterns which historically break it — unseeded
randomness, wall-clock reads, iteration over unordered collections,
closures shipped to fork workers, mutable defaults, undeclared
environment inputs, and exception handlers broad enough to eat a
``KeyboardInterrupt`` (REP001–REP007) — plus the flow-aware
protocol rules guarding the artifact and distribution layers:
atomic publishes, checked sealed reads, canonical cache keys
(REP101–REP103), monotonic lease math, lock-window discipline,
fork/thread ordering and sanctioned process control
(REP201–REP204), and the stale-suppression audit (REP008).  All
rules are documented in ``docs/analysis.md``.

Run it as ``python -m repro.analysis [paths]`` or ``repro lint``;
silence a sanctioned violation with an inline
``# repro: noqa[REPnnn] -- reason`` comment, absorb a legacy tree
with ``--baseline``, lint only what changed with ``--diff REF``,
clean out stale suppressions with ``--fix-unused-noqa``, emit
code-host-ready reports with ``--format sarif``, and configure the
pass under ``[tool.repro.analysis]`` in ``pyproject.toml``.  CI
runs the pass over ``src/repro`` on every push and fails on any
live finding.

Programmatic use::

    from repro.analysis import Analyzer, default_checkers

    result = Analyzer(default_checkers()).analyze_paths(["src/repro"])
    assert result.clean, [f.render() for f in result.findings]

This package is dependency-free on purpose (standard library only,
no NumPy), so the CI lint job runs on a bare interpreter.
"""

from .checkers import (
    ALL_CHECKERS,
    EntropySource,
    EnvironRead,
    ExceptionSwallow,
    ForkSafety,
    MutableDefault,
    UnorderedIteration,
    UnseededRandomness,
    default_checkers,
)
from .cli import EXIT_CLEAN, EXIT_FINDINGS, EXIT_USAGE, main
from .config import (
    AnalysisConfig,
    ConfigError,
    load_baseline,
    load_config,
    write_baseline,
)
from .core import (
    Analyzer,
    AnalysisResult,
    Checker,
    FileContext,
    UnusedNoqa,
    fix_unused_noqa,
)
from .findings import Finding, Severity
from .reporters import render_json, render_sarif, render_text

__all__ = [
    "ALL_CHECKERS",
    "AnalysisConfig",
    "AnalysisResult",
    "Analyzer",
    "Checker",
    "ConfigError",
    "EXIT_CLEAN",
    "EXIT_FINDINGS",
    "EXIT_USAGE",
    "EntropySource",
    "EnvironRead",
    "ExceptionSwallow",
    "FileContext",
    "Finding",
    "ForkSafety",
    "MutableDefault",
    "Severity",
    "UnorderedIteration",
    "UnseededRandomness",
    "UnusedNoqa",
    "default_checkers",
    "fix_unused_noqa",
    "load_baseline",
    "load_config",
    "main",
    "render_json",
    "render_sarif",
    "render_text",
    "write_baseline",
]
