"""Determinism & fork-safety static analysis for this repository.

The execution engine (:mod:`repro.exec`) promises bit-identical
results across serial, parallel, cached, fault-injected and resumed
runs.  Runtime acceptance tests *demonstrate* that property;
``repro.analysis`` makes it *reviewable*: an AST-based pass that
flags the code patterns which historically break it — unseeded
randomness, wall-clock reads, iteration over unordered collections,
closures shipped to fork workers, mutable defaults, undeclared
environment inputs, and exception handlers broad enough to eat a
``KeyboardInterrupt``.  The rules (REP001–REP007) are documented in
``docs/analysis.md``.

Run it as ``python -m repro.analysis [paths]`` or ``repro lint``;
silence a sanctioned violation with an inline
``# repro: noqa[REP0xx] -- reason`` comment, absorb a legacy tree
with ``--baseline``, and configure the pass under
``[tool.repro.analysis]`` in ``pyproject.toml``.  CI runs the pass
over ``src/repro`` on every push and fails on any live finding.

Programmatic use::

    from repro.analysis import Analyzer, default_checkers

    result = Analyzer(default_checkers()).analyze_paths(["src/repro"])
    assert result.clean, [f.render() for f in result.findings]

This package is dependency-free on purpose (standard library only,
no NumPy), so the CI lint job runs on a bare interpreter.
"""

from .checkers import (
    ALL_CHECKERS,
    EntropySource,
    EnvironRead,
    ExceptionSwallow,
    ForkSafety,
    MutableDefault,
    UnorderedIteration,
    UnseededRandomness,
    default_checkers,
)
from .cli import EXIT_CLEAN, EXIT_FINDINGS, EXIT_USAGE, main
from .config import (
    AnalysisConfig,
    ConfigError,
    load_baseline,
    load_config,
    write_baseline,
)
from .core import Analyzer, AnalysisResult, Checker, FileContext
from .findings import Finding, Severity
from .reporters import render_json, render_text

__all__ = [
    "ALL_CHECKERS",
    "AnalysisConfig",
    "AnalysisResult",
    "Analyzer",
    "Checker",
    "ConfigError",
    "EXIT_CLEAN",
    "EXIT_FINDINGS",
    "EXIT_USAGE",
    "EntropySource",
    "EnvironRead",
    "ExceptionSwallow",
    "FileContext",
    "Finding",
    "ForkSafety",
    "MutableDefault",
    "Severity",
    "UnorderedIteration",
    "UnseededRandomness",
    "default_checkers",
    "load_baseline",
    "load_config",
    "main",
    "render_json",
    "render_text",
    "write_baseline",
]
