"""Intraprocedural def-use tracking: the flow half of the flow core.

The REP1xx/REP2xx protocol rules cannot be pattern-matched off single
AST nodes: whether ``path.write_bytes(blob)`` is a violation depends
on where ``blob`` *came from* (a ``seal(...)`` call?) and where
``path`` *goes* (an ``os.replace`` publish?).  :class:`FunctionFlow`
answers both questions for one lexical scope — a function body or a
module top level — by indexing every assignment in the scope and
computing, on demand, the **origin closure** of an expression: the
expression's own subtree plus, transitively, the subtrees of every
value assigned to any name the expression reads.

The analysis is deliberately conservative and lexical:

* all assignments to a name contribute to its origin (no path
  sensitivity) — a value *may* come from any of them;
* nested function/class/lambda bodies are separate scopes and are
  never descended into (a closure is not this scope's dataflow);
* a function scope chains to its module scope for names it never
  binds locally, so module-level constants (``_MANIFEST_NAME = ...``)
  resolve inside methods.

Conservatism errs toward *finding* protocol hazards; the sanctioned
escapes (tmp-suffix + ``os.replace``, seal ``check`` wrappers) are
recognized explicitly by the checkers in
:mod:`repro.analysis.protocol`.
"""

from __future__ import annotations

import ast
from fnmatch import fnmatch
from typing import (
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

__all__ = ["FunctionFlow", "ScopeNode", "scope_nodes", "walk_scope"]

#: Node types that open a new lexical scope (their bodies are never
#: part of the enclosing scope's dataflow).
_SCOPE_BOUNDARIES = (ast.FunctionDef, ast.AsyncFunctionDef,
                     ast.ClassDef, ast.Lambda)

ScopeNode = ast.AST  # Module | FunctionDef | AsyncFunctionDef


def walk_scope(scope: ScopeNode) -> Iterator[ast.AST]:
    """Yield every node lexically inside ``scope``'s own body.

    Unlike :func:`ast.walk`, nested function/class/lambda bodies are
    skipped — only their *headers* (decorators, defaults, bases) are
    yielded, because those evaluate in the enclosing scope.
    """
    body = list(ast.iter_child_nodes(scope))
    stack = list(reversed(body))
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, _SCOPE_BOUNDARIES):
            # Headers evaluate here; bodies do not.
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                stack.extend(reversed(node.decorator_list))
                stack.extend(reversed(node.args.defaults))
                stack.extend(reversed(
                    [d for d in node.args.kw_defaults if d is not None]
                ))
            elif isinstance(node, ast.ClassDef):
                stack.extend(reversed(node.decorator_list))
                stack.extend(reversed(node.bases))
                stack.extend(reversed([kw.value for kw in node.keywords]))
            elif isinstance(node, ast.Lambda):
                stack.extend(reversed(node.args.defaults))
            continue
        stack.extend(reversed(list(ast.iter_child_nodes(node))))


def scope_nodes(tree: ast.AST) -> List[ScopeNode]:
    """Every scope in ``tree``: the module plus all (nested) functions."""
    scopes: List[ScopeNode] = [tree]
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            scopes.append(node)
    return scopes


class FunctionFlow:
    """Def-use index of one lexical scope.

    Parameters
    ----------
    scope:
        An :class:`ast.Module`, :class:`ast.FunctionDef` or
        :class:`ast.AsyncFunctionDef`.
    resolve:
        ``Call -> Optional[str]`` canonical-name resolver (normally
        :meth:`repro.analysis.core.FileContext.resolve_call`); used by
        the call-classifying helpers.
    parent:
        The enclosing scope's flow (a function chains to its module),
        consulted for names the scope never binds.
    """

    def __init__(self, scope: ScopeNode,
                 resolve: Callable[[ast.Call], Optional[str]],
                 parent: Optional["FunctionFlow"] = None):
        self.scope = scope
        self.resolve = resolve
        self.parent = parent
        #: name -> every expression assigned to it, in lexical order.
        self.assignments: Dict[str, List[ast.expr]] = {}
        #: parameter names of a function scope (their origin is the
        #: caller's — see PackageIndex.param_arg_exprs).
        self.params: Set[str] = set()
        #: every Call lexically in the scope, in source order.
        self.calls: List[ast.Call] = []
        if isinstance(scope, (ast.FunctionDef, ast.AsyncFunctionDef)):
            args = scope.args
            every = list(args.posonlyargs) + list(args.args) \
                + list(args.kwonlyargs)
            if args.vararg:
                every.append(args.vararg)
            if args.kwarg:
                every.append(args.kwarg)
            self.params = {a.arg for a in every}
        self._index()

    # -- construction ----------------------------------------------

    def _bind(self, target: ast.AST, value: ast.expr) -> None:
        if isinstance(target, ast.Name):
            self.assignments.setdefault(target.id, []).append(value)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._bind(elt, value)
        elif isinstance(target, ast.Starred):
            self._bind(target.value, value)
        # Attribute/Subscript targets carry no name to track.

    def _index(self) -> None:
        for node in walk_scope(self.scope):
            if isinstance(node, ast.Call):
                self.calls.append(node)
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    self._bind(target, node.value)
            elif isinstance(node, ast.AnnAssign) and node.value:
                self._bind(node.target, node.value)
            elif isinstance(node, ast.AugAssign):
                self._bind(node.target, node.value)
            elif isinstance(node, ast.NamedExpr):
                self._bind(node.target, node.value)
            elif isinstance(node, ast.withitem) and node.optional_vars:
                self._bind(node.optional_vars, node.context_expr)
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                self._bind(node.target, node.iter)

    # -- origin closure --------------------------------------------

    def _lookup(self, name: str) -> Sequence[ast.expr]:
        """Assignments binding ``name``, chaining to the parent scope
        for free variables."""
        local = self.assignments.get(name)
        if local:
            return local
        if name in self.params:
            return ()  # caller-owned; see PackageIndex.param_arg_exprs
        if self.parent is not None:
            return self.parent._lookup(name)
        return ()

    def origin_nodes(self, expr: ast.AST,
                     extra: Iterable[ast.AST] = ()) -> List[ast.AST]:
        """The origin closure of ``expr``: its own subtree plus the
        subtrees of everything assigned to names it (transitively)
        reads.  ``extra`` seeds additional roots (e.g. inlined return
        expressions from the call graph)."""
        out: List[ast.AST] = []
        seen_names: Set[str] = set()
        stack: List[ast.AST] = [expr, *extra]
        while stack:
            root = stack.pop()
            for sub in ast.walk(root):
                out.append(sub)
                if isinstance(sub, ast.Name) \
                        and isinstance(sub.ctx, ast.Load) \
                        and sub.id not in seen_names:
                    seen_names.add(sub.id)
                    stack.extend(self._lookup(sub.id))
        return out

    def origin_names(self, expr: ast.AST) -> Set[str]:
        """Every name read anywhere in the origin closure of ``expr``."""
        return {n.id for n in self.origin_nodes(expr)
                if isinstance(n, ast.Name)}

    def origin_calls(self, expr: ast.AST,
                     extra: Iterable[ast.AST] = ()) \
            -> List[Tuple[ast.Call, str]]:
        """``(call, resolved_name)`` for every call in the closure."""
        out = []
        for node in self.origin_nodes(expr, extra):
            if isinstance(node, ast.Call):
                name = self.resolve(node)
                if name is None:
                    name = _attr_chain(node.func)
                if name:
                    out.append((node, name))
        return out

    def origin_params(self, expr: ast.AST) -> Set[str]:
        """Scope parameters the closure of ``expr`` reads — the names
        whose true origin lives at the call sites."""
        if not self.params:
            return set()
        return {n.id for n in self.origin_nodes(expr)
                if isinstance(n, ast.Name) and n.id in self.params}

    # -- classification helpers ------------------------------------

    def origin_strings(self, expr: ast.AST,
                       extra: Iterable[ast.AST] = ()) -> List[str]:
        """String constants in the closure, including f-string literal
        fragments (``f"{key}.task"`` contributes ``".task"``)."""
        out = []
        for node in self.origin_nodes(expr, extra):
            if isinstance(node, ast.Constant) \
                    and isinstance(node.value, str):
                out.append(node.value)
        return out

    def mentions_identifier(self, expr: ast.AST,
                            patterns: Sequence[str],
                            extra: Iterable[ast.AST] = ()) -> bool:
        """True when any identifier in the closure — a name, or the
        final attribute of a chain — fnmatches one of ``patterns``."""
        for node in self.origin_nodes(expr, extra):
            ident = None
            if isinstance(node, ast.Name):
                ident = node.id
            elif isinstance(node, ast.Attribute):
                ident = node.attr
            if ident and any(fnmatch(ident, p) for p in patterns):
                return True
        return False

    def calls_resolving_to(self, names: Set[str]) -> List[ast.Call]:
        """Scope calls whose resolved (or dotted) name is in ``names``."""
        out = []
        for call in self.calls:
            resolved = self.resolve(call) or _attr_chain(call.func)
            if resolved in names:
                out.append(call)
        return out

    def publishes(self, names: Set[str]) -> bool:
        """True when a name in ``names`` flows into the source slot of
        an atomic publish (``os.replace`` / ``os.rename``) somewhere
        in this scope — the write it came from is then the sanctioned
        tmp half of a publish pair."""
        if not names:
            return False
        for call in self.calls_resolving_to({"os.replace", "os.rename",
                                             "shutil.move"}):
            if not call.args:
                continue
            if self.origin_names(call.args[0]) & names:
                return True
        return False


def _attr_chain(node: ast.AST) -> Optional[str]:
    """A dotted rendering of an attribute chain that tolerates any
    base expression: ``self.spool.heartbeat`` but also
    ``<call>.result`` (rendered from its final attributes only)."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
    if not parts:
        return None
    return ".".join(reversed(parts))
