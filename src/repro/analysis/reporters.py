"""Text, JSON and SARIF renderings of an :class:`AnalysisResult`.

All renderings are fully deterministic — findings arrive sorted by
``(path, line, column, rule)`` and JSON keys are sorted — so CI can
diff reports across runs and the tool passes its own REP003 check.

The SARIF form targets SARIF 2.1.0, the interchange dialect code
hosts ingest for inline annotations: one ``run`` with the full rule
catalogue on the tool driver and one ``result`` per live finding,
carrying the baseline fingerprint as a partial fingerprint so host
deduplication tracks ours.
"""

from __future__ import annotations

import json
from pathlib import PurePosixPath, PureWindowsPath

from .core import PARSE_ERROR_RULE, AnalysisResult
from .findings import Severity


def render_text(result: AnalysisResult) -> str:
    """Human-oriented report: one line per finding plus a summary."""
    lines = [finding.render() for finding in result.findings]
    counts = f"{len(result.findings)} finding" \
        + ("" if len(result.findings) == 1 else "s")
    tail = [f"checked {result.files} file"
            + ("" if result.files == 1 else "s")
            + f": {counts}"]
    if result.suppressed:
        tail.append(f"{result.suppressed} suppressed by noqa")
    if result.baselined:
        tail.append(f"{result.baselined} absorbed by baseline")
    lines.append(", ".join(tail))
    return "\n".join(lines)


def render_json(result: AnalysisResult) -> str:
    """Machine-oriented report for CI gates and tooling."""
    payload = {
        "version": 1,
        "files": result.files,
        "suppressed": result.suppressed,
        "baselined": result.baselined,
        "findings": [f.to_dict() for f in result.findings],
    }
    return json.dumps(payload, indent=2, sort_keys=True)


_SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)
_SARIF_VERSION = "2.1.0"
_TOOL_NAME = "repro-lint"


def _sarif_uri(path: str) -> str:
    """``path`` as the forward-slash relative URI SARIF expects."""
    return PurePosixPath(PureWindowsPath(path).as_posix()).as_posix()


def _sarif_rules() -> list:
    """The full rule catalogue for the tool driver, sorted by id."""
    from .checkers import ALL_CHECKERS

    rules = [
        {
            "id": cls.rule,
            "name": cls.name,
            "shortDescription": {"text": cls.description},
            "defaultConfiguration": {
                "level": "error" if cls.severity is Severity.ERROR
                else "warning",
            },
        }
        for cls in ALL_CHECKERS
    ]
    rules.append({
        "id": PARSE_ERROR_RULE,
        "name": "parse-error",
        "shortDescription": {
            "text": "file could not be parsed as Python",
        },
        "defaultConfiguration": {"level": "error"},
    })
    rules.sort(key=lambda r: r["id"])
    return rules


def render_sarif(result: AnalysisResult) -> str:
    """SARIF 2.1.0 report for code-host ingestion (``--format sarif``)."""
    results = [
        {
            "ruleId": finding.rule,
            "level": str(finding.severity),
            "message": {"text": finding.message},
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": _sarif_uri(finding.path),
                    },
                    "region": {
                        "startLine": finding.line,
                        "startColumn": finding.column,
                    },
                },
            }],
            "partialFingerprints": {
                "reproFingerprint/v1": finding.fingerprint(),
            },
        }
        for finding in result.findings
    ]
    payload = {
        "$schema": _SARIF_SCHEMA,
        "version": _SARIF_VERSION,
        "runs": [{
            "tool": {
                "driver": {
                    "name": _TOOL_NAME,
                    "rules": _sarif_rules(),
                },
            },
            "columnKind": "utf16CodeUnits",
            "results": results,
        }],
    }
    return json.dumps(payload, indent=2, sort_keys=True)
