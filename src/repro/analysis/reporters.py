"""Text and JSON renderings of an :class:`AnalysisResult`.

Both renderings are fully deterministic — findings arrive sorted by
``(path, line, column, rule)`` and JSON keys are sorted — so CI can
diff reports across runs and the tool passes its own REP003 check.
"""

from __future__ import annotations

import json

from .core import AnalysisResult


def render_text(result: AnalysisResult) -> str:
    """Human-oriented report: one line per finding plus a summary."""
    lines = [finding.render() for finding in result.findings]
    counts = f"{len(result.findings)} finding" \
        + ("" if len(result.findings) == 1 else "s")
    tail = [f"checked {result.files} file"
            + ("" if result.files == 1 else "s")
            + f": {counts}"]
    if result.suppressed:
        tail.append(f"{result.suppressed} suppressed by noqa")
    if result.baselined:
        tail.append(f"{result.baselined} absorbed by baseline")
    lines.append(", ".join(tail))
    return "\n".join(lines)


def render_json(result: AnalysisResult) -> str:
    """Machine-oriented report for CI gates and tooling."""
    payload = {
        "version": 1,
        "files": result.files,
        "suppressed": result.suppressed,
        "baselined": result.baselined,
        "findings": [f.to_dict() for f in result.findings],
    }
    return json.dumps(payload, indent=2, sort_keys=True)
