"""Section 4.2: classifying benchmarks by their effect on the machine.

Part 1 replays the paper's own Table 9 rank data through the
classification pipeline — the distances and groups match the published
Tables 10 and 11 exactly (including the worked gzip/vpr-Place distance
of 89.8).

Part 2 runs a fresh (reduced) PB experiment on our simulator and groups
the suite from the measured fingerprints, printing the single-linkage
merge sequence so a threshold can be chosen by inspection.

Runtime: ~1 minute.

Run:  python examples/benchmark_classification.py
"""

import numpy as np

from repro.core import (
    PAPER_SIMILARITY_THRESHOLD,
    PBExperiment,
    benchmark_distance,
    distance_matrix,
    group_benchmarks,
    rank_parameters_from_result,
    single_linkage,
)
from repro.core.paper_data import paper_table9_ranking
from repro.reporting import render_distance_matrix, render_groups
from repro.workloads import benchmark_suite


def part1_paper_data():
    print("=" * 72)
    print("Part 1: the paper's own Table 9 data")
    print("=" * 72)
    ranking = paper_table9_ranking()
    d = benchmark_distance(ranking, "gzip", "vpr-Place")
    print(f"\nworked example: d(gzip, vpr-Place) = {d:.1f} "
          "(paper says 89.8)")
    print()
    print(render_distance_matrix(ranking, title="Table 10 (recomputed)"))
    print()
    print(render_groups(ranking, PAPER_SIMILARITY_THRESHOLD,
                        title="Table 11 (recomputed)"))


def part2_simulated():
    print()
    print("=" * 72)
    print("Part 2: fresh fingerprints from the simulator")
    print("=" * 72)
    names = ["gzip", "vpr-Place", "twolf", "gcc", "vortex", "ammp"]
    traces = benchmark_suite(length=3000, names=names)
    print(f"\nrunning 88 configurations x {len(names)} benchmarks ...")
    ranking = rank_parameters_from_result(PBExperiment(traces).run())

    print("\nsingle-linkage merge sequence (choose a threshold by eye):")
    for step in single_linkage(ranking):
        members = ", ".join(step.merged)
        print(f"  d = {step.distance:7.1f}: {{{members}}}")

    bench_names, dist = distance_matrix(ranking)
    threshold = float(np.quantile(
        dist[np.triu_indices(len(bench_names), k=1)], 0.3
    ))
    print()
    print(render_groups(ranking, threshold,
                        title="Groups from simulated fingerprints"))


if __name__ == "__main__":
    part1_paper_data()
    part2_simulated()
