"""Quickstart: a Plackett-Burman screen in a few lines.

Builds the paper's experiment at reduced scale — two benchmarks, short
traces — runs all 88 configurations, and prints the most significant
processor parameters.  Runtime: ~15 seconds.

Run:  python examples/quickstart.py
"""

from repro.core import PBExperiment, rank_parameters_from_result
from repro.reporting import render_ranking
from repro.workloads import benchmark_trace


def main():
    # 1. Pick workloads (any subset of the 13 SPEC-like profiles).
    traces = {
        "gzip": benchmark_trace("gzip", 4000),
        "mcf": benchmark_trace("mcf", 4000),
    }

    # 2. Run the foldover PB design over all 41 processor parameters.
    print("running 88 configurations x 2 benchmarks ...")
    result = PBExperiment(traces).run()

    # 3. Rank parameters by |effect| and sum ranks across benchmarks.
    ranking = rank_parameters_from_result(result)

    print()
    print(render_ranking(ranking, title="Parameter ranks (Table 9 style)"))
    print()
    print("significant parameters (sum-of-ranks gap rule):")
    for factor in ranking.significant_factors():
        print(f"  - {factor}")


if __name__ == "__main__":
    main()
