"""Screening on energy instead of execution time.

The paper's introduction notes that a statistical view of the
processor "can help the architect quantify the effects that all
components have on the performance and on other important design
metrics, such as the power consumption".  This example runs the same
Plackett-Burman design twice — once with cycles as the response, once
with an activity-based energy proxy — and compares which parameters
dominate each metric.

The expected contrast: capacity parameters (L2 size) barely move
performance on cache-friendly codes but headline the energy ranking;
latency parameters behave the other way around.

Runtime: ~1 minute.

Run:  python examples/energy_screen.py
"""

from repro.core import PBExperiment, rank_parameters_from_result
from repro.cpu import energy_response
from repro.reporting import format_table
from repro.workloads import benchmark_trace


def main():
    traces = {
        "gzip": benchmark_trace("gzip", 3000),
        "twolf": benchmark_trace("twolf", 3000),
    }

    print("screening on cycles ...")
    cycles = rank_parameters_from_result(PBExperiment(traces).run())
    print("screening on energy ...")
    energy = rank_parameters_from_result(
        PBExperiment(traces, response=energy_response).run()
    )

    rows = []
    for factor in cycles.factors[:12]:
        rows.append((
            factor,
            cycles.sum_of(factor),
            energy.sum_of(factor),
        ))
    print()
    print(format_table(
        ("Parameter", "Sum of ranks (cycles)", "Sum of ranks (energy)"),
        rows,
        title="Performance-critical parameters and their energy ranks",
    ))

    print("\ntop-5 by energy:", list(energy.factors[:5]))
    print("top-5 by cycles:", list(cycles.factors[:5]))
    print("\nParameters high on one list and low on the other are the "
          "performance/energy trade-off axes — exactly what a\n"
          "power-aware design-space exploration needs to know first.")


if __name__ == "__main__":
    main()
