"""Using the simulator substrate directly with a custom workload.

Shows the lower layers of the library on their own: define a synthetic
workload profile, generate a trace, run it on hand-picked machine
configurations, and read the microarchitectural statistics — no
Plackett-Burman machinery involved.

Runtime: a few seconds.

Run:  python examples/custom_workload.py
"""

from repro.cpu import MachineConfig, simulate
from repro.workloads import WorkloadProfile, generate_trace


def main():
    # A pointer-chasing, cache-hostile workload (mcf's evil twin).
    profile = WorkloadProfile(
        name="chaser",
        seed=7,
        ialu_weight=0.40, load_weight=0.35, store_weight=0.05,
        n_blocks=96, block_len_mean=5.0,
        loop_fraction=0.4, loop_span=10, loop_bias_cap=0.9,
        stack_fraction=0.30, hot_fraction=0.15,
        data_footprint=16 * 1024 * 1024, reuse_exponent=1.2,
        pointer_fraction=0.4, n_arenas=48,
    )
    trace = generate_trace(profile, 20_000)
    print(f"trace: {len(trace)} instructions, "
          f"{trace.branch_count()} branches, "
          f"{trace.memory_count()} memory ops")
    print("mix:", {k: round(v, 3)
                   for k, v in trace.instruction_mix().items()})

    # A 256 KB L2 keeps this working set partially missing to DRAM,
    # so the memory-latency contrast below has traffic to act on.
    baseline = MachineConfig(l2_size=256 * 1024)
    print("\n--- baseline machine ---")
    print(simulate(baseline, trace, warmup=True).summary())

    bigger_window = baseline.evolve(rob_entries=64, lsq_entries=64)
    print("\n--- 64-entry reorder buffer ---")
    print(simulate(bigger_window, trace, warmup=True).summary())

    faster_memory = baseline.evolve(mem_latency_first=50)
    print("\n--- 50-cycle memory ---")
    print(simulate(faster_memory, trace, warmup=True).summary())

    both = bigger_window.evolve(mem_latency_first=50)
    print("\n--- both ---")
    print(simulate(both, trace, warmup=True).summary())

    print("\nNote how the two improvements interact: more outstanding "
          "misses (window) multiply the value of faster misses "
          "(memory) — the interaction a one-at-a-time sweep misses.")


if __name__ == "__main__":
    main()
