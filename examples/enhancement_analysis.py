"""Section 4.3: analysing a processor enhancement with a PB design.

Runs the Plackett-Burman experiment twice — base machine, then with
the instruction-precomputation enhancement (128-entry table, compiler-
selected highest-frequency redundant computations) — and compares the
sum of ranks of every parameter before and after.

The expected outcome, mirroring the paper's Table 12 discussion: the
integer-ALU parameter loses significance, because precomputed
instructions bypass the ALUs.

Runtime: ~1 minute.

Run:  python examples/enhancement_analysis.py
"""

from repro.core import analyze_enhancement
from repro.cpu import build_precompute_table, coverage
from repro.reporting import render_enhancement
from repro.workloads import benchmark_trace


def main():
    names = ["gzip", "bzip2", "vortex", "mesa"]
    traces = {name: benchmark_trace(name, 3000) for name in names}

    print("compiler pass: selecting redundant computations ...")
    for name, trace in traces.items():
        table = build_precompute_table(trace, 128)
        print(f"  {name:8s}: 128-entry table covers "
              f"{coverage(trace, table):.1%} of compute instructions")

    print("\nrunning the PB experiment before and after the "
          "enhancement ...")
    analysis, before, after = analyze_enhancement(traces)

    speedups = {
        name: sum(before.responses[name]) / sum(after.responses[name])
        for name in names
    }
    print("\nmean speedup across all 88 configurations:")
    for name, s in speedups.items():
        print(f"  {name:8s}: {s:.3f}x")

    print()
    print(render_enhancement(
        analysis, top=12,
        title="Sum-of-ranks shifts (positive = less significant)",
    ))

    shift = analysis.biggest_shift_among_significant()
    print(f"\nbiggest shift among significant parameters: "
          f"{shift.factor} ({shift.sum_before} -> {shift.sum_after})")
    print("stable significant set:",
          analysis.significant_set_stable())


if __name__ == "__main__":
    main()
