"""Section 4.1: choosing processor parameter values, end to end.

Demonstrates the paper's recommended four-step workflow on a reduced
problem:

1. PB screen over all 41 parameters to find the critical ones;
2. keep commercial-range defaults for the non-critical parameters;
3. full-factorial ANOVA (with interactions) over the critical ones;
4. choose final values from the sensitivity results.

Runtime: ~1 minute.

Run:  python examples/parameter_selection.py
"""

from repro.core import recommended_workflow
from repro.reporting import format_table
from repro.workloads import benchmark_trace


def main():
    traces = {
        "gzip": benchmark_trace("gzip", 3000),
        "vpr-Place": benchmark_trace("vpr-Place", 3000),
        "ammp": benchmark_trace("ammp", 3000),
    }

    print("step 1: PB screen (88 configurations x 3 benchmarks) ...")
    result = recommended_workflow(traces, max_critical=3)

    print("\ncritical parameters (entering the full factorial):")
    for factor in result.critical:
        print(f"  - {factor}  (sum of ranks {result.ranking.sum_of(factor)})")

    print("\nstep 3: ANOVA over the critical set "
          f"(2^{len(result.critical)} configurations per benchmark)")
    variation = result.sensitivity.mean_variation()
    rows = sorted(variation.items(), key=lambda kv: -kv[1])
    print(format_table(
        ("Effect", "Mean variation explained"),
        [(label, f"{frac:.1%}") for label, frac in rows],
    ))

    print("\nstep 4: final values chosen for the critical parameters:")
    cfg = result.final_config
    print(f"  reorder buffer: {cfg.rob_entries} entries")
    print(f"  LSQ:            {cfg.lsq_entries} entries")
    print(f"  L2 latency:     {cfg.l2_latency} cycles")
    print(f"  predictor:      {cfg.branch_predictor}")


if __name__ == "__main__":
    main()
