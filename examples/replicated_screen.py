"""Effects with error bars: a workload-replicated screen.

The paper measures each configuration once, so "is that effect real?"
is answered by comparing ranks.  A deterministic workload generator
allows a stronger answer: regenerate each benchmark from independent
seeds, run the design per replicate, and t-test every effect against
zero.

Runtime: ~30 seconds.

Run:  python examples/replicated_screen.py
"""

from repro.core import (
    rank_parameters_from_result,
    replicated_suite,
    run_replicated,
)

FACTORS = [
    "Reorder Buffer Entries", "L2 Cache Latency", "BPred Type",
    "Int ALUs", "L1 D-Cache Size", "Memory Latency First",
    "I-TLB Size", "Return Address Stack Entries", "Memory Ports",
    "BTB Associativity", "LSQ Entries",
]


def main():
    print("generating 4 replicates of gzip and mcf ...")
    traces = replicated_suite(["gzip", "mcf"], 3000, 4)

    print("running the design on every replicate ...")
    result = run_replicated(traces, parameter_names=FACTORS)

    for bench in ("gzip", "mcf"):
        print()
        print(result.table(bench, top=8))

    ranking = rank_parameters_from_result(result.mean_result)
    print("\nmean-response ranking (top 5):",
          list(ranking.factors[:5]))
    print("\nEffects with |t| >> 2 are real machine behaviour; the "
          "rest is trace noise a single-seed\nexperiment cannot "
          "distinguish — the error bars the paper's method lacked.")


if __name__ == "__main__":
    main()
