"""Section 4.3's motivating example, made concrete: data prefetching.

The paper motivates its enhancement-analysis method with a hypothetical
memory optimization: "if the L1 D-Cache size and associativity sharply
drop in significance due to an enhancement, it is reasonable to
conclude that that particular enhancement does a good job of improving
memory performance".  Here we run that exact study with a next-2-line
data prefetcher on memory-streaming benchmarks and read off the rank
signature.

Runtime: ~1 minute.

Run:  python examples/prefetch_enhancement.py
"""

from repro.core import (
    EnhancementAnalysis,
    PBExperiment,
    rank_parameters_from_result,
)
from repro.reporting import render_enhancement
from repro.workloads import benchmark_trace


def main():
    names = ["art", "equake", "ammp", "mcf"]
    traces = {name: benchmark_trace(name, 3000) for name in names}

    print("running the PB experiment without prefetching ...")
    before = PBExperiment(traces).run()
    print("running it again with a next-2-line data prefetcher ...")
    after = PBExperiment(traces, prefetch_lines=2).run()

    speedup = {
        n: sum(before.responses[n]) / sum(after.responses[n])
        for n in names
    }
    print("\nmean speedup across all 88 configurations:")
    for n, s in speedup.items():
        print(f"  {n:8s}: {s:.3f}x")

    analysis = EnhancementAnalysis(
        rank_parameters_from_result(before),
        rank_parameters_from_result(after),
    )
    print()
    print(render_enhancement(
        analysis, top=12,
        title="Sum-of-ranks shifts under prefetching "
              "(positive = less significant)",
    ))

    shifts = {s.factor: s.shift for s in analysis.shifts()}
    memory_factors = [
        "L1 D-Cache Size", "L1 D-Cache Latency", "L1 D-Cache Block Size",
        "Memory Latency First",
    ]
    relieved = [f for f in memory_factors if shifts[f] > 0]
    print("\nmemory-side parameters relieved by prefetching:", relieved)
    print("(the signature the paper's Section 4.3 example predicts)")


if __name__ == "__main__":
    main()
