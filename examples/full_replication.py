"""The whole paper in one call.

Runs the complete §4.1-§4.3 pipeline — the 88-configuration foldover
Plackett-Burman experiment on the base machine and on the machine with
instruction precomputation — compares every result against the paper's
published tables, and prints a markdown replication report.

Scale is adjustable; larger traces sharpen the ranks.

Runtime: ~3 minutes at the default scale.

Run:  python examples/full_replication.py [scale]
"""

import sys


def main():
    from repro.core import replicate

    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 5.0

    def progress(done, total):
        if done % 200 == 0 or done == total:
            print(f"\r  {done}/{total} simulations", end="",
                  file=sys.stderr, flush=True)

    print(f"replicating at scale {scale} "
          "(2 x 88 configurations x 13 benchmarks) ...",
          file=sys.stderr)
    outcome = replicate(scale=scale, progress=progress)
    print(file=sys.stderr)
    print(outcome.report())


if __name__ == "__main__":
    main()
