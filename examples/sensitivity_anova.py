"""Step 3 of the workflow: full-factorial ANOVA over critical parameters.

After the PB screen has identified the few critical parameters, the
paper recommends a full multifactorial design (Table 1's expensive row)
over just those parameters, so interactions can be quantified.  This
example runs a 2^3 factorial over the three headline parameters and
prints the allocation of variation — main effects *and* interactions.

Runtime: ~15 seconds.

Run:  python examples/sensitivity_anova.py
"""

from repro.core import sensitivity_analysis
from repro.reporting import format_table
from repro.workloads import benchmark_trace

CRITICAL = [
    "Reorder Buffer Entries",
    "L2 Cache Latency",
    "BPred Type",
]


def main():
    traces = {
        "gzip": benchmark_trace("gzip", 4000),
        "parser": benchmark_trace("parser", 4000),
    }
    print(f"2^{len(CRITICAL)} factorial x {len(traces)} benchmarks ...")
    study = sensitivity_analysis(traces, CRITICAL)

    for bench, result in study.anovas.items():
        rows = [
            (row.label, f"{row.effect:+.0f}",
             f"{row.variation_fraction:.1%}")
            for row in result.sorted_by_variation()
        ]
        print()
        print(format_table(
            ("Effect", "Cycles (high - low)", "Variation"),
            rows, title=f"Allocation of variation: {bench}",
        ))

    print("\naveraged across benchmarks:")
    for label, frac in sorted(study.mean_variation().items(),
                              key=lambda kv: -kv[1]):
        print(f"  {label:45s} {frac:6.1%}")
    print("\nNote the interaction rows (e.g. 'Reorder Buffer "
          "Entries:L2 Cache Latency'): the PB screen cannot quantify "
          "these; the factorial can — exactly the paper's point.")


if __name__ == "__main__":
    main()
