"""Public API surface checks for the whole package."""

import importlib

import pytest

import repro


SUBPACKAGES = ["analysis", "core", "cpu", "doe", "exec", "guard",
               "obs", "reporting", "workloads"]


class TestSurface:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    @pytest.mark.parametrize("name", SUBPACKAGES)
    def test_subpackages_importable(self, name):
        module = importlib.import_module(f"repro.{name}")
        assert module is not None

    @pytest.mark.parametrize("name", SUBPACKAGES)
    def test_all_exports_resolve(self, name):
        """Every name in __all__ actually exists."""
        module = importlib.import_module(f"repro.{name}")
        for symbol in module.__all__:
            assert hasattr(module, symbol), f"repro.{name}.{symbol}"

    @pytest.mark.parametrize("name", SUBPACKAGES)
    def test_all_sorted_unique(self, name):
        module = importlib.import_module(f"repro.{name}")
        assert len(set(module.__all__)) == len(module.__all__)

    def test_docstrings_everywhere(self):
        """Every public module and public callable carries a docstring."""
        import inspect

        for name in SUBPACKAGES:
            module = importlib.import_module(f"repro.{name}")
            assert module.__doc__, f"repro.{name} missing docstring"
            for symbol in module.__all__:
                obj = getattr(module, symbol)
                if inspect.isfunction(obj) or inspect.isclass(obj):
                    assert obj.__doc__, f"repro.{name}.{symbol}"

    def test_quickstart_snippet_from_docstring(self):
        """The package docstring's quick start actually runs."""
        from repro.core import PBExperiment, rank_parameters_from_result
        from repro.workloads import benchmark_suite

        traces = benchmark_suite(length=600, names=["gzip"])
        result = PBExperiment(traces).run()
        ranking = rank_parameters_from_result(result)
        assert len(ranking.significant_factors()) >= 1
