"""Tests for the markdown renderers (repro.reporting.markdown)."""

import pytest

from repro.core import EnhancementAnalysis, PAPER_SIMILARITY_THRESHOLD
from repro.core.paper_data import paper_table9_ranking, paper_table12_ranking
from repro.reporting import (
    distance_markdown,
    enhancement_markdown,
    groups_markdown,
    markdown_table,
    parameters_markdown,
    ranking_markdown,
)


class TestMarkdownTable:
    def test_structure(self):
        out = markdown_table(("a", "b"), [(1, 2), (3, 4)])
        lines = out.splitlines()
        assert lines[0] == "| a | b |"
        assert lines[1] == "| :-- | --: |"
        assert lines[2] == "| 1 | 2 |"
        assert len(lines) == 4

    def test_pipes_escaped(self):
        out = markdown_table(("x",), [("a|b",)])
        assert "a\\|b" in out

    def test_all_right_aligned(self):
        out = markdown_table(("a", "b"), [(1, 2)],
                             align_first_left=False)
        assert out.splitlines()[1] == "| --: | --: |"


class TestRenderers:
    def test_ranking_rows(self):
        out = ranking_markdown(paper_table9_ranking())
        assert out.count("\n") == 44  # header + separator + 43 rows
        assert "| Reorder Buffer Entries |" in out
        assert "| 36 |" in out

    def test_ranking_truncated(self):
        out = ranking_markdown(paper_table9_ranking(), top=5)
        assert out.count("\n") == 6

    def test_distance_contains_worked_example(self):
        out = distance_markdown(paper_table9_ranking())
        assert "89.8" in out

    def test_groups(self):
        out = groups_markdown(paper_table9_ranking(),
                              PAPER_SIMILARITY_THRESHOLD)
        assert "gzip, mesa" in out

    def test_enhancement(self):
        analysis = EnhancementAnalysis(
            paper_table9_ranking(), paper_table12_ranking()
        )
        out = enhancement_markdown(analysis, top=3)
        assert "| Int ALUs | 118 | 137 | +19 |" in out

    def test_parameters(self):
        out = parameters_markdown()
        assert "| Reorder Buffer Entries | 8 | 64 |" in out
        assert out.count("\n") == 42  # header + separator + 41 rows
