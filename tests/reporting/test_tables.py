"""Tests for the table renderers (repro.reporting.tables)."""

import pytest

from repro.core.paper_data import paper_table9_ranking, paper_table12_ranking
from repro.core import EnhancementAnalysis, PAPER_SIMILARITY_THRESHOLD
from repro.doe import compute_effects, pb_design
from repro.reporting import (
    format_table,
    render_design_cost_table,
    render_design_matrix,
    render_distance_matrix,
    render_effects,
    render_enhancement,
    render_groups,
    render_parameter_values,
    render_ranking,
)


class TestFormatTable:
    def test_alignment(self):
        out = format_table(("a", "bb"), [(1, 22), (333, 4)])
        lines = out.splitlines()
        assert len(lines) == 4
        widths = {len(line) for line in lines if line.strip("-")}
        assert len(widths) <= 2   # header/rows aligned

    def test_title(self):
        out = format_table(("x",), [(1,)], title="Title here")
        assert out.startswith("Title here")


class TestRenderers:
    def test_design_cost_table_contents(self):
        out = render_design_cost_table(40)
        assert "Plackett and Burman" in out
        assert "88" in out
        assert str(2 ** 40) in out

    def test_design_matrix_table2(self):
        out = render_design_matrix(pb_design(7), title="Table 2")
        assert out.splitlines()[1] == "+1 +1 +1 -1 +1 -1 -1"
        assert out.splitlines()[-1] == "-1 -1 -1 -1 -1 -1 -1"

    def test_effects_table4(self):
        design = pb_design(7, factor_names=list("ABCDEFG"))
        table = compute_effects(design, [1, 9, 74, 28, 3, 6, 112, 84])
        out = render_effects(table)
        assert "-225" in out
        assert "+129" in out or "129" in out

    def test_parameter_values_table(self):
        out = render_parameter_values()
        assert "Reorder Buffer Entries" in out
        assert "perfect" in out
        assert out.count("\n") >= 41

    def test_ranking_table9(self):
        out = render_ranking(paper_table9_ranking(), title="Table 9")
        lines = out.splitlines()
        assert lines[0] == "Table 9"
        assert "Reorder Buffer Entries" in lines[3]
        assert lines[3].rstrip().endswith("36")   # the Sum column

    def test_distance_matrix_table10(self):
        out = render_distance_matrix(paper_table9_ranking())
        assert "89.8" in out
        assert "35.2" in out

    def test_groups_table11(self):
        out = render_groups(paper_table9_ranking(),
                            PAPER_SIMILARITY_THRESHOLD)
        assert "gzip, mesa" in out
        assert "vpr-Route, parser, bzip2" in out

    def test_enhancement_table(self):
        analysis = EnhancementAnalysis(
            paper_table9_ranking(), paper_table12_ranking()
        )
        out = render_enhancement(analysis, top=5)
        assert "Int ALUs" in out
        assert "118" in out and "137" in out
