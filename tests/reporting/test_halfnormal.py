"""Tests for the half-normal plot renderer."""

import numpy as np
import pytest

from repro.doe import compute_effects, pb_design
from repro.reporting import half_normal_points, render_half_normal


def table_with_signal(active, noise_sd=1.0, seed=0):
    design = pb_design(11, factor_names=[f"f{i}" for i in range(11)],
                       foldover=True)
    rng = np.random.default_rng(seed)
    y = rng.normal(0, noise_sd, size=design.n_runs)
    for factor, coef in active.items():
        y = y + coef * design.column(factor)
    return compute_effects(design, y)


class TestPoints:
    def test_sorted_ascending(self):
        points = half_normal_points(table_with_signal({"f3": 5.0}))
        quantiles = [q for q, _, _ in points]
        magnitudes = [m for _, m, _ in points]
        assert quantiles == sorted(quantiles)
        assert magnitudes == sorted(magnitudes)

    def test_one_point_per_factor(self):
        points = half_normal_points(table_with_signal({}))
        assert len(points) == 11


class TestRender:
    def test_significant_factor_labelled(self):
        out = render_half_normal(table_with_signal({"f4": 8.0}))
        assert "* f4" in out
        assert "half-normal quantile" in out

    def test_pure_noise_reports_none_or_few(self):
        out = render_half_normal(table_with_signal({}, seed=5))
        # At most a rare false positive gets a star.
        assert out.count("* f") <= 1

    def test_dimensions(self):
        out = render_half_normal(table_with_signal({"f1": 4.0}),
                                 width=30, height=8)
        plot_rows = [l for l in out.splitlines() if l.startswith("  |")]
        assert len(plot_rows) == 8
        assert all(len(l) <= 3 + 30 for l in plot_rows)

    def test_empty_rejected(self):
        from repro.doe.effects import EffectTable

        with pytest.raises(ValueError):
            render_half_normal(EffectTable((), ()))
