"""Run the doctests embedded in module docstrings."""

import doctest

import pytest

import repro.cpu.params
import repro.doe.effects
import repro.doe.factorial
import repro.doe.galois
import repro.doe.oat
import repro.doe.pb

MODULES = [
    repro.doe.galois,
    repro.doe.pb,
    repro.doe.effects,
    repro.doe.factorial,
    repro.doe.oat,
    repro.cpu.params,
]


@pytest.mark.parametrize(
    "module", MODULES, ids=[m.__name__ for m in MODULES]
)
def test_doctests(module):
    failures, tests = doctest.testmod(module).failed, \
        doctest.testmod(module).attempted
    assert failures == 0
    # Modules listed here are expected to actually carry examples.
    assert tests > 0 or module in (repro.cpu.params,)
