"""Tests for the replicated 2^k ANOVA (repro.doe.anova)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.doe import anova, full_factorial_design


@pytest.fixture
def design2():
    return full_factorial_design(2, factor_names=["a", "b"])


def synthetic_responses(design, coef, noise_sd=0.0, reps=1, seed=0):
    """y = sum(coef[subset] * contrast) + noise, per replication."""
    from repro.doe import contrast_column

    rng = np.random.default_rng(seed)
    y = np.zeros((design.n_runs, reps))
    for subset, c in coef.items():
        col = contrast_column(design, list(subset)).astype(float)
        y += c * col[:, None]
    y += rng.normal(0.0, noise_sd, size=y.shape)
    return y


class TestEffectsRecovered:
    def test_main_effect_value(self, design2):
        # y = 3*a: classical effect (high mean - low mean) = 6.
        y = synthetic_responses(design2, {("a",): 3.0})
        result = anova(design2, y)
        assert result.row("a").effect == pytest.approx(6.0)
        assert result.row("b").effect == pytest.approx(0.0)

    def test_interaction_effect_value(self, design2):
        y = synthetic_responses(design2, {("a", "b"): 2.0})
        result = anova(design2, y)
        assert result.row("a", "b").effect == pytest.approx(4.0)
        assert result.row("a").effect == pytest.approx(0.0)

    def test_row_lookup_order_insensitive(self, design2):
        y = synthetic_responses(design2, {("a", "b"): 1.0})
        result = anova(design2, y)
        assert result.row("b", "a") == result.row("a", "b")

    def test_unknown_subset(self, design2):
        result = anova(design2, synthetic_responses(design2, {}))
        with pytest.raises(KeyError):
            result.row("zzz")


class TestVariationAllocation:
    def test_fractions_sum_to_one_without_noise(self):
        design = full_factorial_design(3, factor_names=["a", "b", "c"])
        y = synthetic_responses(
            design, {("a",): 2.0, ("b", "c"): 1.0}
        )
        result = anova(design, y)
        total = sum(r.variation_fraction for r in result.rows)
        assert total == pytest.approx(1.0)

    def test_dominant_effect_dominates(self, design2):
        y = synthetic_responses(design2, {("a",): 10.0, ("b",): 1.0})
        result = anova(design2, y)
        assert result.sorted_by_variation()[0].label == "a"
        assert result.row("a").variation_fraction > 0.9

    def test_max_order_limits_rows(self):
        design = full_factorial_design(4)
        y = synthetic_responses(design, {})
        result = anova(design, y, max_order=1)
        assert len(result.rows) == 4

    def test_sst_identity_with_replication(self, design2):
        y = synthetic_responses(
            design2, {("a",): 3.0}, noise_sd=0.5, reps=4, seed=7
        )
        result = anova(design2, y)
        reconstructed = (
            sum(r.sum_of_squares for r in result.rows)
            + result.error_sum_of_squares
        )
        assert reconstructed == pytest.approx(
            result.total_sum_of_squares, rel=1e-9
        )


class TestFTests:
    def test_no_replication_no_f(self, design2):
        y = synthetic_responses(design2, {("a",): 1.0})
        result = anova(design2, y)
        assert result.row("a").f_statistic is None
        assert result.row("a").p_value is None
        assert result.significant() == []

    def test_real_effect_significant(self, design2):
        y = synthetic_responses(
            design2, {("a",): 5.0}, noise_sd=0.3, reps=5, seed=1
        )
        result = anova(design2, y)
        significant = {r.label for r in result.significant(0.01)}
        assert "a" in significant

    def test_null_effect_rarely_significant(self, design2):
        y = synthetic_responses(
            design2, {}, noise_sd=1.0, reps=5, seed=2
        )
        result = anova(design2, y)
        # With pure noise, p-values should not all be tiny.
        assert all(
            r.p_value is None or r.p_value > 1e-6 for r in result.rows
        )

    def test_f_statistic_positive(self, design2):
        y = synthetic_responses(
            design2, {("a",): 2.0}, noise_sd=0.5, reps=3, seed=3
        )
        result = anova(design2, y)
        for row in result.rows:
            assert row.f_statistic >= 0.0
            assert 0.0 <= row.p_value <= 1.0


class TestValidation:
    def test_requires_power_of_two_runs(self):
        from repro.doe import DesignMatrix

        d = DesignMatrix([[1], [-1], [1]])
        with pytest.raises(ValueError):
            anova(d, [1.0, 2.0, 3.0])

    def test_wrong_row_count(self, design2):
        with pytest.raises(ValueError):
            anova(design2, [1.0, 2.0])

    def test_one_dimensional_input_accepted(self, design2):
        result = anova(design2, [1.0, 2.0, 3.0, 4.0])
        assert result.error_degrees_of_freedom == 0


class TestVariationExplainedMap:
    def test_keys_are_labels(self, design2):
        y = synthetic_responses(design2, {("a",): 1.0})
        result = anova(design2, y)
        assert set(result.variation_explained()) == {"a", "b", "a:b"}


@given(
    st.lists(st.floats(-100, 100), min_size=8, max_size=8),
)
@settings(max_examples=50, deadline=None)
def test_anova_sst_decomposition_property(y):
    """SST = sum of effect SS (+SSE) holds for any response vector."""
    design = full_factorial_design(3)
    result = anova(design, y)
    reconstructed = (
        sum(r.sum_of_squares for r in result.rows)
        + result.error_sum_of_squares
    )
    assert reconstructed == pytest.approx(
        result.total_sum_of_squares, rel=1e-6, abs=1e-6
    )
