"""Tests for Lenth's method (repro.doe.lenth)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.doe import (
    compute_effects,
    lenth_test,
    pb_design,
    pseudo_standard_error,
    significant_by_lenth,
)


def effects_with_signal(active: dict, noise_sd=1.0, seed=0):
    """Foldover PB responses: signal on named factors + noise."""
    design = pb_design(11, factor_names=[f"f{i}" for i in range(11)],
                       foldover=True)
    rng = np.random.default_rng(seed)
    y = rng.normal(0.0, noise_sd, size=design.n_runs)
    for factor, coef in active.items():
        y = y + coef * design.column(factor)
    return compute_effects(design, y)


class TestPSE:
    def test_pure_noise_scale(self):
        rng = np.random.default_rng(1)
        effects = rng.normal(0.0, 10.0, size=40)
        pse = pseudo_standard_error(effects)
        # PSE estimates ~1.5 * median|N(0, 10)| ~ 10; allow slack.
        assert 5.0 < pse < 20.0

    def test_outliers_trimmed(self):
        effects = [1.0, -1.2, 0.8, -0.9, 1.1, 500.0]
        with_outlier = pseudo_standard_error(effects)
        without = pseudo_standard_error(effects[:-1])
        assert with_outlier < 3 * without

    def test_zero_effects(self):
        assert pseudo_standard_error([0.0, 0.0, 0.0, 0.0]) == 0.0

    def test_too_few(self):
        with pytest.raises(ValueError):
            pseudo_standard_error([1.0, 2.0])


class TestLenthTest:
    def test_detects_strong_signal(self):
        table = effects_with_signal({"f2": 8.0, "f7": -6.0})
        result = lenth_test(table)
        significant = result.significant_factors()
        assert "f2" in significant
        assert "f7" in significant

    def test_null_factors_not_flagged(self):
        table = effects_with_signal({"f2": 8.0})
        significant = lenth_test(table).significant_factors()
        # At most an occasional false positive besides f2.
        assert "f2" in significant
        assert len(significant) <= 3

    def test_pure_noise_mostly_clean(self):
        table = effects_with_signal({}, noise_sd=2.0, seed=3)
        assert len(lenth_test(table).significant_factors()) <= 2

    def test_all_zero_effects(self):
        design = pb_design(7)
        table = compute_effects(design, [3.0] * 8)
        result = lenth_test(table)
        assert result.significant_factors() == []

    def test_t_ratio_lookup(self):
        table = effects_with_signal({"f0": 5.0})
        result = lenth_test(table)
        assert abs(result.t_ratio("f0")) > abs(result.t_ratio("f5"))

    def test_margin_grows_with_confidence(self):
        table = effects_with_signal({"f1": 4.0})
        loose = lenth_test(table, alpha=0.10)
        tight = lenth_test(table, alpha=0.01)
        assert tight.margin_of_error > loose.margin_of_error


class TestCrossBenchmark:
    def test_min_benchmarks_filter(self):
        tables = {
            "a": effects_with_signal({"f3": 9.0}, seed=10),
            "b": effects_with_signal({"f3": 9.0, "f8": 9.0}, seed=11),
        }
        everywhere = significant_by_lenth(tables, min_benchmarks=2)
        anywhere = significant_by_lenth(tables, min_benchmarks=1)
        assert "f3" in everywhere
        assert "f8" in anywhere
        assert "f8" not in everywhere

    def test_on_simulator_experiment(self):
        """On a real screen, the dummy factor never beats Lenth's bar
        while the reorder buffer always does.

        The factor list keeps effect *sparsity* — Lenth's working
        assumption — by mixing a couple of strong factors with mostly
        inert ones (FP latency on an integer benchmark, TLB/RAS
        geometry).  Loading the list with many strong factors inflates
        the pseudo standard error and the test becomes a knife-edge on
        the trimming threshold rather than a test of the method."""
        from repro.core import PBExperiment
        from repro.workloads import benchmark_trace

        factors = ["Reorder Buffer Entries", "L2 Cache Latency",
                   "BPred Type", "FP Multiply Latency",
                   "Memory Latency First",
                   "L1 D-Cache Size", "LSQ Entries", "Memory Ports",
                   "BTB Entries", "Return Address Stack Entries",
                   "I-TLB Size"]
        result = PBExperiment(
            {"gzip": benchmark_trace("gzip", 2500)},
            parameter_names=factors,
        ).run()
        lenth = lenth_test(result.effects["gzip"])
        significant = lenth.significant_factors()
        assert "Reorder Buffer Entries" in significant
        assert "I-TLB Size" not in significant


@given(st.lists(st.floats(-1e3, 1e3), min_size=3, max_size=60))
@settings(max_examples=40, deadline=None)
def test_pse_nonnegative_and_scale_equivariant(effects):
    """PSE >= 0 and doubles when the effects double (hypothesis)."""
    pse = pseudo_standard_error(effects)
    assert pse >= 0.0
    doubled = pseudo_standard_error([2 * e for e in effects])
    assert doubled == pytest.approx(2 * pse, rel=1e-9, abs=1e-12)
