"""Tests for 2^(k-p) fractional factorials (repro.doe.fractional)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.doe import (
    FractionalFactorial,
    compute_effects,
    fractional_factorial,
    half_fraction,
)


class TestConstruction:
    def test_half_fraction_run_count(self):
        frac = fractional_factorial(5, ["E=ABCD"])
        assert frac.design.n_runs == 16
        assert frac.design.n_factors == 5

    def test_quarter_fraction(self):
        frac = fractional_factorial(6, ["E=ABC", "F=BCD"])
        assert frac.design.n_runs == 16
        assert len(frac.defining_relation) == 3

    def test_generated_column_is_product(self):
        frac = fractional_factorial(4, ["D=ABC"])
        d = frac.design
        product = d.column("A") * d.column("B") * d.column("C")
        assert np.array_equal(d.column("D"), product)

    def test_orthogonal_and_balanced(self):
        frac = fractional_factorial(6, ["E=ABC", "F=BCD"])
        assert frac.design.is_balanced()
        assert frac.design.is_orthogonal()

    def test_bad_generator_syntax(self):
        with pytest.raises(ValueError):
            fractional_factorial(4, ["D:ABC"])
        with pytest.raises(ValueError):
            fractional_factorial(4, ["DE=AB"])

    def test_generator_must_use_base_factors(self):
        with pytest.raises(ValueError):
            fractional_factorial(5, ["D=AE", "E=AB"])

    def test_duplicate_target(self):
        with pytest.raises(ValueError):
            fractional_factorial(5, ["E=AB", "E=CD"])

    def test_factor_count_bounds(self):
        with pytest.raises(ValueError):
            fractional_factorial(1, [])
        with pytest.raises(ValueError):
            fractional_factorial(30, [])


class TestResolutionAndAliases:
    def test_resolution_v(self):
        assert fractional_factorial(5, ["E=ABCD"]).resolution == 5

    def test_resolution_iii(self):
        frac = fractional_factorial(3, ["C=AB"])
        assert frac.resolution == 3
        assert not frac.mains_clear_of_two_factor_interactions()

    def test_resolution_iv(self):
        frac = fractional_factorial(4, ["D=ABC"])
        assert frac.resolution == 4
        assert frac.mains_clear_of_two_factor_interactions()

    def test_alias_of_main_in_res3(self):
        frac = fractional_factorial(3, ["C=AB"])
        assert frozenset("AB") in frac.aliases_of("C")

    def test_alias_of_interaction(self):
        frac = fractional_factorial(4, ["D=ABC"])
        # I = ABCD, so AB is aliased with CD.
        assert frozenset("CD") in frac.aliases_of("A", "B")

    def test_unknown_factor(self):
        with pytest.raises(KeyError):
            fractional_factorial(3, ["C=AB"]).aliases_of("Z")

    def test_half_fraction_resolution_equals_k(self):
        for k in range(3, 8):
            assert half_fraction(k).resolution == k


class TestAliasedEffectsAreReal:
    def test_aliased_pair_indistinguishable(self):
        """A response driven purely by the CD interaction shows up as
        the AB effect in a design where AB is aliased with CD."""
        frac = fractional_factorial(4, ["D=ABC"])
        d = frac.design
        y = (d.column("C") * d.column("D")).astype(float)
        ab = float((d.column("A") * d.column("B")).astype(float) @ y)
        # The AB product column carries the full CD signal.
        assert abs(ab) == d.n_runs

    def test_res5_mains_clean(self):
        """In a resolution-V fraction, a pure two-factor interaction
        leaves every main effect untouched."""
        frac = fractional_factorial(5, ["E=ABCD"])
        d = frac.design
        y = (d.column("A") * d.column("B")).astype(float)
        table = compute_effects(d, y)
        for f in "ABCDE":
            assert table.effect(f) == pytest.approx(0.0)


@given(st.integers(3, 9))
@settings(max_examples=10, deadline=None)
def test_half_fraction_properties(k):
    frac = half_fraction(k)
    assert frac.design.n_runs == 2 ** (k - 1)
    assert frac.design.is_orthogonal()
    assert len(frac.defining_relation) == 1
