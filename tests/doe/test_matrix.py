"""Tests for DesignMatrix (repro.doe.matrix)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.doe import DesignMatrix, pb_design


class TestConstruction:
    def test_basic(self):
        d = DesignMatrix([[1, -1], [-1, 1]])
        assert d.n_runs == 2
        assert d.n_factors == 2
        assert d.factor_names == ["F1", "F2"]

    def test_custom_names(self):
        d = DesignMatrix([[1, -1]], ["a", "b"])
        assert d.factor_names == ["a", "b"]

    def test_rejects_non_pm1(self):
        with pytest.raises(ValueError):
            DesignMatrix([[1, 0], [-1, 1]])

    def test_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            DesignMatrix([1, -1])

    def test_rejects_wrong_name_count(self):
        with pytest.raises(ValueError):
            DesignMatrix([[1, -1]], ["only-one"])

    def test_rejects_duplicate_names(self):
        with pytest.raises(ValueError):
            DesignMatrix([[1, -1]], ["x", "x"])


class TestAccessors:
    def test_column(self):
        d = DesignMatrix([[1, -1], [-1, 1], [1, 1], [-1, -1]], ["a", "b"])
        assert d.column("a").tolist() == [1, -1, 1, -1]
        with pytest.raises(KeyError):
            d.column("nope")

    def test_run_mapping(self):
        d = DesignMatrix([[1, -1]], ["a", "b"])
        assert d.run(0) == {"a": 1, "b": -1}

    def test_runs_iterates_all(self):
        d = pb_design(7)
        runs = list(d.runs())
        assert len(runs) == 8
        assert all(set(r.values()) <= {1, -1} for r in runs)

    def test_interaction_column(self):
        d = DesignMatrix([[1, -1], [-1, -1]], ["a", "b"])
        assert d.interaction_column("a", "b").tolist() == [-1, 1]


class TestProperties:
    def test_pb_design_is_balanced_and_orthogonal(self):
        d = pb_design(7)
        assert d.is_balanced()
        assert d.is_orthogonal()

    def test_unbalanced_detected(self):
        d = DesignMatrix([[1, 1], [1, -1]])
        assert not d.is_balanced()

    def test_non_orthogonal_detected(self):
        d = DesignMatrix([[1, 1], [1, 1], [-1, -1], [-1, -1]])
        assert d.is_balanced()
        assert not d.is_orthogonal()


class TestFoldover:
    def test_doubles_runs(self):
        d = pb_design(7)
        f = d.foldover()
        assert f.n_runs == 16
        assert f.n_factors == 7

    def test_mirror_signs(self):
        d = pb_design(7)
        f = d.foldover()
        assert np.array_equal(f.matrix[8:], -f.matrix[:8])

    def test_foldover_preserves_orthogonality(self):
        f = pb_design(11).foldover()
        assert f.is_balanced()
        assert f.is_orthogonal()

    def test_matches_design_foldover_flag(self):
        assert pb_design(7).foldover() == pb_design(7, foldover=True)


class TestDummyNames:
    def test_with_fewer_names_adds_dummies(self):
        d = pb_design(11).with_factor_names(["a", "b", "c"])
        assert d.factor_names[:3] == ["a", "b", "c"]
        assert d.factor_names[3] == "Dummy Factor #1"
        assert d.factor_names[-1] == "Dummy Factor #8"

    def test_too_many_names_rejected(self):
        with pytest.raises(ValueError):
            pb_design(7).with_factor_names([f"f{i}" for i in range(9)])

    def test_paper_design_has_two_dummies(self):
        from repro.doe import dummy_factor_names
        d = pb_design(43).with_factor_names([f"p{i}" for i in range(41)])
        assert dummy_factor_names(d) == ["Dummy Factor #1", "Dummy Factor #2"]


class TestEquality:
    def test_equal(self):
        assert pb_design(7) == pb_design(7)

    def test_differs_by_names(self):
        assert pb_design(7) != pb_design(7).with_factor_names(["x"])

    def test_not_a_design(self):
        assert pb_design(7) != "something"


@given(st.integers(2, 30))
@settings(max_examples=25, deadline=None)
def test_any_pb_design_balanced_orthogonal(n_factors):
    """Every constructible PB design satisfies the invariants.

    The matrix always carries the full X - 1 columns; surplus columns
    beyond the requested factors are available as dummy factors.
    """
    d = pb_design(n_factors)
    assert d.is_balanced()
    assert d.is_orthogonal()
    assert d.n_factors >= n_factors
    assert d.n_runs % 4 == 0
    assert d.n_runs == d.n_factors + 1
    assert d.n_runs > n_factors
