"""Tests for one-at-a-time and full-factorial designs."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.doe import (
    contrast_column,
    design_cost,
    effect_subsets,
    full_factorial_design,
    oat_design,
    oat_effects,
    pb_design_size,
    subset_label,
)


class TestOatDesign:
    def test_run_count_is_n_plus_1(self):
        # Table 1: "One Parameter at-a-time ... N+1 simulations".
        for n in (1, 3, 7, 40):
            assert oat_design(n).n_runs == n + 1

    def test_baseline_row(self):
        d = oat_design(3)
        assert d.matrix[0].tolist() == [-1, -1, -1]

    def test_each_run_flips_one_factor(self):
        d = oat_design(4)
        for i in range(1, 5):
            flipped = (d.matrix[i] != d.matrix[0]).sum()
            assert flipped == 1

    def test_high_baseline(self):
        d = oat_design(2, baseline=1)
        assert d.matrix[0].tolist() == [1, 1]
        assert d.matrix[1].tolist() == [-1, 1]

    def test_bad_baseline(self):
        with pytest.raises(ValueError):
            oat_design(2, baseline=0)

    def test_named(self):
        d = oat_design(factor_names=["x", "y"])
        assert d.factor_names == ["x", "y"]

    def test_not_balanced(self):
        """The paper's point: this design cannot be orthogonal."""
        assert not oat_design(5).is_balanced()


class TestOatEffects:
    def test_single_difference(self):
        d = oat_design(2)
        effects = oat_effects(d, [10.0, 14.0, 9.0])
        assert effects == {"F1": 4.0, "F2": -1.0}

    def test_wrong_count(self):
        with pytest.raises(ValueError):
            oat_effects(oat_design(2), [1.0, 2.0])

    def test_blind_to_interactions(self):
        """The paper's criticism, demonstrated: a pure interaction
        produces zero estimated effect for every factor."""
        d = oat_design(2)
        # y = product of levels (pure AB interaction, no main effects)
        y = [float(r["F1"] * r["F2"]) for r in d.runs()]
        effects = oat_effects(d, y)
        # Flipping one factor flips the product: appears as a "main"
        # effect on both, indistinguishable from real main effects —
        # and with the interaction-free responses below, identical
        # estimates arise from genuinely different models.
        y_mains = [float(r["F1"] + r["F2"]) for r in d.runs()]
        effects_mains = oat_effects(d, y_mains)
        assert set(effects) == set(effects_mains)


class TestDesignCost:
    def test_table1_row_values(self):
        # Table 1 with N = 40: N+1, ~2N, 2^N.
        assert design_cost("one-at-a-time", 40) == 41
        assert design_cost("plackett-burman", 40) == 44
        assert design_cost("plackett-burman-foldover", 40) == 88
        assert design_cost("full-factorial", 40) == 2 ** 40

    def test_trillion_simulations_claim(self):
        """Section 2.1: 2^40 is 'more than 1 trillion simulations'."""
        assert design_cost("full-factorial", 40) > 10 ** 12

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            design_cost("latin-hypercube", 4)

    def test_nonpositive_factors(self):
        with pytest.raises(ValueError):
            design_cost("one-at-a-time", 0)

    def test_pb_cost_consistent_with_design_size(self):
        for n in range(1, 50):
            assert design_cost("plackett-burman", n) == pb_design_size(n)


class TestFullFactorial:
    def test_shape(self):
        d = full_factorial_design(3)
        assert d.n_runs == 8
        assert d.n_factors == 3

    def test_yates_order(self):
        d = full_factorial_design(2)
        assert d.matrix.tolist() == [[-1, -1], [1, -1], [-1, 1], [1, 1]]

    def test_all_combinations_distinct(self):
        d = full_factorial_design(4)
        rows = {tuple(r) for r in d.matrix.tolist()}
        assert len(rows) == 16

    def test_orthogonal(self):
        d = full_factorial_design(5)
        assert d.is_balanced()
        assert d.is_orthogonal()

    def test_refuses_cost_explosion(self):
        with pytest.raises(ValueError):
            full_factorial_design(21)

    def test_named(self):
        d = full_factorial_design(factor_names=["p", "q"])
        assert d.factor_names == ["p", "q"]


class TestEffectSubsets:
    def test_counts(self):
        subsets = list(effect_subsets(["a", "b", "c"]))
        assert len(subsets) == 7  # 2^3 - 1

    def test_max_order(self):
        subsets = list(effect_subsets(["a", "b", "c"], max_order=2))
        assert len(subsets) == 6
        assert all(len(s) <= 2 for s in subsets)

    def test_labels(self):
        assert subset_label(("a",)) == "a"
        assert subset_label(("a", "b")) == "a:b"


class TestContrastColumn:
    def test_main_effect_column(self):
        d = full_factorial_design(2, factor_names=["a", "b"])
        assert np.array_equal(contrast_column(d, ["a"]), d.column("a"))

    def test_interaction_column_orthogonal_to_mains(self):
        d = full_factorial_design(3, factor_names=["a", "b", "c"])
        ab = contrast_column(d, ["a", "b"])
        for f in ("a", "b", "c"):
            assert int(ab @ d.column(f)) == 0

    def test_empty_subset(self):
        d = full_factorial_design(2)
        with pytest.raises(ValueError):
            contrast_column(d, [])


@given(st.integers(1, 8))
@settings(max_examples=20, deadline=None)
def test_factorial_contrasts_mutually_orthogonal(k):
    """All 2^k - 1 contrast columns are pairwise orthogonal."""
    d = full_factorial_design(k)
    columns = [
        contrast_column(d, s) for s in effect_subsets(d.factor_names)
    ]
    m = np.stack(columns).astype(np.int64)
    gram = m @ m.T
    assert (gram - np.diag(np.diag(gram)) == 0).all()
