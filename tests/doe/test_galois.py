"""Tests for finite-field arithmetic (repro.doe.galois)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.doe.galois import (
    GaloisField,
    is_prime,
    prime_power_decomposition,
)

SMALL_FIELDS = [2, 3, 4, 5, 7, 8, 9, 11, 13, 16, 25, 27, 43]


class TestPrimes:
    def test_small_primes(self):
        primes = [n for n in range(2, 60) if is_prime(n)]
        assert primes == [2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37,
                          41, 43, 47, 53, 59]

    def test_non_primes(self):
        for n in (-5, 0, 1, 4, 9, 21, 25, 27, 49, 91):
            assert not is_prime(n)

    def test_prime_power_decomposition(self):
        assert prime_power_decomposition(27) == (3, 3)
        assert prime_power_decomposition(8) == (2, 3)
        assert prime_power_decomposition(43) == (43, 1)
        assert prime_power_decomposition(49) == (7, 2)

    def test_non_prime_powers(self):
        for n in (1, 6, 12, 36, 100):
            assert prime_power_decomposition(n) is None


class TestFieldConstruction:
    def test_rejects_non_prime_power(self):
        with pytest.raises(ValueError):
            GaloisField(12)

    @pytest.mark.parametrize("q", SMALL_FIELDS)
    def test_field_sizes(self, q):
        field = GaloisField(q)
        assert field.q == q
        assert len(list(field.elements())) == q


class TestFieldAxioms:
    """Exhaustive axiom checks on small fields (including GF(27))."""

    @pytest.mark.parametrize("q", [7, 8, 9, 27])
    def test_additive_group(self, q):
        f = GaloisField(q)
        for a in f.elements():
            assert f.add(a, 0) == a
            assert f.add(a, f.neg(a)) == 0
            for b in f.elements():
                assert f.add(a, b) == f.add(b, a)

    @pytest.mark.parametrize("q", [7, 8, 9, 27])
    def test_multiplicative_group(self, q):
        f = GaloisField(q)
        for a in f.elements():
            assert f.mul(a, 1) == a
            assert f.mul(a, 0) == 0
            if a != 0:
                assert f.mul(a, f.inverse(a)) == 1

    @pytest.mark.parametrize("q", [7, 9, 27])
    def test_distributivity(self, q):
        f = GaloisField(q)
        for a in range(0, q, max(1, q // 7)):
            for b in f.elements():
                for c in range(0, q, max(1, q // 5)):
                    left = f.mul(a, f.add(b, c))
                    right = f.add(f.mul(a, b), f.mul(a, c))
                    assert left == right

    @pytest.mark.parametrize("q", [7, 8, 9, 27, 43])
    def test_associativity_sampled(self, q):
        f = GaloisField(q)
        step = max(1, q // 6)
        for a in range(0, q, step):
            for b in range(0, q, step):
                for c in range(0, q, step):
                    assert f.mul(f.mul(a, b), c) == f.mul(a, f.mul(b, c))

    def test_inverse_of_zero_raises(self):
        with pytest.raises(ZeroDivisionError):
            GaloisField(7).inverse(0)


class TestQuadraticCharacter:
    def test_legendre_gf7(self):
        f = GaloisField(7)
        # Squares mod 7: 1, 4, 2.
        assert [f.quadratic_character(a) for a in range(7)] == \
            [0, 1, 1, -1, 1, -1, -1]

    @pytest.mark.parametrize("q", [7, 11, 19, 23, 27, 43])
    def test_character_is_multiplicative(self, q):
        f = GaloisField(q)
        step = max(1, q // 8)
        for a in range(1, q, step):
            for b in range(1, q, step):
                chi_ab = f.quadratic_character(f.mul(a, b))
                assert chi_ab == \
                    f.quadratic_character(a) * f.quadratic_character(b)

    @pytest.mark.parametrize("q", [7, 11, 19, 23, 27, 43, 47])
    def test_character_balance(self, q):
        """Exactly (q-1)/2 squares and (q-1)/2 nonsquares."""
        f = GaloisField(q)
        values = [f.quadratic_character(a) for a in range(1, q)]
        assert values.count(1) == (q - 1) // 2
        assert values.count(-1) == (q - 1) // 2

    @pytest.mark.parametrize("q", [7, 11, 23, 27, 43])
    def test_minus_one_is_nonsquare_when_q_3_mod_4(self, q):
        """For q = 3 (mod 4), -1 is a nonsquare (Paley's requirement)."""
        f = GaloisField(q)
        assert f.quadratic_character(f.neg(1)) == -1


@given(st.sampled_from([7, 8, 9, 27, 43]),
       st.integers(0, 200), st.integers(0, 200))
@settings(max_examples=60, deadline=None)
def test_add_mul_closed_property(q, x, y):
    """Addition and multiplication stay inside the field (hypothesis)."""
    f = GaloisField(q)
    a, b = x % q, y % q
    assert 0 <= f.add(a, b) < q
    assert 0 <= f.mul(a, b) < q
    assert f.sub(f.add(a, b), b) == a


@given(st.sampled_from([7, 9, 27, 43]), st.integers(1, 1000))
@settings(max_examples=60, deadline=None)
def test_fermat_property(q, x):
    """a^(q-1) = 1 for every nonzero element (hypothesis)."""
    f = GaloisField(q)
    a = 1 + (x % (q - 1))
    assert f.pow(a, q - 1) == 1
