"""Tests for effect computation and ranking (repro.doe.effects).

Table 4 of the paper is reproduced exactly.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.doe import (
    compute_effects,
    interaction_effect,
    pb_design,
    rank_matrix,
    significance_gap,
    sum_of_ranks,
)

#: The worked example of the paper's Table 4.
TABLE4_RESPONSES = [1, 9, 74, 28, 3, 6, 112, 84]
TABLE4_EFFECTS = [-23, -67, -137, 129, -105, -225, 73]


@pytest.fixture
def design8():
    return pb_design(7, factor_names=list("ABCDEFG"))


class TestPaperTable4:
    def test_exact_effects(self, design8):
        table = compute_effects(design8, TABLE4_RESPONSES)
        assert [round(table.effect(f)) for f in "ABCDEFG"] == TABLE4_EFFECTS

    def test_most_important_order(self, design8):
        """Paper: 'the parameters with the most effect are F, C, and D'."""
        table = compute_effects(design8, TABLE4_RESPONSES)
        assert table.top(3) == ["F", "C", "D"]

    def test_only_magnitude_matters_for_rank(self, design8):
        table = compute_effects(design8, TABLE4_RESPONSES)
        ranks = table.ranks()
        assert ranks["F"] == 1   # |−225|
        assert ranks["C"] == 2   # |−137|
        assert ranks["D"] == 3   # |129|
        assert ranks["A"] == 7   # |−23| smallest


class TestComputeEffects:
    def test_wrong_response_count(self, design8):
        with pytest.raises(ValueError):
            compute_effects(design8, [1, 2, 3])

    def test_normalized_effects_scale(self, design8):
        raw = compute_effects(design8, TABLE4_RESPONSES)
        norm = compute_effects(design8, TABLE4_RESPONSES, normalize=True)
        for f in "ABCDEFG":
            assert norm.effect(f) == pytest.approx(raw.effect(f) / 4.0)

    def test_constant_response_zero_effects(self, design8):
        table = compute_effects(design8, [5.0] * 8)
        assert all(e == 0 for e in table.effects)

    def test_single_factor_response(self, design8):
        """Response = column A exactly -> A's effect is N, others 0."""
        y = design8.column("A").astype(float)
        table = compute_effects(design8, y)
        assert table.effect("A") == pytest.approx(8.0)
        for f in "BCDEFG":
            assert table.effect(f) == pytest.approx(0.0)

    def test_magnitude_accessor(self, design8):
        table = compute_effects(design8, TABLE4_RESPONSES)
        assert table.magnitude("F") == 225

    def test_sorted_by_magnitude_descending(self, design8):
        table = compute_effects(design8, TABLE4_RESPONSES)
        mags = [abs(e) for _, e in table.sorted_by_magnitude()]
        assert mags == sorted(mags, reverse=True)


class TestRelativeMagnitude:
    def test_paper_section41_overshadowing(self, design8):
        """A factor can hold a good rank while being overshadowed —
        the paper's art/FP-sqrt example, synthesized."""
        # Responses dominated by two huge effects; everything else is
        # within rounding noise of zero.
        y = (1000.0 * design8.column("A")
             + 800.0 * design8.column("B")
             + 1.0 * design8.column("C")
             + 0.5 * design8.column("D")).astype(float)
        table = compute_effects(design8, y)
        ranks = table.ranks()
        assert ranks["C"] == 3             # a flattering rank ...
        assert table.relative_magnitude("C") < 0.01   # ... yet noise

    def test_dominant_factor_is_one(self, design8):
        table = compute_effects(design8, TABLE4_RESPONSES)
        assert table.relative_magnitude("F") == pytest.approx(1.0)

    def test_zero_effects(self, design8):
        table = compute_effects(design8, [7.0] * 8)
        assert table.relative_magnitude("A") == 0.0


class TestRanks:
    def test_ranks_are_permutation(self, design8):
        ranks = compute_effects(design8, TABLE4_RESPONSES).ranks()
        assert sorted(ranks.values()) == list(range(1, 8))

    def test_tie_broken_by_column_order(self, design8):
        y = np.zeros(8)
        ranks = compute_effects(design8, y).ranks()
        # All effects zero: ranks assigned in column order.
        assert ranks == {f: i + 1 for i, f in enumerate("ABCDEFG")}


class TestInteractionEffect:
    def test_pure_interaction_response(self):
        design = pb_design(7, factor_names=list("ABCDEFG"), foldover=True)
        y = (design.column("A") * design.column("B")).astype(float)
        # In the foldover design the AB product column is orthogonal to
        # every main-effect column, so mains stay 0.
        mains = compute_effects(design, y)
        for f in "ABCDEFG":
            assert mains.effect(f) == pytest.approx(0.0)
        assert interaction_effect(design, y, "A", "B") == pytest.approx(16.0)

    def test_normalized(self):
        design = pb_design(3, factor_names=list("ABC"))
        y = (design.column("A") * design.column("B")).astype(float)
        raw = interaction_effect(design, y, "A", "B")
        norm = interaction_effect(design, y, "A", "B", normalize=True)
        assert norm == pytest.approx(raw / (design.n_runs / 2))

    def test_wrong_length(self):
        design = pb_design(3)
        with pytest.raises(ValueError):
            interaction_effect(design, [1.0], "F1", "F2")


class TestSumOfRanks:
    def test_paper_mechanics(self, design8):
        tables = {
            "bench1": compute_effects(design8, TABLE4_RESPONSES),
            "bench2": compute_effects(design8, TABLE4_RESPONSES),
        }
        sums = sum_of_ranks(tables)
        # Identical benchmarks: every sum is twice the single rank.
        single = tables["bench1"].ranks()
        assert sums == {f: 2 * r for f, r in single.items()}

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            sum_of_ranks({})

    def test_mismatched_factors_rejected(self, design8):
        other = pb_design(3, factor_names=list("XYZ"))
        tables = {
            "a": compute_effects(design8, TABLE4_RESPONSES),
            "b": compute_effects(other, [1, 2, 3, 4]),
        }
        with pytest.raises(ValueError):
            sum_of_ranks(tables)

    def test_rank_matrix_sorted_by_sum(self, design8):
        rng = np.random.default_rng(3)
        tables = {
            f"b{i}": compute_effects(design8, rng.normal(size=8))
            for i in range(4)
        }
        factors, benchmarks, grid = rank_matrix(tables)
        sums = grid.sum(axis=1)
        assert (np.diff(sums) >= 0).all()
        assert set(benchmarks) == set(tables)


class TestSignificanceGap:
    def test_obvious_gap(self):
        totals = {"a": 10, "b": 12, "c": 90, "d": 95, "e": 99, "f": 101}
        significant, cut = significance_gap(totals)
        assert significant == ["a", "b"]
        assert cut == 2

    def test_single_factor(self):
        assert significance_gap({"only": 3}) == (["only"], 1)

    def test_gap_not_searched_in_tail(self):
        # Huge gap deep in the tail must not move the cut there.
        totals = {"a": 1, "b": 50, "c": 52, "d": 54, "e": 55, "f": 300}
        significant, _ = significance_gap(totals)
        assert significant == ["a"]


@given(st.lists(st.floats(-1e6, 1e6), min_size=8, max_size=8))
@settings(max_examples=60, deadline=None)
def test_effects_equal_matrix_transpose_times_y(y):
    """effect vector == M^T y for any response vector (hypothesis)."""
    design = pb_design(7)
    table = compute_effects(design, y)
    expected = design.matrix.astype(float).T @ np.asarray(y)
    assert np.allclose(table.effects, expected)


@given(st.lists(st.floats(-1e6, 1e6), min_size=16, max_size=16))
@settings(max_examples=40, deadline=None)
def test_foldover_effects_invariant_to_mean_shift(y):
    """Adding a constant to all responses never changes an effect
    (columns are balanced), for the foldover design too."""
    design = pb_design(7, foldover=True)
    base = compute_effects(design, y)
    shifted = compute_effects(design, [v + 1000.0 for v in y])
    assert np.allclose(base.effects, shifted.effects, atol=1e-6)


class TestEmptyTable:
    def test_construction_rejects_empty_factors(self):
        from repro.doe.effects import EffectTable

        with pytest.raises(ValueError, match="at least one factor"):
            EffectTable(factor_names=(), effects=())

    def test_construction_rejects_length_mismatch(self):
        from repro.doe.effects import EffectTable

        with pytest.raises(ValueError, match="factor names"):
            EffectTable(factor_names=("A", "B"), effects=(1.0,))
